//! The exponential-blowup demonstration (paper §1): scale the Figure-1
//! document family and watch the naive pattern-match enumerator explode
//! while TwigM's compact encoding stays flat.
//!
//! ```text
//! cargo run --release --example recursive_sections
//! ```

use std::time::Instant;

use vitex::baseline::{naive, NaiveConfig};
use vitex::core::evaluate_reader;
use vitex::xmlgen::recursive::{self, RecursiveConfig};
use vitex::xmlsax::XmlReader;
use vitex::xpath::QueryTree;

fn main() {
    let query = "//section[author]//table[position]//cell";
    let tree = QueryTree::parse(query).expect("valid query");
    println!("query: {query}\n");
    println!(
        "{:>6} {:>10} | {:>12} {:>12} | {:>14} {:>12}",
        "depth", "doc bytes", "twigm time", "twigm peakB", "naive matches", "naive time"
    );

    for depth in [2usize, 4, 8, 12, 16, 20, 24] {
        let xml = recursive::to_string(&RecursiveConfig::square(depth));

        let t = Instant::now();
        let out = evaluate_reader(XmlReader::from_str(&xml), &tree).expect("twigm");
        let twig_time = t.elapsed();
        assert_eq!(out.matches.len(), 1);

        let t = Instant::now();
        let naive_eval =
            naive::NaiveEvaluator::new(&tree, NaiveConfig { max_embeddings: 2_000_000 });
        let naive_result = naive_eval.run(XmlReader::from_str(&xml));
        let naive_time = t.elapsed();
        let naive_cell = match &naive_result {
            Ok(o) => format!("{}", o.peak_embeddings),
            Err(naive::NaiveError::Blowup { embeddings }) => format!(">{embeddings} CAP"),
            Err(e) => format!("error: {e}"),
        };

        println!(
            "{:>6} {:>10} | {:>12?} {:>12} | {:>14} {:>12?}",
            depth,
            xml.len(),
            twig_time,
            out.stats.peak_bytes,
            naive_cell,
            naive_time,
        );
    }

    println!(
        "\nThe 'naive matches' column is the number of explicitly stored\n\
         pattern matches (the paper's ⟨section_i, table_j, cell⟩ tuples);\n\
         TwigM's peak bytes grow only with the nesting depth."
    );
}
