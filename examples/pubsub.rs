//! Publish/subscribe: many standing queries over one document scan.
//!
//! The paper motivates ViteX with "electronic personalized newspapers" —
//! each reader subscribes with their own XPath query, and the system must
//! evaluate all of them in a single pass over the incoming stream. The
//! [`vitex::core::MultiEngine`] does exactly that: one SAX parse, k TwigM
//! machines.
//!
//! ```text
//! cargo run --release --example pubsub
//! ```

//! The second half of the demo streams a *collection* of snapshots
//! through a [`vitex::core::ShardedEngine`] session: same subscriptions,
//! machines partitioned across worker threads, results merged back in
//! deterministic single-threaded order.

use std::time::Instant;

use vitex::core::{MultiEngine, ShardedEngine};
use vitex::xmlgen::auction::{self, AuctionConfig};
use vitex::xmlsax::XmlReader;

fn main() {
    let subscriptions = [
        "//item[payment = 'Creditcard']/@id",
        "//item[quantity > 5]/name",
        "//regions//item/description//listitem",
        "//person[profile/@income > 150000]/name",
        "//person[profile/interest]/emailaddress/text()",
        "//site/people/person/@id",
    ];

    println!("generating a 4 MiB auction-site snapshot…");
    let xml = auction::to_string(&AuctionConfig::sized(4 << 20));

    let mut multi = MultiEngine::new();
    for q in &subscriptions {
        multi.add_query(q).expect("valid subscription");
    }

    let t = Instant::now();
    let mut first_delivery: Vec<Option<u64>> = vec![None; subscriptions.len()];
    let out = multi
        .run(XmlReader::from_str(&xml), |qid, m| {
            first_delivery[qid.0].get_or_insert(m.node);
        })
        .expect("well-formed snapshot");
    let multi_time = t.elapsed();

    println!("\none pass over {} elements in {multi_time:?}:\n", out.elements);
    for (i, q) in subscriptions.iter().enumerate() {
        println!(
            "  {:>6} matches  (first at node #{:<7})  {q}",
            out.matches[i].len(),
            first_delivery[i].map_or("-".to_string(), |n| n.to_string()),
        );
    }

    // Compare against evaluating each subscription with its own scan.
    let t = Instant::now();
    for q in &subscriptions {
        let _ = vitex::evaluate(&xml, q).expect("single run");
    }
    let separate_time = t.elapsed();
    println!(
        "\nshared scan: {multi_time:?}   vs   {} separate scans: {separate_time:?}  ({:.1}x)",
        subscriptions.len(),
        separate_time.as_secs_f64() / multi_time.as_secs_f64(),
    );
    println!(
        "total machine memory across all subscriptions: {} bytes",
        out.stats.iter().map(|s| s.peak_bytes).sum::<u64>()
    );

    // Document collections through warm sharded workers: one session, a
    // stream of snapshots, zero re-planning between documents.
    let mut sharded = ShardedEngine::new(4);
    for q in &subscriptions {
        sharded.add_query(q).expect("valid subscription");
    }
    let snapshots: Vec<String> =
        (0..3).map(|_| auction::to_string(&AuctionConfig::sized(1 << 20))).collect();
    let t = Instant::now();
    let totals = sharded
        .session(|session| {
            let mut totals = Vec::new();
            for snap in &snapshots {
                let out = session.run_document(XmlReader::from_str(snap), |_, _| {})?;
                totals.push(out.matches.iter().map(Vec::len).sum::<usize>());
            }
            Ok(totals)
        })
        .expect("sharded session");
    println!(
        "\nsharded session ({} shards): {} snapshots back-to-back in {:?}, \
         matches per snapshot: {totals:?}",
        sharded.shards(),
        snapshots.len(),
        t.elapsed(),
    );
}
