//! Quickstart: parse a query, inspect the TwigM machine, evaluate over a
//! document, print solutions.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use vitex::core::{evaluate_reader, MachineSpec};
use vitex::xmlsax::XmlReader;
use vitex::xpath::QueryTree;

fn main() {
    // The query and document from the ViteX paper (Figures 1 and 3).
    let query = "//section[author]//table[position]//cell";
    let xml = vitex::xmlgen::recursive::figure1();

    println!("query: {query}\n");

    // 1. The XPath parser + query tree (the paper's "XPath parser" box).
    let tree = QueryTree::parse(query).expect("valid query");
    println!("query tree (* = main path, ? = predicate):\n{tree}");

    // 2. The TwigM builder (linear in |Q|).
    let spec = MachineSpec::compile(&tree).expect("buildable");
    println!("TwigM machine: {} nodes, root = {:?}", spec.len(), spec.nodes[spec.root].name);

    // 3. Stream the document through the machine.
    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).expect("evaluation");
    println!("\ndocument: {} bytes, {} elements", xml.len(), out.elements);
    println!("solutions: {}", out.matches.len());
    for m in &out.matches {
        let fragment = m.span.slice(xml.as_bytes()).expect("span in range");
        println!("  {m}  fragment: {}", String::from_utf8_lossy(fragment));
    }

    // 4. What the machine did (the paper's compactness claim, visible).
    let s = &out.stats;
    println!("\nmachine bookkeeping:");
    println!("  pushes/pops:          {}/{}", s.pushes, s.pops);
    println!("  flag propagations:    {}", s.flag_propagations);
    println!("  candidates created:   {}", s.candidates_created);
    println!("  lazily inherited:     {}", s.candidates_inherited);
    println!("  peak machine bytes:   {}", s.peak_bytes);
    println!("\nThe 9 pattern matches of the paper's walkthrough were never");
    println!("enumerated — one candidate slid across the stacks instead.");
}
