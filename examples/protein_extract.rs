//! The paper's headline experiment in miniature: run
//! `//ProteinEntry[reference]/@id` over a synthetic PIR Protein dataset,
//! reporting the SAX share of the runtime and the machine's memory
//! footprint (paper §2, Features 3 and 5).
//!
//! ```text
//! cargo run --release --example protein_extract [-- <megabytes>]
//! ```

use std::time::Instant;

use vitex::core::{evaluate_reader, Engine};
use vitex::xmlgen::protein::{self, ProteinConfig};
use vitex::xmlsax::{XmlEvent, XmlReader};
use vitex::xpath::QueryTree;

fn main() {
    let mb: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    let query = "//ProteinEntry[reference]/@id";

    eprintln!("generating {mb} MiB of synthetic protein data…");
    let xml = protein::to_string(&ProteinConfig::sized(mb << 20));
    eprintln!("generated {} bytes", xml.len());

    // SAX-only pass (the paper reports 4.43 s of its 6.02 s here).
    let t = Instant::now();
    let mut events = 0u64;
    let mut reader = XmlReader::from_str(&xml);
    loop {
        match reader.next_event().expect("well-formed") {
            XmlEvent::EndDocument => break,
            _ => events += 1,
        }
    }
    let sax_time = t.elapsed();

    // Full pipeline.
    let tree = QueryTree::parse(query).expect("valid query");
    let t = Instant::now();
    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).expect("evaluation");
    let total_time = t.elapsed();

    println!("query:            {query}");
    println!("document:         {:.1} MiB, {} events", xml.len() as f64 / (1 << 20) as f64, events);
    println!("matches:          {}", out.matches.len());
    println!("SAX parsing only: {sax_time:?}");
    println!(
        "full pipeline:    {total_time:?}  (SAX share ≈ {:.0}%; the paper measured 74%)",
        100.0 * sax_time.as_secs_f64() / total_time.as_secs_f64()
    );
    println!(
        "machine memory:   peak {} bytes ({:.2} KiB) — independent of the {} MiB input",
        out.stats.peak_bytes,
        out.stats.peak_bytes as f64 / 1024.0,
        mb
    );

    // Stream the first few ids like the demo system would.
    println!("\nfirst ids (incremental delivery):");
    let mut engine = Engine::new(&tree).expect("machine");
    let mut shown = 0;
    let _ = engine.run(XmlReader::from_str(&xml), |m| {
        if shown < 5 {
            println!("  {}", m.value.as_deref().unwrap_or("?"));
            shown += 1;
        }
    });
}
