//! Streaming-application demo: the paper's motivation names "stock market
//! data" as a canonical XML stream. This example simulates a live ticker
//! feed arriving chunk by chunk through a `Read` implementation and shows
//! ViteX delivering matches *while the stream is still in flight* — the
//! "incrementally produce and distribute query results" requirement.
//!
//! ```text
//! cargo run --example stock_ticker
//! ```

use std::collections::VecDeque;
use std::io::Read;

use vitex::core::Engine;
use vitex::xmlsax::XmlReader;
use vitex::xpath::QueryTree;

/// A fake market feed: hands out the document a few bytes at a time, as a
/// network socket would.
struct TickerFeed {
    pending: VecDeque<u8>,
    quotes_emitted: u32,
    total_quotes: u32,
    rng_state: u64,
}

impl TickerFeed {
    fn new(total_quotes: u32) -> Self {
        TickerFeed {
            pending: VecDeque::from(b"<feed>".to_vec()),
            quotes_emitted: 0,
            total_quotes,
            rng_state: 0x5EED,
        }
    }

    fn next_rand(&mut self, n: u64) -> u64 {
        // xorshift — good enough for a demo feed.
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        self.rng_state % n
    }

    fn refill(&mut self) {
        if self.quotes_emitted < self.total_quotes {
            self.quotes_emitted += 1;
            let symbols = ["ACME", "GLOBEX", "INITECH", "HOOLI"];
            let symbol = symbols[self.next_rand(symbols.len() as u64) as usize];
            let price = 50 + self.next_rand(100);
            let cents = self.next_rand(100);
            let quote = format!(
                "<quote seq=\"{}\"><symbol>{symbol}</symbol><price>{price}.{cents:02}</price></quote>",
                self.quotes_emitted
            );
            self.pending.extend(quote.bytes());
        } else if self.quotes_emitted == self.total_quotes {
            self.quotes_emitted += 1;
            self.pending.extend(b"</feed>");
        }
    }
}

impl Read for TickerFeed {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pending.is_empty() {
            self.refill();
        }
        // Trickle out at most 16 bytes per call — the parser must make
        // progress on partial input.
        let n = buf.len().min(16).min(self.pending.len());
        for b in buf.iter_mut().take(n) {
            *b = self.pending.pop_front().expect("n bounded by len");
        }
        Ok(n)
    }
}

fn main() {
    let query = "//quote[symbol = 'ACME']/price/text()";
    println!("watching the feed with: {query}\n");

    let tree = QueryTree::parse(query).expect("valid query");
    let mut engine = Engine::new(&tree).expect("machine");

    let feed = TickerFeed::new(40);
    let mut alerts = 0u32;
    let out = engine
        .run(XmlReader::new(feed), |m| {
            alerts += 1;
            println!(
                "ACME traded at {:>8}   (decided at byte offset {})",
                m.value.as_deref().unwrap_or("?"),
                m.span.end
            );
        })
        .expect("feed is well-formed");

    println!("\nfeed closed: {} quotes, {} ACME alerts", (out.elements - 1) / 3, alerts);
    println!(
        "machine peak memory: {} bytes — constant no matter how long the feed runs",
        out.stats.peak_bytes
    );
}
