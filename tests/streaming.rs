//! Streaming-behaviour tests: chunked input, incremental delivery,
//! malformed streams, multi-query single-pass evaluation, and writer →
//! reader round-trips under randomized content.

use proptest::prelude::*;

use vitex::core::{Engine, MultiEngine};
use vitex::xmlsax::writer::XmlWriter;
use vitex::xmlsax::{XmlEvent, XmlReader};
use vitex::xpath::QueryTree;

/// A reader that delivers at most `chunk` bytes per read call.
struct Chunked<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl std::io::Read for Chunked<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn chunked_input_gives_identical_results() {
    let xml =
        vitex::xmlgen::protein::to_string(&vitex::xmlgen::protein::ProteinConfig::sized(40_000));
    let tree = QueryTree::parse("//ProteinEntry[reference]/@id").unwrap();
    let mut engine = Engine::new(&tree).unwrap();
    let whole = engine.run(XmlReader::from_str(&xml), |_| {}).unwrap();
    for chunk in [1usize, 7, 64, 4096] {
        let reader = XmlReader::new(Chunked { data: xml.as_bytes(), pos: 0, chunk });
        let chunked = engine.run(reader, |_| {}).unwrap();
        assert_eq!(
            chunked.matches.len(),
            whole.matches.len(),
            "chunk size {chunk} changed the result"
        );
        assert_eq!(chunked.stats.emitted, whole.stats.emitted);
    }
}

#[test]
fn results_arrive_before_stream_end() {
    // Record how many elements had been seen when each match fired; every
    // match must fire before the last element of the document.
    let mut xml = String::from("<feed>");
    for i in 0..50 {
        xml.push_str(&format!("<msg id=\"{i}\"><urgent/></msg>"));
    }
    xml.push_str("<tail/><tail/><tail/></feed>");
    let tree = QueryTree::parse("//msg[urgent]/@id").unwrap();
    let mut engine = Engine::new(&tree).unwrap();
    let mut fired_at: Vec<u64> = Vec::new();
    let out = engine.run(XmlReader::from_str(&xml), |m| fired_at.push(m.node)).unwrap();
    assert_eq!(out.matches.len(), 50);
    // The first match must have fired long before the document's last
    // node id was reached.
    assert!(fired_at[0] < out.matches.last().unwrap().node / 2);
}

#[test]
fn malformed_stream_fails_cleanly_with_partial_results() {
    let xml = "<feed><msg><urgent/></msg><msg><urgent/></oops>";
    let tree = QueryTree::parse("//msg[urgent]").unwrap();
    let mut engine = Engine::new(&tree).unwrap();
    let mut delivered = 0;
    let err = engine.run(XmlReader::from_str(xml), |_| delivered += 1).unwrap_err();
    assert!(err.to_string().contains("mismatched end tag"));
    // The first message was decidable before the error and was delivered.
    assert_eq!(delivered, 1);
    // The engine is reusable after a failed run.
    let ok = engine.run(XmlReader::from_str("<feed><msg><urgent/></msg></feed>"), |_| {});
    assert_eq!(ok.unwrap().matches.len(), 1);
}

#[test]
fn multi_engine_single_pass() {
    let xml =
        vitex::xmlgen::auction::to_string(&vitex::xmlgen::auction::AuctionConfig::sized(50_000));
    let queries = ["//item/@id", "//person[profile]/name", "//regions//item/description//listitem"];
    let mut multi = MultiEngine::new();
    for q in &queries {
        multi.add_query(q).unwrap();
    }
    let out = multi.run(XmlReader::from_str(&xml), |_, _| {}).unwrap();
    for (i, q) in queries.iter().enumerate() {
        let single = vitex::evaluate(&xml, q).unwrap();
        assert_eq!(out.matches[i].len(), single.len(), "query {q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Writer → reader round-trip with hostile text content: whatever the
    /// writer emits, the reader must reproduce exactly.
    #[test]
    fn writer_reader_round_trip(
        texts in proptest::collection::vec(".{0,40}", 1..8),
        attr_value in ".{0,30}",
    ) {
        // Filter out raw control characters the XML data model cannot
        // carry at all (writer escaping cannot save U+0000 etc.).
        let clean = |s: &str| {
            s.chars()
                .filter(|&c| vitex::xmlsax::entities::is_xml_char(c) && c != '\r')
                .collect::<String>()
        };
        let texts: Vec<String> = texts.iter().map(|t| clean(t)).collect();
        let attr_value = clean(&attr_value);

        let mut buf = Vec::new();
        {
            let mut w = XmlWriter::new(&mut buf);
            w.start_element("root").unwrap();
            w.attribute("v", &attr_value).unwrap();
            for t in &texts {
                w.start_element("item").unwrap();
                w.text(t).unwrap();
                w.end_element().unwrap();
            }
            w.finish().unwrap();
        }
        let xml = String::from_utf8(buf).unwrap();
        let events = XmlReader::from_str(&xml).collect_events().unwrap();

        // Attribute survives.
        let root = events.iter().find_map(|e| match e {
            XmlEvent::StartElement(s) if s.name.as_str() == "root" => Some(s),
            _ => None,
        }).unwrap();
        prop_assert_eq!(root.attribute("v").unwrap(), attr_value.as_str());

        // Text nodes survive (whitespace-preserving, entity round-trip).
        let got: Vec<String> = events.iter().filter_map(|e| match e {
            XmlEvent::Characters(c) => Some(c.text.clone()),
            _ => None,
        }).collect();
        let expected: Vec<String> =
            texts.iter().filter(|t| !t.is_empty()).cloned().collect();
        prop_assert_eq!(got, expected);
    }

    /// Chunk size must never affect the event stream.
    #[test]
    fn chunking_invariance(seed in 0u64..500, chunk in 1usize..64) {
        let xml = vitex::xmlgen::random::to_string(
            &vitex::xmlgen::random::RandomConfig::seeded(seed),
        );
        let whole = XmlReader::from_str(&xml).collect_events().unwrap();
        let reader = XmlReader::new(Chunked { data: xml.as_bytes(), pos: 0, chunk });
        let chunked = reader.collect_events().unwrap();
        prop_assert_eq!(whole, chunked);
    }
}
