//! Telemetry determinism battery: the deterministic counter subset of the
//! metrics registry must be **byte-identical** across every execution
//! configuration that is supposed to be an implementation detail —
//! dispatch mode, plan mode (for the plan-invariant subset), and shard
//! count — while the timing-derived counters, gauges and histograms are
//! present in the snapshot but excluded from the deterministic export.
//!
//! Also covers the export surface: the `vitex.metrics.v1` JSON snapshot
//! and the Chrome trace-event JSON must be syntactically valid (checked
//! with a small hand-rolled JSON walker — the workspace takes no serde
//! dependency) and must round-trip the counter values the engine reported
//! through `MultiOutput`.

use vitex::core::telemetry::{trace_json, ProfileSnapshot, Telemetry};
use vitex::core::{DispatchMode, MultiOutput, PlanMode, ShardedEngine};
use vitex::xmlgen::random::{self, RandomConfig};
use vitex::xmlsax::{ParallelConfig, ParallelReader, XmlReader};
use vitex::xpath::generate::{GenConfig, QueryGenerator};
use vitex::xpath::QueryTree;

const SHARDS: &[usize] = &[1, 4];

fn query_set(query_seed: u64) -> Vec<QueryTree> {
    let mut qgen = QueryGenerator::new(query_seed, GenConfig::default());
    let mut trees: Vec<QueryTree> = qgen
        .queries(7)
        .iter()
        .map(|q| QueryTree::build(q).expect("generated queries are valid"))
        .collect();
    // A literal duplicate exercises dedup fan-out in the folds.
    trees.push(QueryTree::parse(trees[0].original()).expect("round-trips"));
    trees
}

/// Runs one configuration with a fresh enabled telemetry handle; returns
/// the engine output and the handle for snapshotting.
fn run_config(
    trees: &[QueryTree],
    xml: &str,
    plan: PlanMode,
    dispatch: DispatchMode,
    shards: usize,
) -> (MultiOutput, Telemetry) {
    let telemetry = Telemetry::enabled();
    let mut engine = ShardedEngine::with_options(shards, dispatch, plan);
    engine.set_telemetry(telemetry.clone());
    for tree in trees {
        engine.add_tree(tree).expect("registrable");
    }
    let out = engine.run(XmlReader::from_str(xml), |_, _| {}).expect("engine run");
    (out, telemetry)
}

#[test]
fn deterministic_counters_are_invariant_across_dispatch_and_shards() {
    for (doc_seed, query_seed) in [(11u64, 5u64), (42, 9)] {
        let xml = random::to_string(&RandomConfig::seeded(doc_seed));
        let trees = query_set(query_seed);
        for plan in [PlanMode::Unshared, PlanMode::Shared, PlanMode::PrefixShared] {
            let mut reference: Option<String> = None;
            for dispatch in [DispatchMode::Indexed, DispatchMode::Scan] {
                for &shards in SHARDS {
                    let (_, telemetry) = run_config(&trees, &xml, plan, dispatch, shards);
                    let json = telemetry.snapshot().expect("enabled").deterministic_json();
                    match &reference {
                        None => reference = Some(json),
                        Some(r) => assert_eq!(
                            &json, r,
                            "doc_seed={doc_seed} query_seed={query_seed} \
                             {plan:?}/{dispatch:?}/shards={shards}: deterministic \
                             counters must be byte-identical within a plan mode"
                        ),
                    }
                }
            }
        }
    }
}

/// Tiny chunks so the harness's documents split for real instead of
/// taking the sequential whole-document fallback.
fn par_config(threads: usize) -> ParallelConfig {
    ParallelConfig { threads, chunk_bytes: Some(96), ..ParallelConfig::default() }
}

#[test]
fn deterministic_counters_are_invariant_across_parse_front_ends() {
    // Sequential reader, pipelined reader (2 and 4 parse threads) and the
    // overlapped front-end (2 and 4 producers) must export byte-identical
    // deterministic counters — scheduling is an implementation detail.
    // This is the telemetry face of the `--no-overlap` CLI equivalence.
    for (doc_seed, query_seed) in [(11u64, 5u64), (42, 9)] {
        let xml = random::to_string(&RandomConfig::seeded(doc_seed));
        let trees = query_set(query_seed);
        for &shards in SHARDS {
            let mut reference: Option<String> = None;
            let mut check = |telemetry: Telemetry, label: &str| {
                let json = telemetry.snapshot().expect("enabled").deterministic_json();
                match &reference {
                    None => reference = Some(json),
                    Some(r) => assert_eq!(
                        &json, r,
                        "doc_seed={doc_seed} query_seed={query_seed} shards={shards} \
                         {label}: deterministic counters must be front-end invariant"
                    ),
                }
            };
            let make_engine = |telemetry: &Telemetry| {
                let mut engine =
                    ShardedEngine::with_options(shards, DispatchMode::Indexed, PlanMode::Shared);
                engine.set_telemetry(telemetry.clone());
                for tree in &trees {
                    engine.add_tree(tree).expect("registrable");
                }
                engine
            };
            {
                let telemetry = Telemetry::enabled();
                let mut engine = make_engine(&telemetry);
                engine.run(XmlReader::from_str(&xml), |_, _| {}).expect("sequential");
                check(telemetry, "sequential");
            }
            for threads in [2usize, 4] {
                let telemetry = Telemetry::enabled();
                let mut engine = make_engine(&telemetry);
                let reader =
                    ParallelReader::with_config(xml.as_bytes().to_vec(), par_config(threads));
                engine.run(reader, |_, _| {}).expect("pipelined");
                check(telemetry, &format!("pipelined({threads})"));
            }
            for threads in [2usize, 4] {
                let telemetry = Telemetry::enabled();
                let mut engine = make_engine(&telemetry);
                engine
                    .run_overlapped(xml.as_bytes().to_vec(), par_config(threads), |_, _| {})
                    .expect("overlapped");
                let snapshot = telemetry.snapshot().expect("enabled");
                if shards > 1 {
                    // The overlapped front-end actually ran: producer
                    // metrics were recorded (as scheduling-dependent
                    // timing metrics, outside the deterministic subset).
                    assert!(
                        snapshot.counter("vitex_producer_batches_total").unwrap() > 0,
                        "producers published batches"
                    );
                    assert!(
                        snapshot.gauges.iter().any(
                            |g| g.name == "vitex_producer_threads" && g.value == threads as u64
                        ),
                        "producer thread-count gauge recorded"
                    );
                }
                check(telemetry, &format!("overlapped({threads})"));
            }
        }
    }
}

#[test]
fn stream_and_match_counters_are_invariant_across_plan_modes() {
    // The machine/plan counters legitimately differ between plan modes
    // (prefix counters only exist under PrefixShared, dedup changes plan
    // shape) — but what the document contained and what matched cannot.
    let xml = random::to_string(&RandomConfig::seeded(3));
    let trees = query_set(8);
    let plan_invariant = [
        "vitex_stream_events_total",
        "vitex_stream_elements_total",
        "vitex_stream_text_nodes_total",
        "vitex_matches_total",
        "vitex_machine_emitted_total",
    ];
    let mut reference: Option<Vec<u64>> = None;
    for plan in [PlanMode::Unshared, PlanMode::Shared, PlanMode::PrefixShared] {
        let (_, telemetry) = run_config(&trees, &xml, plan, DispatchMode::Indexed, 1);
        let snapshot = telemetry.snapshot().expect("enabled");
        let values: Vec<u64> = plan_invariant
            .iter()
            .map(|n| snapshot.counter(n).unwrap_or_else(|| panic!("{n} missing")))
            .collect();
        match &reference {
            None => reference = Some(values),
            Some(r) => assert_eq!(&values, r, "{plan:?} changes stream/match counters"),
        }
    }
}

#[test]
fn snapshot_round_trips_engine_output() {
    let xml = random::to_string(&RandomConfig::seeded(21));
    let trees = query_set(4);
    let (out, telemetry) = run_config(&trees, &xml, PlanMode::Shared, DispatchMode::Indexed, 4);
    let snapshot = telemetry.snapshot().expect("enabled");
    assert_eq!(snapshot.counter("vitex_stream_events_total"), Some(out.events));
    assert_eq!(snapshot.counter("vitex_stream_elements_total"), Some(out.elements));
    assert_eq!(snapshot.counter("vitex_stream_text_nodes_total"), Some(out.text_nodes));
    let total: u64 = out.matches.iter().map(|m| m.len() as u64).sum();
    assert_eq!(snapshot.counter("vitex_matches_total"), Some(total));
    let pushes: u64 = out.stats.iter().map(|s| s.pushes).sum();
    assert_eq!(snapshot.counter("vitex_machine_pushes_total"), Some(pushes));
    assert_eq!(snapshot.counter("vitex_plan_queries"), Some(out.plan.queries));
}

#[test]
fn timing_metrics_are_present_but_excluded_from_the_deterministic_export() {
    let xml = random::to_string(&RandomConfig::seeded(13));
    let trees = query_set(2);
    let (_, telemetry) = run_config(&trees, &xml, PlanMode::Shared, DispatchMode::Indexed, 4);
    let snapshot = telemetry.snapshot().expect("enabled");
    // Wall-clock did pass and the dispatch histogram saw events…
    assert!(snapshot.counter("vitex_doc_ns_total").unwrap() > 0);
    assert!(snapshot.histograms.iter().any(|h| h.name == "vitex_dispatch_ns" && h.count > 0));
    assert!(snapshot.histograms.iter().any(|h| h.name == "vitex_batch_events" && h.count > 0));
    // …but none of it leaks into the deterministic subset.
    let det = snapshot.deterministic_json();
    for name in
        ["doc_ns", "dispatch_ns", "ring_", "worker_", "merge_", "scan_", "parse_", "producer"]
    {
        assert!(!det.contains(name), "{name} must not appear in {det}");
    }
    // Full snapshot still lists every timing counter (zero or not).
    for name in ["vitex_ring_enqueue_stalls_total", "vitex_worker_busy_ns_total"] {
        assert!(snapshot.counter(name).is_some(), "{name} missing from snapshot");
    }
}

#[test]
fn exports_are_valid_json() {
    let xml = random::to_string(&RandomConfig::seeded(33));
    let trees = query_set(6);
    let (_, telemetry) = run_config(&trees, &xml, PlanMode::Shared, DispatchMode::Indexed, 4);
    let snapshot = telemetry.snapshot().expect("enabled");
    let metrics = snapshot.to_json();
    assert_json(&metrics);
    assert!(metrics.starts_with("{\"schema\":\"vitex.metrics.v1\""));
    let spans = telemetry.spans().expect("enabled");
    assert!(!spans.is_empty(), "a sharded run records document and batch spans");
    let trace = trace_json(&spans);
    assert_json(&trace);
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"thread_name\""));
    assert_json(&snapshot.deterministic_json());
}

#[test]
fn disabled_telemetry_snapshots_nothing() {
    let telemetry = Telemetry::disabled();
    assert!(telemetry.snapshot().is_none());
    assert!(telemetry.spans().is_none());
    // And an engine run with the default (disabled) handle works as before.
    let mut engine = ShardedEngine::new(2);
    engine.add_query("//a").unwrap();
    let out = engine.run(XmlReader::from_str("<a><a/></a>"), |_, _| {}).unwrap();
    assert_eq!(out.matches[0].len(), 2);
}

// ---- cost-attribution (profile) battery ----

/// Runs one configuration with profiling enabled and returns the ledger
/// snapshot. `overlapped: Some(threads)` routes through the overlapped
/// front-end instead of the sequential reader.
fn run_profiled(
    trees: &[QueryTree],
    xml: &str,
    plan: PlanMode,
    dispatch: DispatchMode,
    shards: usize,
    overlapped: Option<usize>,
) -> ProfileSnapshot {
    let mut engine = ShardedEngine::with_options(shards, dispatch, plan);
    engine.set_profiling(true);
    for tree in trees {
        engine.add_tree(tree).expect("registrable");
    }
    match overlapped {
        Some(threads) => {
            engine
                .run_overlapped(xml.as_bytes().to_vec(), par_config(threads), |_, _| {})
                .expect("overlapped run");
        }
        None => {
            engine.run(XmlReader::from_str(xml), |_, _| {}).expect("run");
        }
    }
    engine.group_costs().expect("profiling enabled")
}

#[test]
fn profile_counters_are_invariant_across_every_configuration() {
    // Unlike the metrics registry — whose deterministic subset includes
    // plan-shape counters and is therefore compared within a plan mode —
    // the ledger's per-query section folds once per subscription, so it
    // must be byte-identical across dispatch × plan × shard × front-end:
    // ONE reference per (document, query set), full stop.
    for (doc_seed, query_seed) in [(11u64, 5u64), (42, 9)] {
        let xml = random::to_string(&RandomConfig::seeded(doc_seed));
        let trees = query_set(query_seed);
        let mut reference: Option<String> = None;
        let mut check = |snap: ProfileSnapshot, label: String| {
            let json = snap.deterministic_json();
            assert_json(&json);
            match &reference {
                None => reference = Some(json),
                Some(r) => assert_eq!(
                    &json, r,
                    "doc_seed={doc_seed} query_seed={query_seed} {label}: per-query \
                     profile counters must be byte-identical across configurations"
                ),
            }
        };
        for plan in [PlanMode::Unshared, PlanMode::Shared, PlanMode::PrefixShared] {
            for dispatch in [DispatchMode::Indexed, DispatchMode::Scan] {
                for &shards in SHARDS {
                    check(
                        run_profiled(&trees, &xml, plan, dispatch, shards, None),
                        format!("{plan:?}/{dispatch:?}/shards={shards}"),
                    );
                }
            }
        }
        for &shards in SHARDS {
            check(
                run_profiled(
                    &trees,
                    &xml,
                    PlanMode::Shared,
                    DispatchMode::Indexed,
                    shards,
                    Some(2),
                ),
                format!("overlapped(2)/shards={shards}"),
            );
        }
    }
}

#[test]
fn profile_ranking_is_stable_across_shard_counts() {
    let xml = random::to_string(&RandomConfig::seeded(17));
    let trees = query_set(12);
    let rank = |shards: usize| -> Vec<(usize, u64)> {
        let snap =
            run_profiled(&trees, &xml, PlanMode::Shared, DispatchMode::Indexed, shards, None);
        snap.top_queries(trees.len()).iter().map(|q| (q.id, q.work())).collect()
    };
    let reference = rank(1);
    assert!(!reference.is_empty());
    for &shards in &SHARDS[1..] {
        assert_eq!(rank(shards), reference, "top-k order must not depend on the shard count");
    }
}

#[test]
fn profile_accumulates_across_session_documents() {
    let mut engine = ShardedEngine::new(2);
    engine.set_profiling(true);
    engine.add_query("//a").unwrap();
    engine
        .session(|session| {
            session.run_document(XmlReader::from_str("<a><a/></a>"), |_, _| {})?;
            session.run_document(XmlReader::from_str("<r><a/></r>"), |_, _| {})?;
            Ok(())
        })
        .unwrap();
    let snap = engine.group_costs().expect("profiling enabled");
    assert_eq!(snap.docs, 2);
    assert_eq!(snap.queries.len(), 1);
    assert_eq!(snap.queries[0].matches, 3, "2 matches from doc 1 + 1 from doc 2");
    assert!(snap.queries[0].pushes >= 3);
}

#[test]
fn profile_full_export_is_valid_json_with_group_diagnostics() {
    let xml = random::to_string(&RandomConfig::seeded(33));
    let trees = query_set(6);
    let snap = run_profiled(&trees, &xml, PlanMode::PrefixShared, DispatchMode::Indexed, 4, None);
    let json = snap.to_json();
    assert_json(&json);
    assert!(json.starts_with("{\"schema\":\"vitex.profile.v1\""));
    assert!(json.contains("\"groups\":["));
    assert!(json.contains("\"shared_steps\":"));
    // The deterministic export is a strict prefix-section of the full one:
    // same docs, same queries array, no groups.
    let det = snap.deterministic_json();
    assert_json(&det);
    assert!(!det.contains("\"groups\""));
}

#[test]
fn disabled_profiling_snapshots_nothing() {
    let mut engine = ShardedEngine::new(2);
    engine.add_query("//a").unwrap();
    engine.run(XmlReader::from_str("<a><a/></a>"), |_, _| {}).unwrap();
    assert!(engine.group_costs().is_none());
}

// ---- minimal JSON syntax checker (no serde in the workspace) ----

fn assert_json(s: &str) {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_value(b, &mut i).unwrap_or_else(|e| panic!("invalid JSON at byte {e}: {s:.120}"));
    skip_ws(b, &mut i);
    assert_eq!(i, b.len(), "trailing garbage after JSON value");
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn skip_value(b: &[u8], i: &mut usize) -> Result<(), usize> {
    skip_ws(b, i);
    match b.get(*i).ok_or(*i)? {
        b'{' => skip_composite(b, i, b'}', true),
        b'[' => skip_composite(b, i, b']', false),
        b'"' => skip_string(b, i),
        b't' => skip_lit(b, i, b"true"),
        b'f' => skip_lit(b, i, b"false"),
        b'n' => skip_lit(b, i, b"null"),
        b'-' | b'0'..=b'9' => {
            let start = *i;
            *i += 1;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                *i += 1;
            }
            if *i > start {
                Ok(())
            } else {
                Err(start)
            }
        }
        _ => Err(*i),
    }
}

fn skip_composite(b: &[u8], i: &mut usize, close: u8, keyed: bool) -> Result<(), usize> {
    *i += 1; // opener
    skip_ws(b, i);
    if b.get(*i) == Some(&close) {
        *i += 1;
        return Ok(());
    }
    loop {
        if keyed {
            skip_ws(b, i);
            skip_string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(*i);
            }
            *i += 1;
        }
        skip_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i).ok_or(*i)? {
            b',' => *i += 1,
            c if *c == close => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

fn skip_string(b: &[u8], i: &mut usize) -> Result<(), usize> {
    if b.get(*i) != Some(&b'"') {
        return Err(*i);
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'\\' => *i += 2,
            b'"' => {
                *i += 1;
                return Ok(());
            }
            _ => *i += 1,
        }
    }
    Err(*i)
}

fn skip_lit(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        Ok(())
    } else {
        Err(*i)
    }
}
