//! Fault-injection battery for the overlapped parse→match pipeline:
//! kill a parse worker or a shard worker mid-document and assert the
//! session surfaces a **clean error** — no hang, no panic escaping to
//! the caller, and no match callbacks delivered after the failure.
//!
//! The hooks are test-only seams: `ParallelConfig::fail_chunk` makes the
//! parse worker that claims that chunk panic before parsing it;
//! `ShardedEngine::inject_worker_fault(shard, seq)` makes that shard's
//! worker panic when it applies the event with that sequence number.
//! Every test runs under the overlapped front-end (multi-producer shard
//! feeding), where a lost batch would otherwise strand the workers'
//! reorder stash forever — precisely the regime the teardown discipline
//! has to cover. The shard-worker fault is additionally exercised under
//! the pipelined front-end, whose poisoning path shares the same code.

use vitex::core::{DispatchMode, EngineError, PlanMode, ShardedEngine};
use vitex::xmlsax::{ParallelConfig, ParallelReader, XmlReader};

/// A document big enough to split into many chunks at the test chunk
/// size, with matches spread throughout.
fn document() -> String {
    let mut xml = String::from("<root>");
    for i in 0..400 {
        xml.push_str(&format!("<item id=\"{i}\"><a><b>x{i}</b></a><c>t{i}</c></item>"));
    }
    xml.push_str("</root>");
    xml
}

fn engine(shards: usize) -> ShardedEngine {
    let mut engine = ShardedEngine::with_options(shards, DispatchMode::Indexed, PlanMode::Shared);
    for q in ["//item/@id", "//a//b", "//c/text()", "//item"] {
        engine.add_query(q).expect("valid query");
    }
    engine
}

/// Small chunks so the parse front-end genuinely splits and speculates.
fn par_config(threads: usize) -> ParallelConfig {
    ParallelConfig { threads, chunk_bytes: Some(256), ..ParallelConfig::default() }
}

#[test]
fn parse_worker_panic_surfaces_clean_error_under_overlap() {
    let xml = document();
    let mut engine = engine(4);
    let config = ParallelConfig { fail_chunk: Some(3), ..par_config(4) };
    let result = engine.run_overlapped(xml.clone().into_bytes(), config, |_, _| {});
    match result {
        Err(EngineError::Xml(e)) => {
            assert!(
                e.to_string().contains("parse worker panicked"),
                "clean parse-fault error, got: {e}"
            );
        }
        other => panic!("expected a parse-worker fault error, got {other:?}"),
    }
    // A parse error does not poison the session: the shard workers
    // quiesced at the last admitted event, so the same engine runs the
    // next (healthy) document to completion.
    let mut matches = 0u64;
    let (out, stats) = engine
        .run_overlapped(xml.into_bytes(), par_config(4), |_, _| matches += 1)
        .expect("healthy rerun succeeds");
    assert!(stats.chunks > 1, "the rerun actually split: {stats:?}");
    assert!(matches > 0, "matches stream again after recovery");
    assert_eq!(out.matches.iter().map(Vec::len).sum::<usize>() as u64, matches);
}

#[test]
fn shard_worker_panic_poisons_session_under_overlap() {
    let xml = document();
    let mut engine = engine(4);
    // Fault deep enough into the document that earlier windows flow.
    engine.inject_worker_fault(2, 900);
    let mut first_msg = None;
    let mut second_calls = 0u64;
    engine
        .session(|session| {
            // Document 1: the fault fires mid-document.
            let first =
                session.run_document_overlapped(xml.clone().into_bytes(), par_config(4), |_, _| {});
            match first {
                Err(EngineError::Worker(msg)) => first_msg = Some(msg),
                other => panic!("expected a worker fault error, got {other:?}"),
            }
            // Document 2 on the now-poisoned session: fails fast, zero
            // callbacks (the dead worker cannot be respawned mid-session).
            let second =
                session.run_document_overlapped(xml.clone().into_bytes(), par_config(4), |_, _| {
                    second_calls += 1
                });
            assert!(matches!(second, Err(EngineError::Worker(_))), "poisoned sessions fail fast");
            Ok(())
        })
        .expect("the session closure itself succeeds");
    let msg = first_msg.expect("fault fired");
    assert!(msg.contains("shard worker 2"), "names the failing shard: {msg}");
    assert!(msg.contains("poisoned"), "announces the poisoning: {msg}");
    assert_eq!(second_calls, 0, "no callbacks from a poisoned session");
    // Clearing the fault and opening a fresh session recovers fully.
    engine.clear_worker_fault();
    let mut matches = 0u64;
    engine
        .run_overlapped(xml.into_bytes(), par_config(4), |_, _| matches += 1)
        .expect("fresh session after clearing the fault");
    assert!(matches > 0);
}

#[test]
fn shard_worker_panic_poisons_session_under_pipelined_front_end() {
    let xml = document();
    let mut engine = engine(4);
    engine.inject_worker_fault(1, 700);
    let result = engine.run(XmlReader::from_str(&xml), |_, _| {});
    match result {
        Err(EngineError::Worker(msg)) => {
            assert!(msg.contains("shard worker 1"), "names the failing shard: {msg}");
        }
        other => panic!("expected a worker fault error, got {other:?}"),
    }
    engine.clear_worker_fault();
    let mut matches = 0u64;
    engine.run(XmlReader::from_str(&xml), |_, _| matches += 1).expect("recovers");
    assert!(matches > 0);
}

#[test]
fn poisoning_is_per_session_and_front_end_agnostic() {
    // The overlapped and pipelined front-ends share one poisoning path:
    // within a session, a worker fault on an *overlapped* document also
    // fail-fasts a subsequent *pipelined* document (and vice versa the
    // shared `run_document` entry check covers both).
    let xml = document();
    let mut engine = engine(3);
    engine.inject_worker_fault(0, 500);
    let mut later_calls = 0u64;
    engine
        .session(|session| {
            let first =
                session.run_document_overlapped(xml.clone().into_bytes(), par_config(2), |_, _| {});
            assert!(matches!(first, Err(EngineError::Worker(_))), "fault fires: {first:?}");
            let second = session.run_document(XmlReader::from_str(&xml), |_, _| later_calls += 1);
            assert!(
                matches!(second, Err(EngineError::Worker(_))),
                "pipelined document on a poisoned session fails fast too"
            );
            Ok(())
        })
        .expect("the session closure itself succeeds");
    assert_eq!(later_calls, 0, "no callbacks after poisoning");
}

#[test]
fn worker_panic_during_assignment_swap_poisons_cleanly() {
    // Cost-aware placement swaps in a new group→shard assignment at a
    // document boundary. `inject_swap_fault` makes a worker panic at the
    // exact adoption point — after the repartition decision, while the
    // new assignment is being taken up at DocStart. The session must
    // poison cleanly (no hang at the ring or the watermark barrier, no
    // stray callbacks), and a fresh session after clearing the fault
    // must perform the same swap and complete.
    let xml = document();
    let mut engine = ShardedEngine::with_options(2, DispatchMode::Indexed, PlanMode::Shared);
    // One hog among three near-idle groups: the seed plan (uniform costs
    // = round-robin) pairs the hog with a cheap group, the first
    // document's counters push measured imbalance past the hysteresis
    // threshold, and the planner swaps at the second document.
    for q in ["//item//b", "/root/zzz", "/root/yyy", "/root/xxx"] {
        engine.add_query(q).expect("valid query");
    }
    engine.inject_swap_fault(1);
    let mut later_calls = 0u64;
    engine
        .session(|session| {
            // Document 1 runs under the seed plan — no swap, no fault.
            let first = session.run_document(XmlReader::from_str(&xml), |_, _| {})?;
            assert!(first.matches.iter().map(Vec::len).sum::<usize>() > 0, "doc 1 matched");
            // Document 2 ships the repartitioned assignment; worker 1
            // panics while adopting it.
            let second = session.run_document(XmlReader::from_str(&xml), |_, _| later_calls += 1);
            match second {
                Err(EngineError::Worker(msg)) => {
                    assert!(msg.contains("shard worker 1"), "names the failing shard: {msg}");
                    assert!(msg.contains("poisoned"), "announces the poisoning: {msg}");
                }
                other => panic!("expected a worker fault during the swap, got {other:?}"),
            }
            // The poisoned session fails fast from here on.
            let third = session.run_document(XmlReader::from_str(&xml), |_, _| later_calls += 1);
            assert!(matches!(third, Err(EngineError::Worker(_))), "poisoned sessions fail fast");
            Ok(())
        })
        .expect("the session closure itself succeeds");
    assert_eq!(later_calls, 0, "no callbacks from the faulted or poisoned documents");
    // Same workload, fault cleared: the swap goes through and the warm
    // session streams every document.
    engine.clear_worker_fault();
    let mut matches = 0u64;
    let snap = engine
        .session(|session| {
            for _ in 0..3 {
                session.run_document(XmlReader::from_str(&xml), |_, _| matches += 1)?;
            }
            Ok(session.placement_snapshot())
        })
        .expect("fresh session after clearing the fault");
    assert!(snap.repartitions >= 1, "the cleared session performs the swap that was faulted");
    assert!(matches > 0, "matches stream again after recovery");
}

#[test]
fn parse_fault_in_pipelined_reader_is_clean_too() {
    // The pipelined front-end with a failing parse worker: the reader
    // surfaces a sticky XML error through the normal error path and the
    // session survives.
    let xml = document();
    let mut engine = engine(2);
    let config = ParallelConfig { fail_chunk: Some(1), ..par_config(2) };
    let reader = ParallelReader::with_config(xml.clone().into_bytes(), config);
    let result = engine.run(reader, |_, _| {});
    match result {
        Err(EngineError::Xml(e)) => {
            assert!(e.to_string().contains("parse worker panicked"), "{e}");
        }
        other => panic!("expected a parse fault, got {other:?}"),
    }
    let mut matches = 0u64;
    engine
        .run(ParallelReader::with_config(xml.into_bytes(), par_config(2)), |_, _| matches += 1)
        .expect("engine survives a parse fault");
    assert!(matches > 0);
}
