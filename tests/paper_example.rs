//! The paper's worked example, end to end.
//!
//! Section 1 of the paper walks query
//! `Q = //section[author]//table[position]//cell` over the 17-line sample
//! document of Figure 1 and concludes:
//!
//! * when `cell` (line 8) is processed there are **9** ways to match the
//!   subquery `//section//table//cell`
//!   (`⟨section_i, table_j, cell_8⟩`, i ∈ {2,3,4}, j ∈ {5,6,7});
//! * at lines 9–10, `table_7` and `table_6` close without a `position`
//!   child, killing their 3 matches each;
//! * the match through `table_5` (the paper's outermost table, line 5…12)
//!   sees `position` at line 11 and `author` at line 15, so `cell_8` is
//!   the unique query solution.
//!
//! These tests pin all of that behaviour — on the naive enumerator (which
//! literally materializes the 9 tuples) and on TwigM (which never does).

use vitex::baseline::{naive, oracle, NaiveConfig};
use vitex::core::{evaluate_reader, MachineSpec};
use vitex::xmlgen::recursive;
use vitex::xmlsax::XmlReader;
use vitex::xpath::QueryTree;

const Q: &str = "//section[author]//table[position]//cell";

#[test]
fn figure1_has_exactly_one_solution() {
    let xml = recursive::figure1();
    let ms = vitex::evaluate(&xml, Q).unwrap();
    assert_eq!(ms.len(), 1);
    let m = &ms[0];
    assert_eq!(m.name.as_deref(), Some("cell"));
    // The solution fragment is the cell element with its text.
    let frag = m.span.slice(xml.as_bytes()).unwrap();
    assert_eq!(std::str::from_utf8(frag).unwrap(), "<cell> A </cell>");
}

#[test]
fn naive_enumerator_materializes_the_nine_matches() {
    // The structural subquery //section//table//cell has 3 × 3 = 9 matches
    // for cell_8; the naive evaluator must store at least those.
    let xml = recursive::figure1();
    let tree = QueryTree::parse("//section//table//cell").unwrap();
    let out = naive::NaiveEvaluator::new(&tree, NaiveConfig::default())
        .run(XmlReader::from_str(&xml))
        .unwrap();
    // Embeddings also include partial ones (section-only, section+table),
    // so peak ≥ 9 complete + partials.
    assert!(out.peak_embeddings >= 9, "peak embeddings = {}", out.peak_embeddings);
    assert_eq!(out.matches.len(), 1);
}

#[test]
fn twigm_stays_polynomial_on_the_example() {
    let xml = recursive::figure1();
    let tree = QueryTree::parse(Q).unwrap();
    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
    assert_eq!(out.matches.len(), 1);
    let stats = &out.stats;
    // 10 elements, 5 machine nodes: entries are bounded by pushes of
    // matching elements, not by the 9 pattern matches.
    assert!(stats.peak_entries <= 8, "peak entries = {}", stats.peak_entries);
    assert!(stats.peak_candidates <= 3, "peak candidates = {}", stats.peak_candidates);
    // The pruning narrative: candidate copies died with table_7/table_6 or
    // were inherited outward — either way nothing was enumerated.
    assert_eq!(stats.emitted, 1);
}

#[test]
fn figure3_machine_shape() {
    // Figure 3 shows the TwigM machine for Q: section → {author, table},
    // table → {position, cell}, all descendant edges except the predicate
    // attachment (which the paper draws as child edges off the main spine).
    let tree = QueryTree::parse(Q).unwrap();
    let spec = MachineSpec::compile(&tree).unwrap();
    assert_eq!(spec.len(), 5);
    let names: Vec<&str> = spec.nodes.iter().map(|n| n.name.as_deref().unwrap()).collect();
    assert_eq!(names, ["section", "author", "table", "position", "cell"]);
    // Each machine node has a stack; stacks start empty (paper: "Each
    // machine node has a stack associated with it … initialized to be
    // empty").
    let machine = vitex::core::TwigM::from_spec(spec, vitex::core::EvalMode::Compact);
    assert!(machine.is_quiescent());
}

#[test]
fn pruning_at_lines_9_and_10() {
    // Trace the machine through the document and check that the candidate
    // attached to table_7 is *inherited* (not lost, not duplicated) as the
    // unsatisfied tables close — observable through the stats counters.
    let xml = recursive::figure1();
    let tree = QueryTree::parse(Q).unwrap();
    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
    let stats = &out.stats;
    // cell_8 is created once as a candidate…
    assert_eq!(stats.candidates_created, 1);
    // …slides down through the dying tables 7 and 6 (lines 9–10), is
    // forwarded up by the satisfied table_5 (line 12) onto section_4, and
    // slides again through the author-less sections 4 and 3 — four lazy
    // inheritances in total, never 9 enumerated matches…
    assert_eq!(stats.candidates_inherited, 4);
    // …until the satisfied section_2 (author at line 15) forwards it to
    // the root, where it is emitted exactly once.
    assert_eq!(stats.emitted, 1);
    assert_eq!(stats.duplicates_suppressed, 0);
}

#[test]
fn oracle_agrees_on_the_example() {
    let xml = recursive::figure1();
    let ms = oracle::evaluate_str(&xml, Q);
    assert_eq!(ms.len(), 1);
}

#[test]
fn without_author_every_match_dies() {
    // Strip line 15: all 9 pattern matches must be discarded.
    let cfg = recursive::RecursiveConfig { author_present: false, ..Default::default() };
    let xml = recursive::to_string(&cfg);
    let tree = QueryTree::parse(Q).unwrap();
    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
    assert!(out.matches.is_empty());
    assert_eq!(out.stats.emitted, 0);
    assert!(out.stats.candidates_discarded >= 1);
}

#[test]
fn deeper_towers_scale_polynomially() {
    // ViteX feature 1: polynomial in data and query size. Check the
    // bookkeeping-operation count grows ~linearly in the tower depth
    // (the document also grows linearly).
    let tree = QueryTree::parse(Q).unwrap();
    let ops = |depth: usize| {
        let xml = recursive::to_string(&recursive::RecursiveConfig::square(depth));
        let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
        assert_eq!(out.matches.len(), 1);
        out.stats.pushes
            + out.stats.flag_propagations
            + out.stats.candidates_forwarded
            + out.stats.candidates_inherited
    };
    let (o8, o16, o32) = (ops(8), ops(16), ops(32));
    // Linear-ish growth: doubling depth should not quadruple the work.
    assert!(o16 < o8 * 3, "{o8} → {o16}");
    assert!(o32 < o16 * 3, "{o16} → {o32}");
}
