//! Driver-level differential tests: the single-query engine, the
//! multi-query engine (in both dispatch modes) and the naive baseline must
//! produce **identical node-id sequences** for a battery of queries over
//! generated documents — deep-recursive (the paper's Figure 1 regime) and
//! protein-shaped (the paper's headline dataset).
//!
//! This is the correctness gate for the unified [`DocumentDriver`] layer:
//! all engines now share one SAX loop, one numbering scheme and one
//! interner-resolution path, so any disagreement here points at the
//! dispatch index or the symbol plumbing.

use vitex::baseline::{naive, NaiveConfig};
use vitex::core::{DispatchMode, Engine, MultiEngine};
use vitex::xmlgen::{protein, recursive};
use vitex::xmlsax::XmlReader;
use vitex::xpath::QueryTree;

/// Queries with meaningful hits on both document families, mixing names,
/// wildcards, predicates and special results.
const BATTERY: &[&str] = &[
    "//section",
    "//section//cell",
    "//section[author]//table[position]//cell",
    "//table/cell",
    "//*[position]",
    "//ProteinEntry[reference]/@id",
    "//ProteinEntry/protein/name",
    "//refinfo/@refid",
    "//*/*",
    "//author/text()",
];

/// Emission-order node-id sequence from the single-query engine.
fn single_ids(xml: &str, tree: &QueryTree) -> Vec<u64> {
    let mut engine = Engine::new(tree).expect("buildable");
    let mut order = Vec::new();
    engine.run(XmlReader::from_str(xml), |m| order.push(m.node)).expect("single run");
    order
}

/// Asserts every engine agrees on every battery query over `xml`.
fn check_document(label: &str, xml: &str) {
    let trees: Vec<QueryTree> =
        BATTERY.iter().map(|q| QueryTree::parse(q).expect("valid query")).collect();

    for mode in [DispatchMode::Indexed, DispatchMode::Scan] {
        let mut multi = MultiEngine::with_dispatch(mode);
        for tree in &trees {
            multi.add_tree(tree).expect("registrable");
        }
        let out = multi.run(XmlReader::from_str(xml), |_, _| {}).expect("multi run");
        for (i, tree) in trees.iter().enumerate() {
            let expected = single_ids(xml, tree);
            let got: Vec<u64> = out.matches[i].iter().map(|m| m.node).collect();
            assert_eq!(
                got, expected,
                "{label}: query {} diverged under {mode:?} dispatch",
                BATTERY[i]
            );
        }
    }

    // The naive enumerator agrees on the *set* of ids (it reports sorted).
    for tree in &trees {
        let eval = naive::NaiveEvaluator::new(tree, NaiveConfig { max_embeddings: 500_000 });
        match eval.run(XmlReader::from_str(xml)) {
            Ok(nout) => {
                let mut expected = single_ids(xml, tree);
                expected.sort_unstable();
                assert_eq!(
                    nout.matches,
                    expected,
                    "{label}: naive baseline disagrees on {}",
                    tree.original()
                );
            }
            Err(naive::NaiveError::Blowup { .. }) => {} // expected on nasty inputs
            Err(e) => panic!("{label}: naive failed: {e}"),
        }
    }
}

#[test]
fn battery_on_deep_recursive_documents() {
    for depth in [4usize, 9, 14] {
        let xml = recursive::to_string(&recursive::RecursiveConfig::square(depth));
        check_document(&format!("recursive depth {depth}"), &xml);
    }
}

#[test]
fn battery_on_figure1() {
    check_document("figure1", &recursive::figure1());
}

#[test]
fn battery_on_protein_documents() {
    let xml = protein::to_string(&protein::ProteinConfig {
        target_bytes: 120_000,
        reference_fraction: 0.5,
        ..Default::default()
    });
    check_document("protein 120k", &xml);
}

#[test]
fn mixed_battery_in_one_multi_engine_matches_per_query_engines() {
    // All battery queries at once over a document containing both shapes,
    // with callback delivery order cross-checked against buffered order.
    let mut xml = String::from("<mixed>");
    xml.push_str(&recursive::figure1());
    // figure1 yields a complete document; embed a protein fragment too.
    let protein =
        protein::to_string(&protein::ProteinConfig { target_bytes: 20_000, ..Default::default() });
    let body = protein.trim_start_matches("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    xml.push_str(body);
    xml.push_str("</mixed>");

    let mut multi = MultiEngine::new();
    for q in BATTERY {
        multi.add_query(q).unwrap();
    }
    let mut streamed: Vec<Vec<u64>> = vec![Vec::new(); BATTERY.len()];
    let out = multi
        .run(XmlReader::from_str(&xml), |qid, m| streamed[qid.0].push(m.node))
        .expect("mixed run");
    for (i, q) in BATTERY.iter().enumerate() {
        let buffered: Vec<u64> = out.matches[i].iter().map(|m| m.node).collect();
        assert_eq!(streamed[i], buffered, "callback vs buffer order for {q}");
        let tree = QueryTree::parse(q).unwrap();
        assert_eq!(buffered, single_ids(&xml, &tree), "multi vs single for {q}");
    }
}

#[test]
fn wildcard_only_query_sees_every_element_through_the_index() {
    // A machine with only wildcard steps has an empty name-dispatch set;
    // the always-on wildcard set must still deliver the full stream.
    let xml = recursive::to_string(&recursive::RecursiveConfig::square(6));
    let tree = QueryTree::parse("//*").unwrap();
    let expected = single_ids(&xml, &tree);
    let mut multi = MultiEngine::new();
    let q = multi.add_tree(&tree).unwrap();
    let out = multi.run(XmlReader::from_str(&xml), |_, _| {}).unwrap();
    let got: Vec<u64> = out.matches[q.0].iter().map(|m| m.node).collect();
    assert_eq!(got, expected);
    assert_eq!(out.matches[q.0].len() as u64, out.elements, "//* matches every element");
}
