//! Driver-level differential tests: the single-query engine, the
//! multi-query engine (in both dispatch modes) and the naive baseline must
//! produce **identical node-id sequences** for a battery of queries over
//! generated documents — deep-recursive (the paper's Figure 1 regime) and
//! protein-shaped (the paper's headline dataset).
//!
//! This is the correctness gate for the unified [`DocumentDriver`] layer:
//! all engines now share one SAX loop, one numbering scheme and one
//! interner-resolution path, so any disagreement here points at the
//! dispatch index or the symbol plumbing.

use vitex::baseline::{naive, NaiveConfig};
use vitex::core::{DispatchMode, Engine, MultiEngine, PlanMode, ShardedEngine};
use vitex::xmlgen::{protein, recursive};
use vitex::xmlsax::XmlReader;
use vitex::xpath::QueryTree;

/// Shard counts the sharded battery runs at: the single-threaded
/// delegation path, even splits, and a count that leaves shards with
/// uneven group subsets.
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 7];

/// Queries with meaningful hits on both document families, mixing names,
/// wildcards, predicates and special results.
const BATTERY: &[&str] = &[
    "//section",
    "//section//cell",
    "//section[author]//table[position]//cell",
    "//table/cell",
    "//*[position]",
    "//ProteinEntry[reference]/@id",
    "//ProteinEntry/protein/name",
    "//refinfo/@refid",
    "//*/*",
    "//author/text()",
];

/// Emission-order node-id sequence from the single-query engine.
fn single_ids(xml: &str, tree: &QueryTree) -> Vec<u64> {
    let mut engine = Engine::new(tree).expect("buildable");
    let mut order = Vec::new();
    engine.run(XmlReader::from_str(xml), |m| order.push(m.node)).expect("single run");
    order
}

/// Asserts every engine agrees on every battery query over `xml`, in
/// every dispatch × plan-sharing combination.
fn check_document(label: &str, xml: &str) {
    let trees: Vec<QueryTree> =
        BATTERY.iter().map(|q| QueryTree::parse(q).expect("valid query")).collect();

    for mode in [DispatchMode::Indexed, DispatchMode::Scan] {
        for plan in [PlanMode::Shared, PlanMode::Unshared, PlanMode::PrefixShared] {
            let mut multi = MultiEngine::with_options(mode, plan);
            for tree in &trees {
                multi.add_tree(tree).expect("registrable");
            }
            let out = multi.run(XmlReader::from_str(xml), |_, _| {}).expect("multi run");
            for (i, tree) in trees.iter().enumerate() {
                let expected = single_ids(xml, tree);
                let got: Vec<u64> = out.matches[i].iter().map(|m| m.node).collect();
                assert_eq!(
                    got, expected,
                    "{label}: query {} diverged under {mode:?}/{plan:?}",
                    BATTERY[i]
                );
            }
        }
    }

    // The naive enumerator agrees on the *set* of ids (it reports sorted).
    for tree in &trees {
        let eval = naive::NaiveEvaluator::new(tree, NaiveConfig { max_embeddings: 500_000 });
        match eval.run(XmlReader::from_str(xml)) {
            Ok(nout) => {
                let mut expected = single_ids(xml, tree);
                expected.sort_unstable();
                assert_eq!(
                    nout.matches,
                    expected,
                    "{label}: naive baseline disagrees on {}",
                    tree.original()
                );
            }
            Err(naive::NaiveError::Blowup { .. }) => {} // expected on nasty inputs
            Err(e) => panic!("{label}: naive failed: {e}"),
        }
    }
}

#[test]
fn battery_on_deep_recursive_documents() {
    for depth in [4usize, 9, 14] {
        let xml = recursive::to_string(&recursive::RecursiveConfig::square(depth));
        check_document(&format!("recursive depth {depth}"), &xml);
    }
}

#[test]
fn battery_on_figure1() {
    check_document("figure1", &recursive::figure1());
}

#[test]
fn battery_on_protein_documents() {
    let xml = protein::to_string(&protein::ProteinConfig {
        target_bytes: 120_000,
        reference_fraction: 0.5,
        ..Default::default()
    });
    check_document("protein 120k", &xml);
}

#[test]
fn mixed_battery_in_one_multi_engine_matches_per_query_engines() {
    // All battery queries at once over a document containing both shapes,
    // with callback delivery order cross-checked against buffered order.
    let mut xml = String::from("<mixed>");
    xml.push_str(&recursive::figure1());
    // figure1 yields a complete document; embed a protein fragment too.
    let protein =
        protein::to_string(&protein::ProteinConfig { target_bytes: 20_000, ..Default::default() });
    let body = protein.trim_start_matches("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    xml.push_str(body);
    xml.push_str("</mixed>");

    let mut multi = MultiEngine::new();
    for q in BATTERY {
        multi.add_query(q).unwrap();
    }
    let mut streamed: Vec<Vec<u64>> = vec![Vec::new(); BATTERY.len()];
    let out = multi
        .run(XmlReader::from_str(&xml), |qid, m| streamed[qid.0].push(m.node))
        .expect("mixed run");
    for (i, q) in BATTERY.iter().enumerate() {
        let buffered: Vec<u64> = out.matches[i].iter().map(|m| m.node).collect();
        assert_eq!(streamed[i], buffered, "callback vs buffer order for {q}");
        let tree = QueryTree::parse(q).unwrap();
        assert_eq!(buffered, single_ids(&xml, &tree), "multi vs single for {q}");
    }
}

/// A query set with literal duplicates, canonical duplicates (predicate
/// order flipped) and heavy prefix overlap — the regime the shared-prefix
/// planner collapses.
const OVERLAP_SET: &[&str] = &[
    "//section//cell",
    "//section//cell", // literal duplicate
    "//section[author]//table[position]//cell",
    "//section[author][position]//cell",
    "//section[position][author]//cell", // canonical duplicate of previous
    "//ProteinEntry/protein/name",
    "//ProteinEntry/protein",
    "//ProteinEntry[reference]/@id",
    "//ProteinEntry[reference]/@id", // literal duplicate
    "//ProteinEntry/reference/refinfo/@refid",
];

/// One document exercising both battery shapes.
fn mixed_doc() -> String {
    let mut xml = String::from("<mixed>");
    xml.push_str(&recursive::figure1());
    let protein =
        protein::to_string(&protein::ProteinConfig { target_bytes: 30_000, ..Default::default() });
    xml.push_str(protein.trim_start_matches("<?xml version=\"1.0\" encoding=\"UTF-8\"?>"));
    xml.push_str("</mixed>");
    xml
}

#[test]
fn shared_plan_agrees_with_per_query_engines_on_overlapping_sets() {
    let xml = mixed_doc();
    for (mode, plan) in [
        (DispatchMode::Indexed, PlanMode::Shared),
        (DispatchMode::Scan, PlanMode::Shared),
        (DispatchMode::Indexed, PlanMode::PrefixShared),
        (DispatchMode::Scan, PlanMode::PrefixShared),
    ] {
        let mut multi = MultiEngine::with_options(mode, plan);
        for q in OVERLAP_SET {
            multi.add_query(q).unwrap();
        }
        assert!(
            multi.group_count() < OVERLAP_SET.len(),
            "the overlap set must actually dedupe (got {} groups)",
            multi.group_count()
        );
        let out = multi.run(XmlReader::from_str(&xml), |_, _| {}).expect("shared run");
        for (i, q) in OVERLAP_SET.iter().enumerate() {
            let tree = QueryTree::parse(q).unwrap();
            let got: Vec<u64> = out.matches[i].iter().map(|m| m.node).collect();
            assert_eq!(got, single_ids(&xml, &tree), "query #{i} {q} under {mode:?}/{plan:?}");
        }
        if plan == PlanMode::PrefixShared {
            assert!(out.plan.prefix_steps_executed > 0, "the trie actually ran");
            assert!(out.plan.prefix_steps_saved > 0, "overlapping set must share steps");
        }
    }
}

#[test]
fn no_plan_sharing_reproduces_per_query_behavior_bit_for_bit() {
    // The --no-plan-sharing escape hatch: identical MultiOutput payloads
    // (matches with spans/values/levels, not just node ids) and identical
    // streamed callback sequences, for a set with duplicates.
    let xml = mixed_doc();
    let run = |plan: PlanMode| {
        let mut multi = MultiEngine::with_options(DispatchMode::Indexed, plan);
        for q in OVERLAP_SET {
            multi.add_query(q).unwrap();
        }
        let mut streamed: Vec<(usize, u64)> = Vec::new();
        let out = multi
            .run(XmlReader::from_str(&xml), |qid, m| streamed.push((qid.0, m.node)))
            .expect("run");
        (out, streamed)
    };
    let (shared, shared_streamed) = run(PlanMode::Shared);
    let (unshared, unshared_streamed) = run(PlanMode::Unshared);
    assert_eq!(shared.matches, unshared.matches);
    assert_eq!(shared.elements, unshared.elements);
    assert_eq!(shared.events, unshared.events);
    // Streamed (query, node) pairs agree as multisets per query; global
    // interleaving may differ because a shared machine fans a solution
    // out to all subscribers at once.
    let per_query = |streamed: &[(usize, u64)]| {
        let mut by_query: Vec<Vec<u64>> = vec![Vec::new(); OVERLAP_SET.len()];
        for &(q, n) in streamed {
            by_query[q].push(n);
        }
        by_query
    };
    assert_eq!(per_query(&shared_streamed), per_query(&unshared_streamed));
    // And the plan counters tell the two modes apart.
    assert!(shared.plan.groups < unshared.plan.groups);
    assert_eq!(unshared.plan.dedup_ratio(), 1.0);
    assert!(shared.plan.dedup_ratio() > 1.0);
}

#[test]
fn incremental_add_and_remove_matches_fresh_registration() {
    // Register, remove, re-register across runs: the incrementally
    // maintained index must behave exactly like an engine built from
    // scratch with the surviving queries.
    let xml = mixed_doc();
    let mut multi = MultiEngine::new();
    let q_cell = multi.add_query("//section//cell").unwrap();
    let q_cell_dup = multi.add_query("//section//cell").unwrap();
    let q_id = multi.add_query("//ProteinEntry[reference]/@id").unwrap();
    assert_eq!(multi.remove_query(q_cell), Some(false), "duplicate keeps the group");
    assert_eq!(multi.remove_query(q_id), Some(true), "last subscriber retires the group");
    let q_name = multi.add_query("//ProteinEntry/protein/name").unwrap();
    let out = multi.run(XmlReader::from_str(&xml), |_, _| {}).expect("run");

    assert!(out.matches[q_cell.0].is_empty(), "removed query stays silent");
    assert!(out.matches[q_id.0].is_empty(), "retired group stays silent");
    for (q, id) in [("//section//cell", q_cell_dup), ("//ProteinEntry/protein/name", q_name)] {
        let tree = QueryTree::parse(q).unwrap();
        let got: Vec<u64> = out.matches[id.0].iter().map(|m| m.node).collect();
        assert_eq!(got, single_ids(&xml, &tree), "surviving query {q}");
    }
    assert_eq!(out.plan.queries, 2);
    assert_eq!(out.plan.groups, 2);
}

#[test]
fn prefix_sharing_reproduces_unshared_behavior_bit_for_bit() {
    // The prefix-shared runtime rewires the hottest matching path, so the
    // bar is higher than match equality: per-query match payloads, the
    // per-query *machine statistics* (pushes, pops, flags, candidate
    // accounting, peaks — entry-for-entry identical work) and stream
    // counters must all equal the unshared engine's, and the global
    // callback interleaving must equal shared mode's (the two modes group
    // subscribers identically).
    let xml = mixed_doc();
    let queries: Vec<&str> = BATTERY.iter().chain(OVERLAP_SET).copied().collect();
    let run = |plan: PlanMode, dispatch: DispatchMode| {
        let mut multi = MultiEngine::with_options(dispatch, plan);
        for q in &queries {
            multi.add_query(q).unwrap();
        }
        let mut streamed: Vec<(usize, u64)> = Vec::new();
        let out = multi
            .run(XmlReader::from_str(&xml), |qid, m| streamed.push((qid.0, m.node)))
            .expect("run");
        (out, streamed)
    };
    for dispatch in [DispatchMode::Indexed, DispatchMode::Scan] {
        let (prefix, prefix_streamed) = run(PlanMode::PrefixShared, dispatch);
        let (shared, shared_streamed) = run(PlanMode::Shared, dispatch);
        let (unshared, _) = run(PlanMode::Unshared, dispatch);
        assert_eq!(prefix.matches, unshared.matches, "{dispatch:?}: match payloads");
        assert_eq!(prefix.stats, unshared.stats, "{dispatch:?}: machine statistics");
        assert_eq!(
            (prefix.elements, prefix.text_nodes, prefix.events),
            (unshared.elements, unshared.text_nodes, unshared.events),
            "{dispatch:?}: stream counters"
        );
        assert_eq!(prefix_streamed, shared_streamed, "{dispatch:?}: callback order");
        // Structural plan statistics equal shared mode; the prefix runtime
        // counters are the only difference.
        let structural = |p: &vitex::core::PlanStats| vitex::core::PlanStats {
            prefix_steps_executed: 0,
            prefix_steps_saved: 0,
            prefix_forks: 0,
            prefix_stack_bytes: 0,
            ..*p
        };
        assert_eq!(structural(&prefix.plan), structural(&shared.plan), "{dispatch:?}: plan");
        assert!(prefix.plan.prefix_steps_executed > 0);
        assert!(prefix.plan.prefix_steps_saved > 0, "overlap set shares main-path steps");
        assert!(prefix.plan.prefix_forks > 0);
        assert_eq!(shared.plan.prefix_steps_executed, 0, "other modes never touch the trie");
    }
}

#[test]
fn prefix_sharing_churn_splices_and_retires_trie_state() {
    // Interleave add_query/remove_query between documents under prefix
    // sharing: retired groups must be spliced out of the trie routes (no
    // orphan runtime state driving a dead machine), recycled slots must
    // be re-routed, and every intermediate subscription set must behave
    // exactly like a freshly built engine.
    let xml = mixed_doc();
    let mut multi = MultiEngine::with_options(DispatchMode::Indexed, PlanMode::PrefixShared);
    let q_cell = multi.add_query("//section//cell").unwrap();
    let q_cell_dup = multi.add_query("//section//cell").unwrap();
    let q_id = multi.add_query("//ProteinEntry[reference]/@id").unwrap();
    let check = |multi: &mut MultiEngine, live: &[(&str, vitex::core::QueryId)]| {
        let out = multi.run(XmlReader::from_str(&xml), |_, _| {}).expect("run");
        for (q, id) in live {
            let tree = QueryTree::parse(q).unwrap();
            let got: Vec<u64> = out.matches[id.0].iter().map(|m| m.node).collect();
            assert_eq!(got, single_ids(&xml, &tree), "churned query {q}");
        }
        out
    };
    check(&mut multi, &[("//section//cell", q_cell), ("//ProteinEntry[reference]/@id", q_id)]);
    assert_eq!(multi.remove_query(q_cell), Some(false), "duplicate keeps the group routed");
    assert_eq!(multi.remove_query(q_id), Some(true), "retirement unroutes the trie path");
    let q_name = multi.add_query("//ProteinEntry/protein/name").unwrap();
    let out = check(
        &mut multi,
        &[("//section//cell", q_cell_dup), ("//ProteinEntry/protein/name", q_name)],
    );
    assert!(out.matches[q_cell.0].is_empty() && out.matches[q_id.0].is_empty());
    assert_eq!(out.plan.recycled_slots, 1, "//ProteinEntry/protein/name recycled the slot");
    // The recycled slot's new trie path must route (and the old one not):
    // a fresh engine over the surviving queries is the ground truth for
    // *all* statistics, prefix runtime counters included.
    let mut fresh = MultiEngine::with_options(DispatchMode::Indexed, PlanMode::PrefixShared);
    let f_cell = fresh.add_query("//section//cell").unwrap();
    let f_name = fresh.add_query("//ProteinEntry/protein/name").unwrap();
    let fresh_out = fresh.run(XmlReader::from_str(&xml), |_, _| {}).unwrap();
    assert_eq!(out.matches[q_cell_dup.0], fresh_out.matches[f_cell.0]);
    assert_eq!(out.matches[q_name.0], fresh_out.matches[f_name.0]);
    assert_eq!(
        (out.plan.prefix_steps_executed, out.plan.prefix_forks),
        (fresh_out.plan.prefix_steps_executed, fresh_out.plan.prefix_forks),
        "churned trie must do exactly the work a fresh trie does"
    );
}

#[test]
fn sharded_battery_is_byte_identical_to_single_threaded() {
    // The sharded engine's whole contract: for every shard count, every
    // dispatch mode and every plan mode, the merged output — match
    // payloads (spans/values/levels, not just node ids), per-query
    // machine statistics, plan counters, stream counters AND the
    // streamed callback sequence — equals the single-threaded engine's.
    let xml = mixed_doc();
    let queries: Vec<&str> = BATTERY.iter().chain(OVERLAP_SET).copied().collect();
    for mode in [DispatchMode::Indexed, DispatchMode::Scan] {
        for plan in [PlanMode::Shared, PlanMode::Unshared, PlanMode::PrefixShared] {
            let (reference, ref_streamed) = {
                let mut multi = MultiEngine::with_options(mode, plan);
                for q in &queries {
                    multi.add_query(q).unwrap();
                }
                let mut streamed: Vec<(usize, u64)> = Vec::new();
                let out = multi
                    .run(XmlReader::from_str(&xml), |q, m| streamed.push((q.0, m.node)))
                    .expect("reference run");
                (out, streamed)
            };
            for &shards in SHARD_COUNTS {
                let mut sharded = ShardedEngine::with_options(shards, mode, plan);
                for q in &queries {
                    sharded.add_query(q).unwrap();
                }
                let mut streamed: Vec<(usize, u64)> = Vec::new();
                let out = sharded
                    .run(XmlReader::from_str(&xml), |q, m| streamed.push((q.0, m.node)))
                    .expect("sharded run");
                let label = format!("{shards} shards under {mode:?}/{plan:?}");
                assert_eq!(out.matches, reference.matches, "matches: {label}");
                assert_eq!(streamed, ref_streamed, "callback sequence: {label}");
                assert_eq!(out.stats, reference.stats, "machine stats: {label}");
                assert_eq!(out.plan, reference.plan, "plan stats: {label}");
                assert_eq!(
                    (out.elements, out.text_nodes, out.events),
                    (reference.elements, reference.text_nodes, reference.events),
                    "stream stats: {label}"
                );
            }
        }
    }
}

#[test]
fn sharded_sessions_survive_churn_and_back_to_back_documents() {
    // A long-lived pub/sub session: register, stream a document
    // collection through one warm session, churn subscriptions (removals
    // retire groups whose slots the planner recycles), open a new session
    // — at every step the output must equal a single-threaded engine
    // driven identically.
    let docs = [
        mixed_doc(),
        recursive::to_string(&recursive::RecursiveConfig::square(7)),
        protein::to_string(&protein::ProteinConfig { target_bytes: 15_000, ..Default::default() }),
    ];
    for &shards in SHARD_COUNTS {
        for plan in [PlanMode::Shared, PlanMode::PrefixShared] {
            let mut reference = MultiEngine::with_options(DispatchMode::Indexed, plan);
            let mut sharded = ShardedEngine::with_options(shards, DispatchMode::Indexed, plan);
            for q in OVERLAP_SET {
                reference.add_query(q).unwrap();
                sharded.add_query(q).unwrap();
            }
            // Session 1: the whole collection, back-to-back, no re-planning.
            let outs = sharded
                .session(|session| {
                    docs.iter()
                        .map(|xml| session.run_document(XmlReader::from_str(xml), |_, _| {}))
                        .collect::<Result<Vec<_>, _>>()
                })
                .expect("sharded session");
            for (xml, out) in docs.iter().zip(&outs) {
                let ref_out = reference.run(XmlReader::from_str(xml), |_, _| {}).unwrap();
                assert_eq!(out.matches, ref_out.matches, "{shards} shards, session 1");
                assert_eq!(out.stats, ref_out.stats, "{shards} shards, session 1");
                assert_eq!(out.plan, ref_out.plan, "{shards} shards, session 1");
            }
            // Churn: drop a duplicate, retire a group, add a new shape.
            for engine_step in [true, false] {
                let (r1, r2, r3);
                if engine_step {
                    r1 = reference.remove_query(vitex::core::QueryId(0));
                    r2 = reference.remove_query(vitex::core::QueryId(5));
                    r3 = reference.add_query("//listitem/text()").unwrap();
                } else {
                    r1 = sharded.remove_query(vitex::core::QueryId(0));
                    r2 = sharded.remove_query(vitex::core::QueryId(5));
                    r3 = sharded.add_query("//listitem/text()").unwrap();
                }
                assert_eq!(r1, Some(false), "query 0 duplicates query 1");
                assert_eq!(r2, Some(true), "query 5 was its group's only subscriber");
                assert_eq!(r3.0, OVERLAP_SET.len());
            }
            // Session 2: the rebalanced partition over the churned plan.
            let outs = sharded
                .session(|session| {
                    docs.iter()
                        .map(|xml| session.run_document(XmlReader::from_str(xml), |_, _| {}))
                        .collect::<Result<Vec<_>, _>>()
                })
                .expect("sharded session after churn");
            for (xml, out) in docs.iter().zip(&outs) {
                let ref_out = reference.run(XmlReader::from_str(xml), |_, _| {}).unwrap();
                assert_eq!(out.matches, ref_out.matches, "{shards} shards, session 2");
                assert_eq!(out.stats, ref_out.stats, "{shards} shards, session 2");
                assert_eq!(out.plan, ref_out.plan, "{shards} shards, session 2");
                assert!(out.plan.recycled_slots > 0, "churn recycled a group slot");
            }
        }
    }
}

#[test]
fn recycled_group_slots_do_not_inherit_stale_placement_costs() {
    // Churn between sessions, aimed at the cost-aware placement seed: a
    // hog query is removed, a cheap newcomer recycles its plan-group
    // slot, and the profiling ledger still holds the hog's counters
    // under that gid. Seeding is keyed by the group's canonical text, so
    // the newcomer must start from the uniform prior — the next
    // session's seed plan is plain round-robin, not a partition that
    // isolates a group that was never expensive.
    use vitex::core::Placement;
    let mut xml = String::from("<root>");
    for i in 0..300 {
        xml.push_str(&format!("<item id=\"{i}\"><a><b>x{i}</b></a></item>"));
    }
    xml.push_str("</root>");

    let mut engine = ShardedEngine::with_options(2, DispatchMode::Indexed, PlanMode::Shared);
    engine.set_placement(Placement::CostAware);
    engine.set_profiling(true);
    let queries = ["//item//b", "/root/zzz", "/root/yyy", "/root/xxx"];
    for q in queries {
        engine.add_query(q).expect("valid query");
    }
    // Session 1: the hog's counters land in the ledger and the session
    // repartitions to isolate it.
    let snap = engine
        .session(|session| {
            for _ in 0..2 {
                session.run_document(XmlReader::from_str(&xml), |_, _| {})?;
            }
            Ok(session.placement_snapshot())
        })
        .expect("profiled session");
    assert!(snap.repartitions >= 1, "the hog triggers a repartition");
    let hog_gid = engine.group_costs().expect("profiling on").queries[0].group.expect("hog active");

    // Churn: retire the hog, let a cheap query recycle its slot. The
    // removal retires the hog's group (Some(true) = last subscriber),
    // so the only way `hog_gid` can be active again below is the
    // newcomer recycling it.
    assert_eq!(engine.remove_query(vitex::core::QueryId(0)), Some(true), "hog group retires");
    engine.add_query("/root/www").expect("valid query");

    // Session 2: the seed plan, observed before any document runs. The
    // surviving cheap groups seed from their (tiny, comparable) ledger
    // entries; the recycled slot's stale hog entry (hog canonical ≠
    // newcomer canonical) must be rejected, leaving the newcomer on the
    // uniform prior. LPT then splits the four cheap groups 2 + 2 — had
    // the hog's cost leaked onto the recycled gid, the newcomer would
    // sit alone on one shard with the other three groups packed
    // opposite it.
    let (seed, outs) = engine
        .session(|session| {
            let seed = session.placement_snapshot();
            let outs = (0..2)
                .map(|_| session.run_document(XmlReader::from_str(&xml), |_, _| {}))
                .collect::<Result<Vec<_>, _>>()?;
            Ok((seed, outs))
        })
        .expect("session after churn");
    let active: Vec<usize> =
        (0..seed.shard_of.len()).filter(|&g| seed.shard_of[g].is_some()).collect();
    assert_eq!(active.len(), 4, "four groups remain active after churn");
    assert!(
        seed.shard_of[hog_gid].is_some(),
        "the newcomer recycled the retired hog's group slot {hog_gid}"
    );
    let mut per_shard = vec![0usize; seed.shards];
    for &gid in &active {
        per_shard[seed.shard_of[gid].unwrap()] += 1;
    }
    assert_eq!(
        per_shard,
        vec![2, 2],
        "seed plan splits the four cheap groups evenly — recycled gid {hog_gid} carries no stale cost"
    );
    // And the churned engine still matches a single-threaded reference.
    let mut reference = MultiEngine::with_options(DispatchMode::Indexed, PlanMode::Shared);
    for q in queries {
        reference.add_query(q).unwrap();
    }
    reference.remove_query(vitex::core::QueryId(0));
    reference.add_query("/root/www").unwrap();
    for out in &outs {
        let ref_out = reference.run(XmlReader::from_str(&xml), |_, _| {}).unwrap();
        assert_eq!(out.matches, ref_out.matches, "churned session matches the reference");
        assert_eq!(out.stats, ref_out.stats, "churned session stats match the reference");
    }

    // Worker-count re-clamp: churn that leaves fewer active groups than
    // configured shards must shrink the next session's worker set.
    let mut wide = ShardedEngine::with_options(4, DispatchMode::Indexed, PlanMode::Shared);
    for q in queries {
        wide.add_query(q).expect("valid query");
    }
    assert_eq!(wide.remove_query(vitex::core::QueryId(2)), Some(true));
    assert_eq!(wide.remove_query(vitex::core::QueryId(3)), Some(true));
    let snap = wide
        .session(|session| {
            session.run_document(XmlReader::from_str(&xml), |_, _| {})?;
            Ok(session.placement_snapshot())
        })
        .expect("clamped session");
    assert_eq!(snap.shards, 2, "worker count re-clamps to the surviving group count");
}

#[test]
fn wildcard_only_query_sees_every_element_through_the_index() {
    // A machine with only wildcard steps has an empty name-dispatch set;
    // the always-on wildcard set must still deliver the full stream.
    let xml = recursive::to_string(&recursive::RecursiveConfig::square(6));
    let tree = QueryTree::parse("//*").unwrap();
    let expected = single_ids(&xml, &tree);
    let mut multi = MultiEngine::new();
    let q = multi.add_tree(&tree).unwrap();
    let out = multi.run(XmlReader::from_str(&xml), |_, _| {}).unwrap();
    let got: Vec<u64> = out.matches[q.0].iter().map(|m| m.node).collect();
    assert_eq!(got, expected);
    assert_eq!(out.matches[q.0].len() as u64, out.elements, "//* matches every element");
}
