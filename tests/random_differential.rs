//! The randomized differential harness: seeded random query *sets* ×
//! seeded random documents, run through every engine configuration the
//! system has — naive baseline, `PlanMode::{Unshared, Shared,
//! PrefixShared}` × `DispatchMode::{Indexed, Scan}` × shard counts
//! {1, 4} × parse front-ends (sequential, pipelined, overlapped) —
//! asserting identical matches, callback order and statistics.
//!
//! This is the correctness net under the prefix-sharing rewrite of the
//! hottest matching path: the hand-picked battery in
//! `driver_differential.rs` covers known regimes; this harness explores
//! axes, wildcards, predicates and nesting combinatorially. Every assert
//! message carries the reproducing `(doc_seed, query_seed)` pair, so a CI
//! failure is a one-line local repro:
//!
//! ```text
//! cargo test --test random_differential -- --nocapture
//! # then e.g.:  check_case(1234, 567)  — re-add as a #[test] with the
//! # printed seeds, or run the fixed_seeds test after appending them.
//! ```

use proptest::prelude::*;

use vitex::baseline::{naive, NaiveConfig};
use vitex::core::{DispatchMode, MultiOutput, PlanMode, PlanStats, ShardedEngine};
use vitex::xmlgen::random::{self, RandomConfig};
use vitex::xmlsax::{ParallelConfig, ParallelReader, XmlReader};
use vitex::xpath::generate::{GenConfig, QueryGenerator};
use vitex::xpath::QueryTree;

/// Shard counts the harness runs at (1 = the inline single-threaded
/// delegation, 4 = a genuinely threaded partition).
const SHARDS: &[usize] = &[1, 4];

/// Parse front-ends the harness sweeps. `Sequential` is the streaming
/// reader; `Pipelined(n)` is the n-thread speculative chunked reader
/// funneled through the document pump; `Overlapped(n)` is the overlapped
/// front-end — n parse workers and n publisher threads feeding the shard
/// rings directly, with out-of-order batch delivery. All three must be
/// byte-identical in matches, callback order and statistics.
#[derive(Clone, Copy, Debug)]
enum FrontEnd {
    Sequential,
    Pipelined(usize),
    Overlapped(usize),
}

/// Every front-end at the counts the fixed-seed sweep pins.
const ALL_FRONT_ENDS: &[FrontEnd] = &[
    FrontEnd::Sequential,
    FrontEnd::Pipelined(2),
    FrontEnd::Pipelined(4),
    FrontEnd::Overlapped(2),
    FrontEnd::Overlapped(4),
];

/// The cheaper axis for the randomized properties: sequential versus one
/// overlapped configuration (the fixed-seed sweep covers the rest).
const FAST_FRONT_ENDS: &[FrontEnd] = &[FrontEnd::Sequential, FrontEnd::Overlapped(2)];

/// Tiny chunks so even this harness's small documents split into many
/// speculative fragments: the seam reconciliation and the out-of-order
/// publication paths get exercised, not just the whole-document
/// fallback.
fn par_config(threads: usize) -> ParallelConfig {
    ParallelConfig { threads, chunk_bytes: Some(96), ..ParallelConfig::default() }
}

/// Queries per generated set — enough for overlap and duplicates to
/// appear (the generator's alphabet is 5 tags), small enough to keep the
/// full configuration product fast.
const QUERIES_PER_SET: usize = 8;

/// One engine configuration's observable output.
struct RunResult {
    out: MultiOutput,
    /// `(query id, node id)` callback sequence in delivery order.
    streamed: Vec<(usize, u64)>,
}

/// Generates a query set: random trees plus a forced literal duplicate of
/// the first query (dedup + fan-out must always be exercised).
fn query_set(query_seed: u64) -> Vec<QueryTree> {
    let mut qgen = QueryGenerator::new(query_seed, GenConfig::default());
    let mut trees: Vec<QueryTree> = qgen
        .queries(QUERIES_PER_SET - 1)
        .iter()
        .map(|q| QueryTree::build(q).expect("generated queries are valid"))
        .collect();
    trees.push(QueryTree::parse(trees[0].original()).expect("round-trips"));
    trees
}

fn run_config(
    trees: &[QueryTree],
    xml: &str,
    plan: PlanMode,
    dispatch: DispatchMode,
    shards: usize,
    front: FrontEnd,
) -> RunResult {
    let mut engine = ShardedEngine::with_options(shards, dispatch, plan);
    for tree in trees {
        engine.add_tree(tree).expect("registrable");
    }
    let mut streamed = Vec::new();
    let out = match front {
        FrontEnd::Sequential => engine
            .run(XmlReader::from_str(xml), |qid, m| streamed.push((qid.0, m.node)))
            .expect("engine run"),
        FrontEnd::Pipelined(threads) => {
            let reader = ParallelReader::with_config(xml.as_bytes().to_vec(), par_config(threads));
            engine.run(reader, |qid, m| streamed.push((qid.0, m.node))).expect("engine run")
        }
        FrontEnd::Overlapped(threads) => {
            engine
                .run_overlapped(xml.as_bytes().to_vec(), par_config(threads), |qid, m| {
                    streamed.push((qid.0, m.node))
                })
                .expect("engine run")
                .0
        }
    };
    RunResult { out, streamed }
}

/// Plan statistics with the prefix runtime counters zeroed — the
/// structural part that `Shared` and `PrefixShared` must agree on.
fn structural(p: &PlanStats) -> PlanStats {
    PlanStats {
        prefix_steps_executed: 0,
        prefix_steps_saved: 0,
        prefix_forks: 0,
        prefix_stack_bytes: 0,
        ..*p
    }
}

/// The full differential check for one (document, query set) pair,
/// sweeping plan × dispatch × shards × the given parse front-ends.
fn check_case(doc_seed: u64, query_seed: u64, fronts: &[FrontEnd]) {
    let ctx = format!("doc_seed={doc_seed} query_seed={query_seed}");
    let xml = random::to_string(&RandomConfig::seeded(doc_seed));
    let trees = query_set(query_seed);

    // Ground truth per query: the naive embedding enumerator (sorted
    // node-id sets; skipped per query on combinatorial blowup).
    let reference = run_config(
        &trees,
        &xml,
        PlanMode::Unshared,
        DispatchMode::Indexed,
        1,
        FrontEnd::Sequential,
    );
    for (i, tree) in trees.iter().enumerate() {
        let eval = naive::NaiveEvaluator::new(tree, NaiveConfig { max_embeddings: 100_000 });
        match eval.run(XmlReader::from_str(&xml)) {
            Ok(nout) => {
                let mut ids: Vec<u64> = reference.out.matches[i].iter().map(|m| m.node).collect();
                ids.sort_unstable();
                assert_eq!(
                    nout.matches,
                    ids,
                    "{ctx}: naive baseline disagrees on query #{i} {}",
                    tree.original()
                );
            }
            Err(naive::NaiveError::Blowup { .. }) => {}
            Err(e) => panic!("{ctx}: naive failed on {}: {e}", tree.original()),
        }
    }

    // Every configuration against the reference.
    let mut shared_run: Option<RunResult> = None;
    for plan in [PlanMode::Unshared, PlanMode::Shared, PlanMode::PrefixShared] {
        let mut plan_reference: Option<RunResult> = None;
        for dispatch in [DispatchMode::Indexed, DispatchMode::Scan] {
            for &shards in SHARDS {
                for &front in fronts {
                    let r = run_config(&trees, &xml, plan, dispatch, shards, front);
                    let label = format!("{ctx}: {plan:?}/{dispatch:?}/{shards} shards/{front:?}");
                    // Matches (full payloads: spans, values, levels) and
                    // machine statistics are mode-invariant.
                    assert_eq!(r.out.matches, reference.out.matches, "matches: {label}");
                    assert_eq!(r.out.stats, reference.out.stats, "machine stats: {label}");
                    assert_eq!(
                        (r.out.elements, r.out.text_nodes, r.out.events),
                        (reference.out.elements, reference.out.text_nodes, reference.out.events),
                        "stream stats: {label}"
                    );
                    // Callback order and plan statistics are invariant
                    // across dispatch modes, shard counts and parse
                    // front-ends within one plan mode.
                    match &plan_reference {
                        None => plan_reference = Some(r),
                        Some(first) => {
                            assert_eq!(r.streamed, first.streamed, "callback order: {label}");
                            assert_eq!(r.out.plan, first.out.plan, "plan stats: {label}");
                        }
                    }
                }
            }
        }
        let first = plan_reference.expect("at least one configuration ran");
        match plan {
            PlanMode::Unshared => {
                assert_eq!(first.out.plan.dedup_ratio(), 1.0, "{ctx}: unshared never dedups");
            }
            PlanMode::Shared => {
                assert!(
                    first.out.plan.groups < trees.len() as u64,
                    "{ctx}: the forced duplicate must dedup"
                );
                assert_eq!(first.out.plan.prefix_steps_executed, 0, "{ctx}: no trie runtime");
                shared_run = Some(first);
            }
            PlanMode::PrefixShared => {
                // Identical grouping to Shared — and therefore identical
                // fan-out interleaving — plus a live trie runtime.
                let shared = shared_run.as_ref().expect("Shared ran before PrefixShared");
                assert_eq!(
                    first.streamed, shared.streamed,
                    "{ctx}: prefix-shared callback order equals shared"
                );
                assert_eq!(
                    structural(&first.out.plan),
                    structural(&shared.out.plan),
                    "{ctx}: structural plan stats equal shared mode"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The headline randomized sweep: random documents × random query
    /// sets through the full engine-configuration product (sequential
    /// and one overlapped front-end; the fixed-seed sweep pins the full
    /// front-end matrix).
    #[test]
    fn engines_agree_on_random_query_sets(doc_seed in 0u64..4000, query_seed in 0u64..4000) {
        check_case(doc_seed, query_seed, FAST_FRONT_ENDS);
    }

    /// Deeply recursive documents — the regime where shared prefix
    /// stacks pile up and lazy candidate inheritance matters.
    #[test]
    fn engines_agree_on_recursive_documents(depth in 2u64..14, query_seed in 0u64..500) {
        let xml = vitex::xmlgen::recursive::uniform_nesting(depth as usize);
        let trees = query_set(query_seed);
        let reference =
            run_config(&trees, &xml, PlanMode::Unshared, DispatchMode::Indexed, 1, FrontEnd::Sequential);
        for plan in [PlanMode::Shared, PlanMode::PrefixShared] {
            for &shards in SHARDS {
                let r = run_config(&trees, &xml, plan, DispatchMode::Indexed, shards, FrontEnd::Sequential);
                prop_assert_eq!(
                    &r.out.matches, &reference.out.matches,
                    "depth={} query_seed={} {:?}/{} shards", depth, query_seed, plan, shards
                );
                prop_assert_eq!(
                    &r.out.stats, &reference.out.stats,
                    "depth={} query_seed={} {:?}/{} shards", depth, query_seed, plan, shards
                );
            }
        }
    }
}

/// Placement policy must be output-transparent: a warm session streaming
/// several documents — enough for cost-aware placement to observe the
/// first document's counters and repartition at a document boundary —
/// must produce byte-identical matches, callback order and statistics
/// under both policies at every shard count. A planted hog query (three
/// chained descendant wildcards, expensive on every document) skews the
/// group costs so the sweep actually exercises an assignment swap, not
/// just the seed plan.
#[test]
fn placement_axis_is_output_transparent() {
    use vitex::core::Placement;
    type SessionOutput = (Vec<MultiOutput>, Vec<(usize, u64)>);
    let docs: Vec<String> =
        [11u64, 22, 33].iter().map(|&s| random::to_string(&RandomConfig::seeded(s))).collect();
    let mut trees = query_set(4242);
    trees.push(QueryTree::parse("//*//*//*").expect("hog parses"));

    let mut reference: Option<SessionOutput> = None;
    let mut repartitioned = false;
    for placement in [Placement::RoundRobin, Placement::CostAware] {
        for &shards in &[1usize, 2, 4, 7] {
            let mut engine =
                ShardedEngine::with_options(shards, DispatchMode::Indexed, PlanMode::Shared);
            engine.set_placement(placement);
            for tree in &trees {
                engine.add_tree(tree).expect("registrable");
            }
            let mut streamed = Vec::new();
            let (outs, snap) = engine
                .session(|session| {
                    let outs = docs
                        .iter()
                        .map(|xml| {
                            session.run_document(XmlReader::from_str(xml), |qid, m| {
                                streamed.push((qid.0, m.node))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok((outs, session.placement_snapshot()))
                })
                .expect("warm session");
            let label = format!("{placement:?}/{shards} shards");
            if placement == Placement::RoundRobin || shards == 1 {
                assert_eq!(snap.repartitions, 0, "no replanning expected: {label}");
            }
            repartitioned |= snap.repartitions > 0;
            match &reference {
                None => reference = Some((outs, streamed)),
                Some((ref_outs, ref_streamed)) => {
                    assert_eq!(outs.len(), ref_outs.len(), "document count: {label}");
                    for (doc, (out, ref_out)) in outs.iter().zip(ref_outs).enumerate() {
                        assert_eq!(out.matches, ref_out.matches, "matches doc {doc}: {label}");
                        assert_eq!(out.stats, ref_out.stats, "machine stats doc {doc}: {label}");
                        assert_eq!(out.plan, ref_out.plan, "plan stats doc {doc}: {label}");
                    }
                    assert_eq!(&streamed, ref_streamed, "callback order: {label}");
                }
            }
        }
    }
    assert!(repartitioned, "the planted hog must trigger at least one mid-session repartition");
}

/// A fixed-seed sweep pinned for CI: deterministic regardless of
/// `PROPTEST_CASES`, and the place to append seeds of any future field
/// failures as permanent regression cases.
#[test]
fn fixed_seed_regression_sweep() {
    const SEEDS: &[(u64, u64)] =
        &[(0, 0), (1, 1), (7, 1913), (42, 42), (99, 3), (1234, 567), (2025, 729), (3999, 3999)];
    for &(doc_seed, query_seed) in SEEDS {
        check_case(doc_seed, query_seed, ALL_FRONT_ENDS);
    }
}
