//! Machine-level invariants checked over randomized runs:
//!
//! * conservation — pushes equal pops, nothing live after a well-formed
//!   document, byte accounting returns to zero;
//! * exactly-once emission (already checked differentially; here under
//!   heavier shapes);
//! * polynomial bookkeeping — the compact machine's peak state must stay
//!   tiny while the naive enumerator's embedding count explodes on the
//!   same input;
//! * streaming memory flatness — peak machine bytes must not grow with
//!   document length on repetitive data (the E1 claim, in miniature).

use proptest::prelude::*;

use vitex::baseline::{naive, NaiveConfig};
use vitex::core::{evaluate_reader, Engine, EvalMode};
use vitex::xmlgen::random::{self, RandomConfig};
use vitex::xmlgen::{protein, recursive};
use vitex::xmlsax::XmlReader;
use vitex::xpath::generate::{GenConfig, QueryGenerator};
use vitex::xpath::QueryTree;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn conservation_laws(doc_seed in 0u64..3000, query_seed in 0u64..3000) {
        let xml = random::to_string(&RandomConfig::seeded(doc_seed));
        let mut qgen = QueryGenerator::new(query_seed, GenConfig::default());
        let tree = QueryTree::build(&qgen.query()).unwrap();
        for mode in [EvalMode::Compact, EvalMode::Eager] {
            let mut engine = Engine::with_mode(&tree, mode).unwrap();
            let out = engine.run(XmlReader::from_str(&xml), |_| {}).unwrap();
            let s = &out.stats;
            prop_assert_eq!(s.pushes, s.pops, "push/pop balance");
            prop_assert_eq!(s.live_entries, 0);
            prop_assert_eq!(s.live_candidates, 0);
            prop_assert_eq!(s.live_bytes, 0, "byte accounting must drain");
            prop_assert_eq!(
                s.candidates_created + s.candidates_copied,
                s.emitted
                    + s.candidates_discarded
                    + s.duplicates_suppressed
                    + s.candidates_merged,
                "candidate conservation"
            );
            prop_assert_eq!(s.emitted as usize, out.matches.len());
        }
    }

    #[test]
    fn compact_mode_never_suppresses_nonshared_duplicates(
        doc_seed in 0u64..2000, query_seed in 0u64..2000
    ) {
        // In compact mode every emission is unique by construction; the
        // dedup set only ever fires for shared candidates.
        let xml = random::to_string(&RandomConfig::seeded(doc_seed));
        let mut qgen = QueryGenerator::new(query_seed, GenConfig::default());
        let tree = QueryTree::build(&qgen.query()).unwrap();
        let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
        let mut ids: Vec<u64> = out.matches.iter().map(|m| m.node).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(before, ids.len(), "duplicate emission in compact mode");
    }
}

#[test]
fn polynomial_vs_exponential_bookkeeping() {
    // //a//a//a//a over n-deep <a> nesting: the naive evaluator stores
    // Θ(C(n,4)) embeddings; TwigM's state stays linear.
    let query = "//a//a//a//a";
    let tree = QueryTree::parse(query).unwrap();
    let depth = 20;
    let xml = recursive::uniform_nesting(depth);

    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
    assert!(out.stats.peak_entries as usize <= 4 * depth, "TwigM entries stay linear");

    let nout = naive::NaiveEvaluator::new(&tree, NaiveConfig { max_embeddings: 10_000_000 })
        .run(XmlReader::from_str(&xml))
        .unwrap();
    assert!(
        nout.peak_embeddings > 1000,
        "naive must materialize the combinatorial match space, got {}",
        nout.peak_embeddings
    );
    // And they agree on the answer.
    let mut ids: Vec<u64> = out.matches.iter().map(|m| m.node).collect();
    ids.sort_unstable();
    assert_eq!(ids, nout.matches);
}

#[test]
fn machine_memory_is_flat_in_document_size() {
    // E1 in miniature: peak machine bytes on 64 KiB vs 512 KiB protein
    // data must be essentially identical (shallow data → constant stacks).
    let tree = QueryTree::parse("//ProteinEntry[reference]/@id").unwrap();
    let peak = |bytes: u64| {
        let xml = protein::to_string(&protein::ProteinConfig::sized(bytes));
        let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
        out.stats.peak_bytes
    };
    let small = peak(64 * 1024);
    let large = peak(512 * 1024);
    assert!(large <= small * 2, "peak machine bytes must not scale with |D|: {small} → {large}");
}

#[test]
fn machine_memory_scales_with_depth_not_length() {
    // Recursion depth is the honest driver of stack growth.
    let tree = QueryTree::parse("//a//a").unwrap();
    let peak = |depth: usize| {
        let xml = recursive::uniform_nesting(depth);
        let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
        out.stats.peak_entries
    };
    assert!(peak(64) > peak(8), "deeper nesting → more live entries");
}

#[test]
fn eager_mode_uses_at_least_as_much_candidate_state() {
    // The E6 ablation's direction, asserted as an invariant on a workload
    // with real fan-out.
    let xml = recursive::to_string(&recursive::RecursiveConfig::square(12));
    let tree = QueryTree::parse("//section[author]//table[position]//cell").unwrap();
    let compact = {
        let mut e = Engine::with_mode(&tree, EvalMode::Compact).unwrap();
        e.run(XmlReader::from_str(&xml), |_| {}).unwrap().stats
    };
    let eager = {
        let mut e = Engine::with_mode(&tree, EvalMode::Eager).unwrap();
        e.run(XmlReader::from_str(&xml), |_| {}).unwrap().stats
    };
    assert_eq!(compact.emitted, eager.emitted, "same answers");
    assert!(
        eager.peak_candidates >= compact.peak_candidates,
        "eager {} < compact {}",
        eager.peak_candidates,
        compact.peak_candidates
    );
    assert!(eager.candidates_copied >= compact.candidates_copied);
}

#[test]
fn stop_early_streams_partial_results() {
    // Incremental delivery: a consumer can stop after the first match
    // without reading the rest of the stream (the CLI's behaviour when
    // piped into `head`). Simulated here by counting callback order.
    let xml = "<r><a><b/></a><a><b/></a><a><b/></a></r>";
    let tree = QueryTree::parse("//a/b").unwrap();
    let mut engine = Engine::new(&tree).unwrap();
    let mut seen = 0;
    engine
        .run(XmlReader::from_str(xml), |_| {
            seen += 1;
        })
        .unwrap();
    assert_eq!(seen, 3);
}

#[test]
fn pathological_flag_counts_spill() {
    // A query node with > 64 predicate children exercises the spilled
    // bitset path end to end.
    let conds = (0..70).map(|i| format!("c{i}")).collect::<Vec<_>>().join(" and ");
    let query = format!("//a[{conds}]");
    let tree = QueryTree::parse(&query).unwrap();
    let children: String = (0..70).map(|i| format!("<c{i}/>")).collect();
    let xml = format!("<a>{children}</a>");
    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
    assert_eq!(out.matches.len(), 1);
    // Drop one child: no match.
    let children: String = (1..70).map(|i| format!("<c{i}/>")).collect();
    let xml = format!("<a>{children}</a>");
    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
    assert!(out.matches.is_empty());
}

#[test]
fn deep_documents_within_parser_limits() {
    let depth = 2000;
    let xml = recursive::uniform_nesting(depth);
    let tree = QueryTree::parse("//a//a//a").unwrap();
    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
    assert_eq!(out.matches.len(), depth - 2);
}

// --------------------------------------------------------------------- //
// Step-trie and planner invariants (prefix-shared plan runtime)
// --------------------------------------------------------------------- //

mod plan_invariants {
    use proptest::prelude::*;

    use vitex::core::plan::{StepKey, StepTrie};
    use vitex::core::{Interner, PlanMode, QueryId, QueryPlanner};
    use vitex::xpath::generate::{GenConfig, QueryGenerator};
    use vitex::xpath::{Axis, QueryTree};

    /// Derives a deterministic random step path from a seed.
    fn path_from(seed: u64, interner: &mut Interner) -> Vec<StepKey> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move |n: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % n
        };
        let len = 1 + next(4) as usize;
        (0..len)
            .map(|_| StepKey {
                axis: if next(2) == 0 { Axis::Child } else { Axis::Descendant },
                name: match next(4) {
                    0 => None, // wildcard
                    i => Some(interner.intern(["a", "b", "c"][i as usize - 1])),
                },
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Insert/remove round-trips: re-inserting a path is idempotent,
        /// and removing every group leaves a fully unrouted (but intact)
        /// trie — no orphan routes, no shared nodes, empty terminals.
        #[test]
        fn step_trie_insert_remove_round_trips(seed in 0u64..10_000, paths in 1usize..12) {
            let mut interner = Interner::new();
            let mut trie = StepTrie::new();
            let mut terminals = Vec::new();
            for g in 0..paths {
                let path = path_from(seed.wrapping_add(g as u64), &mut interner);
                let node = trie.insert_path(&path);
                prop_assert_eq!(trie.insert_path(&path), node, "re-insert is idempotent");
                trie.add_group(node, g);
                terminals.push((node, g));
                prop_assert!(trie.terminals(node).contains(&g));
                prop_assert!(trie.is_routed(g));
                prop_assert!(trie.route_count(node) >= 1);
            }
            let len_at_peak = trie.len();
            for &(node, g) in &terminals {
                trie.remove_group(node, g);
                prop_assert!(!trie.is_routed(g), "removal leaves no orphan route");
            }
            prop_assert_eq!(trie.shared_nodes(), 0);
            prop_assert_eq!(trie.len(), len_at_peak, "nodes are never deleted");
            for &(node, _) in &terminals {
                prop_assert!(trie.terminals(node).is_empty());
                prop_assert_eq!(trie.route_count(node), 0);
            }
            prop_assert_eq!(trie.live_entries(), 0, "no runtime state without a run");
        }

        /// Planner churn: random register/unsubscribe sequences must keep
        /// the trie routes exactly in sync with the active groups, and a
        /// recycled slot must never alias a group still serving a live
        /// subscription.
        #[test]
        fn planner_churn_keeps_routes_and_slots_consistent(
            seed in 0u64..10_000, ops in 4usize..40
        ) {
            let mut planner = QueryPlanner::new(PlanMode::PrefixShared);
            let mut interner = Interner::new();
            let mut qgen = QueryGenerator::new(seed, GenConfig::default());
            // Live registrations: (query id, group id).
            let mut live: Vec<(usize, usize)> = Vec::new();
            let mut next_qid = 0usize;
            let mut state = seed | 1;
            let mut next = move |n: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % n) as usize
            };
            for _ in 0..ops {
                if live.is_empty() || next(3) > 0 {
                    // Register.
                    let tree = QueryTree::build(&qgen.query()).expect("valid query");
                    let active_before: std::collections::HashSet<usize> =
                        live.iter().map(|&(_, g)| g).collect();
                    let reg = planner.register(&tree, QueryId(next_qid), &mut interner)
                        .expect("registrable");
                    if reg.created {
                        prop_assert!(
                            !active_before.contains(&reg.group),
                            "a recycled slot must never alias a live group"
                        );
                    } else {
                        prop_assert!(active_before.contains(&reg.group));
                    }
                    live.push((next_qid, reg.group));
                    next_qid += 1;
                } else {
                    // Unsubscribe a random live registration.
                    let at = next(live.len() as u64);
                    let (qid, gid) = live.swap_remove(at);
                    let still_subscribed = live.iter().any(|&(_, g)| g == gid);
                    let last = planner.unsubscribe(gid, QueryId(qid));
                    prop_assert_eq!(last, !still_subscribed, "last-subscriber detection");
                }
                // Invariants after every op.
                let active: std::collections::HashSet<usize> =
                    live.iter().map(|&(_, g)| g).collect();
                prop_assert_eq!(planner.query_count(), live.len());
                prop_assert_eq!(planner.group_count(), active.len());
                for slot in 0..planner.groups().len() {
                    let is_active = planner.group(slot).is_active();
                    prop_assert_eq!(is_active, active.contains(&slot), "slot {} activity", slot);
                    prop_assert_eq!(
                        planner.trie().is_routed(slot), is_active,
                        "routes track activity exactly (slot {})", slot
                    );
                }
                prop_assert_eq!(planner.trie().live_entries(), 0);
            }
        }
    }
}
