//! Machine-level invariants checked over randomized runs:
//!
//! * conservation — pushes equal pops, nothing live after a well-formed
//!   document, byte accounting returns to zero;
//! * exactly-once emission (already checked differentially; here under
//!   heavier shapes);
//! * polynomial bookkeeping — the compact machine's peak state must stay
//!   tiny while the naive enumerator's embedding count explodes on the
//!   same input;
//! * streaming memory flatness — peak machine bytes must not grow with
//!   document length on repetitive data (the E1 claim, in miniature).

use proptest::prelude::*;

use vitex::baseline::{naive, NaiveConfig};
use vitex::core::{evaluate_reader, Engine, EvalMode};
use vitex::xmlgen::random::{self, RandomConfig};
use vitex::xmlgen::{protein, recursive};
use vitex::xmlsax::XmlReader;
use vitex::xpath::generate::{GenConfig, QueryGenerator};
use vitex::xpath::QueryTree;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn conservation_laws(doc_seed in 0u64..3000, query_seed in 0u64..3000) {
        let xml = random::to_string(&RandomConfig::seeded(doc_seed));
        let mut qgen = QueryGenerator::new(query_seed, GenConfig::default());
        let tree = QueryTree::build(&qgen.query()).unwrap();
        for mode in [EvalMode::Compact, EvalMode::Eager] {
            let mut engine = Engine::with_mode(&tree, mode).unwrap();
            let out = engine.run(XmlReader::from_str(&xml), |_| {}).unwrap();
            let s = &out.stats;
            prop_assert_eq!(s.pushes, s.pops, "push/pop balance");
            prop_assert_eq!(s.live_entries, 0);
            prop_assert_eq!(s.live_candidates, 0);
            prop_assert_eq!(s.live_bytes, 0, "byte accounting must drain");
            prop_assert_eq!(
                s.candidates_created + s.candidates_copied,
                s.emitted
                    + s.candidates_discarded
                    + s.duplicates_suppressed
                    + s.candidates_merged,
                "candidate conservation"
            );
            prop_assert_eq!(s.emitted as usize, out.matches.len());
        }
    }

    #[test]
    fn compact_mode_never_suppresses_nonshared_duplicates(
        doc_seed in 0u64..2000, query_seed in 0u64..2000
    ) {
        // In compact mode every emission is unique by construction; the
        // dedup set only ever fires for shared candidates.
        let xml = random::to_string(&RandomConfig::seeded(doc_seed));
        let mut qgen = QueryGenerator::new(query_seed, GenConfig::default());
        let tree = QueryTree::build(&qgen.query()).unwrap();
        let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
        let mut ids: Vec<u64> = out.matches.iter().map(|m| m.node).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(before, ids.len(), "duplicate emission in compact mode");
    }
}

#[test]
fn polynomial_vs_exponential_bookkeeping() {
    // //a//a//a//a over n-deep <a> nesting: the naive evaluator stores
    // Θ(C(n,4)) embeddings; TwigM's state stays linear.
    let query = "//a//a//a//a";
    let tree = QueryTree::parse(query).unwrap();
    let depth = 20;
    let xml = recursive::uniform_nesting(depth);

    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
    assert!(out.stats.peak_entries as usize <= 4 * depth, "TwigM entries stay linear");

    let nout = naive::NaiveEvaluator::new(&tree, NaiveConfig { max_embeddings: 10_000_000 })
        .run(XmlReader::from_str(&xml))
        .unwrap();
    assert!(
        nout.peak_embeddings > 1000,
        "naive must materialize the combinatorial match space, got {}",
        nout.peak_embeddings
    );
    // And they agree on the answer.
    let mut ids: Vec<u64> = out.matches.iter().map(|m| m.node).collect();
    ids.sort_unstable();
    assert_eq!(ids, nout.matches);
}

#[test]
fn machine_memory_is_flat_in_document_size() {
    // E1 in miniature: peak machine bytes on 64 KiB vs 512 KiB protein
    // data must be essentially identical (shallow data → constant stacks).
    let tree = QueryTree::parse("//ProteinEntry[reference]/@id").unwrap();
    let peak = |bytes: u64| {
        let xml = protein::to_string(&protein::ProteinConfig::sized(bytes));
        let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
        out.stats.peak_bytes
    };
    let small = peak(64 * 1024);
    let large = peak(512 * 1024);
    assert!(large <= small * 2, "peak machine bytes must not scale with |D|: {small} → {large}");
}

#[test]
fn machine_memory_scales_with_depth_not_length() {
    // Recursion depth is the honest driver of stack growth.
    let tree = QueryTree::parse("//a//a").unwrap();
    let peak = |depth: usize| {
        let xml = recursive::uniform_nesting(depth);
        let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
        out.stats.peak_entries
    };
    assert!(peak(64) > peak(8), "deeper nesting → more live entries");
}

#[test]
fn eager_mode_uses_at_least_as_much_candidate_state() {
    // The E6 ablation's direction, asserted as an invariant on a workload
    // with real fan-out.
    let xml = recursive::to_string(&recursive::RecursiveConfig::square(12));
    let tree = QueryTree::parse("//section[author]//table[position]//cell").unwrap();
    let compact = {
        let mut e = Engine::with_mode(&tree, EvalMode::Compact).unwrap();
        e.run(XmlReader::from_str(&xml), |_| {}).unwrap().stats
    };
    let eager = {
        let mut e = Engine::with_mode(&tree, EvalMode::Eager).unwrap();
        e.run(XmlReader::from_str(&xml), |_| {}).unwrap().stats
    };
    assert_eq!(compact.emitted, eager.emitted, "same answers");
    assert!(
        eager.peak_candidates >= compact.peak_candidates,
        "eager {} < compact {}",
        eager.peak_candidates,
        compact.peak_candidates
    );
    assert!(eager.candidates_copied >= compact.candidates_copied);
}

#[test]
fn stop_early_streams_partial_results() {
    // Incremental delivery: a consumer can stop after the first match
    // without reading the rest of the stream (the CLI's behaviour when
    // piped into `head`). Simulated here by counting callback order.
    let xml = "<r><a><b/></a><a><b/></a><a><b/></a></r>";
    let tree = QueryTree::parse("//a/b").unwrap();
    let mut engine = Engine::new(&tree).unwrap();
    let mut seen = 0;
    engine
        .run(XmlReader::from_str(xml), |_| {
            seen += 1;
        })
        .unwrap();
    assert_eq!(seen, 3);
}

#[test]
fn pathological_flag_counts_spill() {
    // A query node with > 64 predicate children exercises the spilled
    // bitset path end to end.
    let conds = (0..70).map(|i| format!("c{i}")).collect::<Vec<_>>().join(" and ");
    let query = format!("//a[{conds}]");
    let tree = QueryTree::parse(&query).unwrap();
    let children: String = (0..70).map(|i| format!("<c{i}/>")).collect();
    let xml = format!("<a>{children}</a>");
    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
    assert_eq!(out.matches.len(), 1);
    // Drop one child: no match.
    let children: String = (1..70).map(|i| format!("<c{i}/>")).collect();
    let xml = format!("<a>{children}</a>");
    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
    assert!(out.matches.is_empty());
}

#[test]
fn deep_documents_within_parser_limits() {
    let depth = 2000;
    let xml = recursive::uniform_nesting(depth);
    let tree = QueryTree::parse("//a//a//a").unwrap();
    let out = evaluate_reader(XmlReader::from_str(&xml), &tree).unwrap();
    assert_eq!(out.matches.len(), depth - 2);
}
