//! Differential correctness: TwigM (compact and eager) must agree with the
//! DOM oracle — and with the naive enumerator and the NFA filter where
//! those apply — on randomized documents × randomized queries.
//!
//! This is the main correctness weapon of the reproduction: the oracle is
//! a small, obviously-correct, random-access evaluator, so set equality on
//! thousands of (document, query) pairs gives high confidence that the
//! reconstructed TwigM transition rules implement the paper's semantics.

use proptest::prelude::*;

use vitex::baseline::{naive, nfa, oracle, Document, NaiveConfig};
use vitex::core::{evaluate_reader, Engine, EvalMode};
use vitex::xmlgen::random::{self, RandomConfig};
use vitex::xmlsax::XmlReader;
use vitex::xpath::generate::{GenConfig, QueryGenerator};
use vitex::xpath::QueryTree;

/// Runs every evaluator on one (document, query) pair and asserts set
/// equality of result-node ids.
fn check_pair(xml: &str, tree: &QueryTree) {
    let query = tree.original();
    // Oracle (gold standard).
    let doc = Document::parse_str(xml).expect("generated XML is well-formed");
    let expected: Vec<u64> = oracle::evaluate(&doc, tree).into_iter().map(|m| m.node).collect();

    // TwigM, compact mode.
    let out = evaluate_reader(XmlReader::from_str(xml), tree).expect("twigm run");
    let mut got: Vec<u64> = out.matches.iter().map(|m| m.node).collect();
    got.sort_unstable();
    assert_eq!(
        got, expected,
        "compact TwigM disagrees with oracle\nquery: {query}\ndoc: {xml}\ntree:\n{tree}"
    );
    // Exactly-once emission: sorted ids must already be unique.
    let mut dedup = got.clone();
    dedup.dedup();
    assert_eq!(got, dedup, "duplicate emission\nquery: {query}\ndoc: {xml}");

    // TwigM, eager mode (ablation) — same semantics.
    let mut eager = Engine::with_mode(tree, EvalMode::Eager).expect("eager build");
    let eout = eager.run(XmlReader::from_str(xml), |_| {}).expect("eager run");
    let mut egot: Vec<u64> = eout.matches.iter().map(|m| m.node).collect();
    egot.sort_unstable();
    egot.dedup();
    assert_eq!(egot, expected, "eager TwigM disagrees\nquery: {query}\ndoc: {xml}");

    // Naive enumerator — same semantics when it doesn't blow up.
    let naive_eval = naive::NaiveEvaluator::new(tree, NaiveConfig { max_embeddings: 200_000 });
    match naive_eval.run(XmlReader::from_str(xml)) {
        Ok(nout) => {
            assert_eq!(
                nout.matches, expected,
                "naive enumerator disagrees\nquery: {query}\ndoc: {xml}"
            );
        }
        Err(naive::NaiveError::Blowup { .. }) => {} // expected on nasty inputs
        Err(e) => panic!("naive failed: {e}"),
    }

    // NFA filter — predicate-free element queries only.
    if let Ok(machine) = nfa::PathNfa::compile(tree) {
        let mut nfa_ids = machine.run(XmlReader::from_str(xml)).expect("nfa run");
        nfa_ids.sort_unstable();
        nfa_ids.dedup();
        assert_eq!(nfa_ids, expected, "NFA filter disagrees\nquery: {query}\ndoc: {xml}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The headline differential test: random documents × random queries.
    #[test]
    fn twigm_matches_oracle_on_random_inputs(doc_seed in 0u64..5000, query_seed in 0u64..5000) {
        let xml = random::to_string(&RandomConfig::seeded(doc_seed));
        let mut qgen = QueryGenerator::new(query_seed, GenConfig::default());
        let query = qgen.query();
        let tree = QueryTree::build(&query).expect("generated queries are valid");
        check_pair(&xml, &tree);
    }

    /// Deep chain queries over deeply recursive documents — the regime
    /// where the compact encoding's lazy inheritance actually matters.
    #[test]
    fn deep_chains_on_recursive_documents(depth in 1usize..24, steps in 1usize..6, query_seed in 0u64..100) {
        let xml = vitex::xmlgen::recursive::uniform_nesting(depth);
        let mut qgen = QueryGenerator::new(query_seed, GenConfig {
            min_steps: steps,
            max_steps: steps,
            tags: vec!["a".into()],
            predicate_prob: 0.2,
            wildcard_prob: 0.2,
            special_result_prob: 0.0,
            ..GenConfig::default()
        });
        let query = qgen.query();
        let tree = QueryTree::build(&query).expect("valid query");
        check_pair(&xml, &tree);
    }

    /// Wide, attribute-rich documents with attribute/text-result queries.
    #[test]
    fn special_results_on_random_documents(doc_seed in 0u64..2000, query_seed in 0u64..2000) {
        let xml = random::to_string(&RandomConfig {
            attr_prob: 0.6,
            element_prob: 0.55,
            ..RandomConfig::seeded(doc_seed)
        });
        let mut qgen = QueryGenerator::new(query_seed, GenConfig {
            special_result_prob: 1.0,
            attr_condition_prob: 0.5,
            ..GenConfig::default()
        });
        let query = qgen.query();
        let tree = QueryTree::build(&query).expect("valid query");
        check_pair(&xml, &tree);
    }
}

/// A fixed corpus of tricky shapes, kept out of proptest so failures are
/// immediately reproducible by name.
#[test]
fn differential_corpus() {
    let docs = [
        "<a/>",
        "<a>t</a>",
        "<a><a><a><a>x</a></a></a></a>",
        "<a><b/><a><b/><a><b/></a></a></a>",
        "<a id=\"v0\"><a id=\"v1\"><a id=\"v0\"/></a></a>",
        "<a><b><c/></b><b><c><b><c/></b></c></b></a>",
        "<a>1<b>2</b>3<b>4</b>5</a>",
        "<a><b k=\"7\">x</b><b k=\"42\">y</b><b>z</b></a>",
        "<book><section><section><section><table><table><table><cell>A</cell>\
         </table></table><position>B</position></table></section></section>\
         <author>C</author></section></book>",
        "<a><p/><b><a><b><q/><c/></b></a><q/></b></a>",
    ];
    let queries = [
        "//a",
        "/a",
        "/a/a",
        "//a//a",
        "//a//a//a",
        "//a/b",
        "//a[b]",
        "//a[b]//a",
        "//a[@id = 'v0']",
        "//a/@id",
        "//a/text()",
        "//a[text() = '1']",
        "//b[c]",
        "//b[c[b]]",
        "//a//b[k > 10]",
        "//a/b[@k]/text()",
        "//*",
        "//*[b]/*",
        "//section[author]//table[position]//cell",
        "//a[p]/b[q]//c",
        "//@id",
        "//a[b and @id]",
    ];
    for xml in &docs {
        for query in &queries {
            let tree = QueryTree::parse(query).unwrap();
            check_pair(xml, &tree);
        }
    }
}

/// The protein workload end-to-end: TwigM vs oracle on a mid-size document
/// with the paper's Q2.
#[test]
fn protein_differential() {
    let xml = vitex::xmlgen::protein::to_string(&vitex::xmlgen::protein::ProteinConfig {
        target_bytes: 200_000,
        reference_fraction: 0.6,
        ..Default::default()
    });
    for query in [
        "//ProteinEntry[reference]/@id",
        "//ProteinEntry[reference/refinfo/authors/author]/@id",
        "//ProteinEntry[summary/length > 100]/header/uid",
        "//refinfo/@refid",
        "//ProteinEntry/protein/name",
    ] {
        let tree = QueryTree::parse(query).unwrap();
        check_pair(&xml, &tree);
    }
}

/// The auction workload with deeper, branchier queries.
#[test]
fn auction_differential() {
    let xml = vitex::xmlgen::auction::to_string(&vitex::xmlgen::auction::AuctionConfig {
        target_bytes: 120_000,
        ..Default::default()
    });
    for query in [
        "//item[payment = 'Creditcard']/@id",
        "//regions//item/description//listitem",
        "//person[profile/interest]/name",
        "//person[profile/@income > 100000]/@id",
        "//site/people/person/emailaddress/text()",
    ] {
        let tree = QueryTree::parse(query).unwrap();
        check_pair(&xml, &tree);
    }
}
