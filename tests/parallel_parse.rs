//! Differential harness for the parallel parse front-end: the chunked
//! [`ParallelReader`] must deliver an event stream *identical* to the
//! sequential [`XmlReader`] — events, levels, spans, line/column — over
//! generated documents, at chunk sizes from pathological (1 byte: every
//! boundary is a seam) to realistic (4096), and the end-to-end engine
//! output driven by either front-end must match too.
//!
//! The hand-picked seam constructs live in
//! `crates/xmlsax/tests/par_tests.rs`; this harness explores document
//! *shapes* combinatorially via the seeded xmlgen generators.

use proptest::prelude::*;

use vitex::core::{DispatchMode, PlanMode, ShardedEngine};
use vitex::xmlgen::random::{self, RandomConfig};
use vitex::xmlgen::{auction, protein, recursive};
use vitex::xmlsax::{ParallelConfig, ParallelReader, XmlReader};
use vitex::xpath::QueryTree;

/// The sweep grid of the issue: boundary-everywhere, prime-misaligned,
/// small-power-of-two, realistic.
const CHUNK_SIZES: &[usize] = &[1, 7, 64, 4096];

/// Asserts chunked == sequential for `xml` at every chunk size × 2/4
/// threads, including terminal errors (compared by display string).
fn assert_parse_identical(xml: &str, label: &str) {
    let expected = XmlReader::from_str(xml).collect_events();
    for &chunk in CHUNK_SIZES {
        for threads in [2usize, 4] {
            let cfg =
                ParallelConfig { threads, chunk_bytes: Some(chunk), ..ParallelConfig::default() };
            let got = ParallelReader::with_config(xml.as_bytes().to_vec(), cfg).collect_events();
            match (&expected, &got) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "{label}: stream diverged at chunk={chunk} threads={threads}")
                }
                (Err(a), Err(b)) => assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "{label}: error diverged at chunk={chunk} threads={threads}"
                ),
                _ => panic!(
                    "{label}: outcome diverged at chunk={chunk} threads={threads}: \
                     sequential ok={}, chunked ok={}",
                    expected.is_ok(),
                    got.is_ok()
                ),
            }
        }
    }
}

/// Runs a query set through the sharded engine fed by each front-end and
/// asserts identical matches, delivery order and stream statistics.
fn assert_engine_identical(xml: &str, queries: &[&str], label: &str) {
    let trees: Vec<QueryTree> =
        queries.iter().map(|q| QueryTree::parse(q).expect("valid query")).collect();
    let run = |par: Option<usize>| {
        let mut engine = ShardedEngine::with_options(1, DispatchMode::Indexed, PlanMode::Shared);
        for tree in &trees {
            engine.add_tree(tree).expect("compiles");
        }
        let mut streamed = Vec::new();
        let out = match par {
            None => engine.run(XmlReader::from_str(xml), |q, m| streamed.push((q.0, m.node))),
            Some(threads) => {
                let cfg =
                    ParallelConfig { threads, chunk_bytes: Some(64), ..ParallelConfig::default() };
                let reader = ParallelReader::with_config(xml.as_bytes().to_vec(), cfg);
                engine.run(reader, |q, m| streamed.push((q.0, m.node)))
            }
        }
        .expect("generated documents are well-formed");
        (streamed, out.events, out.elements, out.text_nodes)
    };
    let seq = run(None);
    for threads in [2usize, 4] {
        let par = run(Some(threads));
        assert_eq!(seq, par, "{label}: engine output diverged at {threads} parse threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random document shapes: chunked == sequential event streams.
    #[test]
    fn chunked_stream_matches_sequential_on_random_docs(seed in 0u64..5000) {
        let xml = random::to_string(&RandomConfig::seeded(seed));
        assert_parse_identical(&xml, &format!("random seed={seed}"));
    }

    /// End-to-end: engine matches + stats are front-end independent.
    #[test]
    fn engine_output_is_front_end_independent(seed in 0u64..5000) {
        let xml = random::to_string(&RandomConfig::seeded(seed));
        assert_engine_identical(
            &xml,
            &["//a//b", "//c[@id]", "//d[e]/@k", "//b/text()"],
            &format!("random seed={seed}"),
        );
    }
}

#[test]
fn chunked_stream_matches_sequential_on_auction_doc() {
    let xml = auction::to_string(&auction::AuctionConfig::sized(48 * 1024));
    assert_parse_identical(&xml, "auction");
    assert_engine_identical(
        &xml,
        &["//item/@id", "//regions//item/description//listitem"],
        "auction",
    );
}

#[test]
fn chunked_stream_matches_sequential_on_protein_doc() {
    let xml = protein::to_string(&protein::ProteinConfig::sized(48 * 1024));
    assert_parse_identical(&xml, "protein");
    assert_engine_identical(&xml, &["//ProteinEntry[reference]/@id"], "protein");
}

#[test]
fn chunked_stream_matches_sequential_on_recursive_doc() {
    let xml = recursive::to_string(&recursive::RecursiveConfig::square(7));
    assert_parse_identical(&xml, "recursive");
    assert_engine_identical(&xml, &["//section[author]//table[position]//cell"], "recursive");
}
