//! Early-emission semantics: candidates arriving at a machine-root entry
//! whose predicates are already satisfied are delivered immediately, not
//! buffered until the root element closes. These tests pin the latency,
//! the memory effect, and — crucially — that early emission changes *when*
//! results appear but never *which* results appear.

use vitex::core::{evaluate_reader, Engine, EvalMode, MachineSpec, TwigM};
use vitex::xmlsax::XmlReader;
use vitex::xpath::QueryTree;

/// Root-anchored attribute query over a long flat stream: every match must
/// fire before the next sibling opens (O(1) latency), and candidate memory
/// must stay O(1).
#[test]
fn root_anchored_attributes_stream_immediately() {
    let n = 500;
    let mut xml = String::from("<site>");
    for i in 0..n {
        xml.push_str(&format!("<person id=\"p{i}\"/>"));
    }
    xml.push_str("</site>");
    let tree = QueryTree::parse("/site/person/@id").unwrap();
    let mut engine = Engine::new(&tree).unwrap();
    let mut order = Vec::new();
    let out = engine.run(XmlReader::from_str(&xml), |m| order.push(m.node)).unwrap();
    assert_eq!(out.matches.len(), n);
    // Delivered in document order (each at its person's start tag), so the
    // callback sequence is strictly increasing…
    assert!(order.windows(2).all(|w| w[0] < w[1]));
    // …and the machine never buffered more than one candidate.
    assert!(out.stats.peak_candidates <= 1, "peak {}", out.stats.peak_candidates);
}

/// With a *pending* root predicate, candidates must wait (emitting early
/// would be unsound: the predicate may never be satisfied).
#[test]
fn pending_root_predicate_defers_emission() {
    let xml = "<site><person id=\"p\"/><license/></site>";
    let tree = QueryTree::parse("/site[license]/person/@id").unwrap();
    let mut engine = Engine::new(&tree).unwrap();
    let mut fired_after_license = false;
    let mut seen_any = false;
    let out = engine
        .run(XmlReader::from_str(xml), |m| {
            seen_any = true;
            // ids: site=0, person=1, @id=2, license=3. The match is the
            // attribute (id 2), deliverable only at site's close (the
            // machine cannot know about license earlier).
            fired_after_license = m.node == 2;
        })
        .unwrap();
    assert!(seen_any && fired_after_license);
    assert_eq!(out.matches.len(), 1);
    // And when the predicate is never satisfied: nothing.
    let xml = "<site><person id=\"p\"/></site>";
    let out = engine.run(XmlReader::from_str(xml), |_| {}).unwrap();
    assert!(out.matches.is_empty());
}

/// Early-satisfied root predicate: once the flag is set, later candidates
/// flow straight through.
#[test]
fn satisfied_root_predicate_unlocks_streaming() {
    let xml = "<site><license/><person id=\"a\"/><person id=\"b\"/></site>";
    let tree = QueryTree::parse("/site[license]/person/@id").unwrap();
    let out = evaluate_reader(XmlReader::from_str(xml), &tree).unwrap();
    assert_eq!(out.matches.len(), 2);
    // Both candidates forwarded as their person elements closed — peak 1.
    assert!(out.stats.peak_candidates <= 1, "peak {}", out.stats.peak_candidates);
}

/// Text results under a hot root stream too.
#[test]
fn text_results_stream_under_hot_root() {
    let xml = "<log>one<sep/>two<sep/>three</log>";
    let tree = QueryTree::parse("/log/text()").unwrap();
    let out = evaluate_reader(XmlReader::from_str(xml), &tree).unwrap();
    let vals: Vec<&str> = out.matches.iter().filter_map(|m| m.value.as_deref()).collect();
    assert_eq!(vals, ["one", "two", "three"]);
    assert!(out.stats.peak_candidates <= 1);
}

/// Early emission must not create duplicates when shared copies exist: the
/// chain-stealing document, root-anchored.
#[test]
fn early_emission_respects_shared_dedup() {
    let xml = "<a><p/><b><a><p/><b><q/><c/></b></a><q/></b></a>";
    for mode in [EvalMode::Compact, EvalMode::Eager] {
        let tree = QueryTree::parse("//a[p]/b[q]//c").unwrap();
        let mut engine = Engine::with_mode(&tree, mode).unwrap();
        let out = engine.run(XmlReader::from_str(xml), |_| {}).unwrap();
        assert_eq!(out.matches.len(), 1, "{mode:?}");
    }
}

/// The state dump shows live stacks mid-stream (demo introspection).
#[test]
fn dump_state_reflects_stacks() {
    let tree = QueryTree::parse("//section[author]//cell").unwrap();
    let spec = MachineSpec::compile(&tree).unwrap();
    let mut m = TwigM::from_spec(spec, EvalMode::Compact);
    let span = vitex::xmlsax::pos::ByteSpan::new(0, 1);
    let mut sink = |_: vitex::Match| {};
    m.start_element("section", 1, &[], 0, 1, span, &mut sink);
    m.start_element("cell", 2, &[], 1, 2, span, &mut sink);
    let dump = m.dump_state();
    assert!(dump.contains("//section"), "{dump}");
    assert!(dump.contains("//cell"), "{dump}");
    assert!(dump.contains("(1 entries)"), "{dump}");
    assert!(dump.contains("/author ?"), "{dump}");
    m.end_element("cell", 2, span, &mut sink);
    m.end_element("section", 1, span, &mut sink);
    assert!(m.is_quiescent());
    let dump = m.dump_state();
    assert!(dump.contains("(0 entries)"), "{dump}");
}
