//! The `vitex` command-line tool: stream XPath queries over an XML file
//! (or stdin) and print matches as they become decidable.
//!
//! ```text
//! vitex [OPTIONS] <QUERY> [FILE]
//! vitex [OPTIONS] -e <QUERY> [-e <QUERY> ...] [FILE]
//! ```
//!
//! Run `vitex --help` for the full option list (every flag carries a
//! one-line description there).
//!
//! With one query the tool runs the single-query [`Engine`]; with several
//! it runs the [`MultiEngine`] — one parse, one document driver, k TwigM
//! machines behind the interned-name dispatch index — and prefixes every
//! line with the originating query's index. `--shards N` (N > 1) routes
//! any run through the [`ShardedEngine`]: same output, same order,
//! machines partitioned across N worker threads. `--metrics`,
//! `--metrics-json` and `--trace-out` switch on the unified telemetry
//! layer: one registry and span ring covering parse → plan → dispatch →
//! shard → merge.

use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::process::ExitCode;
use std::sync::Arc;

use vitex_core::telemetry::{trace_json, Heartbeat, Telemetry};
use vitex_core::{
    DispatchMode, Engine, EvalMode, Match, MatchKind, MultiOutput, Placement, PlanMode, QueryId,
    ShardedEngine,
};
use vitex_xmlsax::{
    EventSource, ParStats, ParallelConfig, ParallelReader, ProbeHandle, XmlEvent, XmlReader,
    XmlResult,
};
use vitex_xpath::QueryTree;

struct Options {
    queries: Vec<String>,
    file: Option<String>,
    count: bool,
    values: bool,
    stats: bool,
    eager: bool,
    scan_dispatch: bool,
    no_plan_sharing: bool,
    prefix_sharing: bool,
    shards: usize,
    /// Group→shard planning policy for `--shards >= 2` runs; cost-aware
    /// by default, `--placement round-robin` is the escape hatch.
    placement: Placement,
    parse_threads: usize,
    no_overlap: bool,
    machine: bool,
    metrics: bool,
    metrics_json: Option<String>,
    trace_out: Option<String>,
    profile: bool,
    profile_json: Option<String>,
    /// Heartbeat period in seconds (0 = off).
    heartbeat: u64,
}

impl Options {
    /// Whether any telemetry export was requested (the recorder is enabled
    /// exactly then; otherwise every instrumentation point is a no-op).
    fn telemetry_requested(&self) -> bool {
        self.metrics || self.metrics_json.is_some() || self.trace_out.is_some()
    }

    /// Whether cost attribution was requested (the ledger is enabled
    /// exactly then). Profiling runs always route through the pub/sub
    /// engine — the ledger lives there — which is output-transparent:
    /// single-query output keeps the single-query format.
    fn profiling_requested(&self) -> bool {
        self.profile || self.profile_json.is_some() || self.heartbeat > 0
    }

    /// Whether the overlapped front-end runs: parse workers feed shard
    /// rings through publisher threads instead of funneling every event
    /// through the document thread's pump. On by default as soon as both
    /// `--parse-threads` and `--shards` exceed 1; `--no-overlap` keeps
    /// the pipelined front-end for comparison (identical output either
    /// way).
    fn overlapped(&self) -> bool {
        !self.no_overlap && self.parse_threads >= 2 && self.shards >= 2
    }
}

/// Every flag the CLI accepts, for `--help` and the did-you-mean
/// suggestion on unknown options.
const FLAGS: &[&str] = &[
    "-e",
    "--query",
    "--count",
    "--values",
    "--stats",
    "--eager",
    "--scan-dispatch",
    "--no-plan-sharing",
    "--prefix-sharing",
    "--shards",
    "--placement",
    "--parse-threads",
    "--no-overlap",
    "--machine",
    "--metrics",
    "--metrics-json",
    "--trace-out",
    "--profile",
    "--profile-json",
    "--heartbeat",
    "-h",
    "--help",
];

fn usage() -> ! {
    eprintln!(
        "usage: vitex [OPTIONS] <QUERY> [FILE]\n\
         \x20      vitex [OPTIONS] -e <QUERY> [-e <QUERY> ...] [FILE]\n\
         \n\
         Streams FILE (or stdin) through the TwigM machine(s) and prints every\n\
         node matching each QUERY (XPath fragment: /, //, *, [], @attr, text(),\n\
         value comparisons) as soon as it is decidable. With multiple -e\n\
         queries the document is scanned once (pub/sub mode) and every output\n\
         line is prefixed with the query index.\n\
         \n\
         options:\n\
         \x20 -e, --query <Q>        add a query (repeatable; pub/sub mode when more than one)\n\
         \x20 --count                print only the number of matches (per query in pub/sub mode)\n\
         \x20 --values               print attribute values / text content instead of byte spans\n\
         \x20 --stats                print stream + machine + plan (+ parallel-parse) statistics on stderr\n\
         \x20 --eager                eager (ablation) candidate propagation; single-query sequential runs only\n\
         \x20 --scan-dispatch        multi-query: poke every machine per event instead of using the dispatch index\n\
         \x20 --no-plan-sharing      multi-query: one machine per registration (no dedup, no shared-prefix trie)\n\
         \x20 --prefix-sharing       multi-query: advance shared main-path prefixes once per event (same output)\n\
         \x20 --shards <N>           run plan groups on N worker threads; output identical to N=1 (default 1)\n\
         \x20 --placement <P>        group->shard planning for --shards >= 2: 'cost' (default; LPT over\n\
         \x20                        ledger-refined estimates, repartitions between documents) or\n\
         \x20                        'round-robin' (skew-oblivious baseline); output identical either way\n\
         \x20 --parse-threads <N>    parse the document itself on N threads; 0 or 1 = sequential (default 1)\n\
         \x20 --no-overlap           keep the pipelined front-end even when --parse-threads and --shards\n\
         \x20                        both exceed 1 (default: overlapped parse->match; identical output)\n\
         \x20 --machine              dump the compiled TwigM machine(s) and exit without reading a document\n\
         \x20 --metrics              print a human-readable telemetry summary on stderr after the run\n\
         \x20 --metrics-json <PATH>  write a metrics snapshot (vitex.metrics.v1 JSON) to PATH\n\
         \x20 --trace-out <PATH>     write stage spans as Chrome trace-event JSON (Perfetto-loadable) to PATH\n\
         \x20 --profile              print a per-query cost-attribution table (top 10 by work) on stderr\n\
         \x20 --profile-json <PATH>  write the cost ledger (vitex.profile.v1 JSON) to PATH\n\
         \x20 --heartbeat <SECS>     print a live heartbeat (docs/sec, ring occupancy, hot groups)\n\
         \x20                        on stderr every SECS seconds while the run is in flight\n\
         \x20 -h, --help             show this help and exit\n\
         \n\
         examples:\n\
         \x20 vitex '//ProteinEntry[reference]/@id' protein.xml\n\
         \x20 vitex --count '//section[author]//table[position]//cell' book.xml\n\
         \x20 vitex -e '//quote[symbol = \"ACME\"]/price' -e '//quote/@seq' feed.xml\n\
         \x20 vitex --shards 4 --metrics-json m.json --trace-out t.json -e '//a' -e '//b' doc.xml"
    );
    std::process::exit(2)
}

/// Levenshtein edit distance, for the unknown-option suggestion.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Rejects an unrecognized `-`/`--` argument, suggesting the closest known
/// flag when one is plausibly near.
fn unknown_flag(arg: &str) -> ! {
    let nearest = FLAGS
        .iter()
        .map(|f| (edit_distance(arg, f), *f))
        .min()
        .filter(|(d, _)| *d <= 3)
        .map(|(_, f)| f);
    match nearest {
        Some(f) => eprintln!("vitex: unknown option '{arg}' (did you mean '{f}'?)"),
        None => eprintln!("vitex: unknown option '{arg}'"),
    }
    eprintln!("run 'vitex --help' for the option list");
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut positional_query = None;
    let mut file = None;
    let mut opts = Options {
        queries: Vec::new(),
        file: None,
        count: false,
        values: false,
        stats: false,
        eager: false,
        scan_dispatch: false,
        no_plan_sharing: false,
        prefix_sharing: false,
        shards: 1,
        placement: Placement::CostAware,
        parse_threads: 1,
        no_overlap: false,
        machine: false,
        metrics: false,
        metrics_json: None,
        trace_out: None,
        profile: false,
        profile_json: None,
        heartbeat: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-e" | "--query" => match args.next() {
                Some(q) => opts.queries.push(q),
                None => usage(),
            },
            "--count" => opts.count = true,
            "--values" => opts.values = true,
            "--stats" => opts.stats = true,
            "--eager" => opts.eager = true,
            "--scan-dispatch" => opts.scan_dispatch = true,
            "--no-plan-sharing" => opts.no_plan_sharing = true,
            "--prefix-sharing" => opts.prefix_sharing = true,
            "--shards" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.shards = n,
                _ => usage(),
            },
            "--placement" => match args.next().as_deref().and_then(Placement::parse) {
                Some(p) => opts.placement = p,
                None => usage(),
            },
            "--parse-threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => opts.parse_threads = n,
                None => usage(),
            },
            "--no-overlap" => opts.no_overlap = true,
            "--machine" => opts.machine = true,
            "--metrics" => opts.metrics = true,
            "--metrics-json" => match args.next() {
                Some(p) => opts.metrics_json = Some(p),
                None => usage(),
            },
            "--trace-out" => match args.next() {
                Some(p) => opts.trace_out = Some(p),
                None => usage(),
            },
            "--profile" => opts.profile = true,
            "--profile-json" => match args.next() {
                Some(p) => opts.profile_json = Some(p),
                None => usage(),
            },
            "--heartbeat" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => opts.heartbeat = n,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            // A lone "-" stays positional (stdin convention); anything else
            // starting with '-' is a misspelled flag, not a query or file.
            s if s.len() > 1 && s.starts_with('-') => unknown_flag(s),
            _ if positional_query.is_none() && opts.queries.is_empty() => {
                positional_query = Some(arg)
            }
            _ if file.is_none() => file = Some(arg),
            _ => usage(),
        }
    }
    if let Some(q) = positional_query {
        opts.queries.insert(0, q);
    }
    if opts.queries.is_empty() {
        usage();
    }
    opts.file = file;
    opts
}

fn describe(m: &Match, values: bool) -> String {
    if values {
        match m.kind {
            MatchKind::Element => {
                format!("<{}> bytes {}", m.name.as_deref().unwrap_or("?"), m.span)
            }
            MatchKind::Attribute | MatchKind::Text => {
                m.value.as_deref().unwrap_or_default().to_owned()
            }
        }
    } else {
        m.to_string()
    }
}

fn parse_trees(queries: &[String]) -> Result<Vec<QueryTree>, ExitCode> {
    queries
        .iter()
        .map(|q| {
            QueryTree::parse(q).map_err(|e| {
                eprintln!("vitex: {q}: {e}");
                ExitCode::from(2)
            })
        })
        .collect()
}

fn dump_machines(trees: &[QueryTree]) -> ExitCode {
    for tree in trees {
        let spec = match vitex_core::MachineSpec::compile(tree) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("vitex: {e}");
                return ExitCode::from(2);
            }
        };
        println!("query: {}", spec.query);
        println!("query tree:\n{tree}");
        println!("machine nodes: {}", spec.len());
        for (i, n) in spec.nodes.iter().enumerate() {
            println!(
                "  [{i}] {}{} parent={:?} main={} root={} result={} flags={} attr_preds={} \
                 text_preds={} attr_result={}",
                if n.axis == vitex_xpath::Axis::Descendant { "//" } else { "/" },
                n.name.as_deref().unwrap_or("*"),
                n.parent,
                n.is_main,
                n.is_root,
                n.is_result,
                n.nflags,
                n.attr_preds.len(),
                n.text_preds.len(),
                n.attr_result.is_some(),
            );
        }
    }
    ExitCode::SUCCESS
}

fn open_source(file: &Option<String>) -> Result<Box<dyn Read>, ExitCode> {
    match file {
        Some(path) => match File::open(path) {
            Ok(f) => Ok(Box::new(BufReader::new(f))),
            Err(e) => {
                eprintln!("vitex: {path}: {e}");
                Err(ExitCode::from(2))
            }
        },
        None => Ok(Box::new(io::stdin().lock())),
    }
}

/// The parse front-end: sequential streaming reader, or the speculative
/// chunked parallel reader (`--parse-threads N`, N > 1). Both deliver the
/// identical event stream, so the engines don't care which they get.
enum AnyReader {
    Seq(Box<XmlReader<Box<dyn Read>>>),
    Par(Box<ParallelReader>),
}

impl EventSource for AnyReader {
    fn next_event(&mut self) -> XmlResult<XmlEvent> {
        match self {
            AnyReader::Seq(r) => r.next_event(),
            AnyReader::Par(r) => r.next_event(),
        }
    }
}

/// Builds the event source per `--parse-threads`. The parallel front-end
/// needs the whole document in memory (it splits it into chunks), so N > 1
/// slurps FILE / stdin first; 0 and 1 keep the streaming reader. An
/// enabled telemetry handle doubles as the front-end's [`ParseProbe`]
/// (scanner byte counts, chunk spans, stitch timings).
fn open_reader(opts: &Options, telemetry: &Telemetry) -> Result<AnyReader, ExitCode> {
    let probe: Option<ProbeHandle> =
        telemetry.is_enabled().then(|| Arc::new(telemetry.clone()) as ProbeHandle);
    if opts.parse_threads <= 1 {
        let source = open_source(&opts.file)?;
        let mut reader = XmlReader::new(source);
        if let Some(p) = probe {
            reader.set_probe(p);
        }
        return Ok(AnyReader::Seq(Box::new(reader)));
    }
    let bytes = slurp_bytes(&opts.file)?;
    let config = ParallelConfig { threads: opts.parse_threads, ..ParallelConfig::default() };
    Ok(AnyReader::Par(Box::new(ParallelReader::with_config_probe(bytes, config, probe))))
}

/// Reads FILE (or stdin) fully into memory — the parallel and overlapped
/// front-ends split the raw bytes into chunks.
fn slurp_bytes(file: &Option<String>) -> Result<Vec<u8>, ExitCode> {
    let mut source = open_source(file)?;
    let mut bytes = Vec::new();
    if let Err(e) = source.read_to_end(&mut bytes) {
        eprintln!("vitex: {}: {e}", file.as_deref().unwrap_or("<stdin>"));
        return Err(ExitCode::from(2));
    }
    Ok(bytes)
}

/// The `--stats` parallel front-end line, shared by the pipelined and
/// overlapped paths (the sequential reader has no speculation to report).
fn print_par_line(s: &ParStats) {
    eprintln!(
        "par:        chunks={} misspeculated={} reparsed={} sequential_fallback={}",
        s.chunks, s.misspeculated, s.reparsed, s.sequential_fallback
    );
}

/// Post-run front-end accounting: folds the parallel reader's statistics
/// into the telemetry registry and, under `--stats`, surfaces them on
/// stderr.
fn finish_parse_stats(reader: &AnyReader, opts: &Options, telemetry: &Telemetry) {
    if let AnyReader::Par(r) = reader {
        let s = r.stats();
        telemetry.fold_par(&s);
        if opts.stats {
            print_par_line(&s);
        }
    }
}

/// Detects two export flags aimed at the same file. Each export is a
/// whole-file write, so a shared path would silently resolve to
/// last-writer-wins clobbering; `main` turns this into an exit-2
/// diagnostic instead. Paths are compared as given — spelling the same
/// file two ways is on the user — which keeps the check dependency-free
/// and side-effect-free.
fn duplicate_export_path(opts: &Options) -> Option<(&'static str, &'static str, &str)> {
    let exports: [(&'static str, Option<&String>); 3] = [
        ("--metrics-json", opts.metrics_json.as_ref()),
        ("--profile-json", opts.profile_json.as_ref()),
        ("--trace-out", opts.trace_out.as_ref()),
    ];
    for (i, &(flag_a, path_a)) in exports.iter().enumerate() {
        for &(flag_b, path_b) in &exports[i + 1..] {
            if let (Some(a), Some(b)) = (path_a, path_b) {
                if a == b {
                    return Some((flag_a, flag_b, a));
                }
            }
        }
    }
    None
}

/// Writes one export artifact, mapping any I/O failure to the clean
/// usage-error exit every exporting flag shares (`--metrics-json`,
/// `--trace-out`, `--profile-json`): the path and OS error on stderr,
/// exit code 2.
fn write_export(path: &str, contents: &str) -> Result<(), ExitCode> {
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("vitex: {path}: {e}");
        ExitCode::from(2)
    })
}

/// Writes the requested telemetry exports (`--metrics`, `--metrics-json`,
/// `--trace-out`). A no-op when telemetry is disabled.
fn export_telemetry(opts: &Options, telemetry: &Telemetry) -> Result<(), ExitCode> {
    let Some(snapshot) = telemetry.snapshot() else { return Ok(()) };
    if opts.metrics {
        eprint!("{}", snapshot.human_summary());
    }
    if let Some(path) = &opts.metrics_json {
        write_export(path, &snapshot.to_json())?;
    }
    if let Some(path) = &opts.trace_out {
        let spans = telemetry.spans().unwrap_or_default();
        write_export(path, &trace_json(&spans))?;
    }
    Ok(())
}

/// Emits the requested profiling outputs (`--profile` table on stderr,
/// `--profile-json` ledger export). A no-op when profiling is disabled.
fn export_profile(opts: &Options, engine: &ShardedEngine) -> Result<(), ExitCode> {
    let Some(snapshot) = engine.group_costs() else { return Ok(()) };
    if opts.profile {
        eprint!("{}", snapshot.table(10));
    }
    if let Some(path) = &opts.profile_json {
        write_export(path, &snapshot.to_json())?;
    }
    Ok(())
}

/// Single-query mode: the classic engine, optionally in eager mode.
fn run_single(opts: &Options, tree: &QueryTree, telemetry: &Telemetry) -> ExitCode {
    let mode = if opts.eager { EvalMode::Eager } else { EvalMode::Compact };
    let mut engine = match Engine::with_mode(tree, mode) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("vitex: {e}");
            return ExitCode::from(2);
        }
    };
    engine.set_telemetry(telemetry.clone());
    let mut reader = match open_reader(opts, telemetry) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut count = 0u64;
    let result = engine.run(&mut reader, |m| {
        count += 1;
        if !opts.count {
            let _ = writeln!(out, "{}", describe(&m, opts.values));
        }
    });
    match result {
        Ok(output) => {
            if opts.count {
                println!("{count}");
            }
            if opts.stats {
                eprintln!("elements:   {}", output.elements);
                eprintln!("text nodes: {}", output.text_nodes);
                eprintln!("events:     {}", output.events);
                eprintln!("machine:    {}", output.stats.summary());
            }
            finish_parse_stats(&reader, opts, telemetry);
            if let Err(code) = export_telemetry(opts, telemetry) {
                return code;
            }
            if count > 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("vitex: {e}");
            ExitCode::from(2)
        }
    }
}

/// Pub/sub mode: all queries over one scan via the (optionally sharded)
/// multi-engine. At `--shards 1` — the default — the sharded engine *is*
/// the single-threaded `MultiEngine::run` path, bit for bit.
fn run_multi(opts: &Options, trees: &[QueryTree], telemetry: &Telemetry) -> ExitCode {
    let dispatch = if opts.scan_dispatch { DispatchMode::Scan } else { DispatchMode::Indexed };
    let plan = if opts.no_plan_sharing {
        PlanMode::Unshared
    } else if opts.prefix_sharing {
        PlanMode::PrefixShared
    } else {
        PlanMode::Shared
    };
    let mut multi = ShardedEngine::with_options(opts.shards, dispatch, plan);
    multi.set_placement(opts.placement);
    multi.set_telemetry(telemetry.clone());
    multi.set_profiling(opts.profiling_requested());
    for tree in trees {
        if let Err(e) = multi.add_tree(tree) {
            eprintln!("vitex: {e}");
            return ExitCode::from(2);
        }
    }
    let stdout = io::stdout();
    let mut out = stdout.lock();
    // A single query sharded across threads keeps the single-query output
    // format: no `[i]` prefixes, bare --count total. `--shards N` must be
    // a pure execution knob, never a format change.
    let prefixed = trees.len() > 1;
    let mut counts = vec![0u64; trees.len()];
    let mut on_match = |qid: QueryId, m: Match| {
        counts[qid.0] += 1;
        if !opts.count {
            let line = describe(&m, opts.values);
            let _ = if prefixed {
                writeln!(out, "[{}] {line}", qid.0)
            } else {
                writeln!(out, "{line}")
            };
        }
    };
    // The parallel-parse statistics of whichever front-end ran, for the
    // `--stats` par line (`None` for the sequential reader).
    let mut par: Option<ParStats> = None;
    // The live heartbeat reporter spans exactly the run below; dropping
    // it joins the reporter thread before any post-run export prints.
    let heartbeat = (opts.heartbeat > 0).then(|| {
        Heartbeat::start(
            std::time::Duration::from_secs(opts.heartbeat),
            multi.cost_ledger(),
            telemetry.clone(),
        )
    });
    let result: Result<MultiOutput, _> = if opts.overlapped() {
        // Overlapped front-end: parse workers and publisher threads feed
        // the shard rings; the call folds its own telemetry.
        match slurp_bytes(&opts.file) {
            Ok(bytes) => {
                let config =
                    ParallelConfig { threads: opts.parse_threads, ..ParallelConfig::default() };
                multi.run_overlapped(bytes, config, &mut on_match).map(|(output, stats)| {
                    par = Some(stats);
                    output
                })
            }
            Err(code) => return code,
        }
    } else {
        match open_reader(opts, telemetry) {
            Ok(mut reader) => {
                let result = multi.run(&mut reader, &mut on_match);
                if result.is_ok() {
                    if let AnyReader::Par(r) = &reader {
                        let s = r.stats();
                        telemetry.fold_par(&s);
                        par = Some(s);
                    }
                }
                result
            }
            Err(code) => return code,
        }
    };
    drop(heartbeat);
    match result {
        Ok(output) => {
            if opts.count {
                for (i, c) in counts.iter().enumerate() {
                    if prefixed {
                        println!("[{i}] {c}");
                    } else {
                        println!("{c}");
                    }
                }
            }
            if opts.stats {
                eprintln!("elements:   {}", output.elements);
                eprintln!("text nodes: {}", output.text_nodes);
                eprintln!("events:     {}", output.events);
                // The plan line is pub/sub-mode diagnostics; a single
                // query keeps the single-query stats shape.
                if prefixed {
                    eprintln!("plan:       {}", output.plan.summary());
                }
                for (i, s) in output.stats.iter().enumerate() {
                    if prefixed {
                        eprintln!("machine[{i}]: {}", s.summary());
                    } else {
                        eprintln!("machine:    {}", s.summary());
                    }
                }
                if let Some(s) = &par {
                    print_par_line(s);
                }
            }
            if let Err(code) = export_telemetry(opts, telemetry) {
                return code;
            }
            if let Err(code) = export_profile(opts, &multi) {
                return code;
            }
            if counts.iter().any(|&c| c > 0) {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("vitex: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    if opts.no_plan_sharing && opts.prefix_sharing {
        eprintln!("vitex: --no-plan-sharing and --prefix-sharing are mutually exclusive");
        return ExitCode::from(2);
    }
    if let Some((flag_a, flag_b, path)) = duplicate_export_path(&opts) {
        eprintln!(
            "vitex: {flag_a} and {flag_b} both write to '{path}'; give each export its own file"
        );
        return ExitCode::from(2);
    }
    // The eager ablation mode is a single-threaded diagnostic; like
    // `--shards`, the parallel front-end doesn't combine with it.
    if opts.eager && opts.parse_threads > 1 {
        eprintln!("vitex: --eager applies to sequential (--parse-threads 1) runs only");
        return ExitCode::from(2);
    }
    let trees = match parse_trees(&opts.queries) {
        Ok(t) => t,
        Err(code) => return code,
    };
    if opts.machine {
        return dump_machines(&trees);
    }
    let telemetry =
        if opts.telemetry_requested() { Telemetry::enabled() } else { Telemetry::disabled() };
    // `--prefix-sharing` is a plan-mode knob of the multi-query engine;
    // like `--shards`, it must never change the single-query output
    // format, so a single query routes through the (unprefixed) pub/sub
    // path. Profiling lives on the pub/sub engine too — also
    // output-transparent for a single query.
    if trees.len() == 1 && opts.shards == 1 && !opts.prefix_sharing && !opts.profiling_requested() {
        run_single(&opts, &trees[0], &telemetry)
    } else {
        if opts.eager {
            eprintln!("vitex: --eager applies to single-query single-shard runs only");
            return ExitCode::from(2);
        }
        run_multi(&opts, &trees, &telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_options() -> Options {
        Options {
            queries: vec!["//a".into()],
            file: None,
            count: false,
            values: false,
            stats: false,
            eager: false,
            scan_dispatch: false,
            no_plan_sharing: false,
            prefix_sharing: false,
            shards: 1,
            placement: Placement::CostAware,
            parse_threads: 1,
            no_overlap: false,
            machine: false,
            metrics: false,
            metrics_json: None,
            trace_out: None,
            profile: false,
            profile_json: None,
            heartbeat: 0,
        }
    }

    #[test]
    fn duplicate_export_paths_are_detected_pairwise() {
        let mut opts = base_options();
        assert!(duplicate_export_path(&opts).is_none(), "no exports, no conflict");
        opts.metrics_json = Some("out.json".into());
        opts.trace_out = Some("trace.json".into());
        assert!(duplicate_export_path(&opts).is_none(), "distinct paths are fine");
        opts.profile_json = Some("out.json".into());
        let (a, b, path) = duplicate_export_path(&opts).expect("clash detected");
        assert_eq!((a, b, path), ("--metrics-json", "--profile-json", "out.json"));
        opts.metrics_json = None;
        opts.trace_out = Some("out.json".into());
        let (a, b, _) = duplicate_export_path(&opts).expect("clash detected");
        assert_eq!((a, b), ("--profile-json", "--trace-out"));
    }

    #[test]
    fn write_export_maps_unwritable_path_to_usage_error() {
        // A path under a directory that cannot exist: the helper must
        // surface the failure as the clean exit-2 result every exporting
        // flag shares, not a panic.
        let result = write_export("/nonexistent-vitex-dir/sub/out.json", "{}");
        assert!(result.is_err());
    }

    #[test]
    fn write_export_writes_the_contents() {
        let path = std::env::temp_dir().join("vitex-write-export-test.json");
        let path = path.to_str().expect("utf-8 temp path").to_string();
        assert!(write_export(&path, "{\"ok\":true}").is_ok());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}");
        let _ = std::fs::remove_file(&path);
    }
}
