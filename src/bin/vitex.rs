//! The `vitex` command-line tool: stream XPath queries over an XML file
//! (or stdin) and print matches as they become decidable.
//!
//! ```text
//! vitex [OPTIONS] <QUERY> [FILE]
//! vitex [OPTIONS] -e <QUERY> [-e <QUERY> ...] [FILE]
//!
//! Options:
//!   -e, --query <Q>     add a query (repeatable; pub/sub mode when > 1)
//!   --count             print only the number of matches
//!   --values            print attribute values / text content instead of spans
//!   --stats             print stream + machine + plan statistics to stderr
//!   --eager             use the eager (ablation) candidate propagation mode
//!   --scan-dispatch     multi-query: poke every machine per event (no index)
//!   --no-plan-sharing   multi-query: one machine per query (no dedup/trie plan)
//!   --prefix-sharing    multi-query: share runtime state along common main-path
//!                       prefixes (YFilter-style; same output, less per-event work)
//!   --shards <N>        run plan groups on N worker threads (default 1)
//!   --machine           dump the compiled TwigM machine(s) and exit
//! ```
//!
//! With one query the tool runs the single-query [`Engine`]; with several
//! it runs the [`MultiEngine`] — one parse, one document driver, k TwigM
//! machines behind the interned-name dispatch index — and prefixes every
//! line with the originating query's index. `--shards N` (N > 1) routes
//! any run through the [`ShardedEngine`]: same output, same order,
//! machines partitioned across N worker threads.

use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::process::ExitCode;

use vitex_core::{
    DispatchMode, Engine, EvalMode, Match, MatchKind, MultiOutput, PlanMode, ShardedEngine,
};
use vitex_xmlsax::{EventSource, ParallelReader, XmlEvent, XmlReader, XmlResult};
use vitex_xpath::QueryTree;

struct Options {
    queries: Vec<String>,
    file: Option<String>,
    count: bool,
    values: bool,
    stats: bool,
    eager: bool,
    scan_dispatch: bool,
    no_plan_sharing: bool,
    prefix_sharing: bool,
    shards: usize,
    parse_threads: usize,
    machine: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: vitex [--count] [--values] [--stats] [--eager] [--scan-dispatch]\n\
         \x20            [--no-plan-sharing] [--prefix-sharing] [--shards N]\n\
         \x20            [--parse-threads N] [--machine] <QUERY> [FILE]\n\
         \x20      vitex [OPTIONS] -e <QUERY> [-e <QUERY> ...] [FILE]\n\
         \n\
         Streams FILE (or stdin) through the TwigM machine(s) and prints every\n\
         node matching each QUERY (XPath fragment: /, //, *, [], @attr, text(),\n\
         value comparisons) as soon as it is decidable. With multiple -e\n\
         queries the document is scanned once (pub/sub mode): structurally\n\
         identical queries share one machine (disable with --no-plan-sharing)\n\
         and every line is prefixed with the query index. --shards N runs the\n\
         machines on N worker threads with identical, deterministic output.\n\
         --parse-threads N parses the document itself on N threads (speculative\n\
         chunked front-end; 0 or 1 = sequential, output always identical).\n\
         \n\
         examples:\n\
         \x20 vitex '//ProteinEntry[reference]/@id' protein.xml\n\
         \x20 vitex --count '//section[author]//table[position]//cell' book.xml\n\
         \x20 vitex -e '//quote[symbol = \"ACME\"]/price' -e '//quote/@seq' feed.xml"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut positional_query = None;
    let mut file = None;
    let mut opts = Options {
        queries: Vec::new(),
        file: None,
        count: false,
        values: false,
        stats: false,
        eager: false,
        scan_dispatch: false,
        no_plan_sharing: false,
        prefix_sharing: false,
        shards: 1,
        parse_threads: 1,
        machine: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-e" | "--query" => match args.next() {
                Some(q) => opts.queries.push(q),
                None => usage(),
            },
            "--count" => opts.count = true,
            "--values" => opts.values = true,
            "--stats" => opts.stats = true,
            "--eager" => opts.eager = true,
            "--scan-dispatch" => opts.scan_dispatch = true,
            "--no-plan-sharing" => opts.no_plan_sharing = true,
            "--prefix-sharing" => opts.prefix_sharing = true,
            "--shards" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.shards = n,
                _ => usage(),
            },
            "--parse-threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => opts.parse_threads = n,
                None => usage(),
            },
            "--machine" => opts.machine = true,
            "--help" | "-h" => usage(),
            _ if positional_query.is_none() && opts.queries.is_empty() => {
                positional_query = Some(arg)
            }
            _ if file.is_none() => file = Some(arg),
            _ => usage(),
        }
    }
    if let Some(q) = positional_query {
        opts.queries.insert(0, q);
    }
    if opts.queries.is_empty() {
        usage();
    }
    opts.file = file;
    opts
}

fn describe(m: &Match, values: bool) -> String {
    if values {
        match m.kind {
            MatchKind::Element => {
                format!("<{}> bytes {}", m.name.as_deref().unwrap_or("?"), m.span)
            }
            MatchKind::Attribute | MatchKind::Text => {
                m.value.as_deref().unwrap_or_default().to_owned()
            }
        }
    } else {
        m.to_string()
    }
}

fn parse_trees(queries: &[String]) -> Result<Vec<QueryTree>, ExitCode> {
    queries
        .iter()
        .map(|q| {
            QueryTree::parse(q).map_err(|e| {
                eprintln!("vitex: {q}: {e}");
                ExitCode::from(2)
            })
        })
        .collect()
}

fn dump_machines(trees: &[QueryTree]) -> ExitCode {
    for tree in trees {
        let spec = match vitex_core::MachineSpec::compile(tree) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("vitex: {e}");
                return ExitCode::from(2);
            }
        };
        println!("query: {}", spec.query);
        println!("query tree:\n{tree}");
        println!("machine nodes: {}", spec.len());
        for (i, n) in spec.nodes.iter().enumerate() {
            println!(
                "  [{i}] {}{} parent={:?} main={} root={} result={} flags={} attr_preds={} \
                 text_preds={} attr_result={}",
                if n.axis == vitex_xpath::Axis::Descendant { "//" } else { "/" },
                n.name.as_deref().unwrap_or("*"),
                n.parent,
                n.is_main,
                n.is_root,
                n.is_result,
                n.nflags,
                n.attr_preds.len(),
                n.text_preds.len(),
                n.attr_result.is_some(),
            );
        }
    }
    ExitCode::SUCCESS
}

fn open_source(file: &Option<String>) -> Result<Box<dyn Read>, ExitCode> {
    match file {
        Some(path) => match File::open(path) {
            Ok(f) => Ok(Box::new(BufReader::new(f))),
            Err(e) => {
                eprintln!("vitex: {path}: {e}");
                Err(ExitCode::from(2))
            }
        },
        None => Ok(Box::new(io::stdin().lock())),
    }
}

/// The parse front-end: sequential streaming reader, or the speculative
/// chunked parallel reader (`--parse-threads N`, N > 1). Both deliver the
/// identical event stream, so the engines don't care which they get.
enum AnyReader {
    Seq(Box<XmlReader<Box<dyn Read>>>),
    Par(Box<ParallelReader>),
}

impl EventSource for AnyReader {
    fn next_event(&mut self) -> XmlResult<XmlEvent> {
        match self {
            AnyReader::Seq(r) => r.next_event(),
            AnyReader::Par(r) => r.next_event(),
        }
    }
}

/// Builds the event source per `--parse-threads`. The parallel front-end
/// needs the whole document in memory (it splits it into chunks), so N > 1
/// slurps FILE / stdin first; 0 and 1 keep the streaming reader.
fn open_reader(opts: &Options) -> Result<AnyReader, ExitCode> {
    let mut source = open_source(&opts.file)?;
    if opts.parse_threads <= 1 {
        return Ok(AnyReader::Seq(Box::new(XmlReader::new(source))));
    }
    let mut bytes = Vec::new();
    if let Err(e) = source.read_to_end(&mut bytes) {
        eprintln!("vitex: {}: {e}", opts.file.as_deref().unwrap_or("<stdin>"));
        return Err(ExitCode::from(2));
    }
    Ok(AnyReader::Par(Box::new(ParallelReader::from_bytes(bytes, opts.parse_threads))))
}

/// Single-query mode: the classic engine, optionally in eager mode.
fn run_single(opts: &Options, tree: &QueryTree) -> ExitCode {
    let mode = if opts.eager { EvalMode::Eager } else { EvalMode::Compact };
    let mut engine = match Engine::with_mode(tree, mode) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("vitex: {e}");
            return ExitCode::from(2);
        }
    };
    let reader = match open_reader(opts) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut count = 0u64;
    let result = engine.run(reader, |m| {
        count += 1;
        if !opts.count {
            let _ = writeln!(out, "{}", describe(&m, opts.values));
        }
    });
    match result {
        Ok(output) => {
            if opts.count {
                println!("{count}");
            }
            if opts.stats {
                eprintln!("elements:   {}", output.elements);
                eprintln!("text nodes: {}", output.text_nodes);
                eprintln!("events:     {}", output.events);
                eprintln!("machine:    {}", output.stats.summary());
            }
            if count > 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("vitex: {e}");
            ExitCode::from(2)
        }
    }
}

/// Pub/sub mode: all queries over one scan via the (optionally sharded)
/// multi-engine. At `--shards 1` — the default — the sharded engine *is*
/// the single-threaded `MultiEngine::run` path, bit for bit.
fn run_multi(opts: &Options, trees: &[QueryTree]) -> ExitCode {
    let dispatch = if opts.scan_dispatch { DispatchMode::Scan } else { DispatchMode::Indexed };
    let plan = if opts.no_plan_sharing {
        PlanMode::Unshared
    } else if opts.prefix_sharing {
        PlanMode::PrefixShared
    } else {
        PlanMode::Shared
    };
    let mut multi = ShardedEngine::with_options(opts.shards, dispatch, plan);
    for tree in trees {
        if let Err(e) = multi.add_tree(tree) {
            eprintln!("vitex: {e}");
            return ExitCode::from(2);
        }
    }
    let reader = match open_reader(opts) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let stdout = io::stdout();
    let mut out = stdout.lock();
    // A single query sharded across threads keeps the single-query output
    // format: no `[i]` prefixes, bare --count total. `--shards N` must be
    // a pure execution knob, never a format change.
    let prefixed = trees.len() > 1;
    let mut counts = vec![0u64; trees.len()];
    let result: Result<MultiOutput, _> = multi.run(reader, |qid, m| {
        counts[qid.0] += 1;
        if !opts.count {
            let line = describe(&m, opts.values);
            let _ = if prefixed {
                writeln!(out, "[{}] {line}", qid.0)
            } else {
                writeln!(out, "{line}")
            };
        }
    });
    match result {
        Ok(output) => {
            if opts.count {
                for (i, c) in counts.iter().enumerate() {
                    if prefixed {
                        println!("[{i}] {c}");
                    } else {
                        println!("{c}");
                    }
                }
            }
            if opts.stats {
                eprintln!("elements:   {}", output.elements);
                eprintln!("text nodes: {}", output.text_nodes);
                eprintln!("events:     {}", output.events);
                // The plan line is pub/sub-mode diagnostics; a single
                // query keeps the single-query stats shape.
                if prefixed {
                    eprintln!("plan:       {}", output.plan.summary());
                }
                for (i, s) in output.stats.iter().enumerate() {
                    if prefixed {
                        eprintln!("machine[{i}]: {}", s.summary());
                    } else {
                        eprintln!("machine:    {}", s.summary());
                    }
                }
            }
            if counts.iter().any(|&c| c > 0) {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("vitex: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    if opts.no_plan_sharing && opts.prefix_sharing {
        eprintln!("vitex: --no-plan-sharing and --prefix-sharing are mutually exclusive");
        return ExitCode::from(2);
    }
    // The eager ablation mode is a single-threaded diagnostic; like
    // `--shards`, the parallel front-end doesn't combine with it.
    if opts.eager && opts.parse_threads > 1 {
        eprintln!("vitex: --eager applies to sequential (--parse-threads 1) runs only");
        return ExitCode::from(2);
    }
    let trees = match parse_trees(&opts.queries) {
        Ok(t) => t,
        Err(code) => return code,
    };
    if opts.machine {
        return dump_machines(&trees);
    }
    // `--prefix-sharing` is a plan-mode knob of the multi-query engine;
    // like `--shards`, it must never change the single-query output
    // format, so a single query routes through the (unprefixed) pub/sub
    // path.
    if trees.len() == 1 && opts.shards == 1 && !opts.prefix_sharing {
        run_single(&opts, &trees[0])
    } else {
        if opts.eager {
            eprintln!("vitex: --eager applies to single-query single-shard runs only");
            return ExitCode::from(2);
        }
        run_multi(&opts, &trees)
    }
}
