//! The `vitex` command-line tool: stream an XPath query over an XML file
//! (or stdin) and print matches as they become decidable.
//!
//! ```text
//! vitex [OPTIONS] <QUERY> [FILE]
//!
//! Options:
//!   --count           print only the number of matches
//!   --values          print attribute values / text content instead of spans
//!   --stats           print machine statistics to stderr after the run
//!   --eager           use the eager (ablation) candidate propagation mode
//!   --machine         dump the compiled TwigM machine and exit
//! ```

use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::process::ExitCode;

use vitex_core::{Engine, EvalMode, Match, MatchKind};
use vitex_xmlsax::XmlReader;
use vitex_xpath::QueryTree;

struct Options {
    query: String,
    file: Option<String>,
    count: bool,
    values: bool,
    stats: bool,
    eager: bool,
    machine: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: vitex [--count] [--values] [--stats] [--eager] [--machine] <QUERY> [FILE]\n\
         \n\
         Streams FILE (or stdin) through the TwigM machine and prints every\n\
         node matching QUERY (XPath fragment: /, //, *, [], @attr, text(),\n\
         value comparisons) as soon as it is decidable.\n\
         \n\
         examples:\n\
         \x20 vitex '//ProteinEntry[reference]/@id' protein.xml\n\
         \x20 vitex --count '//section[author]//table[position]//cell' book.xml"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut query = None;
    let mut file = None;
    let mut opts = Options {
        query: String::new(),
        file: None,
        count: false,
        values: false,
        stats: false,
        eager: false,
        machine: false,
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--count" => opts.count = true,
            "--values" => opts.values = true,
            "--stats" => opts.stats = true,
            "--eager" => opts.eager = true,
            "--machine" => opts.machine = true,
            "--help" | "-h" => usage(),
            _ if query.is_none() => query = Some(arg),
            _ if file.is_none() => file = Some(arg),
            _ => usage(),
        }
    }
    opts.query = match query {
        Some(q) => q,
        None => usage(),
    };
    opts.file = file;
    opts
}

fn describe(m: &Match, values: bool) -> String {
    if values {
        match m.kind {
            MatchKind::Element => format!("<{}> bytes {}", m.name.as_deref().unwrap_or("?"), m.span),
            MatchKind::Attribute | MatchKind::Text => {
                m.value.clone().unwrap_or_default()
            }
        }
    } else {
        m.to_string()
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let tree = match QueryTree::parse(&opts.query) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("vitex: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.machine {
        let spec = match vitex_core::MachineSpec::compile(&tree) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("vitex: {e}");
                return ExitCode::from(2);
            }
        };
        println!("query: {}", spec.query);
        println!("query tree:\n{tree}");
        println!("machine nodes: {}", spec.len());
        for (i, n) in spec.nodes.iter().enumerate() {
            println!(
                "  [{i}] {}{} parent={:?} main={} root={} result={} flags={} attr_preds={} \
                 text_preds={} attr_result={}",
                if n.axis == vitex_xpath::Axis::Descendant { "//" } else { "/" },
                n.name.as_deref().unwrap_or("*"),
                n.parent,
                n.is_main,
                n.is_root,
                n.is_result,
                n.nflags,
                n.attr_preds.len(),
                n.text_preds.len(),
                n.attr_result.is_some(),
            );
        }
        return ExitCode::SUCCESS;
    }
    let mode = if opts.eager { EvalMode::Eager } else { EvalMode::Compact };
    let mut engine = match Engine::with_mode(&tree, mode) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("vitex: {e}");
            return ExitCode::from(2);
        }
    };
    let source: Box<dyn Read> = match &opts.file {
        Some(path) => match File::open(path) {
            Ok(f) => Box::new(BufReader::new(f)),
            Err(e) => {
                eprintln!("vitex: {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => Box::new(io::stdin().lock()),
    };
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut count = 0u64;
    let result = engine.run(XmlReader::new(source), |m| {
        count += 1;
        if !opts.count {
            let _ = writeln!(out, "{}", describe(&m, opts.values));
        }
    });
    match result {
        Ok(output) => {
            if opts.count {
                println!("{count}");
            }
            if opts.stats {
                eprintln!("elements: {}", output.elements);
                eprintln!("events:   {}", output.events);
                eprintln!("machine:  {}", output.stats.summary());
            }
            if count > 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("vitex: {e}");
            ExitCode::from(2)
        }
    }
}
