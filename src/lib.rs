//! # ViteX — a streaming XPath processing system
//!
//! A from-scratch Rust reproduction of *"ViteX: A Streaming XPath
//! Processing System"* (Yi Chen, Susan B. Davidson, Yifeng Zheng —
//! ICDE 2005): polynomial-time evaluation of XP{/, //, *, []} queries over
//! XML streams via the **TwigM machine**, which encodes exponentially many
//! pattern matches in polynomial-size per-query-node stacks and computes
//! solutions by lazy probing, never enumerating matches.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`xmlsax`] — the streaming SAX parser substrate,
//! * [`xpath`] — the XPath front-end (parser + query tree),
//! * [`core`] — the TwigM builder/machine/engine (the paper's
//!   contribution),
//! * [`baseline`] — the DOM oracle, the exponential naive enumerator, and
//!   an NFA filter (comparison points),
//! * [`xmlgen`] — synthetic dataset generators (protein / recursive /
//!   random / auction).
//!
//! ## Quickstart
//!
//! ```
//! let xml = r#"<ProteinDatabase>
//!     <ProteinEntry id="PIR1"><reference>r</reference></ProteinEntry>
//!     <ProteinEntry id="PIR2"/>
//! </ProteinDatabase>"#;
//!
//! let matches = vitex::evaluate(xml, "//ProteinEntry[reference]/@id").unwrap();
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].value.as_deref(), Some("PIR1"));
//! ```
//!
//! For streaming use (results delivered as soon as they are decidable),
//! see [`core::Engine::run`] and `examples/stock_ticker.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vitex_baseline as baseline;
pub use vitex_core as core;
pub use vitex_xmlgen as xmlgen;
pub use vitex_xmlsax as xmlsax;
pub use vitex_xpath as xpath;

pub use vitex_core::{evaluate_str as evaluate, EngineError, Match, MatchKind};

/// The most common imports in one line.
pub mod prelude {
    pub use vitex_core::{
        evaluate_reader, evaluate_str, DispatchMode, DocumentDriver, Engine, EvalMode, EventSink,
        Match, MatchKind, MultiEngine, ShardSession, ShardedEngine, TwigM,
    };
    pub use vitex_xmlsax::{XmlEvent, XmlReader};
    pub use vitex_xpath::{parse as parse_query, QueryTree};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_evaluate_works() {
        let ms = crate::evaluate("<a><b/></a>", "//b").unwrap();
        assert_eq!(ms.len(), 1);
    }
}
