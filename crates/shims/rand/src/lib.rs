//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace-local shim provides exactly the API surface the generators use
//! (`StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges,
//! `Rng::gen_bool`). All generators in this repository are seeded, so the
//! only contract that matters is determinism-in-the-seed, which this shim
//! honors; its streams are deliberately *not* bit-compatible with upstream
//! `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a 64-bit generator.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// Generic over the element type `T` (like upstream rand) so that bare
    /// integer literals fall back to `i32` under type inference.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut |n| self.next_u64() % n.max(1))
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high-quality bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges [`Rng::gen_range`] can sample from, producing values of type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample; `draw(n)` returns a uniform value in
    /// `0..n`.
    fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + draw(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range: every draw is in range.
                    return draw(u64::MAX) as $t;
                }
                (lo as i128 + draw(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// splitmix64 (the construction recommended by its authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| a.gen_range(0..1000u64) == c.gen_range(0..1000u64));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let b = rng.gen_range(0..=255u8);
            let _ = b; // full u8 range, trivially in bounds
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
