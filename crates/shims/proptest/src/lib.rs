//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim implements
//! the subset of proptest the workspace's test suites use:
//!
//! * the [`proptest!`] macro with an inner `#![proptest_config(..)]`
//!   attribute and `name in strategy` argument bindings,
//! * integer range strategies (`0u64..5000`, `0u8..=255`, …),
//! * string strategies written as regex-ish literals (`".{0,40}"`,
//!   `"[a-z ]{0,120}"`),
//! * [`collection::vec`] and [`any`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Cases are sampled from a per-test deterministic RNG; there is no
//! shrinking — on failure the panic message carries the inputs via the
//! standard assert formatting, which is enough to reproduce (all inputs
//! are printable seeds, lengths or short strings). The case count honors
//! the `PROPTEST_CASES` environment variable, like upstream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// The effective case count: `PROPTEST_CASES` overrides the config.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()` — arbitrary values of a type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical "any value" distribution.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// String strategies written as regex-ish literals.
///
/// Supported shape: one atom — `.` (any XML-plausible char) or a `[...]`
/// character class with escapes and `a-z` ranges — followed by a `{m,n}`
/// repetition. This covers every pattern the workspace's tests use; other
/// patterns panic loudly rather than silently generating garbage.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let (atom, min, max) = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported test string pattern: {self:?}"));
        let len = rng.gen_range(min..=max);
        (0..len).map(|_| atom.sample_char(rng)).collect()
    }
}

enum Atom {
    /// `.` — any char; biased toward markup-hostile content.
    Dot,
    /// `[...]` — an explicit alternative set.
    Class(Vec<char>),
}

impl Atom {
    fn sample_char(&self, rng: &mut StdRng) -> char {
        match self {
            Atom::Dot => {
                // Mix printable ASCII with XML-special and non-ASCII chars
                // so escaping and multi-byte paths both get exercised.
                match rng.gen_range(0..10u32) {
                    0 => ['&', '<', '>', '"', '\'', ';'][rng.gen_range(0..6usize)],
                    1 => ['é', 'Ω', '日', '\u{2028}', '\u{FFFD}'][rng.gen_range(0..5usize)],
                    _ => char::from(rng.gen_range(0x20..0x7Fu8)),
                }
            }
            Atom::Class(chars) => chars[rng.gen_range(0..chars.len())],
        }
    }
}

fn parse_pattern(pat: &str) -> Option<(Atom, usize, usize)> {
    let (atom, rest) = if let Some(rest) = pat.strip_prefix('.') {
        (Atom::Dot, rest)
    } else if let Some(body) = pat.strip_prefix('[') {
        let close = find_class_end(body)?;
        let mut chars = Vec::new();
        let class: Vec<char> = body[..close].chars().collect();
        let mut i = 0;
        while i < class.len() {
            match class[i] {
                '\\' => {
                    chars.push(*class.get(i + 1)?);
                    i += 2;
                }
                c if i + 2 < class.len() && class[i + 1] == '-' && class[i + 2] != ']' => {
                    for r in c..=class[i + 2] {
                        chars.push(r);
                    }
                    i += 3;
                }
                c => {
                    chars.push(c);
                    i += 1;
                }
            }
        }
        if chars.is_empty() {
            return None;
        }
        (Atom::Class(chars), &body[close + 1..])
    } else {
        return None;
    };
    let bounds = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = bounds.split_once(',')?;
    Some((atom, min.trim().parse().ok()?, max.trim().parse().ok()?))
}

/// Index of the unescaped `]` closing a character class body.
fn find_class_end(body: &str) -> Option<usize> {
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b']' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// `vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs one property test: samples `cases` inputs and calls `body` on each.
pub fn run_cases(test_name: &str, config: &ProptestConfig, mut body: impl FnMut(&mut StdRng)) {
    // Deterministic per-test seed: tests are reproducible run to run.
    let seed =
        test_name.bytes().fold(0xC0FFEEu64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..config.effective_cases() {
        body(&mut rng);
    }
}

/// Assertion macro used inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion macro used inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The property-test harness macro.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that
/// samples the strategies `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::sample(&$strat, rng);)+
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// One-line import for test files, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn int_ranges_in_bounds(x in 5u64..50, y in 0u8..=255) {
            prop_assert!((5..50).contains(&x));
            let _ = y;
        }

        #[test]
        fn vec_strategy_lengths(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn string_patterns(s in ".{0,40}", t in "[a-c\\]]{1,5}") {
            prop_assert!(s.chars().count() <= 40);
            prop_assert!((1..=5).contains(&t.chars().count()));
            prop_assert!(t.chars().all(|c| matches!(c, 'a'..='c' | ']')));
        }
    }

    #[test]
    fn dot_pattern_hits_specials_eventually() {
        use rand::SeedableRng;
        let mut rng = crate::StdRng::seed_from_u64(9);
        let strat = ".{200,200}";
        let s = crate::Strategy::sample(&strat, &mut rng);
        assert!(s.contains('&') || s.contains('<') || s.contains('>'));
    }
}
