//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! benchmark-harness API surface the workspace's benches use — groups,
//! `bench_with_input`, throughput annotations, `criterion_group!` /
//! `criterion_main!` — measured with plain wall-clock timing: a warm-up
//! run, then iterations until the group's measurement time (or sample
//! count) is exhausted, reporting min / mean per iteration and derived
//! throughput. No statistical machinery, no plots, no baselines; the point
//! is comparable numbers from `cargo bench` without network access.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// Work-per-iteration annotation for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark's identifier: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

/// A group of related measurements sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures `f`, handing it a [`Bencher`] and the input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Measures a parameterless benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher);
        self.report(&id.label, &bencher);
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}

    fn report(&self, label: &str, bencher: &Bencher) {
        let Some(min) = bencher.min else {
            println!("{}/{label}: no samples", self.name);
            return;
        };
        let mean = bencher.total / bencher.samples.max(1) as u32;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) => {
                format!("  {:>10.1} MiB/s", b as f64 / (1 << 20) as f64 / min.as_secs_f64())
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.1} Kelem/s", n as f64 / 1e3 / min.as_secs_f64())
            }
            None => String::new(),
        };
        println!(
            "{}/{label}: min {}  mean {}  ({} samples){rate}",
            self.name,
            fmt_duration(min),
            fmt_duration(mean),
            bencher.samples,
        );
    }
}

/// Runs and times the measured closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: usize,
    total: Duration,
    min: Option<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher { sample_size, measurement_time, samples: 0, total: Duration::ZERO, min: None }
    }

    /// Times `f` repeatedly: one warm-up call, then samples until either
    /// the configured sample count or the measurement budget is exhausted.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f()); // warm-up (also primes caches/allocations)
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            let d = t.elapsed();
            self.samples += 1;
            self.total += d;
            self.min = Some(self.min.map_or(d, |m| m.min(d)));
            if budget.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Declares a benchmark group runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3).measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::new("id", 1), &7u32, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_secs(2)).ends_with('s'));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
    }
}
