//! E13 — telemetry stage-time breakdown of the sharded pipeline.
//!
//! The unified telemetry layer records where a sharded run's wall-clock
//! goes: coordinator time splits into parsing (pulling events from the
//! reader) and dispatch (feeding the shard rings), dispatch itself can
//! degrade into ring-wait when workers fall behind (bounded-ring
//! backpressure), and the merge holds finished matches until every
//! shard's watermark passes. This experiment runs the E10 workload —
//! k = 1000 distinct standing auction subscriptions — with telemetry
//! enabled and prints that breakdown per shard count, straight from the
//! metrics snapshot.
//!
//! Reading the table: at 1 shard the engine delegates to the inline
//! single-threaded path, so the ring/worker/merge rows are zero and
//! parse + dispatch ≈ total. At higher shard counts ring-wait is the
//! backpressure signal (`vitex_ring_stall_ns_total`): on a single-core
//! host it dominates, because the coordinator and workers time-slice one
//! CPU; on a multi-core host it should shrink toward zero as workers
//! keep up.

use std::time::Duration;

use vitex_bench::multiquery::distinct_overlapping_queries;
use vitex_bench::{fmt_dur, header, scale_arg, throughput};
use vitex_core::telemetry::{Snapshot, Telemetry};
use vitex_core::{DispatchMode, PlanMode, ShardedEngine};
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlsax::{ParallelConfig, ParallelReader, XmlReader};

/// How events reach the shard rings: the sequential streaming reader, the
/// pipelined speculative reader funneled through the coordinator, or the
/// overlapped front-end (parse workers + publisher threads feeding rings
/// directly).
#[derive(Clone, Copy, PartialEq)]
enum FrontEnd {
    Sequential,
    Pipelined(usize),
    Overlapped(usize),
}

impl FrontEnd {
    fn label(self) -> String {
        match self {
            FrontEnd::Sequential => "seq".into(),
            FrontEnd::Pipelined(t) => format!("pipe({t})"),
            FrontEnd::Overlapped(t) => format!("ovl({t})"),
        }
    }
}

fn run_once(queries: &[String], shards: usize, front: FrontEnd, xml: &str) -> (Snapshot, u64) {
    let telemetry = Telemetry::enabled();
    let mut engine = ShardedEngine::with_options(shards, DispatchMode::Indexed, PlanMode::Shared);
    engine.set_telemetry(telemetry.clone());
    for q in queries {
        engine.add_query(q).expect("valid query");
    }
    let out = match front {
        FrontEnd::Sequential => {
            engine.run(XmlReader::from_str(xml), |_, _| {}).expect("engine run")
        }
        FrontEnd::Pipelined(threads) => {
            let config = ParallelConfig { threads, ..ParallelConfig::default() };
            let reader = ParallelReader::with_config(xml.as_bytes().to_vec(), config);
            engine.run(reader, |_, _| {}).expect("engine run")
        }
        FrontEnd::Overlapped(threads) => {
            let config = ParallelConfig { threads, ..ParallelConfig::default() };
            engine.run_overlapped(xml.as_bytes().to_vec(), config, |_, _| {}).expect("engine run").0
        }
    };
    let matches = out.matches.iter().map(|m| m.len() as u64).sum();
    (telemetry.snapshot().expect("telemetry enabled"), matches)
}

fn hist_sum(snapshot: &Snapshot, name: &str) -> u64 {
    snapshot.histograms.iter().find(|h| h.name == name).map_or(0, |h| h.sum)
}

fn hist_mean(snapshot: &Snapshot, name: &str) -> Duration {
    let h = snapshot.histograms.iter().find(|h| h.name == name);
    Duration::from_nanos(h.map_or(0, |h| h.sum.checked_div(h.count).unwrap_or(0)))
}

fn ns(n: u64) -> Duration {
    Duration::from_nanos(n)
}

fn main() {
    header(
        "E13: telemetry stage-time breakdown (parse / dispatch / ring-wait / merge)",
        "the metrics registry attributes a sharded run's wall-clock to \
         pipeline stages; ring-wait is the backpressure signal that tells \
         producer-bound from consumer-bound configurations apart",
    );
    let scale = scale_arg();
    let xml = auction::to_string(&AuctionConfig::sized(((1 << 20) as f64 * scale) as u64));
    let k = 1000usize;
    let queries = distinct_overlapping_queries(k);

    println!(
        "{:>6} | {:>7} | {:>9} | {:>9} | {:>9} | {:>9} | {:>10} | {:>8} | {:>9}",
        "shards", "feed", "total", "parse", "dispatch", "ringwait", "merge-hold", "MB/s", "matches"
    );
    let mut reference: Option<u64> = None;
    for (shards, front) in [
        (1usize, FrontEnd::Sequential),
        (4, FrontEnd::Sequential),
        (4, FrontEnd::Pipelined(4)),
        (4, FrontEnd::Overlapped(4)),
    ] {
        let (snapshot, matches) = run_once(&queries, shards, front, &xml);
        match reference {
            None => reference = Some(matches),
            Some(r) => assert_eq!(matches, r, "shard counts must agree on matches"),
        }
        let total = snapshot.counter("vitex_doc_ns_total").unwrap_or(0);
        let dispatch = hist_sum(&snapshot, "vitex_dispatch_ns");
        let ring_wait = snapshot.counter("vitex_ring_stall_ns_total").unwrap_or(0);
        // The coordinator loop is read-event-then-dispatch, so whatever
        // the document span did not spend in sinks it spent in the
        // parser; ring-wait is the blocking slice *inside* dispatch.
        let parse = total.saturating_sub(dispatch);
        println!(
            "{:>6} | {:>7} | {:>9} | {:>9} | {:>9} | {:>9} | {:>10} | {:>8.1} | {:>9}",
            shards,
            front.label(),
            fmt_dur(ns(total)),
            fmt_dur(ns(parse)),
            fmt_dur(ns(dispatch.saturating_sub(ring_wait))),
            fmt_dur(ns(ring_wait)),
            fmt_dur(hist_mean(&snapshot, "vitex_merge_release_ns")),
            throughput(xml.len(), ns(total)),
            matches,
        );
        if shards > 1 {
            let busy = snapshot.counter("vitex_worker_busy_ns_total").unwrap_or(0);
            let idle = snapshot.counter("vitex_worker_idle_ns_total").unwrap_or(0);
            let stalls = snapshot.counter("vitex_ring_enqueue_stalls_total").unwrap_or(0);
            let occupancy = snapshot
                .gauges
                .iter()
                .find(|g| g.name == "vitex_ring_occupancy")
                .map_or(0, |g| g.high);
            println!(
                "       |   workers: busy={} idle={} across {shards} shards; \
                 ring: stalls={stalls} occupancy-high={occupancy}",
                fmt_dur(ns(busy)),
                fmt_dur(ns(idle)),
            );
        }
        if matches!(front, FrontEnd::Overlapped(_)) {
            let batches = snapshot.counter("vitex_producer_batches_total").unwrap_or(0);
            let idle = snapshot.counter("vitex_producer_idle_ns_total").unwrap_or(0);
            let producers = snapshot
                .gauges
                .iter()
                .find(|g| g.name == "vitex_producer_threads")
                .map_or(0, |g| g.value);
            println!(
                "       |   producers: {producers} threads published {batches} batches, \
                 idle={} waiting on admission",
                fmt_dur(ns(idle)),
            );
        }
    }
    // Per-shard attributed cost: join the cost ledger's per-group work
    // counters against the placement snapshot (which shard each group
    // slot is assigned to) from a warm profiled session. This is the
    // operator view behind `vitex_shard_imbalance`: not just *that* the
    // load is skewed, but which shard carries which groups' bill.
    let shards = 4usize;
    let mut engine = ShardedEngine::with_options(shards, DispatchMode::Indexed, PlanMode::Shared);
    engine.set_profiling(true);
    for q in &queries {
        engine.add_query(q).expect("valid query");
    }
    let placement = engine.placement();
    let snap = engine
        .session(|session| {
            for _ in 0..2 {
                session.run_document(XmlReader::from_str(&xml), |_, _| {})?;
            }
            Ok(session.placement_snapshot())
        })
        .expect("profiled session");
    let ledger = engine.group_costs().expect("profiling enabled");
    let mut per_shard = vec![(0usize, 0u64); shards];
    for g in &ledger.groups {
        if let Some(Some(s)) = snap.shard_of.get(g.gid).copied() {
            per_shard[s].0 += 1;
            per_shard[s].1 += g.work();
        }
    }
    let total_work: u64 = per_shard.iter().map(|&(_, w)| w).sum();
    println!(
        "\nper-shard attributed cost ({shards} shards, placement={placement:?}, \
         repartitions={}, imbalance={} millis):",
        snap.repartitions,
        snap.last_imbalance_millis.map_or_else(|| "-".into(), |m| m.to_string()),
    );
    println!("{:>6} | {:>7} | {:>12} | {:>6}", "shard", "groups", "work", "share");
    for (s, &(groups, work)) in per_shard.iter().enumerate() {
        println!(
            "{s:>6} | {groups:>7} | {work:>12} | {:>5.1}%",
            work as f64 / total_work.max(1) as f64 * 100.0
        );
    }

    println!(
        "\nshape check: the 1-shard row has zero ring-wait and merge-hold\n\
         (inline delegation); the sharded rows attribute wall-clock to\n\
         parse + dispatch + ring-wait, with ring-wait > 0 meaning workers\n\
         are the bottleneck (raise shards on a multi-core host) and\n\
         ring-wait ~ 0 meaning the parser is (see E12). The pipe(4) row\n\
         moves raw parsing off the coordinator (its parse slice becomes\n\
         event *pulling*); the ovl(4) row also moves ring feeding off it\n\
         (publisher threads push batches directly, so the coordinator's\n\
         dispatch slice shrinks to the admission walk; ring-wait there is\n\
         summed across concurrent publishers and can exceed wall-clock —\n\
         it is a contention integral, not a latency). On a 1-core host all\n\
         time-slice one CPU and overlap cannot pay — compare MB/s across\n\
         rows on a multi-core host. Match totals are asserted identical\n\
         across rows — neither observability nor the front-end perturbs\n\
         the deterministic merge."
    );
}
