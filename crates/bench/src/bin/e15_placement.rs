//! E15 — cost-aware shard placement: isolate the hog, keep the bytes.
//!
//! Round-robin partitioning hands plan groups to workers by slot number,
//! blind to what each group costs. Plant one expensive subscription among
//! cheap ones and round-robin chains it to whatever groups share its
//! shard: one worker saturates while the rest idle at the watermark
//! barrier. Cost-aware placement (`--placement cost`) replans between
//! documents from the ledger's deterministic work counters — greedy LPT
//! bin-packing, swapped in at a document boundary under hysteresis — so
//! the hog ends up alone on its shard and every other worker shares the
//! cheap remainder.
//!
//! Two claims are printed and asserted:
//!
//! 1. **Placement is output-transparent.** The merged match stream is
//!    byte-identical between round-robin and cost-aware placement at
//!    every shard count, on both workloads. The watermark merge orders
//!    by `(event seq, gid)`, so *where* a group runs can never reach
//!    the subscriber.
//! 2. **The skewed set rebalances.** On a small skewed set (one hog
//!    among a handful of pinned queries) at 4 shards, the session
//!    repartitions after the first document, the hog's group sits alone
//!    on its shard, and the measured imbalance of the last document is
//!    strictly lower than round-robin's on the same workload.

use vitex_bench::multiquery::region_pinned_queries;
use vitex_bench::{header, scale_arg};
use vitex_core::{DispatchMode, Placement, PlacementSnapshot, PlanMode, ShardedEngine};
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlsax::XmlReader;

/// The E14 planted hog: a descendant scan with a value predicate that
/// fans out into every item's description subtree.
const EXPENSIVE: &str = "//item[payment = 'Cash']//listitem";

/// Documents streamed through each warm session — the first document
/// runs under the seed plan, the rest under whatever the planner swaps
/// in at the document boundaries.
const DOCS: usize = 3;

/// One warm session: every document's merged match stream (query id,
/// node id, in emission order), the placement snapshot taken *inside*
/// the session after the last document, and the hog's plan-group slot
/// recovered from the cost ledger.
fn run(
    placement: Placement,
    shards: usize,
    queries: &[String],
    hog_id: usize,
    xml: &str,
) -> (Vec<(usize, u64)>, PlacementSnapshot, usize) {
    let mut engine = ShardedEngine::with_options(shards, DispatchMode::Indexed, PlanMode::Shared);
    engine.set_placement(placement);
    engine.set_profiling(true);
    for q in queries {
        engine.add_query(q).expect("valid query");
    }
    let mut streamed: Vec<(usize, u64)> = Vec::new();
    let snap = engine
        .session(|session| {
            for _ in 0..DOCS {
                session.run_document(XmlReader::from_str(xml), |q, m| {
                    streamed.push((q.0, m.node));
                })?;
            }
            Ok(session.placement_snapshot())
        })
        .expect("session runs");
    let ledger = engine.group_costs().expect("profiling enabled");
    let hog_gid = ledger.queries[hog_id].group.expect("hog is active");
    (streamed, snap, hog_gid)
}

fn main() {
    header(
        "E15: cost-aware shard placement (ledger-driven LPT with mid-session repartitioning)",
        "cost-aware placement isolates an expensive subscription on its own \
         shard and tightens worker load spread, while the watermark merge \
         keeps the match stream byte-identical to round-robin",
    );
    let scale = scale_arg();
    let xml = auction::to_string(&AuctionConfig::sized(((1 << 20) as f64 * scale) as u64));

    // Workload A — the E14 shape: one hog among k = 1000 cheap pinned
    // queries. Too many cheap groups for the hog to deserve a private
    // shard, but placement must still be invisible in the output.
    let k = 1000usize;
    let mut crowd = region_pinned_queries(k);
    crowd.push(EXPENSIVE.to_string());

    // Workload B — the skewed set: the same hog among 7 pinned queries.
    // Here the hog dominates total work, so LPT must give it a shard of
    // its own once the first document's counters land in the cost model.
    let mut skewed = region_pinned_queries(7);
    skewed.push(EXPENSIVE.to_string());

    for (name, queries, hog_id) in
        [("e14-crowd (1000 cheap + hog)", &crowd, k), ("skewed (7 cheap + hog)", &skewed, 7)]
    {
        println!("--- workload: {name} ---");
        for shards in [1usize, 2, 4] {
            let (rr, _, _) = run(Placement::RoundRobin, shards, queries, hog_id, &xml);
            let (cost, _, _) = run(Placement::CostAware, shards, queries, hog_id, &xml);
            assert_eq!(
                rr, cost,
                "merged match stream must be byte-identical across placements ({name}, {shards} shards)"
            );
            println!(
                "  shards={shards}: {} matches over {DOCS} docs — identical under both placements",
                rr.len()
            );
        }
    }

    // The rebalance claim, on the skewed set at 4 shards.
    let shards = 4usize;
    let (_, rr_snap, _) = run(Placement::RoundRobin, shards, &skewed, 7, &xml);
    let (_, cost_snap, hog_gid) = run(Placement::CostAware, shards, &skewed, 7, &xml);

    assert_eq!(rr_snap.repartitions, 0, "round-robin never replans");
    assert!(
        cost_snap.repartitions >= 1,
        "the skewed set must trigger a repartition after the first document"
    );
    let hog_shard = cost_snap.shard_of[hog_gid].expect("hog group is placed");
    let cohabitants = cost_snap.shard_of.iter().filter(|s| **s == Some(hog_shard)).count();
    assert_eq!(cohabitants, 1, "the hog must be alone on its shard after the repartition");

    let rr_imb = rr_snap.last_imbalance_millis.expect("documents ran");
    let cost_imb = cost_snap.last_imbalance_millis.expect("documents ran");
    assert!(
        cost_imb < rr_imb,
        "cost-aware placement must measure strictly lower imbalance than \
         round-robin on the skewed set (cost {cost_imb} vs round-robin {rr_imb})"
    );
    println!("--- rebalance (skewed set, {shards} shards) ---");
    println!(
        "  round-robin: imbalance={rr_imb} millis (1000 = balanced), repartitions=0\n  \
         cost-aware:  imbalance={cost_imb} millis, repartitions={}, hog group g{hog_gid} alone on shard {hog_shard}",
        cost_snap.repartitions
    );
    println!(
        "shape check: under round-robin the hog shares a worker with a cheap\n\
         group for the whole session, so the last document's max/mean load\n\
         ratio stays high. Cost-aware placement seeds uniform (its first\n\
         document is the round-robin partition, which is why the streams\n\
         match byte-for-byte), observes the first document's deterministic\n\
         machine counters, and LPT then hands the hog a private shard —\n\
         measured imbalance drops and stays down, asserted above."
    );
}
