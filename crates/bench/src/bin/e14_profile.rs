//! E14 — per-subscription cost attribution: who costs what, live.
//!
//! A pub/sub engine with a thousand standing subscriptions has a
//! thousand tenants sharing one document scan — and no `top(1)` to tell
//! an operator which tenant is burning the budget. This experiment
//! plants one deliberately expensive subscription (a descendant-axis
//! query with a value predicate that fans out into every item's
//! description subtree) among k = 1000 cheap region-pinned queries
//! (each pins a single `@id`, so its machine barely moves), runs the
//! E10 warm-session workload with the cost ledger enabled, and asks the
//! profiler to name the culprit.
//!
//! The acceptance check is printed and asserted: the planted query must
//! rank #1 by attributed work, at every shard count, with the same
//! per-query counters (the ledger's deterministic section folds per
//! subscription, so shard count cannot change the bill).

use vitex_bench::multiquery::region_pinned_queries;
use vitex_bench::{header, scale_arg};
use vitex_core::{DispatchMode, PlanMode, ShardedEngine};
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlsax::XmlReader;

/// The planted hog: descendant scan over every item, a value predicate
/// evaluated per item, then another descendant descent into the
/// description subtree. Everything the cheap pinned queries avoid.
const EXPENSIVE: &str = "//item[payment = 'Cash']//listitem";

fn main() {
    header(
        "E14: per-subscription cost attribution (1 hog among 1000 cheap queries)",
        "query-level cost metering attributes shared-scan work to the \
         subscriptions that cause it, so one expensive tenant is visible \
         instead of being averaged into the crowd",
    );
    let scale = scale_arg();
    let xml = auction::to_string(&AuctionConfig::sized(((1 << 20) as f64 * scale) as u64));
    let k = 1000usize;
    let mut queries = region_pinned_queries(k);
    queries.push(EXPENSIVE.to_string());
    let hog_id = k; // registration order = QueryId

    let mut reference: Option<String> = None;
    for shards in [1usize, 4] {
        let mut engine =
            ShardedEngine::with_options(shards, DispatchMode::Indexed, PlanMode::Shared);
        engine.set_profiling(true);
        for q in &queries {
            engine.add_query(q).expect("valid query");
        }
        // The E10 warm-session shape: several documents through one
        // session, the ledger accumulating across them.
        engine
            .session(|session| {
                for _ in 0..3 {
                    session.run_document(XmlReader::from_str(&xml), |_, _| {})?;
                }
                Ok(())
            })
            .expect("session runs");
        let snapshot = engine.group_costs().expect("profiling enabled");

        println!("--- shards={shards} ---");
        print!("{}", snapshot.table(5));
        let top = snapshot.top_queries(1);
        let top = top.first().expect("queries registered");
        assert_eq!(top.id, hog_id, "the planted expensive query must rank #1 by attributed work");
        let share = top.work() as f64 / snapshot.total_work().max(1) as f64;
        println!(
            "profiler verdict: query #{} ({}) is the hog — {:.1}% of all attributed work\n",
            top.id,
            top.text,
            share * 100.0
        );

        // Shard-count invariance of the bill itself.
        let det = snapshot.deterministic_json();
        match &reference {
            None => reference = Some(det),
            Some(r) => {
                assert_eq!(&det, r, "per-query cost counters must not depend on the shard count")
            }
        }
    }
    println!(
        "shape check: the pinned queries each touch one item subtree and\n\
         share a handful of machine steps; the planted descendant query\n\
         pushes on every item, evaluates its payment predicate each time,\n\
         and descends into every matching description — so its work share\n\
         dwarfs any single pinned query's. The table and the verdict are\n\
         computed from the cost ledger alone (no timing), which is why the\n\
         same bill falls out at 1 and 4 shards, asserted above."
    );
}
