//! E10 — sharded multi-core pub/sub (plan-group partitioning).
//!
//! A production filter serving `k` standing subscriptions spends its
//! per-event budget poking the machines interested in that event; with
//! `k` *distinct* queries over the same hot element names that budget is
//! `O(k)` on one core no matter how fast the parser is. The sharded
//! engine partitions the plan groups across `N` worker threads behind
//! bounded event rings and merges the match streams deterministically, so
//! the per-event machine work — the dominant term at large `k` — divides
//! by `N` while output stays byte-identical to the single-threaded
//! engine.
//!
//! This experiment registers `k = 1000` distinct overlapping auction
//! subscriptions (see `multiquery::distinct_overlapping_queries`), then
//! streams a document collection (the same XMark-style document,
//! back-to-back through one warm [`vitex_core::ShardSession`]) at 1, 2, 4
//! and 8 shards, reporting wall-clock, throughput and speedup over the
//! 1-shard row, and asserting the match totals agree.
//!
//! Expected shape **on a multi-core host**: ≥ 2× at 4 shards for the
//! k = 1000 row. On a single-core host the rows degenerate to ~1× minus
//! ring overhead — the table reports whatever the hardware gives; the
//! differential battery (not this bin) is the correctness gate.

use vitex_bench::multiquery::distinct_overlapping_queries;
use vitex_bench::{fmt_dur, header, scale_arg, throughput, time_once};
use vitex_core::{DispatchMode, PlanMode, ShardedEngine};
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlsax::XmlReader;

/// Documents streamed back-to-back per session (the collections
/// workload: one plan, one partition, warm workers).
const DOCS: usize = 3;

struct Row {
    build: std::time::Duration,
    run: std::time::Duration,
    matches: u64,
    groups: usize,
}

fn run_once(queries: &[String], shards: usize, xml: &str) -> Row {
    let (mut engine, build) = time_once(|| {
        let mut engine =
            ShardedEngine::with_options(shards, DispatchMode::Indexed, PlanMode::Shared);
        for q in queries {
            engine.add_query(q).expect("valid query");
        }
        engine
    });
    let groups = engine.group_count();
    let mut matches = 0u64;
    let (_, run) = time_once(|| {
        engine
            .session(|session| {
                for _ in 0..DOCS {
                    let out = session.run_document(XmlReader::from_str(xml), |_, _| {})?;
                    matches += out.matches.iter().map(|m| m.len() as u64).sum::<u64>();
                }
                Ok(())
            })
            .expect("session run");
    });
    Row { build, run, matches, groups }
}

fn main() {
    header(
        "E10: sharded pub/sub (plan groups across worker threads)",
        "k distinct standing queries cost O(k) machine work per event; \
         partitioning groups across N shards divides it by N with \
         deterministic, byte-identical merged output",
    );
    let scale = scale_arg();
    let xml = auction::to_string(&AuctionConfig::sized(((1 << 20) as f64 * scale) as u64));
    let k = 1000usize;
    let queries = distinct_overlapping_queries(k);
    let streamed = xml.len() * DOCS;

    println!(
        "{:>6} | {:>9} | {:>6} | {:>10} | {:>8} | {:>8} | {:>9}",
        "shards", "build", "groups", "run", "MB/s", "speedup", "matches"
    );
    let mut baseline: Option<Row> = None;
    for shards in [1usize, 2, 4, 8] {
        let row = run_once(&queries, shards, &xml);
        assert_eq!(row.groups, k, "distinct queries must not dedupe");
        if let Some(base) = &baseline {
            assert_eq!(row.matches, base.matches, "shard counts must agree on matches");
        }
        let speedup =
            baseline.as_ref().map_or(1.0, |b| b.run.as_secs_f64() / row.run.as_secs_f64());
        println!(
            "{:>6} | {:>9} | {:>6} | {:>10} | {:>8.1} | {:>7.2}x | {:>9}",
            shards,
            fmt_dur(row.build),
            row.groups,
            fmt_dur(row.run),
            throughput(streamed, row.run),
            speedup,
            row.matches,
        );
        if baseline.is_none() {
            baseline = Some(row);
        }
    }
    println!(
        "\nshape check: every row reports identical matches (the merge is\n\
         deterministic); on an N-core host the speedup column should\n\
         approach min(shards, cores), with >= 2x at 4 shards as the\n\
         acceptance bar for the k = 1000 workload. {DOCS} documents are\n\
         streamed per session, so worker threads and the partition are\n\
         reused across documents (the collections workload)."
    );
}
