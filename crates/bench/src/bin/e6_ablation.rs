//! E6 — ablation of the compact encoding and lazy probing (paper §2,
//! Features 3–4).
//!
//! The paper's design choices: (a) encode pattern matches compactly in
//! per-node stacks rather than copying candidates to every compatible
//! ancestor, and (b) probe lazily rather than eagerly. The `Eager` mode of
//! the machine undoes (a): candidates are fanned out to **all** compatible
//! parent entries at forwarding time. Same answers, more candidate
//! traffic — this experiment measures how much the compact encoding saves
//! as recursion depth (and thus the compatible-ancestor count) grows.

use vitex_bench::{fmt_bytes, fmt_dur, header, scale_arg, time_best};
use vitex_core::{Engine, EvalMode};
use vitex_xmlgen::recursive::{self, RecursiveConfig};
use vitex_xmlsax::XmlReader;
use vitex_xpath::QueryTree;

fn main() {
    header(
        "E6: compact/lazy vs eager candidate propagation",
        "compact encoding keeps memory small; lazy probing avoids copying",
    );
    let scale = scale_arg();
    // Many cells per tower → real candidate traffic.
    let q = "//section[author]//table[position]//cell";
    let tree = QueryTree::parse(q).expect("valid query");
    println!("query: {q}\n");
    println!(
        "{:>6} | {:>10} {:>12} {:>10} | {:>10} {:>12} {:>10} | {:>7}",
        "depth", "compact", "peak cands", "copies", "eager", "peak cands", "copies", "speedup"
    );
    for &d in &[8usize, 16, 32, 64, 128] {
        let d = ((d as f64) * scale).max(4.0) as usize;
        let cfg = RecursiveConfig {
            towers: 64,
            position_on_outermost_only: false, // every table satisfied → heavy forwarding
            ..RecursiveConfig::square(d)
        };
        let xml = recursive::to_string(&cfg);
        let run = |mode: EvalMode| {
            let mut engine = Engine::with_mode(&tree, mode).expect("machine");
            time_best(2, || engine.run(XmlReader::from_str(&xml), |_| {}).expect("run").stats)
        };
        let (cs, ct) = run(EvalMode::Compact);
        let (es, et) = run(EvalMode::Eager);
        assert_eq!(cs.emitted, es.emitted, "modes must agree");
        println!(
            "{:>6} | {:>10} {:>12} {:>10} | {:>10} {:>12} {:>10} | {:>6.2}x",
            d,
            fmt_dur(ct),
            cs.peak_candidates,
            cs.candidates_copied,
            fmt_dur(et),
            es.peak_candidates,
            es.candidates_copied,
            et.as_secs_f64() / ct.as_secs_f64(),
        );
        let _ = (fmt_bytes(cs.peak_bytes), fmt_bytes(es.peak_bytes));
    }
    println!(
        "\nshape check: eager peak candidates and copies grow with depth\n\
         (one copy per compatible ancestor); compact stays near-constant,\n\
         and the speedup factor grows with recursion depth."
    );
}
