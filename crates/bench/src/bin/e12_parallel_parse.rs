//! E12 — the parallel parse front-end: SWAR wide scanning + speculative
//! chunked parsing.
//!
//! The sharded engine (E10) divides the *machine* work across cores, which
//! makes the parse the end-to-end ceiling: the paper measures parsing at
//! 74% of E2's runtime, and a single-core parser caps every downstream
//! speedup. This experiment measures the two layers that lift that
//! ceiling:
//!
//! 1. **Wide scanning** (single-thread win): the byte-class scanner
//!    classifies text/name/attribute-value runs 8–16 bytes per step
//!    (SWAR), so scalar vs. wide on the *same* sequential reader isolates
//!    gain (a). The win scales with run length: text-dense documents gain
//!    the most; markup-dense documents (runs shorter than one word) stay
//!    neutral by construction (the scanner probes the first word
//!    scalar-wise before engaging SWAR).
//! 2. **Speculative chunked parsing** (multi-core win): the document is
//!    split at `<` candidates, chunks are parsed speculatively on worker
//!    threads and reconciled on the coordinator — same event stream,
//!    N-way parse parallelism.
//!
//! Table 1 sweeps scalar vs. wide over four structural regimes. Table 2
//! holds the document fixed and scales parse threads, asserting the event
//! count and a reference query's match count are identical across every
//! configuration.
//!
//! Expected shape: wide/scalar ≥ 1.3× on long-run (text-dense) regimes
//! and ~1.0× on markup-dense ones; **on a multi-core host** 4-thread
//! parallel ≥ 2× sequential. On a single-core host the parallel rows
//! degenerate to ~1× minus speculation overhead — the table reports what
//! the hardware gives; the differential batteries are the correctness
//! gate.

use std::io::Cursor;

use vitex_bench::{fmt_bytes, fmt_dur, header, scale_arg, throughput, time_best};
use vitex_core::evaluate_reader;
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlgen::{protein, recursive};
use vitex_xmlsax::{EventSource, ParallelReader, ReaderConfig, XmlEvent, XmlReader};
use vitex_xpath::QueryTree;

/// Timing reps per row (minimum is reported).
const REPS: usize = 3;

fn count_events(mut src: impl EventSource) -> u64 {
    let mut events = 0u64;
    loop {
        match src.next_event().expect("well-formed benchmark data") {
            XmlEvent::EndDocument => return events,
            _ => events += 1,
        }
    }
}

fn sequential(xml: &str, wide: bool) -> XmlReader<Cursor<&[u8]>> {
    let cfg = ReaderConfig { wide_scan: wide, ..ReaderConfig::default() };
    XmlReader::with_config(Cursor::new(xml.as_bytes()), cfg)
}

/// Table 1: scalar vs. wide scanning per structural regime.
fn wide_scan_table(scale: f64) {
    let size = ((4 << 20) as f64 * scale) as u64;
    let docs = [
        (
            "markup_dense",
            recursive::to_string(&{
                let mut cfg = recursive::RecursiveConfig::square(6);
                cfg.towers = (8000.0 * scale) as usize;
                cfg
            }),
        ),
        ("attr_dense", auction::to_string(&AuctionConfig::sized(size))),
        (
            "text_dense",
            protein::to_string(&protein::ProteinConfig {
                sequence_len: 4000,
                ..protein::ProteinConfig::sized(size)
            }),
        ),
        (
            "pure_text",
            format!("<r>{}</r>", "lorem ipsum dolor sit amet ".repeat((size / 27) as usize)),
        ),
    ];
    println!("table 1 — wide scanning (sequential reader, scalar vs SWAR):\n");
    println!(
        "{:>14} | {:>8} | {:>10} | {:>10} | {:>8} | {:>8}",
        "regime", "bytes", "scalar", "wide", "MB/s", "gain"
    );
    for (label, xml) in &docs {
        let (scalar_events, scalar) = time_best(REPS, || count_events(sequential(xml, false)));
        let (wide_events, wide) = time_best(REPS, || count_events(sequential(xml, true)));
        assert_eq!(scalar_events, wide_events, "{label}: event count diverged");
        println!(
            "{:>14} | {:>8} | {:>10} | {:>10} | {:>8.1} | {:>7.2}x",
            label,
            fmt_bytes(xml.len() as u64),
            fmt_dur(scalar),
            fmt_dur(wide),
            throughput(xml.len(), wide),
            scalar.as_secs_f64() / wide.as_secs_f64(),
        );
    }
    println!();
}

/// Table 2: sequential vs. speculative chunked parsing at N threads.
fn parallel_table(scale: f64) {
    let xml = auction::to_string(&AuctionConfig::sized(((8 << 20) as f64 * scale) as u64));
    let tree = QueryTree::parse("//item/@id").expect("reference query");
    let matches = |r: vitex_core::EngineResult<vitex_core::EvalOutput>| {
        r.expect("benchmark query").matches.len()
    };
    println!(
        "table 2 — speculative chunked parsing ({} auction XML,\n\
         reference query //item/@id):\n",
        fmt_bytes(xml.len() as u64)
    );
    println!(
        "{:>12} | {:>10} | {:>8} | {:>12} | {:>8}",
        "mode", "parse", "MB/s", "events/s", "speedup"
    );
    let mut base: Option<f64> = None;
    let mut expected: Option<(u64, usize)> = None;
    for threads in [1usize, 2, 4, 8] {
        let label =
            if threads == 1 { "wide-seq".to_string() } else { format!("wide-par({threads})") };
        let run = || {
            if threads == 1 {
                count_events(sequential(&xml, true))
            } else {
                count_events(ParallelReader::from_bytes(xml.as_bytes().to_vec(), threads))
            }
        };
        let (events, d) = time_best(REPS, run);
        let m = if threads == 1 {
            matches(evaluate_reader(sequential(&xml, true), &tree))
        } else {
            matches(evaluate_reader(
                ParallelReader::from_bytes(xml.as_bytes().to_vec(), threads),
                &tree,
            ))
        };
        match expected {
            None => expected = Some((events, m)),
            Some((ev, mm)) => {
                assert_eq!(events, ev, "{label}: event count diverged");
                assert_eq!(m, mm, "{label}: match count diverged");
            }
        }
        let secs = d.as_secs_f64();
        let speedup = base.map_or(1.0, |b| b / secs);
        if base.is_none() {
            base = Some(secs);
        }
        println!(
            "{:>12} | {:>10} | {:>8.1} | {:>12.2e} | {:>7.2}x",
            label,
            fmt_dur(d),
            throughput(xml.len(), d),
            events as f64 / secs,
            speedup,
        );
    }
    println!();
}

fn main() {
    header(
        "E12: parallel parse front-end (SWAR wide scan + speculative chunks)",
        "parsing dominates streaming XPath runtime (74% of E2); wide \
         scanning lifts single-thread scan throughput on long runs and \
         speculative chunked parsing divides the parse across cores with \
         a byte-identical event stream",
    );
    let scale = scale_arg();
    wide_scan_table(scale);
    parallel_table(scale);
    println!(
        "shape check: every row drains the identical event stream (and\n\
         table 2 rows report the identical //item/@id match count —\n\
         asserted above). the wide gain tracks run length: >= 1.3x on\n\
         text-dense regimes, ~1.0x on markup-dense ones (short runs take\n\
         the scalar probe). wide-par(N)/wide-seq isolates chunked-parse\n\
         scaling: >= 2x at 4 threads expected on a multi-core host; ~1x\n\
         minus speculation overhead on a single core."
    );
}
