//! E5 — time scales polynomially in query size (paper §2, Feature 1).
//!
//! Fixed document, query families of growing size along three dimensions:
//! chain length (`//a//a//…`), predicate count (`//a[c0][c1]…`), and
//! wildcard chains (`//*//*//…`). Time per event should grow at most
//! linearly with |Q| (the O(|D|·|Q|·…) bound), nothing explosive.

use vitex_bench::{fmt_dur, header, run_query, scale_arg, time_best};
use vitex_xmlgen::recursive;
use vitex_xpath::QueryTree;

fn main() {
    header("E5: time vs query size", "evaluation time polynomial (≈linear) in |Q|");
    let scale = scale_arg();

    // A structured document with guaranteed work for every query family:
    // many towers of recursively nested <a>, each level carrying <b> and
    // <c> children (so chains recurse and predicates are satisfiable).
    let towers = (2_000_f64 * scale).max(8.0) as usize;
    let depth = 16usize;
    let xml = {
        let mut s = String::with_capacity(towers * depth * 16);
        s.push_str("<a>");
        for _ in 0..towers {
            for _ in 0..depth {
                s.push_str("<a><b/><c/>");
            }
            for _ in 0..depth {
                s.push_str("</a>");
            }
        }
        s.push_str("</a>");
        s
    };
    println!(
        "document: {} bytes ({towers} towers of {depth}-deep <a> nesting with b/c children)\n",
        xml.len()
    );

    println!("chain length — //a//a//… (k steps):");
    println!("{:>5} | {:>10} | {:>12} | {:>9}", "k", "time", "machine ops", "matches");
    for k in [1usize, 2, 4, 8, 16, 32] {
        let query = "//a".repeat(k);
        let tree = QueryTree::parse(&query).unwrap();
        let (out, t) = time_best(3, || run_query(&xml, &tree));
        println!(
            "{:>5} | {:>10} | {:>12} | {:>9}",
            k,
            fmt_dur(t),
            out.stats.pushes + out.stats.flag_propagations + out.stats.candidates_forwarded,
            out.matches.len()
        );
    }

    println!("\npredicate count — //a[b][c][b]…[cN]:");
    println!("{:>5} | {:>10} | {:>12} | {:>9}", "N", "time", "machine ops", "matches");
    for n in [1usize, 2, 4, 8, 16, 32] {
        let preds: String = (0..n).map(|i| if i % 2 == 0 { "[b]" } else { "[c]" }).collect();
        let query = format!("//a{preds}");
        let tree = QueryTree::parse(&query).unwrap();
        let (out, t) = time_best(3, || run_query(&xml, &tree));
        println!(
            "{:>5} | {:>10} | {:>12} | {:>9}",
            n,
            fmt_dur(t),
            out.stats.pushes + out.stats.flag_propagations,
            out.matches.len()
        );
    }

    println!("\nwildcard chains over 64-deep uniform nesting — //*//*//…:");
    let deep = recursive::uniform_nesting((64_f64 * scale).max(8.0) as usize);
    println!("{:>5} | {:>10} | {:>12} | {:>9}", "k", "time", "machine ops", "matches");
    for k in [2usize, 4, 8, 16, 24] {
        let query = "//*".repeat(k);
        let tree = QueryTree::parse(&query).unwrap();
        let (out, t) = time_best(3, || run_query(&deep, &tree));
        println!(
            "{:>5} | {:>10} | {:>12} | {:>9}",
            k,
            fmt_dur(t),
            out.stats.pushes + out.stats.candidates_forwarded + out.stats.candidates_inherited,
            out.matches.len()
        );
    }

    println!(
        "\nshape check: time grows smoothly (low-degree polynomial) with |Q| in\n\
         all three families — no exponential cliff anywhere."
    );
}
