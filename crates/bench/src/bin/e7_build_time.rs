//! E7 — TwigM construction is linear in the query size (paper §2,
//! Feature 2: "TwigM can be constructed from an XPath query in time which
//! is linear in the size of the query").
//!
//! We time the three front-end stages separately — text parse, query-tree
//! normalization, machine compilation — for chain queries of doubling
//! length, and report nanoseconds per query node, which must stay flat.

use vitex_bench::{fmt_dur, header, time_best};
use vitex_core::MachineSpec;
use vitex_xpath::QueryTree;

fn main() {
    header("E7: TwigM build time vs query size", "machine construction linear in |Q|");
    println!(
        "{:>6} | {:>10} {:>10} {:>10} | {:>12}",
        "|Q|", "parse", "tree", "compile", "ns per node"
    );
    for k in [2usize, 8, 32, 128, 512, 2048, 4096] {
        // A chain with a predicate every 4 steps for structural variety.
        let mut q = String::new();
        for i in 0..k {
            q.push_str("//n");
            q.push_str(&(i % 7).to_string());
            if i % 4 == 3 {
                q.push_str("[p]");
            }
        }
        let (_, parse_t) = time_best(5, || vitex_xpath::parse(&q).unwrap());
        let ast = vitex_xpath::parse(&q).unwrap();
        let (_, tree_t) = time_best(5, || QueryTree::build(&ast).unwrap());
        let tree = QueryTree::build(&ast).unwrap();
        let (spec, compile_t) = time_best(5, || MachineSpec::compile(&tree).unwrap());
        let nodes = tree.len();
        println!(
            "{:>6} | {:>10} {:>10} {:>10} | {:>12.1}",
            nodes,
            fmt_dur(parse_t),
            fmt_dur(tree_t),
            fmt_dur(compile_t),
            compile_t.as_nanos() as f64 / nodes as f64,
        );
        assert_eq!(spec.len(), tree.nodes().iter().filter(|n| n.kind.is_element()).count());
    }
    println!("\nshape check: 'ns per node' flat across two orders of magnitude → linear build.");
}
