//! E11 — prefix-shared execution (runtime step-trie, YFilter-style).
//!
//! The shared planner (E9) already collapses *structurally equal*
//! queries, but `/site/a` and `/site/b` still run two machines that each
//! re-match `/site` on every start tag, so per-event main-path work grows
//! with the number of *distinct* plan groups. Prefix sharing promotes the
//! plan trie into a runtime structure: every common main-path step is
//! checked **once per event** against the shared stacks, and only forks
//! into per-group machines where queries diverge (predicates, suffix
//! steps).
//!
//! Two workloads:
//!
//! * **distinct** — `multiquery::distinct_overlapping_queries(k)`: every
//!   query carries its own comparison literal, so dedup cannot collapse
//!   them; the plan runs k machines whose main paths overlap heavily.
//!   This is the regime the tentpole targets: per-event main-path step
//!   executions must scale with distinct trie nodes, not with k.
//! * **duplicate** — `multiquery::overlapping_queries(k)` (the E9
//!   workload): dedup first collapses k registrations to ~16 groups;
//!   prefix sharing then also collapses the 16 groups' common `/site/…`
//!   steps.
//!
//! The table reports, per mode, run time and the new `PlanStats` prefix
//! counters; the acceptance check asserts byte-identical match totals and
//! that prefix-shared per-event step executions stay below the trie-node
//! count (they would be Θ(groups × steps) under per-group planning).

use vitex_bench::multiquery::{
    distinct_overlapping_queries, overlapping_queries, region_pinned_queries,
};
use vitex_bench::{fmt_dur, header, scale_arg, throughput, time_best, time_once};
use vitex_core::{DispatchMode, MultiEngine, MultiOutput, PlanMode};
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlsax::XmlReader;

struct Row {
    build: std::time::Duration,
    groups: usize,
    trie_nodes: u64,
    run: std::time::Duration,
    out: MultiOutput,
}

fn run_once(queries: &[String], plan: PlanMode, xml: &str) -> Row {
    let (mut multi, build) = time_once(|| {
        let mut multi = MultiEngine::with_options(DispatchMode::Indexed, plan);
        for q in queries {
            multi.add_query(q).expect("valid query");
        }
        multi
    });
    let trie_nodes = multi.plan_stats().trie_nodes;
    let (out, run) = time_best(3, || multi.run(XmlReader::from_str(xml), |_, _| {}).expect("run"));
    Row { build, groups: multi.group_count(), trie_nodes, run, out }
}

fn main() {
    header(
        "E11: prefix-shared execution (runtime step trie)",
        "per-event main-path step executions scale with distinct trie nodes, \
         not with the number of standing queries",
    );
    let scale = scale_arg();
    let xml = auction::to_string(&AuctionConfig::sized(((1 << 20) as f64 * scale) as u64));

    println!(
        "{:>9} | {:>5} | {:>12} | {:>8} | {:>6} | {:>5} | {:>9} | {:>7} | {:>11} | {:>11} | {:>9}",
        "workload",
        "k",
        "plan",
        "build",
        "groups",
        "trie",
        "run",
        "MB/s",
        "steps/event",
        "saved/event",
        "matches"
    );
    type Workload = fn(usize) -> Vec<String>;
    let workloads: [(&str, Workload); 3] = [
        ("pinned", region_pinned_queries),
        ("distinct", distinct_overlapping_queries),
        ("duplicate", overlapping_queries),
    ];
    for (workload, make) in workloads {
        for k in [100usize, 1000] {
            let queries = make(k);
            let shared = run_once(&queries, PlanMode::Shared, &xml);
            let prefix = run_once(&queries, PlanMode::PrefixShared, &xml);
            assert_eq!(shared.out.matches, prefix.out.matches, "plan modes must agree bit for bit");
            assert_eq!(shared.out.stats, prefix.out.stats, "machine statistics must agree");
            let events = prefix.out.events.max(1);
            for (label, row) in [("shared", &shared), ("prefix-shared", &prefix)] {
                let steps = row.out.plan.prefix_steps_executed as f64 / events as f64;
                let saved = row.out.plan.prefix_steps_saved as f64 / events as f64;
                println!(
                    "{:>9} | {:>5} | {:>12} | {:>8} | {:>6} | {:>5} | {:>9} | {:>7.1} | {:>11.2} | {:>11.2} | {:>9}",
                    workload,
                    k,
                    label,
                    fmt_dur(row.build),
                    row.groups,
                    row.trie_nodes,
                    fmt_dur(row.run),
                    throughput(xml.len(), row.run),
                    steps,
                    saved,
                    row.out.matches.iter().map(|m| m.len() as u64).sum::<u64>(),
                );
            }
            println!(
                "{:>9} | {:>5} | {:>12} | {:>7.1}x run | forks/event {:.2} | stack peak {}B",
                workload,
                k,
                "ratio",
                shared.run.as_secs_f64() / prefix.run.as_secs_f64(),
                prefix.out.plan.prefix_forks as f64 / events as f64,
                prefix.out.plan.prefix_stack_bytes,
            );
            // Acceptance: shared main-path planning is bounded by the trie
            // size per event — per-group planning would execute
            // Θ(groups × matching steps) checks instead.
            assert!(
                prefix.out.plan.prefix_steps_executed <= prefix.out.events * prefix.trie_nodes,
                "step executions must be bounded by events × trie nodes"
            );
        }
    }
    println!(
        "\nshape check: `steps/event` for the prefix-shared rows is bounded by\n\
         the trie-node count and barely moves from k = 100 to k = 1000 in the\n\
         distinct workload, while `groups` (what per-group planning scales\n\
         with) grows 10x; `saved/event` is the per-group work the trie\n\
         absorbed. Run on a multi-core host for stable wall-clock ratios."
    );
}
