//! E1 — memory stability (paper §2, Feature 3).
//!
//! Claim: "experiments have shown that the memory requirement of ViteX
//! when processing queries on a 75 MB Protein dataset is stable at 1MB."
//!
//! We stream synthetic protein data of growing size through
//! `//ProteinEntry[reference]/@id` and report the machine's peak resident
//! bytes. The expected shape: flat in |D| (the data is shallow, so stacks
//! never grow), and orders of magnitude below the document size.
//!
//! The generator streams straight into the engine through a pipe-like
//! reader, so the document is never materialized — the measured bytes are
//! the whole evaluation state.

use vitex_bench::{fmt_bytes, header, scale_arg};
use vitex_core::Engine;
use vitex_xmlgen::protein::{self, ProteinConfig};
use vitex_xmlsax::XmlReader;
use vitex_xpath::QueryTree;

fn main() {
    header(
        "E1: machine memory vs document size",
        "memory stable at ~1 MB while streaming a 75 MB Protein dataset",
    );
    let scale = scale_arg();
    let query = "//ProteinEntry[reference]/@id";
    let tree = QueryTree::parse(query).expect("valid query");
    let mut engine = Engine::new(&tree).expect("machine");
    println!("query: {query}\n");
    println!(
        "{:>10} | {:>10} | {:>14} | {:>12} | {:>10}",
        "doc size", "matches", "peak machine", "peak entries", "ratio"
    );
    let sizes_mb = [1u64, 2, 4, 8, 16, 32, 48, 64, 75, 96];
    for &mb in &sizes_mb {
        let bytes = ((mb as f64) * scale * (1 << 20) as f64) as u64;
        if bytes == 0 {
            continue;
        }
        let xml = protein::to_string(&ProteinConfig::sized(bytes));
        let out =
            engine.run(XmlReader::from_str(&xml), |_| {}).expect("protein data is well-formed");
        println!(
            "{:>10} | {:>10} | {:>14} | {:>12} | 1:{:.0}",
            fmt_bytes(xml.len() as u64),
            out.matches.len(),
            fmt_bytes(out.stats.peak_bytes),
            out.stats.peak_entries,
            xml.len() as f64 / out.stats.peak_bytes.max(1) as f64,
        );
    }
    println!(
        "\nshape check: the 'peak machine' column must be flat while 'doc size'\n\
         grows 96× — the paper's constant-memory claim."
    );
}
