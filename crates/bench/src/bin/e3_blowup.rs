//! E3 — polynomial TwigM vs exponential naive enumeration (paper §1 + §2
//! Feature 1).
//!
//! Two axes:
//!
//! 1. **Nesting depth** at fixed query (the paper's Figure-1 family
//!    scaled): the naive evaluator's stored-match count grows
//!    polynomially-of-high-degree / exponentially with the number of `//`
//!    steps; TwigM stays linear.
//! 2. **Query length** at fixed depth (`//a//a//…//a` over uniform
//!    nesting): C(depth, steps) embeddings for the strawman — the
//!    exponential-in-|Q| behaviour the paper's complexity argument names —
//!    vs TwigM's |Q|·depth stacks.

use vitex_baseline::{naive, NaiveConfig};
use vitex_bench::{fmt_bytes, fmt_dur, header, run_query, scale_arg, time_once};
use vitex_xmlgen::recursive::{self, RecursiveConfig};
use vitex_xmlsax::XmlReader;
use vitex_xpath::QueryTree;

const CAP: usize = 3_000_000;

fn naive_cell(tree: &QueryTree, xml: &str) -> (String, String) {
    let eval = naive::NaiveEvaluator::new(tree, NaiveConfig { max_embeddings: CAP });
    let (res, t) = time_once(|| eval.run(XmlReader::from_str(xml)));
    match res {
        Ok(o) => (o.peak_embeddings.to_string(), fmt_dur(t)),
        Err(naive::NaiveError::Blowup { .. }) => (format!(">{CAP} (cap)"), "DNF".into()),
        Err(e) => (format!("error: {e}"), "-".into()),
    }
}

fn main() {
    header(
        "E3: TwigM vs explicit pattern-match enumeration",
        "naive match storage is exponential; TwigM is polynomial (O(|D||Q|(|Q|+B)))",
    );
    let scale = scale_arg();

    // Axis 1: paper query, growing section/table nesting.
    let q1 = "//section[author]//table[position]//cell";
    let tree1 = QueryTree::parse(q1).expect("valid query");
    println!("axis 1 — query {q1}, square towers of depth d:\n");
    println!(
        "{:>5} | {:>9} | {:>10} {:>12} | {:>14} {:>10}",
        "d", "doc", "twigm", "twigm peak", "naive stored", "naive"
    );
    for &d in &[4usize, 8, 16, 32, 64] {
        let d = ((d as f64) * scale).max(2.0) as usize;
        let xml = recursive::to_string(&RecursiveConfig::square(d));
        let (out, t) = time_once(|| run_query(&xml, &tree1));
        assert_eq!(out.matches.len(), 1);
        let (stored, ntime) = naive_cell(&tree1, &xml);
        println!(
            "{:>5} | {:>9} | {:>10} {:>12} | {:>14} {:>10}",
            d,
            fmt_bytes(xml.len() as u64),
            fmt_dur(t),
            fmt_bytes(out.stats.peak_bytes),
            stored,
            ntime,
        );
    }

    // Axis 2: chain queries //a//a//…//a over uniform <a> nesting.
    println!("\naxis 2 — //a chains of k steps over 32-deep uniform nesting:\n");
    println!(
        "{:>5} | {:>10} {:>12} | {:>14} {:>10}",
        "k", "twigm", "twigm peak", "naive stored", "naive"
    );
    let depth = (32_f64 * scale).max(4.0) as usize;
    let xml = recursive::uniform_nesting(depth);
    for k in [2usize, 3, 4, 5, 6, 7, 8] {
        let query = "//a".repeat(k);
        let tree = QueryTree::parse(&query).expect("valid query");
        let (out, t) = time_once(|| run_query(&xml, &tree));
        let (stored, ntime) = naive_cell(&tree, &xml);
        println!(
            "{:>5} | {:>10} {:>12} | {:>14} {:>10}",
            k,
            fmt_dur(t),
            fmt_bytes(out.stats.peak_bytes),
            stored,
            ntime,
        );
        let _ = out;
    }
    println!(
        "\nshape check: 'naive stored' must grow combinatorially (≈ C({depth},k))\n\
         and hit the cap; TwigM's time and peak stay low-degree polynomial."
    );
}
