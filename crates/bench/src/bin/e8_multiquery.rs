//! E8 — multi-query (pub/sub) scaling with the dispatch index.
//!
//! The paper motivates ViteX with publish/subscribe systems: many standing
//! queries over one stream. This experiment measures one scan of a
//! disjoint-name workload (one query per element name) at growing k,
//! comparing scan dispatch (every event pokes every machine — the
//! pre-refactor behaviour) against indexed dispatch (an event touches only
//! machines whose query mentions that name, plus wildcard machines).
//!
//! Expected shape: scan time grows ~linearly in k while indexed time stays
//! near-flat, so the speedup column grows with k and clears 2× well before
//! k = 100.

use vitex_bench::multiquery::{disjoint_queries, pubsub_doc};
use vitex_bench::{fmt_bytes, fmt_dur, header, scale_arg, time_best};
use vitex_core::{DispatchMode, MultiEngine};
use vitex_xmlsax::XmlReader;

fn run_once(queries: &[String], mode: DispatchMode, xml: &str) -> (u64, std::time::Duration) {
    let mut multi = MultiEngine::with_dispatch(mode);
    for q in queries {
        multi.add_query(q).expect("valid query");
    }
    let (matches, t) = time_best(3, || {
        let out = multi.run(XmlReader::from_str(xml), |_, _| {}).expect("run");
        out.matches.iter().map(|m| m.len() as u64).sum::<u64>()
    });
    (matches, t)
}

fn main() {
    header(
        "E8: multi-query scaling (pub/sub)",
        "k standing queries over one scan; indexed dispatch keeps per-event cost \
         proportional to interested machines, not k",
    );
    let scale = scale_arg();
    let records = (20_000_f64 * scale).max(500.0) as usize;

    println!(
        "{:>5} | {:>10} | {:>10} | {:>10} | {:>8} | {:>9}",
        "k", "doc", "scan", "indexed", "speedup", "matches"
    );
    for k in [1usize, 10, 100, 1000] {
        let tags = k.max(100);
        let xml = pubsub_doc(tags, records);
        let queries = disjoint_queries(k);
        let (m_scan, t_scan) = run_once(&queries, DispatchMode::Scan, &xml);
        let (m_idx, t_idx) = run_once(&queries, DispatchMode::Indexed, &xml);
        assert_eq!(m_scan, m_idx, "dispatch modes must agree");
        println!(
            "{:>5} | {:>10} | {:>10} | {:>10} | {:>7.1}x | {:>9}",
            k,
            fmt_bytes(xml.len() as u64),
            fmt_dur(t_scan),
            fmt_dur(t_idx),
            t_scan.as_secs_f64() / t_idx.as_secs_f64(),
            m_idx,
        );
    }
    println!(
        "\nshape check: the scan column grows ~linearly with k; the indexed\n\
         column stays near the k=1 cost, so the speedup column tracks k."
    );
}
