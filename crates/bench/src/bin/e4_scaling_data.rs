//! E4 — time scales linearly in document size (paper §2, Feature 1:
//! "polynomial time complexity in both data and query size").
//!
//! Three dataset shapes (protein, auction, recursive towers), one
//! representative query each, sizes doubling: throughput (MB/s) should be
//! roughly constant per shape, i.e. time linear in |D|.

use vitex_bench::{fmt_dur, header, run_query, scale_arg, throughput, time_best};
use vitex_xmlgen::{auction, protein, recursive};
use vitex_xpath::QueryTree;

fn row(label: &str, xml: &str, tree: &QueryTree) {
    let reps = if xml.len() < 8 << 20 { 3 } else { 1 };
    let (out, t) = time_best(reps, || run_query(xml, tree));
    println!(
        "{:>10} {:>9.1}MB | {:>10} | {:>8.1} MB/s | {:>9} matches",
        label,
        xml.len() as f64 / (1 << 20) as f64,
        fmt_dur(t),
        throughput(xml.len(), t),
        out.matches.len(),
    );
}

fn main() {
    header("E4: throughput vs document size", "evaluation time linear in |D| across data shapes");
    let scale = scale_arg();
    let mb = |m: u64| ((m as f64) * scale * (1 << 20) as f64) as u64;

    println!("protein — //ProteinEntry[reference]/@id");
    let tree = QueryTree::parse("//ProteinEntry[reference]/@id").unwrap();
    for m in [2u64, 4, 8, 16, 32] {
        let xml = protein::to_string(&protein::ProteinConfig::sized(mb(m)));
        row("protein", &xml, &tree);
    }

    println!("\nauction — //regions//item/description//listitem");
    let tree = QueryTree::parse("//regions//item/description//listitem").unwrap();
    for m in [2u64, 4, 8, 16] {
        let xml = auction::to_string(&auction::AuctionConfig::sized(mb(m)));
        row("auction", &xml, &tree);
    }

    println!("\nrecursive towers — //section[author]//table[position]//cell");
    let tree = QueryTree::parse("//section[author]//table[position]//cell").unwrap();
    for towers in [2_000usize, 4_000, 8_000, 16_000] {
        let towers = ((towers as f64) * scale).max(16.0) as usize;
        let cfg = recursive::RecursiveConfig { towers, ..recursive::RecursiveConfig::square(6) };
        let xml = recursive::to_string(&cfg);
        row("recursive", &xml, &tree);
    }

    println!("\nshape check: MB/s roughly constant down each column block → linear in |D|.");
}
