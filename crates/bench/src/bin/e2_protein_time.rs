//! E2 — end-to-end time and SAX share (paper §2, Feature 5).
//!
//! Claim: "//ProteinEntry[reference]/@id executing on a 75MB Protein
//! Dataset only requires 6.02 seconds (including 4.43 seconds for SAX
//! parsing)" — i.e. the machine adds ~36% on top of parsing; the SAX share
//! is ~74%.
//!
//! Absolute seconds are hardware-bound (2005 testbed vs today); the
//! reproducible shape is the *share*: SAX parsing must dominate, the TwigM
//! overhead must be a modest constant factor.

use vitex_bench::{fmt_dur, header, run_query, sax_only, scale_arg, throughput, time_best};
use vitex_xmlgen::protein::{self, ProteinConfig};
use vitex_xpath::QueryTree;

fn main() {
    header(
        "E2: protein query time, SAX share",
        "6.02 s total on 75 MB, of which 4.43 s (74%) is SAX parsing",
    );
    let scale = scale_arg();
    let query = "//ProteinEntry[reference]/@id";
    let tree = QueryTree::parse(query).expect("valid query");
    println!("query: {query}\n");
    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10} | {:>9} | {:>8}",
        "size", "sax", "MB/s", "total", "MB/s", "sax share", "matches"
    );
    for &mb in &[4u64, 16, 48, 75] {
        let bytes = ((mb as f64) * scale * (1 << 20) as f64) as u64;
        let xml = protein::to_string(&ProteinConfig::sized(bytes));
        let reps = if mb <= 16 { 3 } else { 1 };
        let (_, sax) = time_best(reps, || sax_only(&xml));
        let (out, total) = time_best(reps, || run_query(&xml, &tree));
        println!(
            "{:>8} | {:>10} {:>10.1} | {:>10} {:>10.1} | {:>8.0}% | {:>8}",
            format!("{mb}MB"),
            fmt_dur(sax),
            throughput(xml.len(), sax),
            fmt_dur(total),
            throughput(xml.len(), total),
            100.0 * sax.as_secs_f64() / total.as_secs_f64(),
            out.matches.len(),
        );
    }
    println!(
        "\nshape check: 'sax share' should be the majority of the runtime\n\
         (paper: 74%), and 'total' should scale linearly with size."
    );
}
