//! E9 — shared-plan multi-query evaluation (dedup + prefix trie).
//!
//! Realistic subscription sets overlap heavily: the same `/site/…`
//! auction-feed queries registered by thousands of subscribers. This
//! experiment registers `k` standing queries drawn from a small pool of
//! overlapping shapes (literal duplicates plus shared prefixes; see
//! `multiquery::OVERLAP_SHAPES`) and compares the shared planner
//! (canonicalize → dedupe into plan groups → fan out) against unshared
//! planning (one TwigM machine per registration, the pre-planner
//! behavior) over one scan of an XMark-style auction document.
//!
//! Expected shape: shared planning runs `min(k, shapes)` machines no
//! matter how large `k` grows, so per-event work, build memory and build
//! time all flatten while the unshared columns grow ~linearly in `k`.
//! The acceptance bar for the planner is ≥ 2× run throughput and lower
//! plan memory at k = 1000.

use vitex_bench::multiquery::overlapping_queries;
use vitex_bench::{fmt_bytes, fmt_dur, header, scale_arg, throughput, time_best, time_once};
use vitex_core::{DispatchMode, MultiEngine, PlanMode};
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlsax::XmlReader;

struct Row {
    build: std::time::Duration,
    plan_bytes: u64,
    groups: usize,
    run: std::time::Duration,
    matches: u64,
}

fn run_once(queries: &[String], plan: PlanMode, xml: &str) -> Row {
    let (mut multi, build) = time_once(|| {
        let mut multi = MultiEngine::with_options(DispatchMode::Indexed, plan);
        for q in queries {
            multi.add_query(q).expect("valid query");
        }
        multi
    });
    let stats = multi.plan_stats();
    let (matches, run) = time_best(3, || {
        let out = multi.run(XmlReader::from_str(xml), |_, _| {}).expect("run");
        out.matches.iter().map(|m| m.len() as u64).sum::<u64>()
    });
    Row { build, plan_bytes: stats.plan_bytes, groups: multi.group_count(), run, matches }
}

fn main() {
    header(
        "E9: shared-plan pub/sub (dedup + prefix trie)",
        "k overlapping standing queries collapse to min(k, shapes) machines; \
         per-event work, build memory and build time stop scaling with duplicates",
    );
    let scale = scale_arg();
    let xml = auction::to_string(&AuctionConfig::sized(((1 << 20) as f64 * scale) as u64));

    println!(
        "{:>5} | {:>8} | {:>9} | {:>10} | {:>6} | {:>10} | {:>8} | {:>9}",
        "k", "plan", "build", "plan mem", "groups", "run", "MB/s", "matches"
    );
    for k in [10usize, 100, 1000] {
        let queries = overlapping_queries(k);
        let shared = run_once(&queries, PlanMode::Shared, &xml);
        let unshared = run_once(&queries, PlanMode::Unshared, &xml);
        assert_eq!(shared.matches, unshared.matches, "plan modes must agree");
        for (label, row) in [("shared", &shared), ("unshared", &unshared)] {
            println!(
                "{:>5} | {:>8} | {:>9} | {:>10} | {:>6} | {:>10} | {:>8.1} | {:>9}",
                k,
                label,
                fmt_dur(row.build),
                fmt_bytes(row.plan_bytes),
                row.groups,
                fmt_dur(row.run),
                throughput(xml.len(), row.run),
                row.matches,
            );
        }
        println!(
            "{:>5} | {:>8} | {:>8.1}x | {:>9.1}x | {:>6} | {:>9.1}x |",
            k,
            "ratio",
            unshared.build.as_secs_f64() / shared.build.as_secs_f64(),
            unshared.plan_bytes as f64 / shared.plan_bytes as f64,
            "",
            unshared.run.as_secs_f64() / shared.run.as_secs_f64(),
        );
    }
    println!(
        "\nshape check: shared `groups` stays at the shape-pool size while\n\
         unshared grows with k, so the run/plan-mem ratios track the dedup\n\
         ratio (k / shapes). The k = 1000 acceptance bar is >= 2x run\n\
         throughput and < 1x plan memory for the shared rows."
    );
}
