//! # vitex-bench — the experiment harness
//!
//! One binary per experiment row of DESIGN.md §5 (E1–E7), each printing the
//! table its paper counterpart reports, plus Criterion benches for the
//! timing-sensitive experiments. Run everything with:
//!
//! ```text
//! cargo run --release -p vitex-bench --bin e1_memory
//! cargo run --release -p vitex-bench --bin e2_protein_time
//! cargo run --release -p vitex-bench --bin e3_blowup
//! cargo run --release -p vitex-bench --bin e4_scaling_data
//! cargo run --release -p vitex-bench --bin e5_scaling_query
//! cargo run --release -p vitex-bench --bin e6_ablation
//! cargo run --release -p vitex-bench --bin e7_build_time
//! cargo bench -p vitex-bench
//! ```
//!
//! Experiment bins accept an optional `--scale <f64>` argument multiplying
//! the default workload sizes (EXPERIMENTS.md records scale = 1 runs).

use std::time::{Duration, Instant};

use vitex_core::{evaluate_reader, EvalOutput};
use vitex_xmlsax::{XmlEvent, XmlReader};
use vitex_xpath::QueryTree;

/// Parses `--scale <f>` from argv (default 1.0).
pub fn scale_arg() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Times one invocation of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed())
}

/// Times `f` over `reps` runs and returns the minimum (the conventional
/// low-noise summary for deterministic workloads).
pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let mut best: Option<Duration> = None;
    let mut value = None;
    for _ in 0..reps.max(1) {
        let (v, d) = time_once(&mut f);
        if best.is_none_or(|b| d < b) {
            best = Some(d);
        }
        value = Some(v);
    }
    (value.expect("reps >= 1"), best.expect("reps >= 1"))
}

/// Pure SAX scan of an in-memory document; returns the event count.
pub fn sax_only(xml: &str) -> u64 {
    let mut events = 0;
    let mut reader = XmlReader::from_str(xml);
    loop {
        match reader.next_event().expect("well-formed benchmark data") {
            XmlEvent::EndDocument => return events,
            _ => events += 1,
        }
    }
}

/// Full-pipeline evaluation of a prepared tree over an in-memory document.
pub fn run_query(xml: &str, tree: &QueryTree) -> EvalOutput {
    evaluate_reader(XmlReader::from_str(xml), tree).expect("benchmark run")
}

/// Formats a duration in engineering-friendly units.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Formats bytes with binary units.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// MB/s throughput.
pub fn throughput(bytes: usize, d: Duration) -> f64 {
    bytes as f64 / (1 << 20) as f64 / d.as_secs_f64()
}

/// Prints an experiment header in a fixed format EXPERIMENTS.md links to.
pub fn header(id: &str, claim: &str) {
    println!("=== {id} ===");
    println!("paper claim: {claim}");
    println!();
}

/// The multi-query (pub/sub) workload shared by `bench_multi` and the E8
/// experiment binary: `tags` distinct element names cycled through
/// `records` records, and one standing query per name — the disjoint-name
/// regime where the dispatch index shines (every event interests exactly
/// one machine, so poking all `k` is pure waste).
pub mod multiquery {
    /// A document of `records` records cycling through `tags` distinct
    /// element names, each record carrying an id attribute, a per-tag
    /// witness child and a text payload. The witness name is suffixed with
    /// the tag index so the query set stays *fully* disjoint — a witness
    /// name shared across queries would rightly be dispatched to every
    /// machine and wash out the regime this workload isolates.
    pub fn pubsub_doc(tags: usize, records: usize) -> String {
        assert!(tags > 0);
        let mut xml = String::with_capacity(records * 52);
        xml.push_str("<stream>");
        for r in 0..records {
            let t = r % tags;
            xml.push_str(&format!("<t{t} id=\"r{r}\"><w{t}/><payload>v{r}</payload></t{t}>"));
        }
        xml.push_str("</stream>");
        xml
    }

    /// `k` standing queries over disjoint names: `//t{i}[w{i}]/@id`.
    pub fn disjoint_queries(k: usize) -> Vec<String> {
        (0..k).map(|i| format!("//t{i}[w{i}]/@id")).collect()
    }

    /// The distinct query shapes behind [`overlapping_queries`]: realistic
    /// auction-feed subscriptions over the `vitex-xmlgen` XMark-style
    /// document, sharing long `/site/…` prefixes. Two entries are
    /// deliberately the *same* query with predicates in different order —
    /// the planner must dedupe them through canonicalization, not string
    /// equality.
    pub const OVERLAP_SHAPES: &[&str] = &[
        "/site/regions/africa/item/@id",
        "/site/regions/asia/item/@id",
        "/site/regions/europe/item/@id",
        "/site/regions/africa/item/name",
        "/site/regions/namerica/item/quantity",
        "/site/regions//item/description/parlist/listitem",
        "/site/people/person/@id",
        "/site/people/person/name",
        "/site/people/person/emailaddress",
        "/site/people/person/profile/@income",
        "//item[payment = 'Creditcard']/@id",
        "//item[quantity][payment]/name",
        "//item[payment][quantity]/name", // == previous after canonicalization
        "//person[profile/interest]/name",
        "//person[profile]/emailaddress",
        "//regions//item/name",
    ];

    /// `k` standing queries for the shared-plan regime (experiment E9):
    /// the [`OVERLAP_SHAPES`] pool cycled to length `k`, so a 1000-query
    /// set contains ~60 literal duplicates of each shape plus heavy
    /// `/site/…` prefix overlap across shapes. Dedup collapses it to
    /// `min(k, distinct shapes)` machines; unshared planning runs all `k`.
    pub fn overlapping_queries(k: usize) -> Vec<String> {
        (0..k).map(|i| OVERLAP_SHAPES[i % OVERLAP_SHAPES.len()].to_string()).collect()
    }

    /// `k` **structurally distinct** standing queries for the sharded
    /// regime (experiment E10): the same auction-feed shapes, but each
    /// instance carries a distinct comparison literal (subscriber `i`
    /// watching *their* item/person), so canonicalization cannot collapse
    /// them — the plan really runs `k` machines, most of them interested
    /// in the same hot element names. Per-event work is therefore `O(k)`
    /// on one core, which is exactly what partitioning groups across
    /// shards divides.
    pub fn distinct_overlapping_queries(k: usize) -> Vec<String> {
        (0..k)
            .map(|i| match i % 4 {
                0 => format!("/site/regions//item[payment = 'P{i}']/@id"),
                1 => format!("//item[quantity][payment = 'Q{i}']/name"),
                2 => format!("//person[emailaddress = 'mailto:p{i}@example.org']/name"),
                _ => format!("/site/people/person[name = 'N{i}']/@id"),
            })
            .collect()
    }

    /// `k` **region-pinned** distinct subscriptions for the prefix-shared
    /// regime (experiment E11): subscriber `i` watches one region's items
    /// for *their* item id —
    /// `/site/regions/{region}/item[@id = 'itemI']/{field}`. The
    /// distinguishing predicate is an **inline attribute test** (it folds
    /// into the `item` machine node — no predicate-subtree steps), so the
    /// whole per-event planning surface is the main path the trie shares:
    /// an `<item>` or `<name>` event in the *wrong* region fails one trie
    /// check instead of `k / 6` per-group checks. This isolates what
    /// prefix sharing accelerates; `distinct_overlapping_queries` keeps
    /// measuring the mixed predicate-fork regime.
    pub fn region_pinned_queries(k: usize) -> Vec<String> {
        const REGIONS: [&str; 6] =
            ["africa", "asia", "australia", "europe", "namerica", "samerica"];
        const FIELDS: [&str; 4] = ["name", "quantity", "payment", "description"];
        (0..k)
            .map(|i| {
                format!(
                    "/site/regions/{}/item[@id = 'item{}']/{}",
                    REGIONS[i % REGIONS.len()],
                    i,
                    FIELDS[(i / REGIONS.len()) % FIELDS.len()],
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
        assert!(fmt_dur(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_dur(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(2)).ends_with('s'));
    }

    #[test]
    fn sax_only_counts_events() {
        // StartDocument + <a> + <b> + </b> + </a> (EndDocument excluded).
        assert_eq!(sax_only("<a><b/></a>"), 5);
    }

    #[test]
    fn run_query_works() {
        let tree = QueryTree::parse("//b").unwrap();
        let out = run_query("<a><b/></a>", &tree);
        assert_eq!(out.matches.len(), 1);
    }

    #[test]
    fn time_best_returns_min() {
        let (_, d) = time_best(3, || std::thread::sleep(Duration::from_millis(1)));
        assert!(d >= Duration::from_millis(1));
    }
}
