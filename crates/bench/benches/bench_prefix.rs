//! Prefix-shared execution throughput: one scan at k *distinct* standing
//! queries with heavily overlapping main paths, `PlanMode::Shared`
//! (per-group main-path planning) vs `PlanMode::PrefixShared` (one trie
//! check per distinct step per event).
//!
//! The workload is the distinct-literal regime of experiment E11 /
//! `e10_sharded`: canonicalization cannot collapse the queries, so the
//! plan really runs k machines — which is exactly the per-event
//! main-path cost the runtime trie absorbs. The duplicate-heavy E9
//! workload is measured too: dedup collapses it to ~16 groups first, so
//! the residual prefix win is smaller but still present.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vitex_bench::multiquery::{distinct_overlapping_queries, region_pinned_queries};
use vitex_core::{DispatchMode, MultiEngine, PlanMode};
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlsax::XmlReader;

fn build_engine(queries: &[String], plan: PlanMode) -> MultiEngine {
    let mut multi = MultiEngine::with_options(DispatchMode::Indexed, plan);
    for q in queries {
        multi.add_query(q).expect("valid query");
    }
    multi
}

fn bench_prefix(c: &mut Criterion) {
    let xml = auction::to_string(&AuctionConfig::sized(1 << 20));
    type Workload = fn(usize) -> Vec<String>;
    let workloads: [(&str, Workload); 2] =
        [("pinned", region_pinned_queries), ("distinct", distinct_overlapping_queries)];
    for (workload, make) in workloads {
        let mut group = c.benchmark_group(format!("prefix_sharing_{workload}"));
        group.sample_size(10).measurement_time(Duration::from_secs(2));
        group.throughput(Throughput::Bytes(xml.len() as u64));
        for k in [100usize, 1000] {
            let queries = make(k);
            for (label, plan) in
                [("shared", PlanMode::Shared), ("prefix_shared", PlanMode::PrefixShared)]
            {
                let mut multi = build_engine(&queries, plan);
                group.bench_with_input(BenchmarkId::new(label, k), &xml, |b, xml| {
                    b.iter(|| {
                        multi
                            .run(XmlReader::from_str(xml), |_, _| {})
                            .expect("well-formed workload")
                            .elements
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_prefix);
criterion_main!(benches);
