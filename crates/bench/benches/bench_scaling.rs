//! Criterion counterpart of experiments E4 (linear in |D|) and E5
//! (polynomial in |Q|).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vitex_bench::run_query;
use vitex_xmlgen::random::{self, RandomConfig};
use vitex_xmlgen::{auction, protein};
use vitex_xpath::QueryTree;

fn bench_data_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_data_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    let tree = QueryTree::parse("//ProteinEntry[reference]/@id").unwrap();
    for mb in [1u64, 2, 4] {
        let xml = protein::to_string(&protein::ProteinConfig::sized(mb << 20));
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("protein", format!("{mb}MB")), &xml, |b, xml| {
            b.iter(|| run_query(xml, &tree).matches.len())
        });
    }
    let tree = QueryTree::parse("//regions//item/description//listitem").unwrap();
    for mb in [1u64, 2, 4] {
        let xml = auction::to_string(&auction::AuctionConfig::sized(mb << 20));
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("auction", format!("{mb}MB")), &xml, |b, xml| {
            b.iter(|| run_query(xml, &tree).matches.len())
        });
    }
    group.finish();
}

fn bench_query_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_query_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(1));
    let xml = {
        let mut cfg = RandomConfig::seeded(42);
        cfg.max_elements = 20_000;
        cfg.max_depth = 20;
        cfg.tags = vec!["a".into(), "b".into(), "c".into()];
        random::to_string(&cfg)
    };
    for k in [2usize, 8, 32] {
        let query = "//a".repeat(k);
        let tree = QueryTree::parse(&query).unwrap();
        group.bench_with_input(BenchmarkId::new("chain", k), &tree, |b, tree| {
            b.iter(|| run_query(&xml, tree).matches.len())
        });
    }
    for n in [2usize, 8, 32] {
        let preds: String = (0..n).map(|i| if i % 2 == 0 { "[b]" } else { "[c]" }).collect();
        let tree = QueryTree::parse(&format!("//a{preds}")).unwrap();
        group.bench_with_input(BenchmarkId::new("predicates", n), &tree, |b, tree| {
            b.iter(|| run_query(&xml, tree).matches.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_data_scaling, bench_query_scaling);
criterion_main!(benches);
