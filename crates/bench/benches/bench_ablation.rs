//! Criterion counterpart of experiment E6: compact/lazy candidate
//! propagation (the paper's design) vs eager fan-out to every compatible
//! ancestor, on deeply recursive data where the ancestor count is large.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vitex_core::{Engine, EvalMode};
use vitex_xmlgen::recursive::{self, RecursiveConfig};
use vitex_xmlsax::XmlReader;
use vitex_xpath::QueryTree;

fn bench_ablation(c: &mut Criterion) {
    let tree = QueryTree::parse("//section[author]//table[position]//cell").unwrap();
    let mut group = c.benchmark_group("e6_ablation");
    group.sample_size(10).measurement_time(Duration::from_secs(1));
    for depth in [16usize, 64] {
        let cfg = RecursiveConfig {
            towers: 32,
            position_on_outermost_only: false,
            ..RecursiveConfig::square(depth)
        };
        let xml = recursive::to_string(&cfg);
        for (label, mode) in [("compact", EvalMode::Compact), ("eager", EvalMode::Eager)] {
            group.bench_with_input(BenchmarkId::new(label, depth), &xml, |b, xml| {
                let mut engine = Engine::with_mode(&tree, mode).unwrap();
                b.iter(|| engine.run(XmlReader::from_str(xml), |_| {}).unwrap().stats.emitted)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
