//! SAX-parser microbenchmarks — the substrate whose cost the paper calls
//! out explicitly (74% of the E2 runtime). Separate series for the three
//! structural regimes the tokenizer has fast/slow paths for: markup-dense,
//! text-dense, and attribute-dense documents.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vitex_bench::sax_only;
use vitex_xmlgen::{protein, random, recursive};

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("sax_parser");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    let markup_dense = recursive::to_string(&{
        let mut cfg = recursive::RecursiveConfig::square(6);
        cfg.towers = 4000;
        cfg
    });
    let text_dense = protein::to_string(&protein::ProteinConfig {
        sequence_len: 4000,
        ..protein::ProteinConfig::sized(2 << 20)
    });
    let attr_dense = random::to_string(&{
        let mut cfg = random::RandomConfig::seeded(7);
        cfg.attr_prob = 0.9;
        cfg.max_elements = 40_000;
        cfg
    });

    for (label, xml) in
        [("markup_dense", &markup_dense), ("text_dense", &text_dense), ("attr_dense", &attr_dense)]
    {
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("events", label), xml, |b, xml| {
            b.iter(|| sax_only(xml))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
