//! Cost-ledger overhead: the E10 sharded workload (k = 1000 distinct
//! standing queries, 4 shards, warm session) with profiling disabled
//! and enabled.
//!
//! The acceptance bar for the attribution layer is that the *disabled*
//! row is indistinguishable from the baseline (the ledger handle is an
//! `Option` check — no allocation, no lock, nothing sampled) and the
//! *enabled* row costs at most low single-digit percent: the per-event
//! hot path is untouched (workers sample self-time on every 64th
//! machine touch only), the shared-trie billing is a per-push counter
//! bump on the document thread, and the fold into the ledger's mutex
//! happens once per document. `BENCH_profile.json` records the measured
//! baseline for the CI overhead check.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vitex_bench::multiquery::distinct_overlapping_queries;
use vitex_core::{DispatchMode, PlanMode, ShardedEngine};
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlsax::XmlReader;

fn build_engine(k: usize, shards: usize, profiled: bool) -> ShardedEngine {
    let mut engine = ShardedEngine::with_options(shards, DispatchMode::Indexed, PlanMode::Shared);
    engine.set_profiling(profiled);
    for q in distinct_overlapping_queries(k) {
        engine.add_query(&q).expect("valid query");
    }
    engine
}

fn bench_profile(c: &mut Criterion) {
    let xml = auction::to_string(&AuctionConfig::sized(1 << 20));
    let mut group = c.benchmark_group("profile_overhead");
    // Longer window than bench_telemetry: the acceptance check is a
    // ratio of minima, so each row needs enough samples for its min to
    // settle on a time-sliced CI core.
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.throughput(Throughput::Bytes(xml.len() as u64));
    for (label, profiled) in [("disabled", false), ("enabled", true)] {
        let mut engine = build_engine(1000, 4, profiled);
        group.bench_with_input(BenchmarkId::new(label, "k1000x4"), &xml, |b, xml| {
            engine
                .session(|session| {
                    b.iter(|| {
                        session
                            .run_document(XmlReader::from_str(xml), |_, _| {})
                            .expect("well-formed workload")
                            .elements
                    });
                    Ok(())
                })
                .expect("session");
        });
    }
    group.finish();
}

criterion_group!(benches, bench_profile);
criterion_main!(benches);
