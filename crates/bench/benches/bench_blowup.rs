//! Criterion counterpart of experiment E3: TwigM vs the naive
//! pattern-match enumerator as the `//a`-chain length grows over
//! recursive data. The naive series' time explodes combinatorially; the
//! TwigM series stays flat — the paper's §1 motivation, measured.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vitex_baseline::{naive, NaiveConfig};
use vitex_bench::run_query;
use vitex_xmlgen::recursive;
use vitex_xmlsax::XmlReader;
use vitex_xpath::QueryTree;

fn bench_blowup(c: &mut Criterion) {
    let xml = recursive::uniform_nesting(24);
    let mut group = c.benchmark_group("e3_blowup");
    group.sample_size(10).measurement_time(Duration::from_secs(1));
    for k in [2usize, 4, 6] {
        let query = "//a".repeat(k);
        let tree = QueryTree::parse(&query).unwrap();
        group.bench_with_input(BenchmarkId::new("twigm", k), &tree, |b, tree| {
            b.iter(|| run_query(&xml, tree).matches.len())
        });
        let eval = naive::NaiveEvaluator::new(&tree, NaiveConfig { max_embeddings: 10_000_000 });
        group.bench_with_input(BenchmarkId::new("naive", k), &eval, |b, eval| {
            b.iter(|| eval.run(XmlReader::from_str(&xml)).unwrap().matches.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_blowup);
criterion_main!(benches);
