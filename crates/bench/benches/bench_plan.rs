//! Shared-plan throughput: one scan at k overlapping registered queries,
//! with and without planner sharing (dedup + prefix trie).
//!
//! The workload is the overlap regime of experiment E9: queries cycled
//! from a small pool of realistic `/site/…` auction subscriptions, so a
//! large k is mostly literal duplicates. With sharing the engine runs
//! `min(k, shapes)` machines and fans results out to subscriber lists;
//! unshared it runs all k. The acceptance bar for the planner is ≥ 2×
//! at k = 1000.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vitex_bench::multiquery::overlapping_queries;
use vitex_core::{DispatchMode, MultiEngine, PlanMode};
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlsax::XmlReader;

fn build_engine(k: usize, plan: PlanMode) -> MultiEngine {
    let mut multi = MultiEngine::with_options(DispatchMode::Indexed, plan);
    for q in overlapping_queries(k) {
        multi.add_query(&q).expect("valid query");
    }
    multi
}

fn bench_plan(c: &mut Criterion) {
    let xml = auction::to_string(&AuctionConfig::sized(1 << 20));
    let mut group = c.benchmark_group("shared_plan_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Bytes(xml.len() as u64));
    for k in [10usize, 100, 1000] {
        for (label, plan) in [("shared", PlanMode::Shared), ("unshared", PlanMode::Unshared)] {
            let mut multi = build_engine(k, plan);
            group.bench_with_input(BenchmarkId::new(label, k), &xml, |b, xml| {
                b.iter(|| {
                    multi
                        .run(XmlReader::from_str(xml), |_, _| {})
                        .expect("well-formed workload")
                        .elements
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);
