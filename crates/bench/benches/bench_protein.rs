//! Criterion counterpart of experiment E2: the paper's protein query, with
//! SAX-only and full-pipeline series so the parse share is visible in the
//! report (paper: 4.43 s of 6.02 s on 75 MB).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vitex_bench::{run_query, sax_only};
use vitex_xmlgen::protein::{self, ProteinConfig};
use vitex_xpath::QueryTree;

fn bench_protein(c: &mut Criterion) {
    let tree = QueryTree::parse("//ProteinEntry[reference]/@id").unwrap();
    let mut group = c.benchmark_group("e2_protein");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for mb in [1u64, 4] {
        let xml = protein::to_string(&ProteinConfig::sized(mb << 20));
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("sax_only", format!("{mb}MB")), &xml, |b, xml| {
            b.iter(|| sax_only(xml))
        });
        group.bench_with_input(
            BenchmarkId::new("full_pipeline", format!("{mb}MB")),
            &xml,
            |b, xml| b.iter(|| run_query(xml, &tree).matches.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protein);
criterion_main!(benches);
