//! Criterion counterpart of experiment E7: machine construction time must
//! be linear in the query size (paper Feature 2).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vitex_core::MachineSpec;
use vitex_xpath::QueryTree;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_build");
    group.sample_size(20).measurement_time(Duration::from_secs(1));
    for k in [8usize, 64, 512, 4096] {
        let mut q = String::new();
        for i in 0..k {
            q.push_str("//n");
            q.push_str(&(i % 7).to_string());
            if i % 4 == 3 {
                q.push_str("[p]");
            }
        }
        let tree = QueryTree::parse(&q).unwrap();
        group.throughput(Throughput::Elements(tree.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse", k), &q, |b, q| {
            b.iter(|| vitex_xpath::parse(q).unwrap().size())
        });
        group.bench_with_input(BenchmarkId::new("compile", k), &tree, |b, tree| {
            b.iter(|| MachineSpec::compile(tree).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
