//! Multi-query scaling: throughput of one scan at k registered queries,
//! with and without the interned-name dispatch index.
//!
//! The workload is the disjoint-name pub/sub regime (one standing query
//! per element name): under scan dispatch every event pokes all k
//! machines, so throughput decays ~1/k; under indexed dispatch an event
//! touches only the interested machine and throughput stays flat. The
//! acceptance bar for the driver refactor is ≥ 2× at k = 100.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vitex_bench::multiquery::{disjoint_queries, pubsub_doc};
use vitex_core::{DispatchMode, MultiEngine};
use vitex_xmlsax::XmlReader;

fn build_engine(k: usize, mode: DispatchMode) -> MultiEngine {
    let mut multi = MultiEngine::with_dispatch(mode);
    for q in disjoint_queries(k) {
        multi.add_query(&q).expect("valid query");
    }
    multi
}

fn bench_multi(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_query_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for k in [1usize, 10, 100, 1000] {
        // Every query has matching records: tags == max(k, 100) names
        // cycled through enough records for a few MB of stream.
        let xml = pubsub_doc(k.max(100), 40_000);
        group.throughput(Throughput::Bytes(xml.len() as u64));
        for (label, mode) in [("indexed", DispatchMode::Indexed), ("scan", DispatchMode::Scan)] {
            let mut multi = build_engine(k, mode);
            group.bench_with_input(BenchmarkId::new(label, k), &xml, |b, xml| {
                b.iter(|| {
                    multi
                        .run(XmlReader::from_str(xml), |_, _| {})
                        .expect("well-formed workload")
                        .elements
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_multi);
criterion_main!(benches);
