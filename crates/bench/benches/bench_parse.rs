//! Parse front-end benchmarks: scalar vs. SWAR wide scanning on the
//! sequential reader, and the speculative chunked parallel reader at
//! several thread counts. Complements `bench_parser.rs` (which measures
//! structural regimes of the default sequential reader); this suite holds
//! the document fixed and varies the *front-end*.

use std::io::Cursor;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlsax::{EventSource, ParallelReader, ReaderConfig, XmlEvent, XmlReader};

fn count_events(mut src: impl EventSource) -> u64 {
    let mut events = 0u64;
    loop {
        match src.next_event().expect("well-formed benchmark data") {
            XmlEvent::EndDocument => return events,
            _ => events += 1,
        }
    }
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse_front_end");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    let xml = auction::to_string(&AuctionConfig::sized(2 << 20));
    group.throughput(Throughput::Bytes(xml.len() as u64));

    group.bench_with_input(BenchmarkId::new("sequential", "scalar"), &xml, |b, xml| {
        b.iter(|| {
            let cfg = ReaderConfig { wide_scan: false, ..ReaderConfig::default() };
            count_events(XmlReader::with_config(Cursor::new(xml.as_bytes()), cfg))
        })
    });
    group.bench_with_input(BenchmarkId::new("sequential", "wide"), &xml, |b, xml| {
        b.iter(|| count_events(XmlReader::from_str(xml)))
    });
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &xml, |b, xml| {
            b.iter(|| count_events(ParallelReader::from_bytes(xml.as_bytes().to_vec(), threads)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
