//! Telemetry overhead: the E10 sharded workload (k = 1000 distinct
//! standing queries, 4 shards, warm session) with telemetry disabled,
//! enabled, and enabled-with-a-parse-probe.
//!
//! The acceptance bar for the observability layer is that the *disabled*
//! row is indistinguishable from the pre-telemetry baseline (the handle
//! is a `None` check inlined at every record site — no atomics, no clock
//! reads), and the *enabled* row costs low single-digit percent: the hot
//! per-event path records only into relaxed atomics and a per-batch
//! histogram, never takes a lock, and folds the deterministic counters
//! once per document. `BENCH_telemetry.json` records the measured
//! baseline for the CI overhead check.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vitex_bench::multiquery::distinct_overlapping_queries;
use vitex_core::telemetry::Telemetry;
use vitex_core::{DispatchMode, PlanMode, ShardedEngine};
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlsax::XmlReader;

fn build_engine(k: usize, shards: usize, telemetry: Telemetry) -> ShardedEngine {
    let mut engine = ShardedEngine::with_options(shards, DispatchMode::Indexed, PlanMode::Shared);
    engine.set_telemetry(telemetry);
    for q in distinct_overlapping_queries(k) {
        engine.add_query(&q).expect("valid query");
    }
    engine
}

fn bench_telemetry(c: &mut Criterion) {
    let xml = auction::to_string(&AuctionConfig::sized(1 << 20));
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Bytes(xml.len() as u64));
    for (label, telemetry) in
        [("disabled", Telemetry::disabled()), ("enabled", Telemetry::enabled())]
    {
        let mut engine = build_engine(1000, 4, telemetry);
        group.bench_with_input(BenchmarkId::new(label, "k1000x4"), &xml, |b, xml| {
            engine
                .session(|session| {
                    b.iter(|| {
                        session
                            .run_document(XmlReader::from_str(xml), |_, _| {})
                            .expect("well-formed workload")
                            .elements
                    });
                    Ok(())
                })
                .expect("session");
        });
    }
    group.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
