//! Sharded-execution throughput: one auction scan at k = 1000 distinct
//! standing queries, partitioned across 1 / 2 / 4 / 8 worker threads.
//!
//! The workload is the distinct-literal regime of experiment E10: every
//! query is its own plan group and most groups watch the same hot element
//! names, so per-event machine work is `O(k)` — the term sharding
//! divides. The 1-shard row is the single-threaded engine itself (the
//! sharded path delegates), making the group a self-contained scaling
//! curve; on an N-core host the acceptance bar is ≥ 2× at 4 shards.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vitex_bench::multiquery::distinct_overlapping_queries;
use vitex_core::{DispatchMode, PlanMode, ShardedEngine};
use vitex_xmlgen::auction::{self, AuctionConfig};
use vitex_xmlsax::XmlReader;

fn build_engine(k: usize, shards: usize) -> ShardedEngine {
    let mut engine = ShardedEngine::with_options(shards, DispatchMode::Indexed, PlanMode::Shared);
    for q in distinct_overlapping_queries(k) {
        engine.add_query(&q).expect("valid query");
    }
    engine
}

fn bench_shard(c: &mut Criterion) {
    let xml = auction::to_string(&AuctionConfig::sized(1 << 20));
    let mut group = c.benchmark_group("sharded_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Bytes(xml.len() as u64));
    for shards in [1usize, 2, 4, 8] {
        let mut engine = build_engine(1000, shards);
        group.bench_with_input(BenchmarkId::new("k1000", shards), &xml, |b, xml| {
            // Measure the warm-session path: workers spawned and groups
            // partitioned once, documents streamed back-to-back — the
            // production shape, not per-document thread churn.
            engine
                .session(|session| {
                    b.iter(|| {
                        session
                            .run_document(XmlReader::from_str(xml), |_, _| {})
                            .expect("well-formed workload")
                            .elements
                    });
                    Ok(())
                })
                .expect("session");
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
