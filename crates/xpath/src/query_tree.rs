//! The normalized *query tree* (twig) — the structure the TwigM builder
//! consumes.
//!
//! The ViteX paper (Figure 3) draws the query as a tree: one node per tag /
//! wildcard, single-line edges for child axes, double-line edges for
//! descendant axes. This module materializes exactly that, with two
//! additions the paper's prose implies:
//!
//! * the **main path** — the chain of steps from the query root to the
//!   *result node* (the last location step, whose bindings are the query
//!   solutions); every other node belongs to a predicate subtree;
//! * per-node **value comparisons** (from `[p = 'v']`-style predicates).
//!
//! Node ids are dense indices (`0..len`), parents precede children, and the
//! root is id 0 — properties the machine's flat arrays rely on.

use std::fmt;

use crate::ast::{Axis, CmpOp, Condition, Literal, NodeTest, Query, Step};
use crate::error::{ParseError, ParseResult};

/// Index of a node in a [`QueryTree`].
pub type QNodeId = usize;

/// What kind of document node a query node binds to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element; `None` name is the wildcard `*`.
    Element {
        /// Element name, or `None` for `*`.
        name: Option<String>,
    },
    /// An attribute; `None` name is `@*`.
    Attribute {
        /// Attribute name, or `None` for `@*`.
        name: Option<String>,
    },
    /// A text node (`text()`).
    Text,
}

impl NodeKind {
    /// Whether the kind is an element test.
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }

    /// Whether the kind is an attribute test.
    pub fn is_attribute(&self) -> bool {
        matches!(self, NodeKind::Attribute { .. })
    }

    /// Whether an element/attribute with the given name matches this test.
    pub fn matches_name(&self, candidate: &str) -> bool {
        match self {
            NodeKind::Element { name } | NodeKind::Attribute { name } => {
                name.as_deref().is_none_or(|n| n == candidate)
            }
            NodeKind::Text => false,
        }
    }
}

/// One node of the query tree.
#[derive(Debug, Clone, PartialEq)]
pub struct QNode {
    /// This node's id (== its index).
    pub id: QNodeId,
    /// Parent node, `None` for the query root.
    pub parent: Option<QNodeId>,
    /// Axis on the incoming edge (from the parent, or from the document
    /// root for the query root).
    pub axis: Axis,
    /// The node test.
    pub kind: NodeKind,
    /// Optional value comparison (`[... = 'v']`) against this node's
    /// string-value (elements), value (attributes) or content (text).
    pub comparison: Option<(CmpOp, Literal)>,
    /// Predicate children: all must be matched for this node's subtree to
    /// be satisfied.
    pub pred_children: Vec<QNodeId>,
    /// The next main-path node below this one, if this node is on the main
    /// path and not the result node.
    pub main_child: Option<QNodeId>,
    /// Whether this node lies on the main path.
    pub on_main_path: bool,
}

impl QNode {
    /// The element/attribute name, if the test is named.
    pub fn name(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Element { name } | NodeKind::Attribute { name } => name.as_deref(),
            NodeKind::Text => None,
        }
    }

    /// Number of *flag slots* this node needs on the machine's stack
    /// entries: one per predicate child.
    pub fn flag_count(&self) -> usize {
        self.pred_children.len()
    }
}

/// The normalized query twig.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTree {
    nodes: Vec<QNode>,
    main_path: Vec<QNodeId>,
    original: String,
}

impl QueryTree {
    /// Normalizes a parsed query.
    ///
    /// Two semantic rewrites/validations happen here (beyond what the
    /// grammar can express):
    ///
    /// * A leading `//@attr` / `//text()` is rewritten to `//*/@attr` /
    ///   `//*/text()` — an exact XPath 1.0 equivalence (`//x` abbreviates
    ///   `/descendant-or-self::node()/x`, and only elements can own
    ///   attributes or text).
    /// * A leading `/@attr` or `/text()` selects nothing (the document
    ///   root node has neither) and is rejected with an explanatory error,
    ///   as is a **non-leading** descendant-axis attribute/text step
    ///   (`a//@id` means "attributes of `a` *or* its descendants", which a
    ///   twig without a self axis cannot express — see DESIGN.md §8).
    pub fn build(query: &Query) -> ParseResult<QueryTree> {
        if query.steps.is_empty() {
            return Err(ParseError::new("query has no steps", 0));
        }
        let mut tree = QueryTree {
            nodes: Vec::with_capacity(query.size() + 1),
            main_path: Vec::with_capacity(query.steps.len() + 1),
            original: query.to_string(),
        };
        let mut parent: Option<QNodeId> = None;
        for (i, step) in query.steps.iter().enumerate() {
            let mut step = std::borrow::Cow::Borrowed(step);
            if !step.test.is_element() {
                match (i, step.axis) {
                    (0, Axis::Descendant) => {
                        // //@id  →  //*/@id
                        let synth = Step {
                            axis: Axis::Descendant,
                            test: NodeTest::Wildcard,
                            predicates: Vec::new(),
                        };
                        let id = tree.add_step(&synth, parent, true)?;
                        tree.main_path.push(id);
                        parent = Some(id);
                        step.to_mut().axis = Axis::Child;
                    }
                    (0, Axis::Child) => {
                        return Err(ParseError::new(
                            "'/@attr' and '/text()' select nothing: the document root \
                             node has no attributes or text children",
                            0,
                        ));
                    }
                    (_, Axis::Descendant) => {
                        return Err(ParseError::new(
                            "descendant-axis attribute/text() steps are only supported \
                             as the first step of a query (write 'a//*/@id' for the \
                             descendants of 'a')",
                            0,
                        ));
                    }
                    (_, Axis::Child) => {}
                }
            }
            let id = tree.add_step(&step, parent, true)?;
            tree.main_path.push(id);
            parent = Some(id);
        }
        Ok(tree)
    }

    /// Convenience: parse + build.
    pub fn parse(input: &str) -> ParseResult<QueryTree> {
        QueryTree::build(&crate::parser::parse(input)?)
    }

    fn add_step(
        &mut self,
        step: &Step,
        parent: Option<QNodeId>,
        on_main_path: bool,
    ) -> ParseResult<QNodeId> {
        let kind = match &step.test {
            NodeTest::Name(n) => NodeKind::Element { name: Some(n.clone()) },
            NodeTest::Wildcard => NodeKind::Element { name: None },
            NodeTest::Attribute(n) => NodeKind::Attribute { name: Some(n.clone()) },
            NodeTest::AttributeWildcard => NodeKind::Attribute { name: None },
            NodeTest::Text => NodeKind::Text,
        };
        if !kind.is_element() && step.axis == Axis::Descendant {
            return Err(ParseError::new(
                "descendant-axis attribute/text() steps are only supported as the \
                 first step of a query",
                0,
            ));
        }
        let id = self.nodes.len();
        self.nodes.push(QNode {
            id,
            parent,
            axis: step.axis,
            kind,
            comparison: None,
            pred_children: Vec::new(),
            main_child: None,
            on_main_path,
        });
        if let Some(p) = parent {
            if on_main_path {
                self.nodes[p].main_child = Some(id);
            } else {
                self.nodes[p].pred_children.push(id);
            }
        }
        for predicate in &step.predicates {
            for condition in &predicate.conditions {
                self.add_condition(condition, id)?;
            }
        }
        Ok(id)
    }

    fn add_condition(&mut self, condition: &Condition, owner: QNodeId) -> ParseResult<QNodeId> {
        let mut parent = owner;
        let mut last = owner;
        for (i, step) in condition.path.iter().enumerate() {
            debug_assert!(i > 0 || step.axis == Axis::Child, "first predicate step is child-axis");
            last = self.add_step(step, Some(parent), false)?;
            parent = last;
        }
        if let Some((op, lit)) = &condition.comparison {
            self.nodes[last].comparison = Some((*op, lit.clone()));
        }
        Ok(last)
    }

    /// All nodes, id order (parents before children).
    pub fn nodes(&self) -> &[QNode] {
        &self.nodes
    }

    /// Node count — the paper's `|Q|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true for built trees).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A node by id.
    pub fn node(&self, id: QNodeId) -> &QNode {
        &self.nodes[id]
    }

    /// The query root (first main-path step).
    pub fn root(&self) -> QNodeId {
        self.main_path[0]
    }

    /// The result node (last main-path step).
    pub fn result(&self) -> QNodeId {
        *self.main_path.last().expect("main path is non-empty")
    }

    /// The main path, root → result.
    pub fn main_path(&self) -> &[QNodeId] {
        &self.main_path
    }

    /// The query string this tree was built from (canonical form).
    pub fn original(&self) -> &str {
        &self.original
    }

    /// Ids in bottom-up (children before parents) order. Because parents
    /// always precede children in id order, this is just reverse id order —
    /// the order the machine processes pops for one element.
    pub fn bottom_up(&self) -> impl Iterator<Item = QNodeId> + '_ {
        (0..self.nodes.len()).rev()
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, id: QNodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.nodes[cur].parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// The canonical structural form of the query: a whitespace-free
    /// serialization with every predicate list **sorted** by the predicates'
    /// own canonical forms. Two queries with equal canonical keys select
    /// exactly the same nodes on every document (predicate order is
    /// conjunctive and therefore irrelevant), which is what lets the
    /// multi-query planner dedupe them into one shared machine.
    ///
    /// ```
    /// use vitex_xpath::QueryTree;
    /// let a = QueryTree::parse("//a[c and b]/d").unwrap();
    /// let b = QueryTree::parse("//a[b][ c ]/d").unwrap();
    /// assert_eq!(a.canonical_key(), b.canonical_key());
    /// ```
    pub fn canonical_key(&self) -> String {
        let mut out = String::with_capacity(self.original.len());
        self.canonical_node(self.root(), &mut out);
        out
    }

    fn canonical_node(&self, id: QNodeId, out: &mut String) {
        let n = self.node(id);
        out.push_str(match n.axis {
            Axis::Child => "/",
            Axis::Descendant => "//",
        });
        match &n.kind {
            NodeKind::Element { name } => out.push_str(name.as_deref().unwrap_or("*")),
            NodeKind::Attribute { name } => {
                out.push('@');
                out.push_str(name.as_deref().unwrap_or("*"));
            }
            NodeKind::Text => out.push_str("text()"),
        }
        if let Some((op, lit)) = &n.comparison {
            out.push_str(&format!("{op}{lit}"));
        }
        if !n.pred_children.is_empty() {
            let mut preds: Vec<String> = n
                .pred_children
                .iter()
                .map(|&c| {
                    let mut p = String::new();
                    self.canonical_node(c, &mut p);
                    p
                })
                .collect();
            preds.sort_unstable();
            for p in preds {
                out.push('[');
                out.push_str(&p);
                out.push(']');
            }
        }
        if let Some(mc) = n.main_child {
            self.canonical_node(mc, out);
        }
    }

    /// A 64-bit FNV-1a hash of [`QueryTree::canonical_key`]. Deterministic
    /// across processes and platforms (unlike `std`'s randomized hashers),
    /// so plan identities are stable in logs, benches and snapshots.
    pub fn stable_hash(&self) -> u64 {
        QueryTree::hash_canonical(&self.canonical_key())
    }

    /// [`QueryTree::stable_hash`] for an already-serialized canonical key
    /// — callers holding the key avoid re-walking the tree.
    pub fn hash_canonical(key: &str) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

impl fmt::Display for QueryTree {
    /// An indented dump of the twig, predicates marked `?`, the main path
    /// marked `*` — handy in test failures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            tree: &QueryTree,
            id: QNodeId,
            indent: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let n = tree.node(id);
            let axis = match n.axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
            };
            let label = match &n.kind {
                NodeKind::Element { name } => name.clone().unwrap_or_else(|| "*".into()),
                NodeKind::Attribute { name } => {
                    format!("@{}", name.clone().unwrap_or_else(|| "*".into()))
                }
                NodeKind::Text => "text()".into(),
            };
            let marker = if n.on_main_path { "*" } else { "?" };
            write!(f, "{:indent$}{marker}{axis}{label}", "", indent = indent)?;
            if let Some((op, lit)) = &n.comparison {
                write!(f, " {op} {lit}")?;
            }
            writeln!(f)?;
            for &c in &n.pred_children {
                rec(tree, c, indent + 2, f)?;
            }
            if let Some(mc) = n.main_child {
                rec(tree, mc, indent + 2, f)?;
            }
            Ok(())
        }
        rec(self, self.root(), 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn build(q: &str) -> QueryTree {
        QueryTree::parse(q).unwrap()
    }

    #[test]
    fn paper_figure_3_shape() {
        // //section[author]//table[position]//cell — 5 machine nodes.
        let t = build("//section[author]//table[position]//cell");
        assert_eq!(t.len(), 5);
        assert_eq!(t.main_path().len(), 3);
        let section = t.node(t.root());
        assert_eq!(section.name(), Some("section"));
        assert_eq!(section.pred_children.len(), 1);
        assert_eq!(t.node(section.pred_children[0]).name(), Some("author"));
        let table = t.node(section.main_child.unwrap());
        assert_eq!(table.name(), Some("table"));
        assert_eq!(t.node(table.pred_children[0]).name(), Some("position"));
        let cell = t.node(t.result());
        assert_eq!(cell.name(), Some("cell"));
        assert!(cell.main_child.is_none());
        assert!(cell.pred_children.is_empty());
        assert!(t.node(t.root()).parent.is_none());
    }

    #[test]
    fn ids_are_dense_and_parents_precede_children() {
        let t = build("//a[b[c] and d]//e[f]/g");
        for (i, n) in t.nodes().iter().enumerate() {
            assert_eq!(n.id, i);
            if let Some(p) = n.parent {
                assert!(p < i, "parent {p} must precede child {i}");
            }
        }
    }

    #[test]
    fn main_path_flags() {
        let t = build("//a[b]//c[d]/e");
        let on_main: Vec<bool> = t.nodes().iter().map(|n| n.on_main_path).collect();
        // a, b, c, d, e in insertion order: a(main), b(pred), c(main),
        // d(pred), e(main)
        assert_eq!(on_main, [true, false, true, false, true]);
        assert_eq!(t.main_path(), [0, 2, 4]);
        assert_eq!(t.result(), 4);
    }

    #[test]
    fn predicate_chains_nest() {
        let t = build("//a[b/c//d]");
        let a = t.node(0);
        assert_eq!(a.pred_children.len(), 1);
        let b = t.node(a.pred_children[0]);
        assert_eq!(b.name(), Some("b"));
        assert_eq!(b.pred_children.len(), 1);
        let c = t.node(b.pred_children[0]);
        assert_eq!(c.axis, Axis::Child);
        let d = t.node(c.pred_children[0]);
        assert_eq!(d.axis, Axis::Descendant);
        assert!(d.pred_children.is_empty());
    }

    #[test]
    fn comparisons_attach_to_path_leaf() {
        let t = build("//a[b/c = 'v']");
        let a = t.node(0);
        let b = t.node(a.pred_children[0]);
        let c = t.node(b.pred_children[0]);
        assert!(a.comparison.is_none());
        assert!(b.comparison.is_none());
        assert_eq!(c.comparison, Some((CmpOp::Eq, Literal::Str("v".into()))));
    }

    #[test]
    fn attribute_result_node() {
        let t = build("//ProteinEntry[reference]/@id");
        let result = t.node(t.result());
        assert!(result.kind.is_attribute());
        assert_eq!(result.name(), Some("id"));
        assert_eq!(result.axis, Axis::Child);
        assert!(result.on_main_path);
    }

    #[test]
    fn text_result_node() {
        let t = build("//a/text()");
        assert_eq!(t.node(t.result()).kind, NodeKind::Text);
    }

    #[test]
    fn wildcard_matches_any_name() {
        let t = build("//*");
        assert!(t.node(0).kind.matches_name("anything"));
        let t2 = build("//a");
        assert!(t2.node(0).kind.matches_name("a"));
        assert!(!t2.node(0).kind.matches_name("b"));
    }

    #[test]
    fn depth_and_bottom_up() {
        let t = build("//a[b[c]]/d");
        assert_eq!(t.depth(0), 0); // a
        assert_eq!(t.depth(1), 1); // b
        assert_eq!(t.depth(2), 2); // c
        assert_eq!(t.depth(3), 1); // d
        let order: Vec<QNodeId> = t.bottom_up().collect();
        assert_eq!(order, [3, 2, 1, 0]);
    }

    #[test]
    fn flag_count_counts_predicate_children() {
        let t = build("//a[b and c and d]/e");
        assert_eq!(t.node(0).flag_count(), 3);
        assert_eq!(t.node(t.result()).flag_count(), 0);
    }

    #[test]
    fn display_dump_mentions_structure() {
        let t = build("//a[b = 'x']/c");
        let dump = t.to_string();
        assert!(dump.contains("*//a"));
        assert!(dump.contains("?/b = 'x'"));
        assert!(dump.contains("*/c"));
    }

    #[test]
    fn original_is_canonical() {
        let t = QueryTree::build(&parse("//a[ b ]").unwrap()).unwrap();
        assert_eq!(t.original(), "//a[b]");
    }

    #[test]
    fn leading_descendant_attribute_is_rewritten() {
        // //@id  ≡  //*/@id
        let t = build("//@id");
        assert_eq!(t.len(), 2);
        let star = t.node(t.root());
        assert_eq!(star.kind, NodeKind::Element { name: None });
        assert_eq!(star.axis, Axis::Descendant);
        let attr = t.node(t.result());
        assert!(attr.kind.is_attribute());
        assert_eq!(attr.axis, Axis::Child);
        assert_eq!(t.main_path().len(), 2);
    }

    #[test]
    fn leading_descendant_text_is_rewritten() {
        let t = build("//text()");
        assert_eq!(t.len(), 2);
        assert_eq!(t.node(t.result()).kind, NodeKind::Text);
    }

    #[test]
    fn leading_child_attribute_is_rejected() {
        assert!(QueryTree::parse("/@id").is_err());
        assert!(QueryTree::parse("/text()").is_err());
    }

    #[test]
    fn canonical_key_sorts_predicates() {
        let a = build("//a[c and b]/d");
        let b = build("//a[b][c]/d");
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.stable_hash(), b.stable_hash());
        // ...but the original text keeps the user's spelling.
        assert_ne!(a.original(), b.original());
    }

    #[test]
    fn canonical_key_distinguishes_structure() {
        let distinct = [
            "//a",
            "/a",
            "//a/b",
            "//a//b",
            "//a[b]",
            "//a[b/c]",
            "//a[b][c]",
            "//a/*",
            "//a/@id",
            "//a/text()",
            "//a[@id = 'x']",
            "//a[@id = 'y']",
            "//a[b = 'x']",
        ];
        let keys: Vec<String> = distinct.iter().map(|q| build(q).canonical_key()).collect();
        for (i, ki) in keys.iter().enumerate() {
            for (j, kj) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(ki, kj, "{} vs {}", distinct[i], distinct[j]);
                }
            }
        }
    }

    #[test]
    fn stable_hash_is_deterministic() {
        // Fixed value: stable across processes/platforms by construction
        // (FNV-1a over the canonical key); recompute to catch regressions.
        let t = build("//a");
        assert_eq!(t.canonical_key(), "//a");
        let expected = {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in "//a".bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        };
        assert_eq!(t.stable_hash(), expected);
        assert_eq!(t.stable_hash(), build("//a").stable_hash());
    }

    #[test]
    fn non_leading_descendant_attribute_is_rejected() {
        assert!(QueryTree::parse("//a//@id").is_err());
        assert!(QueryTree::parse("//a//text()").is_err());
        assert!(QueryTree::parse("//a[b//@id]").is_err());
        // Child-axis forms are fine.
        assert!(QueryTree::parse("//a/@id").is_ok());
        assert!(QueryTree::parse("//a[b/@id]").is_ok());
    }
}
