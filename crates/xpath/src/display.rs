//! Rendering ASTs back to XPath syntax.
//!
//! `parse(q.to_string()) == q` holds for every valid query — the property
//! tests rely on this for shrink-friendly debugging, and the benchmark
//! harness uses it to label generated workloads.

use std::fmt;

use crate::ast::{Axis, CmpOp, Condition, Literal, NodeTest, Predicate, Query, Step};

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => f.write_str("/"),
            Axis::Descendant => f.write_str("//"),
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => f.write_str(n),
            NodeTest::Wildcard => f.write_str("*"),
            NodeTest::Attribute(n) => write!(f, "@{n}"),
            NodeTest::AttributeWildcard => f.write_str("@*"),
            NodeTest::Text => f.write_str("text()"),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Pick a quote the content doesn't contain (the lexer cannot
            // escape quotes, so a literal containing both kinds is not
            // representable; the generator never produces one).
            Literal::Str(s) => {
                if s.contains('\'') {
                    write!(f, "\"{s}\"")
                } else {
                    write!(f, "'{s}'")
                }
            }
            Literal::Num(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, "{}", step.axis)?;
            } else {
                debug_assert_eq!(step.axis, Axis::Child, "first predicate step is implicit-child");
            }
            write!(f, "{}", StepBody(step))?;
        }
        if let Some((op, lit)) = &self.comparison {
            write!(f, " {op} {lit}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                f.write_str(" and ")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str("]")
    }
}

/// A step without its leading axis (used where the axis is printed by the
/// surrounding path logic).
struct StepBody<'a>(&'a Step);

impl fmt::Display for StepBody<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.test)?;
        for p in &self.0.predicates {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.axis, StepBody(self))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    fn round_trip(q: &str) {
        let parsed = parse(q).unwrap();
        let printed = parsed.to_string();
        assert_eq!(printed, q, "canonical form mismatch");
        assert_eq!(parse(&printed).unwrap(), parsed, "reparse mismatch");
    }

    #[test]
    fn round_trips_paper_queries() {
        round_trip("//section[author]//table[position]//cell");
        round_trip("//ProteinEntry[reference]/@id");
    }

    #[test]
    fn round_trips_comparisons() {
        round_trip("//a[b = 'x']");
        round_trip("//a[b != 'x']");
        round_trip("//a[b < 2]");
        round_trip("//a[b <= 2.5]");
        round_trip("//a[b > 10]");
        round_trip("//a[b >= 0.5]");
    }

    #[test]
    fn round_trips_structure() {
        round_trip("/book/section//table/cell");
        round_trip("//*[x and y]/@*");
        round_trip("//a[b/c//d]//e[f[g]]/text()");
        round_trip("//a[@id = 'x' and text() = 'v']");
    }

    #[test]
    fn double_quotes_when_needed() {
        let q = parse("//a[b=\"it's\"]").unwrap();
        assert_eq!(q.to_string(), "//a[b = \"it's\"]");
    }
}
