//! Parse errors for the XPath front-end.

use std::fmt;

/// Result alias for parsing operations.
pub type ParseResult<T> = Result<T, ParseError>;

/// A query parse/validation error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    offset: usize,
}

impl ParseError {
    /// Creates an error at a byte offset within the query string.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError { message: message.into(), offset }
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset into the query text.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offset() {
        let e = ParseError::new("unexpected token", 7);
        assert_eq!(e.to_string(), "XPath error at offset 7: unexpected token");
        assert_eq!(e.offset(), 7);
        assert_eq!(e.message(), "unexpected token");
    }
}
