//! Seeded random query generation.
//!
//! The differential test suites (TwigM vs DOM oracle vs naive enumerator)
//! and the query-size scaling experiments (E5, E7) need large families of
//! *valid* queries with controllable shape. [`QueryGenerator`] builds them
//! directly as ASTs, so every generated query parses and round-trips by
//! construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ast::{Axis, CmpOp, Condition, Literal, NodeTest, Predicate, Query, Step};

/// Shape parameters for generated queries.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Minimum number of main-path steps (≥ 1).
    pub min_steps: usize,
    /// Maximum number of main-path steps.
    pub max_steps: usize,
    /// Probability that a step uses the descendant axis.
    pub descendant_prob: f64,
    /// Probability that an element step is a wildcard.
    pub wildcard_prob: f64,
    /// Probability of attaching a predicate to an element step.
    pub predicate_prob: f64,
    /// Maximum conditions joined by `and` in one predicate.
    pub max_conditions: usize,
    /// Maximum steps in a predicate's relative path.
    pub max_pred_path: usize,
    /// Maximum predicate nesting depth.
    pub max_pred_depth: usize,
    /// Probability a condition carries a value comparison.
    pub comparison_prob: f64,
    /// Probability a condition path ends in `@attr` instead of an element.
    pub attr_condition_prob: f64,
    /// Probability the result step is `@attr` / `text()`.
    pub special_result_prob: f64,
    /// Element-name alphabet.
    pub tags: Vec<String>,
    /// Attribute-name alphabet.
    pub attrs: Vec<String>,
    /// String comparison values.
    pub values: Vec<String>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            min_steps: 1,
            max_steps: 4,
            descendant_prob: 0.5,
            wildcard_prob: 0.1,
            predicate_prob: 0.4,
            max_conditions: 2,
            max_pred_path: 2,
            max_pred_depth: 2,
            comparison_prob: 0.3,
            attr_condition_prob: 0.2,
            special_result_prob: 0.15,
            tags: ["a", "b", "c", "d", "e"].iter().map(|s| s.to_string()).collect(),
            attrs: ["id", "k"].iter().map(|s| s.to_string()).collect(),
            values: ["v0", "v1", "v2"].iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl GenConfig {
    /// A configuration that generates deep chain queries of exactly
    /// `steps` descendant steps — the E5/E7 scaling family.
    pub fn chain(steps: usize) -> Self {
        GenConfig {
            min_steps: steps,
            max_steps: steps,
            descendant_prob: 1.0,
            wildcard_prob: 0.0,
            predicate_prob: 0.0,
            special_result_prob: 0.0,
            ..GenConfig::default()
        }
    }
}

/// A deterministic random query generator.
pub struct QueryGenerator {
    rng: StdRng,
    config: GenConfig,
}

impl QueryGenerator {
    /// Creates a generator from a seed and configuration.
    pub fn new(seed: u64, config: GenConfig) -> Self {
        QueryGenerator { rng: StdRng::seed_from_u64(seed), config }
    }

    /// Generates one query.
    pub fn query(&mut self) -> Query {
        let n = self.rng.gen_range(self.config.min_steps..=self.config.max_steps);
        let mut steps = Vec::with_capacity(n);
        for i in 0..n {
            let is_last = i + 1 == n;
            if is_last && self.rng.gen_bool(self.config.special_result_prob) {
                // Attribute/text steps: descendant axis is only valid in
                // leading position (`//@id`); elsewhere they must be
                // child-axis (`a/@id`).
                let axis = if i == 0 { Axis::Descendant } else { Axis::Child };
                steps.push(Step { axis, test: self.special_test(), predicates: Vec::new() });
            } else {
                steps.push(self.element_step(0));
            }
        }
        Query { steps }
    }

    /// Generates a batch of queries.
    pub fn queries(&mut self, count: usize) -> Vec<Query> {
        (0..count).map(|_| self.query()).collect()
    }

    fn axis(&mut self) -> Axis {
        if self.rng.gen_bool(self.config.descendant_prob) {
            Axis::Descendant
        } else {
            Axis::Child
        }
    }

    fn tag(&mut self) -> String {
        let i = self.rng.gen_range(0..self.config.tags.len());
        self.config.tags[i].clone()
    }

    fn attr(&mut self) -> String {
        let i = self.rng.gen_range(0..self.config.attrs.len());
        self.config.attrs[i].clone()
    }

    fn value(&mut self) -> Literal {
        if self.rng.gen_bool(0.3) {
            Literal::Num((self.rng.gen_range(0..100) as f64) / 2.0)
        } else {
            let i = self.rng.gen_range(0..self.config.values.len());
            Literal::Str(self.config.values[i].clone())
        }
    }

    fn cmp_op(&mut self) -> CmpOp {
        match self.rng.gen_range(0..6) {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            _ => CmpOp::Ge,
        }
    }

    fn special_test(&mut self) -> NodeTest {
        if self.rng.gen_bool(0.5) {
            NodeTest::Attribute(self.attr())
        } else {
            NodeTest::Text
        }
    }

    fn element_step(&mut self, depth: usize) -> Step {
        let test = if self.rng.gen_bool(self.config.wildcard_prob) {
            NodeTest::Wildcard
        } else {
            NodeTest::Name(self.tag())
        };
        let mut predicates = Vec::new();
        if depth < self.config.max_pred_depth && self.rng.gen_bool(self.config.predicate_prob) {
            predicates.push(self.predicate(depth));
        }
        Step { axis: self.axis(), test, predicates }
    }

    fn predicate(&mut self, depth: usize) -> Predicate {
        let n = self.rng.gen_range(1..=self.config.max_conditions);
        let conditions = (0..n).map(|_| self.condition(depth)).collect();
        Predicate { conditions }
    }

    fn condition(&mut self, depth: usize) -> Condition {
        // Attribute / text() conditions are single-step.
        if self.rng.gen_bool(self.config.attr_condition_prob) {
            let test = if self.rng.gen_bool(0.8) {
                NodeTest::Attribute(self.attr())
            } else {
                NodeTest::Text
            };
            let must_compare = matches!(test, NodeTest::Text);
            let comparison = if must_compare || self.rng.gen_bool(self.config.comparison_prob) {
                Some((self.cmp_op(), self.value()))
            } else {
                None
            };
            return Condition {
                path: vec![Step { axis: Axis::Child, test, predicates: Vec::new() }],
                comparison,
            };
        }
        let len = self.rng.gen_range(1..=self.config.max_pred_path);
        let mut path = Vec::with_capacity(len);
        for i in 0..len {
            let mut step = self.element_step(depth + 1);
            if i == 0 {
                step.axis = Axis::Child; // first predicate step is implicit-child
            }
            path.push(step);
        }
        let comparison = if self.rng.gen_bool(self.config.comparison_prob) {
            Some((self.cmp_op(), self.value()))
        } else {
            None
        };
        Condition { path, comparison }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::query_tree::QueryTree;

    #[test]
    fn generated_queries_parse_and_round_trip() {
        let mut g = QueryGenerator::new(42, GenConfig::default());
        for q in g.queries(500) {
            let text = q.to_string();
            let reparsed = parse(&text)
                .unwrap_or_else(|e| panic!("generated query {text:?} failed to parse: {e}"));
            assert_eq!(reparsed, q, "round-trip mismatch for {text:?}");
            QueryTree::build(&q).expect("query tree builds");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = QueryGenerator::new(7, GenConfig::default());
        let mut b = QueryGenerator::new(7, GenConfig::default());
        assert_eq!(a.queries(50), b.queries(50));
        let mut c = QueryGenerator::new(8, GenConfig::default());
        assert_ne!(a.queries(50), c.queries(50));
    }

    #[test]
    fn chain_config_generates_exact_length() {
        let mut g = QueryGenerator::new(1, GenConfig::chain(7));
        for q in g.queries(20) {
            assert_eq!(q.steps.len(), 7);
            assert!(q.steps.iter().all(|s| s.axis == Axis::Descendant));
            assert!(q.steps.iter().all(|s| s.predicates.is_empty()));
        }
    }

    #[test]
    fn respects_step_bounds() {
        let cfg = GenConfig { min_steps: 2, max_steps: 3, ..Default::default() };
        let mut g = QueryGenerator::new(3, cfg);
        for q in g.queries(100) {
            assert!((2..=3).contains(&q.steps.len()));
        }
    }

    #[test]
    fn text_conditions_always_have_comparisons() {
        // A bare [text()] existence test is grammatically fine but the
        // generator always pairs text() with a comparison for meaningful
        // selectivity; check it holds (guards the E5 workload invariants).
        let cfg = GenConfig { attr_condition_prob: 1.0, predicate_prob: 1.0, ..Default::default() };
        let mut g = QueryGenerator::new(11, cfg);
        for q in g.queries(200) {
            for s in &q.steps {
                for p in &s.predicates {
                    for c in &p.conditions {
                        if c.path.last().map(|s| s.test == NodeTest::Text).unwrap_or(false) {
                            assert!(c.comparison.is_some());
                        }
                    }
                }
            }
        }
    }
}
