//! # vitex-xpath — the XPath front-end of the ViteX system
//!
//! This crate implements the "XPath parser" module of the ViteX architecture
//! (ICDE 2005, Figure 2): it turns the textual XPath fragment
//! **XP{/, //, *, []}** — child axes, descendant axes, wildcards and
//! predicates, extended with attribute steps, `text()` steps and value
//! comparisons so the paper's own example queries are expressible — into
//!
//! 1. an [`ast::Query`] abstract syntax tree, and
//! 2. a normalized [`query_tree::QueryTree`] *twig*: the tree representation
//!    the paper's TwigM builder consumes, with a distinguished **main path**
//!    (whose leaf is the result node) and predicate subtrees hanging off it.
//!
//! The grammar accepted here is documented in `DESIGN.md` §3. Queries the
//! fragment cannot express (positional predicates, reverse axes, functions
//! other than `text()`) are rejected with precise error messages.
//!
//! A seeded [`generate::QueryGenerator`] produces random well-formed queries
//! for the differential test suites and the query-scaling experiments (E5,
//! E7).
//!
//! ```
//! use vitex_xpath::parse;
//!
//! let q = parse("//section[author]//table[position]//cell").unwrap();
//! let tree = vitex_xpath::query_tree::QueryTree::build(&q).unwrap();
//! assert_eq!(tree.main_path().len(), 3);         // section, table, cell
//! assert_eq!(tree.node(tree.result()).name(), Some("cell"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod error;
pub mod generate;
pub mod lexer;
pub mod parser;
pub mod query_tree;

pub use ast::{Axis, CmpOp, Literal, NodeTest, Predicate, Query, Step};
pub use error::{ParseError, ParseResult};
pub use parser::parse;
pub use query_tree::{NodeKind, QueryTree};
