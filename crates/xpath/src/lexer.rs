//! Tokenizer for the XPath fragment.

use crate::error::{ParseError, ParseResult};

/// A lexical token with its byte offset in the query string.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// Token kinds of the fragment's grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `@`
    At,
    /// `*`
    Star,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// An NCName (possibly the contextual keyword `and` or `text`).
    Name(String),
    /// A quoted string literal (quotes stripped).
    StringLit(String),
    /// A numeric literal.
    Number(f64),
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Slash => "'/'".into(),
            TokenKind::DoubleSlash => "'//'".into(),
            TokenKind::At => "'@'".into(),
            TokenKind::Star => "'*'".into(),
            TokenKind::LBracket => "'['".into(),
            TokenKind::RBracket => "']'".into(),
            TokenKind::LParen => "'('".into(),
            TokenKind::RParen => "')'".into(),
            TokenKind::Name(n) => format!("name '{n}'"),
            TokenKind::StringLit(_) => "string literal".into(),
            TokenKind::Number(_) => "number".into(),
            TokenKind::Eq => "'='".into(),
            TokenKind::Ne => "'!='".into(),
            TokenKind::Lt => "'<'".into(),
            TokenKind::Le => "'<='".into(),
            TokenKind::Gt => "'>'".into(),
            TokenKind::Ge => "'>='".into(),
            TokenKind::Eof => "end of query".into(),
        }
    }
}

/// Tokenizes a whole query string.
pub fn tokenize(input: &str) -> ParseResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let offset = i;
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
                continue;
            }
            b'/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    tokens.push(Token { kind: TokenKind::DoubleSlash, offset });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Slash, offset });
                    i += 1;
                }
            }
            b'@' => {
                tokens.push(Token { kind: TokenKind::At, offset });
                i += 1;
            }
            b'*' => {
                tokens.push(Token { kind: TokenKind::Star, offset });
                i += 1;
            }
            b'[' => {
                tokens.push(Token { kind: TokenKind::LBracket, offset });
                i += 1;
            }
            b']' => {
                tokens.push(Token { kind: TokenKind::RBracket, offset });
                i += 1;
            }
            b'(' => {
                tokens.push(Token { kind: TokenKind::LParen, offset });
                i += 1;
            }
            b')' => {
                tokens.push(Token { kind: TokenKind::RParen, offset });
                i += 1;
            }
            b'=' => {
                tokens.push(Token { kind: TokenKind::Eq, offset });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ne, offset });
                    i += 2;
                } else {
                    return Err(ParseError::new("expected '=' after '!'", offset));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Le, offset });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, offset });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, offset });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, offset });
                    i += 1;
                }
            }
            b'\'' | b'"' => {
                let quote = b;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError::new("unterminated string literal", offset));
                }
                let lit = input[i + 1..j].to_owned();
                tokens.push(Token { kind: TokenKind::StringLit(lit), offset });
                i = j + 1;
            }
            b'0'..=b'9' | b'.' => {
                // A number: digits, optional fraction. A lone '.' is an
                // error (we don't support the '.' step).
                let mut j = i;
                let mut seen_digit = false;
                let mut seen_dot = false;
                while j < bytes.len() {
                    match bytes[j] {
                        b'0'..=b'9' => {
                            seen_digit = true;
                            j += 1;
                        }
                        b'.' if !seen_dot => {
                            seen_dot = true;
                            j += 1;
                        }
                        _ => break,
                    }
                }
                if !seen_digit {
                    return Err(ParseError::new(
                        "unexpected '.' (the '.' step is not part of the fragment)",
                        offset,
                    ));
                }
                let text = &input[i..j];
                let value: f64 = text
                    .parse()
                    .map_err(|_| ParseError::new(format!("invalid number {text:?}"), offset))?;
                tokens.push(Token { kind: TokenKind::Number(value), offset });
                i = j;
            }
            _ => {
                // An NCName (ASCII fast path + full Unicode via chars()).
                let rest = &input[i..];
                let mut char_indices = rest.char_indices();
                let (_, first) = char_indices.next().expect("non-empty rest");
                if !vitex_name_start(first) {
                    return Err(ParseError::new(format!("unexpected character {first:?}"), offset));
                }
                let mut end = rest.len();
                for (ci, c) in char_indices {
                    if !vitex_name_char(c) {
                        end = ci;
                        break;
                    }
                }
                let name = &rest[..end];
                tokens.push(Token { kind: TokenKind::Name(name.to_owned()), offset });
                i += end;
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, offset: input.len() });
    Ok(tokens)
}

// NCName character classes (no colon: the fragment matches lexical names,
// and a colon inside a nametest is accepted as part of the name so that
// prefixed documents can be queried — see below).
fn vitex_name_start(c: char) -> bool {
    c == '_' || c == ':' || c.is_alphabetic()
}

fn vitex_name_char(c: char) -> bool {
    c == '_' || c == ':' || c == '-' || c == '.' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(q: &str) -> Vec<TokenKind> {
        tokenize(q).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_paper_query() {
        use TokenKind::*;
        assert_eq!(
            kinds("//section[author]//table[position]//cell"),
            vec![
                DoubleSlash,
                Name("section".into()),
                LBracket,
                Name("author".into()),
                RBracket,
                DoubleSlash,
                Name("table".into()),
                LBracket,
                Name("position".into()),
                RBracket,
                DoubleSlash,
                Name("cell".into()),
                Eof
            ]
        );
    }

    #[test]
    fn tokenizes_attribute_query() {
        use TokenKind::*;
        assert_eq!(
            kinds("//ProteinEntry[reference]/@id"),
            vec![
                DoubleSlash,
                Name("ProteinEntry".into()),
                LBracket,
                Name("reference".into()),
                RBracket,
                Slash,
                At,
                Name("id".into()),
                Eof
            ]
        );
    }

    #[test]
    fn tokenizes_comparisons() {
        use TokenKind::*;
        assert_eq!(
            kinds("//a[b = 'x'][c != \"y\"][d < 2][e <= 2][f > 2.5][g >= 10]"),
            vec![
                DoubleSlash,
                Name("a".into()),
                LBracket,
                Name("b".into()),
                Eq,
                StringLit("x".into()),
                RBracket,
                LBracket,
                Name("c".into()),
                Ne,
                StringLit("y".into()),
                RBracket,
                LBracket,
                Name("d".into()),
                Lt,
                Number(2.0),
                RBracket,
                LBracket,
                Name("e".into()),
                Le,
                Number(2.0),
                RBracket,
                LBracket,
                Name("f".into()),
                Gt,
                Number(2.5),
                RBracket,
                LBracket,
                Name("g".into()),
                Ge,
                Number(10.0),
                RBracket,
                Eof
            ]
        );
    }

    #[test]
    fn tokenizes_text_function() {
        use TokenKind::*;
        assert_eq!(
            kinds("//a[text()='v']"),
            vec![
                DoubleSlash,
                Name("a".into()),
                LBracket,
                Name("text".into()),
                LParen,
                RParen,
                Eq,
                StringLit("v".into()),
                RBracket,
                Eof
            ]
        );
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(kinds(" // a [ b ] "), kinds("//a[b]"));
    }

    #[test]
    fn unterminated_string_errors() {
        let e = tokenize("//a[b='x]").unwrap_err();
        assert!(e.message().contains("unterminated"));
    }

    #[test]
    fn lone_bang_errors() {
        assert!(tokenize("//a[b ! 'x']").is_err());
    }

    #[test]
    fn lone_dot_errors() {
        assert!(tokenize("//a/.").is_err());
    }

    #[test]
    fn number_with_fraction() {
        assert_eq!(
            kinds("//a[b=3.25]")
                .iter()
                .filter(|k| matches!(k, TokenKind::Number(n) if *n == 3.25))
                .count(),
            1
        );
    }

    #[test]
    fn unicode_names() {
        assert!(matches!(
            &kinds("//日本語")[1],
            TokenKind::Name(n) if n == "日本語"
        ));
    }

    #[test]
    fn offsets_point_into_input() {
        let toks = tokenize("//abc[x]").unwrap();
        assert_eq!(toks[0].offset, 0); // //
        assert_eq!(toks[1].offset, 2); // abc
        assert_eq!(toks[2].offset, 5); // [
        assert_eq!(toks[3].offset, 6); // x
    }
}
