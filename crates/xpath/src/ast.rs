//! Abstract syntax for the XP{/, //, *, []} fragment.
//!
//! The AST mirrors the surface grammar; [`crate::query_tree`] normalizes it
//! into the twig form the TwigM builder consumes. Keeping the two separate
//! lets the parser stay a faithful grammar transcription while the query
//! tree makes the evaluation-relevant structure (main path vs predicate
//! subtrees) explicit.

/// The axis connecting a step to its context node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — the step matches children of the context node.
    Child,
    /// `//` — the step matches descendants (any depth ≥ 1) of the context
    /// node (shorthand for `/descendant-or-self::node()/child::`).
    Descendant,
}

/// What a step matches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// A named element: `section`.
    Name(String),
    /// Any element: `*`.
    Wildcard,
    /// A named attribute: `@id`.
    Attribute(String),
    /// Any attribute: `@*`.
    AttributeWildcard,
    /// A text node: `text()`.
    Text,
}

impl NodeTest {
    /// Whether this test selects elements (named or wildcard).
    pub fn is_element(&self) -> bool {
        matches!(self, NodeTest::Name(_) | NodeTest::Wildcard)
    }

    /// Whether this test selects attributes.
    pub fn is_attribute(&self) -> bool {
        matches!(self, NodeTest::Attribute(_) | NodeTest::AttributeWildcard)
    }
}

/// A comparison operator in a value predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// XPath 1.0 relational operators always compare as numbers; equality
    /// compares as strings unless the literal is numeric.
    pub fn is_relational(&self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
    }
}

/// A literal operand of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `'...'` or `"..."`.
    Str(String),
    /// A decimal number.
    Num(f64),
}

/// One condition inside a predicate: an (optionally compared) relative
/// path. `[author]` is existence; `[year > 1999]` compares the
/// string-values of matching nodes; `[@id='x']` compares an attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// The relative path, child-first (`author/name`). At least one step.
    pub path: Vec<Step>,
    /// Optional comparison applied to nodes matched by the last step.
    pub comparison: Option<(CmpOp, Literal)>,
}

/// A predicate `[...]`: one or more conditions joined by `and`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// The conjuncts.
    pub conditions: Vec<Condition>,
}

/// A location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis connecting this step to the previous one.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Zero or more predicates.
    pub predicates: Vec<Predicate>,
}

impl Step {
    /// Creates a plain element step with no predicates.
    pub fn element(axis: Axis, name: impl Into<String>) -> Self {
        Step { axis, test: NodeTest::Name(name.into()), predicates: Vec::new() }
    }
}

/// A complete query: an absolute path (`/...` or `//...`).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The location steps, outermost first. Non-empty.
    pub steps: Vec<Step>,
}

impl Query {
    /// The total number of query nodes (steps plus all predicate path
    /// steps, recursively) — the paper's `|Q|`.
    pub fn size(&self) -> usize {
        fn steps_size(steps: &[Step]) -> usize {
            steps
                .iter()
                .map(|s| {
                    1 + s
                        .predicates
                        .iter()
                        .flat_map(|p| &p.conditions)
                        .map(|c| steps_size(&c.path))
                        .sum::<usize>()
                })
                .sum()
        }
        steps_size(&self.steps)
    }

    /// Maximum nesting depth of predicates.
    pub fn predicate_depth(&self) -> usize {
        fn depth(steps: &[Step]) -> usize {
            steps
                .iter()
                .map(|s| {
                    s.predicates
                        .iter()
                        .flat_map(|p| &p.conditions)
                        .map(|c| 1 + depth(&c.path))
                        .max()
                        .unwrap_or(0)
                })
                .max()
                .unwrap_or(0)
        }
        depth(&self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(name: &str) -> Step {
        Step::element(Axis::Descendant, name)
    }

    #[test]
    fn query_size_counts_all_nodes() {
        // //a[b]//c  →  3 nodes
        let mut a = step("a");
        a.predicates.push(Predicate {
            conditions: vec![Condition { path: vec![step("b")], comparison: None }],
        });
        let q = Query { steps: vec![a, step("c")] };
        assert_eq!(q.size(), 3);
        assert_eq!(q.predicate_depth(), 1);
    }

    #[test]
    fn nested_predicates_count() {
        // //a[b[c]]  →  3 nodes, depth 2
        let mut b = step("b");
        b.predicates.push(Predicate {
            conditions: vec![Condition { path: vec![step("c")], comparison: None }],
        });
        let mut a = step("a");
        a.predicates
            .push(Predicate { conditions: vec![Condition { path: vec![b], comparison: None }] });
        let q = Query { steps: vec![a] };
        assert_eq!(q.size(), 3);
        assert_eq!(q.predicate_depth(), 2);
    }

    #[test]
    fn node_test_classification() {
        assert!(NodeTest::Name("a".into()).is_element());
        assert!(NodeTest::Wildcard.is_element());
        assert!(NodeTest::Attribute("id".into()).is_attribute());
        assert!(NodeTest::AttributeWildcard.is_attribute());
        assert!(!NodeTest::Text.is_element());
        assert!(!NodeTest::Text.is_attribute());
    }

    #[test]
    fn relational_classification() {
        assert!(CmpOp::Lt.is_relational());
        assert!(CmpOp::Ge.is_relational());
        assert!(!CmpOp::Eq.is_relational());
        assert!(!CmpOp::Ne.is_relational());
    }
}
