//! Recursive-descent parser for the XP{/, //, *, []} fragment.

use crate::ast::{Axis, CmpOp, Condition, Literal, NodeTest, Predicate, Query, Step};
use crate::error::{ParseError, ParseResult};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses an absolute XPath query in the supported fragment.
///
/// ```
/// let q = vitex_xpath::parse("//ProteinEntry[reference]/@id").unwrap();
/// assert_eq!(q.steps.len(), 2);
/// ```
pub fn parse(input: &str) -> ParseResult<Query> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let query = parser.parse_query()?;
    parser.expect_eof()?;
    validate(&query)?;
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.offset())
    }

    fn expect_eof(&self) -> ParseResult<()> {
        if *self.peek() != TokenKind::Eof {
            return Err(self.error(format!("unexpected {}", self.peek().describe())));
        }
        Ok(())
    }

    fn parse_query(&mut self) -> ParseResult<Query> {
        let mut steps = Vec::new();
        loop {
            let axis = match self.peek() {
                TokenKind::Slash => {
                    self.bump();
                    Axis::Child
                }
                TokenKind::DoubleSlash => {
                    self.bump();
                    Axis::Descendant
                }
                _ if steps.is_empty() => {
                    return Err(self.error("a query must start with '/' or '//'"))
                }
                _ => break,
            };
            steps.push(self.parse_step(axis)?);
        }
        Ok(Query { steps })
    }

    /// Parses a step whose axis token has been consumed.
    fn parse_step(&mut self, axis: Axis) -> ParseResult<Step> {
        let test = self.parse_node_test()?;
        let mut predicates = Vec::new();
        while *self.peek() == TokenKind::LBracket {
            if !test.is_element() {
                return Err(self.error("predicates are only allowed on element steps"));
            }
            predicates.push(self.parse_predicate()?);
        }
        Ok(Step { axis, test, predicates })
    }

    fn parse_node_test(&mut self) -> ParseResult<NodeTest> {
        match self.peek().clone() {
            TokenKind::Star => {
                self.bump();
                Ok(NodeTest::Wildcard)
            }
            TokenKind::At => {
                self.bump();
                match self.bump() {
                    TokenKind::Name(n) => Ok(NodeTest::Attribute(n)),
                    TokenKind::Star => Ok(NodeTest::AttributeWildcard),
                    other => Err(ParseError::new(
                        format!(
                            "expected attribute name or '*' after '@', found {}",
                            other.describe()
                        ),
                        self.tokens[self.pos.saturating_sub(1)].offset,
                    )),
                }
            }
            TokenKind::Name(name) => {
                self.bump();
                if *self.peek() == TokenKind::LParen {
                    // A node-type test or an (unsupported) function call.
                    if name == "text" {
                        self.bump();
                        if self.bump() != TokenKind::RParen {
                            return Err(self.error("expected ')' after 'text('"));
                        }
                        Ok(NodeTest::Text)
                    } else if name == "node"
                        || name == "comment"
                        || name == "processing-instruction"
                    {
                        Err(self.error(format!(
                            "node test '{name}()' is not in the XP{{/,//,*,[]}} fragment"
                        )))
                    } else {
                        Err(self.error(format!(
                            "function '{name}()' is not supported (the fragment has no \
                             functions; note that in the ViteX paper 'position' is an \
                             element name, not position())"
                        )))
                    }
                } else {
                    Ok(NodeTest::Name(name))
                }
            }
            other => Err(self.error(format!("expected a node test, found {}", other.describe()))),
        }
    }

    fn parse_predicate(&mut self) -> ParseResult<Predicate> {
        debug_assert_eq!(*self.peek(), TokenKind::LBracket);
        self.bump();
        let mut conditions = vec![self.parse_condition()?];
        loop {
            match self.peek() {
                TokenKind::RBracket => {
                    self.bump();
                    return Ok(Predicate { conditions });
                }
                TokenKind::Name(n) if n == "and" => {
                    self.bump();
                    conditions.push(self.parse_condition()?);
                }
                other => {
                    return Err(
                        self.error(format!("expected ']' or 'and', found {}", other.describe()))
                    )
                }
            }
        }
    }

    fn parse_condition(&mut self) -> ParseResult<Condition> {
        // A relative path: first step has an implicit child axis.
        if matches!(self.peek(), TokenKind::Slash | TokenKind::DoubleSlash) {
            return Err(self
                .error("predicates contain relative paths; they must not start with '/' or '//'"));
        }
        if matches!(self.peek(), TokenKind::Number(_) | TokenKind::StringLit(_)) {
            return Err(self
                .error("comparisons must have the path on the left and the literal on the right"));
        }
        let mut path = vec![self.parse_step(Axis::Child)?];
        loop {
            let axis = match self.peek() {
                TokenKind::Slash => Axis::Child,
                TokenKind::DoubleSlash => Axis::Descendant,
                _ => break,
            };
            self.bump();
            path.push(self.parse_step(axis)?);
        }
        let comparison = match self.peek() {
            TokenKind::Eq
            | TokenKind::Ne
            | TokenKind::Lt
            | TokenKind::Le
            | TokenKind::Gt
            | TokenKind::Ge => {
                let op = match self.bump() {
                    TokenKind::Eq => CmpOp::Eq,
                    TokenKind::Ne => CmpOp::Ne,
                    TokenKind::Lt => CmpOp::Lt,
                    TokenKind::Le => CmpOp::Le,
                    TokenKind::Gt => CmpOp::Gt,
                    TokenKind::Ge => CmpOp::Ge,
                    _ => unreachable!("matched comparison token"),
                };
                let lit = match self.bump() {
                    TokenKind::StringLit(s) => Literal::Str(s),
                    TokenKind::Number(n) => Literal::Num(n),
                    other => {
                        return Err(ParseError::new(
                            format!(
                                "expected a string or number literal after the comparison, \
                                 found {}",
                                other.describe()
                            ),
                            self.tokens[self.pos.saturating_sub(1)].offset,
                        ))
                    }
                };
                Some((op, lit))
            }
            _ => None,
        };
        Ok(Condition { path, comparison })
    }
}

/// Structural validation beyond the grammar: attribute and text steps are
/// leaves (last in their path).
fn validate(query: &Query) -> ParseResult<()> {
    validate_path(&query.steps, "the query")?;
    Ok(())
}

fn validate_path(steps: &[Step], what: &str) -> ParseResult<()> {
    for (i, step) in steps.iter().enumerate() {
        let is_last = i + 1 == steps.len();
        if !step.test.is_element() && !is_last {
            return Err(ParseError::new(
                format!(
                    "attribute and text() steps must be the last step of {what} \
                     (nothing can follow them)"
                ),
                0,
            ));
        }
        for pred in &step.predicates {
            for cond in &pred.conditions {
                validate_path(&cond.path, "a predicate path")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_q1() {
        let q = parse("//section[author]//table[position]//cell").unwrap();
        assert_eq!(q.steps.len(), 3);
        assert_eq!(q.size(), 5);
        assert!(q.steps.iter().all(|s| s.axis == Axis::Descendant));
        assert_eq!(q.steps[0].predicates.len(), 1);
        assert_eq!(q.steps[2].predicates.len(), 0);
    }

    #[test]
    fn parses_paper_query_q2() {
        let q = parse("//ProteinEntry[reference]/@id").unwrap();
        assert_eq!(q.steps.len(), 2);
        assert_eq!(q.steps[1].axis, Axis::Child);
        assert_eq!(q.steps[1].test, NodeTest::Attribute("id".into()));
    }

    #[test]
    fn parses_child_axis_root() {
        let q = parse("/book/section").unwrap();
        assert_eq!(q.steps[0].axis, Axis::Child);
    }

    #[test]
    fn parses_wildcards() {
        let q = parse("//*[x]/*/@*").unwrap();
        assert_eq!(q.steps[0].test, NodeTest::Wildcard);
        assert_eq!(q.steps[1].test, NodeTest::Wildcard);
        assert_eq!(q.steps[2].test, NodeTest::AttributeWildcard);
    }

    #[test]
    fn parses_value_comparisons() {
        let q = parse("//book[year > 1999][title = 'Dune']").unwrap();
        let preds = &q.steps[0].predicates;
        assert_eq!(preds.len(), 2);
        let c0 = &preds[0].conditions[0];
        assert_eq!(c0.comparison, Some((CmpOp::Gt, Literal::Num(1999.0))));
        let c1 = &preds[1].conditions[0];
        assert_eq!(c1.comparison, Some((CmpOp::Eq, Literal::Str("Dune".into()))));
    }

    #[test]
    fn parses_and_conjunction() {
        let q = parse("//a[b and c and d='x']").unwrap();
        assert_eq!(q.steps[0].predicates[0].conditions.len(), 3);
    }

    #[test]
    fn parses_nested_predicates() {
        let q = parse("//a[b[c[d]]]").unwrap();
        assert_eq!(q.size(), 4);
        assert_eq!(q.predicate_depth(), 3);
    }

    #[test]
    fn parses_predicate_paths() {
        let q = parse("//a[b/c//d]").unwrap();
        let cond = &q.steps[0].predicates[0].conditions[0];
        assert_eq!(cond.path.len(), 3);
        assert_eq!(cond.path[0].axis, Axis::Child); // implicit
        assert_eq!(cond.path[1].axis, Axis::Child);
        assert_eq!(cond.path[2].axis, Axis::Descendant);
    }

    #[test]
    fn parses_attribute_predicates() {
        let q = parse("//a[@id='x' and @class]").unwrap();
        let conds = &q.steps[0].predicates[0].conditions;
        assert_eq!(conds[0].path[0].test, NodeTest::Attribute("id".into()));
        assert_eq!(conds[1].path[0].test, NodeTest::Attribute("class".into()));
    }

    #[test]
    fn parses_text_predicates() {
        let q = parse("//a[text()='v']").unwrap();
        let cond = &q.steps[0].predicates[0].conditions[0];
        assert_eq!(cond.path[0].test, NodeTest::Text);
    }

    #[test]
    fn parses_text_result_step() {
        let q = parse("//a/text()").unwrap();
        assert_eq!(q.steps[1].test, NodeTest::Text);
    }

    #[test]
    fn element_named_text_without_parens() {
        let q = parse("//text").unwrap();
        assert_eq!(q.steps[0].test, NodeTest::Name("text".into()));
    }

    #[test]
    fn rejects_relative_query() {
        assert!(parse("a/b").is_err());
    }

    #[test]
    fn rejects_empty_query() {
        assert!(parse("").is_err());
        assert!(parse("//").is_err());
        assert!(parse("/").is_err());
    }

    #[test]
    fn rejects_position_function() {
        let e = parse("//a[position()=1]").unwrap_err();
        assert!(e.message().contains("position"));
    }

    #[test]
    fn rejects_absolute_predicate_paths() {
        assert!(parse("//a[/b]").is_err());
        assert!(parse("//a[//b]").is_err());
    }

    #[test]
    fn rejects_steps_after_attribute() {
        assert!(parse("//a/@id/b").is_err());
        assert!(parse("//a[@id/b]").is_err());
    }

    #[test]
    fn rejects_steps_after_text() {
        assert!(parse("//a/text()/b").is_err());
    }

    #[test]
    fn rejects_predicates_on_attributes() {
        assert!(parse("//a/@id[b]").is_err());
    }

    #[test]
    fn rejects_literal_on_left() {
        assert!(parse("//a[1 < b]").is_err());
        assert!(parse("//a['x' = b]").is_err());
    }

    #[test]
    fn rejects_comparison_without_literal() {
        assert!(parse("//a[b = c]").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("//a]").is_err());
        assert!(parse("//a b").is_err());
    }

    #[test]
    fn rejects_unclosed_predicate() {
        assert!(parse("//a[b").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let a = parse("//a[ b and @c = 'v' ] / d").unwrap();
        let b = parse("//a[b and @c='v']/d").unwrap();
        assert_eq!(a, b);
    }
}
