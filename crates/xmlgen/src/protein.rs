//! A synthetic PIR Protein Sequence Database.
//!
//! The paper's evaluation dataset (its reference \[2\], the Georgetown Protein
//! Information Resource export from the UW XML data repository) is a
//! shallow, wide document: one `ProteinDatabase` root with thousands of
//! `ProteinEntry` children, each carrying an `id` attribute, bibliographic
//! `reference` blocks and a long amino-acid `sequence`. The paper's query
//! `//ProteinEntry[reference]/@id` touches exactly that shape.
//!
//! This generator reproduces the shape and the size knob; entry content is
//! seeded-random so documents are reproducible. Roughly 1 KiB per entry
//! with the default configuration.

use std::io::Write;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vitex_xmlsax::writer::{WriteResult, XmlWriter};

/// Configuration for the protein generator.
#[derive(Debug, Clone)]
pub struct ProteinConfig {
    /// RNG seed (documents are deterministic per seed).
    pub seed: u64,
    /// Approximate output size in bytes; entries are emitted until the
    /// writer has produced at least this much.
    pub target_bytes: u64,
    /// Fraction of entries that carry a `reference` block (the paper's Q2
    /// predicate selects these).
    pub reference_fraction: f64,
    /// Length of the amino-acid `sequence` text per entry.
    pub sequence_len: usize,
}

impl Default for ProteinConfig {
    fn default() -> Self {
        ProteinConfig {
            seed: 2005,
            target_bytes: 1 << 20,
            reference_fraction: 0.85,
            sequence_len: 400,
        }
    }
}

impl ProteinConfig {
    /// A config sized to `bytes`.
    pub fn sized(bytes: u64) -> Self {
        ProteinConfig { target_bytes: bytes, ..Default::default() }
    }
}

const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
const ORGANISMS: &[&str] = &[
    "Homo sapiens",
    "Mus musculus",
    "Saccharomyces cerevisiae",
    "Escherichia coli",
    "Drosophila melanogaster",
    "Arabidopsis thaliana",
];
const CLASSIFICATIONS: &[&str] =
    &["oxidoreductase", "transferase", "hydrolase", "lyase", "isomerase", "ligase"];
const AUTHOR_SURNAMES: &[&str] =
    &["Chen", "Davidson", "Zheng", "Smith", "Tanaka", "Mueller", "Garcia", "Ivanov"];

/// Streams a protein database into `writer`.
pub fn generate<W: Write>(writer: &mut XmlWriter<W>, config: &ProteinConfig) -> WriteResult<()> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    writer.declaration()?;
    writer.start_element("ProteinDatabase")?;
    let mut entry = 0u64;
    while writer.bytes_written() < config.target_bytes {
        entry += 1;
        write_entry(writer, &mut rng, entry, config)?;
    }
    writer.end_element()?;
    Ok(())
}

fn write_entry<W: Write>(
    w: &mut XmlWriter<W>,
    rng: &mut StdRng,
    entry: u64,
    config: &ProteinConfig,
) -> WriteResult<()> {
    w.start_element("ProteinEntry")?;
    w.attribute("id", &format!("PIR{entry:07}"))?;

    w.start_element("header")?;
    w.leaf("uid", &format!("U{entry:07}"))?;
    w.leaf("accession", &format!("A{:06}", rng.gen_range(0..1_000_000)))?;
    w.leaf("created_date", &random_date(rng))?;
    w.leaf("seq-rev_date", &random_date(rng))?;
    w.end_element()?;

    w.start_element("protein")?;
    w.leaf("name", &format!("protein {}", rng.gen_range(1..100_000)))?;
    w.leaf("classification", CLASSIFICATIONS[rng.gen_range(0..CLASSIFICATIONS.len())])?;
    w.end_element()?;

    w.start_element("organism")?;
    w.leaf("source", ORGANISMS[rng.gen_range(0..ORGANISMS.len())])?;
    w.leaf("common", "synthetic")?;
    w.end_element()?;

    if rng.gen_bool(config.reference_fraction) {
        let refs = rng.gen_range(1..=3);
        for r in 0..refs {
            w.start_element("reference")?;
            w.start_element("refinfo")?;
            w.attribute("refid", &format!("R{entry}.{r}"))?;
            w.start_element("authors")?;
            for _ in 0..rng.gen_range(1..=4) {
                let surname = AUTHOR_SURNAMES[rng.gen_range(0..AUTHOR_SURNAMES.len())];
                let initial = (b'A' + rng.gen_range(0..26u8)) as char;
                w.leaf("author", &format!("{surname}, {initial}."))?;
            }
            w.end_element()?; // authors
            w.leaf("citation", &format!("J. Synth. Biol. {}", rng.gen_range(1..400)))?;
            w.leaf("year", &rng.gen_range(1970..2005i32).to_string())?;
            w.end_element()?; // refinfo
            w.end_element()?; // reference
        }
    }

    w.start_element("summary")?;
    w.leaf("length", &config.sequence_len.to_string())?;
    w.leaf("type", "complete")?;
    w.end_element()?;

    let seq: String =
        (0..config.sequence_len).map(|_| AMINO[rng.gen_range(0..AMINO.len())] as char).collect();
    w.leaf("sequence", &seq)?;

    w.end_element()?; // ProteinEntry
    Ok(())
}

/// Renders a protein database to a string.
pub fn to_string(config: &ProteinConfig) -> String {
    crate::to_string(|w| generate(w, config))
}

fn random_date(rng: &mut StdRng) -> String {
    format!(
        "{:04}-{:02}-{:02}",
        rng.gen_range(1985..2005),
        rng.gen_range(1..=12),
        rng.gen_range(1..=28)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_wellformed_xml_of_target_size() {
        let cfg = ProteinConfig::sized(64 * 1024);
        let xml = to_string(&cfg);
        assert!(xml.len() as u64 >= cfg.target_bytes);
        assert!((xml.len() as u64) < cfg.target_bytes + 8 * 1024, "one entry overshoot max");
        let events = vitex_xmlsax::XmlReader::from_str(&xml).collect_events().unwrap();
        assert!(events.len() > 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = to_string(&ProteinConfig { seed: 7, target_bytes: 10_000, ..Default::default() });
        let b = to_string(&ProteinConfig { seed: 7, target_bytes: 10_000, ..Default::default() });
        let c = to_string(&ProteinConfig { seed: 8, target_bytes: 10_000, ..Default::default() });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_query_selects_reference_entries() {
        let cfg =
            ProteinConfig { target_bytes: 60_000, reference_fraction: 0.5, ..Default::default() };
        let xml = to_string(&cfg);
        let all = vitex_core::evaluate_str(&xml, "//ProteinEntry/@id").unwrap();
        let with_ref = vitex_core::evaluate_str(&xml, "//ProteinEntry[reference]/@id").unwrap();
        assert!(!with_ref.is_empty());
        assert!(with_ref.len() < all.len(), "the predicate must be selective");
    }

    #[test]
    fn entries_have_pir_ids() {
        let xml = to_string(&ProteinConfig::sized(8_000));
        let ms = vitex_core::evaluate_str(&xml, "//ProteinEntry/@id").unwrap();
        assert!(ms.iter().all(|m| m.value.as_deref().unwrap().starts_with("PIR")));
    }
}
