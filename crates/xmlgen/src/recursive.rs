//! Recursive documents in the shape of the paper's Figure 1.
//!
//! Two generators:
//!
//! * [`figure1`] — the *literal* 17-line sample document from the paper,
//!   used by the worked-example tests.
//! * [`generate`] — the parameterized family: `section` nested to depth
//!   `s`, inside the innermost section `table` nested to depth `t`, a
//!   `cell` in the innermost table, and `position` / `author` witnesses
//!   placed behind the candidates (so predicate satisfaction arrives late,
//!   exactly as the paper's motivation describes). The number of pattern
//!   matches for the cell grows as `s × t` per (section, table) choice —
//!   and exponentially once queries chain more `//` steps — making this
//!   the E3/E6 stress workload.

use std::io::Write;

use vitex_xmlsax::writer::{WriteResult, XmlWriter};

/// Parameters for the Figure-1 family.
#[derive(Debug, Clone)]
pub struct RecursiveConfig {
    /// Nesting depth of `section` elements.
    pub section_depth: usize,
    /// Nesting depth of `table` elements inside the innermost section.
    pub table_depth: usize,
    /// How many independent section towers to emit under the root.
    pub towers: usize,
    /// Which tables (counting from the innermost, 0-based) carry a
    /// `position` child. `None` = the outermost only (like the paper's
    /// `table_5`... which is satisfied; the paper gives `position` to the
    /// outermost of the three tables).
    pub position_on_outermost_only: bool,
    /// Whether the outermost section carries an `author` child (emitted
    /// after everything else, line 15 of the paper's figure).
    pub author_present: bool,
}

impl Default for RecursiveConfig {
    fn default() -> Self {
        RecursiveConfig {
            section_depth: 3,
            table_depth: 3,
            towers: 1,
            position_on_outermost_only: true,
            author_present: true,
        }
    }
}

impl RecursiveConfig {
    /// The paper's Figure 1 exactly (3 sections, 3 tables, position on the
    /// outermost table, author on the outermost section).
    pub fn paper() -> Self {
        RecursiveConfig::default()
    }

    /// A square tower of the given depth.
    pub fn square(depth: usize) -> Self {
        RecursiveConfig { section_depth: depth, table_depth: depth, ..Default::default() }
    }
}

/// Streams a Figure-1-family document into `writer`.
pub fn generate<W: Write>(writer: &mut XmlWriter<W>, config: &RecursiveConfig) -> WriteResult<()> {
    writer.start_element("book")?;
    for _ in 0..config.towers {
        tower(writer, config)?;
    }
    writer.end_element()
}

fn tower<W: Write>(w: &mut XmlWriter<W>, config: &RecursiveConfig) -> WriteResult<()> {
    for _ in 0..config.section_depth {
        w.start_element("section")?;
    }
    for _ in 0..config.table_depth {
        w.start_element("table")?;
    }
    w.leaf("cell", "A")?;
    // Close the inner tables; `position` goes on the outermost table
    // *after* its nested tables (paper line 11), so predicate satisfaction
    // for the outer table arrives after the candidates were recorded.
    for d in 0..config.table_depth {
        let is_outermost = d + 1 == config.table_depth;
        if is_outermost || !config.position_on_outermost_only {
            w.leaf("position", "B")?;
        }
        w.end_element()?; // table
    }
    for d in 0..config.section_depth {
        let is_outermost = d + 1 == config.section_depth;
        if is_outermost && config.author_present {
            w.leaf("author", "C")?;
        }
        w.end_element()?; // section
    }
    Ok(())
}

/// The literal sample document of the paper's Figure 1 (line breaks as in
/// the paper, `<cell> A </>` shorthand expanded).
pub fn figure1() -> String {
    "<book>\n\
     <section>\n\
     <section>\n\
     <section>\n\
     <table>\n\
     <table>\n\
     <table>\n\
     <cell> A </cell>\n\
     </table>\n\
     </table>\n\
     <position> B </position>\n\
     </table>\n\
     </section>\n\
     </section>\n\
     <author> C </author>\n\
     </section>\n\
     </book>"
        .to_string()
}

/// A plain `a`-nesting document `<a><a>…</a></a>` of the given depth —
/// the minimal workload on which `//a//a//…//a` chains explode
/// combinatorially (E3's query-size axis).
pub fn uniform_nesting(depth: usize) -> String {
    let mut s = String::with_capacity(depth * 7 + 2);
    for _ in 0..depth {
        s.push_str("<a>");
    }
    s.push('x');
    for _ in 0..depth {
        s.push_str("</a>");
    }
    s
}

/// Renders a Figure-1-family document to a string.
pub fn to_string(config: &RecursiveConfig) -> String {
    crate::to_string(|w| generate(w, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: &str = "//section[author]//table[position]//cell";

    #[test]
    fn figure1_parses_and_matches_once() {
        let xml = figure1();
        let ms = vitex_core::evaluate_str(&xml, Q1).unwrap();
        assert_eq!(ms.len(), 1, "the paper: only cell_8 qualifies");
    }

    #[test]
    fn generated_paper_config_equals_figure1_semantically() {
        let xml = to_string(&RecursiveConfig::paper());
        let ms = vitex_core::evaluate_str(&xml, Q1).unwrap();
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn without_author_nothing_matches() {
        let cfg = RecursiveConfig { author_present: false, ..RecursiveConfig::paper() };
        let ms = vitex_core::evaluate_str(&to_string(&cfg), Q1).unwrap();
        assert!(ms.is_empty());
    }

    #[test]
    fn towers_multiply_matches() {
        let cfg = RecursiveConfig { towers: 5, ..RecursiveConfig::paper() };
        let ms = vitex_core::evaluate_str(&to_string(&cfg), Q1).unwrap();
        assert_eq!(ms.len(), 5);
    }

    #[test]
    fn position_on_every_table_multiplies_nothing_for_cell() {
        // cell is unique per tower regardless of which tables qualify —
        // matches are a set.
        let cfg = RecursiveConfig { position_on_outermost_only: false, ..Default::default() };
        let ms = vitex_core::evaluate_str(&to_string(&cfg), Q1).unwrap();
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn uniform_nesting_depth() {
        let xml = uniform_nesting(5);
        assert_eq!(xml, "<a><a><a><a><a>x</a></a></a></a></a>");
        let ms = vitex_core::evaluate_str(&xml, "//a//a").unwrap();
        assert_eq!(ms.len(), 4);
    }

    #[test]
    fn square_scales() {
        let xml = to_string(&RecursiveConfig::square(8));
        let sections = vitex_core::evaluate_str(&xml, "//section").unwrap();
        let tables = vitex_core::evaluate_str(&xml, "//table").unwrap();
        assert_eq!(sections.len(), 8);
        assert_eq!(tables.len(), 8);
    }
}
