//! Seeded random trees — the fuzz half of the differential test suites.
//!
//! Small tag/attribute/value alphabets (matching
//! `vitex_xpath::generate::GenConfig`'s defaults) keep the probability
//! that random queries actually match random documents high, which is what
//! makes differential testing against the oracle meaningful.

use std::io::Write;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vitex_xmlsax::writer::{WriteResult, XmlWriter};

/// Shape parameters for random documents.
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// RNG seed.
    pub seed: u64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Maximum children per element.
    pub max_children: usize,
    /// Probability that a child slot is an element (vs text).
    pub element_prob: f64,
    /// Probability that an element carries each potential attribute.
    pub attr_prob: f64,
    /// Tag alphabet.
    pub tags: Vec<String>,
    /// Attribute-name alphabet.
    pub attrs: Vec<String>,
    /// Text/attribute value alphabet.
    pub values: Vec<String>,
    /// Hard cap on total elements (keeps proptest cases fast).
    pub max_elements: usize,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            seed: 1,
            max_depth: 6,
            max_children: 4,
            element_prob: 0.7,
            attr_prob: 0.3,
            tags: ["a", "b", "c", "d", "e"].iter().map(|s| s.to_string()).collect(),
            attrs: ["id", "k"].iter().map(|s| s.to_string()).collect(),
            values: ["v0", "v1", "v2", "7", "42"].iter().map(|s| s.to_string()).collect(),
            max_elements: 300,
        }
    }
}

impl RandomConfig {
    /// Default shapes with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        RandomConfig { seed, ..Default::default() }
    }
}

/// Streams a random document into `writer`.
pub fn generate<W: Write>(writer: &mut XmlWriter<W>, config: &RandomConfig) -> WriteResult<()> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut budget = config.max_elements;
    element(writer, config, &mut rng, 1, &mut budget)
}

fn element<W: Write>(
    w: &mut XmlWriter<W>,
    config: &RandomConfig,
    rng: &mut StdRng,
    depth: usize,
    budget: &mut usize,
) -> WriteResult<()> {
    let tag = &config.tags[rng.gen_range(0..config.tags.len())];
    w.start_element(tag)?;
    *budget = budget.saturating_sub(1);
    for attr in &config.attrs {
        if rng.gen_bool(config.attr_prob) {
            let v = &config.values[rng.gen_range(0..config.values.len())];
            w.attribute(attr, v)?;
        }
    }
    if depth < config.max_depth {
        let children = rng.gen_range(0..=config.max_children);
        for _ in 0..children {
            if *budget == 0 {
                break;
            }
            if rng.gen_bool(config.element_prob) {
                element(w, config, rng, depth + 1, budget)?;
            } else {
                let v = &config.values[rng.gen_range(0..config.values.len())];
                w.text(v)?;
            }
        }
    } else if rng.gen_bool(0.5) {
        let v = &config.values[rng.gen_range(0..config.values.len())];
        w.text(v)?;
    }
    w.end_element()
}

/// Renders a random document to a string.
pub fn to_string(config: &RandomConfig) -> String {
    crate::to_string(|w| generate(w, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_are_wellformed() {
        for seed in 0..50 {
            let xml = to_string(&RandomConfig::seeded(seed));
            vitex_xmlsax::XmlReader::from_str(&xml)
                .collect_events()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{xml}"));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(to_string(&RandomConfig::seeded(3)), to_string(&RandomConfig::seeded(3)));
        assert_ne!(to_string(&RandomConfig::seeded(3)), to_string(&RandomConfig::seeded(4)));
    }

    #[test]
    fn element_budget_is_respected() {
        let cfg = RandomConfig { max_elements: 50, max_depth: 12, ..RandomConfig::seeded(9) };
        let xml = to_string(&cfg);
        let opens = xml.matches('<').count();
        // crude: every element contributes 2 tags or 1 self-closing tag
        assert!(opens <= 2 * 50 + 2, "found {opens} tags");
    }
}
