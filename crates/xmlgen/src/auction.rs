//! An XMark-inspired auction-site snapshot.
//!
//! XMark was the standard scalable XML benchmark of the ViteX era; this is
//! a compact homage with the same feel: `site/regions/.../item` listings
//! and `site/people/person` profiles. It diversifies the data-scaling
//! experiment (E4) beyond the protein shape: deeper paths, more repeated
//! tag names across branches, mixed text/element content.

use std::io::Write;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vitex_xmlsax::writer::{WriteResult, XmlWriter};

/// Configuration for the auction generator.
#[derive(Debug, Clone)]
pub struct AuctionConfig {
    /// RNG seed.
    pub seed: u64,
    /// Approximate output size in bytes.
    pub target_bytes: u64,
}

impl Default for AuctionConfig {
    fn default() -> Self {
        AuctionConfig { seed: 2005, target_bytes: 1 << 20 }
    }
}

impl AuctionConfig {
    /// A config sized to `bytes`.
    pub fn sized(bytes: u64) -> Self {
        AuctionConfig { target_bytes: bytes, ..Default::default() }
    }
}

const REGIONS: &[&str] = &["africa", "asia", "australia", "europe", "namerica", "samerica"];
const WORDS: &[&str] = &[
    "vintage", "rare", "antique", "mint", "boxed", "signed", "limited", "edition", "classic",
    "original",
];
const FIRST: &[&str] = &["Yi", "Susan", "Yifeng", "Ada", "Alan", "Grace", "Edsger", "Barbara"];
const LAST: &[&str] = &["Chen", "Davidson", "Zheng", "Lovelace", "Turing", "Hopper", "Liskov"];

/// Streams an auction site into `writer`.
pub fn generate<W: Write>(writer: &mut XmlWriter<W>, config: &AuctionConfig) -> WriteResult<()> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    writer.declaration()?;
    writer.start_element("site")?;

    writer.start_element("regions")?;
    let mut item = 0u64;
    // Alternate regions; keep ~60% of the byte budget for items.
    while writer.bytes_written() < config.target_bytes * 3 / 5 {
        let region = REGIONS[(item as usize) % REGIONS.len()];
        writer.start_element(region)?;
        for _ in 0..8 {
            item += 1;
            write_item(writer, &mut rng, item)?;
        }
        writer.end_element()?;
    }
    writer.end_element()?; // regions

    writer.start_element("people")?;
    let mut person = 0u64;
    while writer.bytes_written() < config.target_bytes {
        person += 1;
        write_person(writer, &mut rng, person)?;
    }
    writer.end_element()?; // people

    writer.end_element() // site
}

fn write_item<W: Write>(w: &mut XmlWriter<W>, rng: &mut StdRng, id: u64) -> WriteResult<()> {
    w.start_element("item")?;
    w.attribute("id", &format!("item{id}"))?;
    let name: String =
        (0..3).map(|_| WORDS[rng.gen_range(0..WORDS.len())]).collect::<Vec<_>>().join(" ");
    w.leaf("name", &name)?;
    w.leaf("payment", if rng.gen_bool(0.5) { "Creditcard" } else { "Cash" })?;
    w.start_element("description")?;
    w.start_element("parlist")?;
    for _ in 0..rng.gen_range(1..=3) {
        let text: String = (0..rng.gen_range(4..12))
            .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        w.leaf("listitem", &text)?;
    }
    w.end_element()?; // parlist
    w.end_element()?; // description
    w.start_element("quantity")?;
    w.text(&rng.gen_range(1..10i32).to_string())?;
    w.end_element()?;
    w.end_element() // item
}

fn write_person<W: Write>(w: &mut XmlWriter<W>, rng: &mut StdRng, id: u64) -> WriteResult<()> {
    w.start_element("person")?;
    w.attribute("id", &format!("person{id}"))?;
    let name =
        format!("{} {}", FIRST[rng.gen_range(0..FIRST.len())], LAST[rng.gen_range(0..LAST.len())]);
    w.leaf("name", &name)?;
    w.leaf("emailaddress", &format!("mailto:p{id}@example.org"))?;
    if rng.gen_bool(0.7) {
        w.start_element("profile")?;
        w.attribute("income", &format!("{}", rng.gen_range(20_000..200_000)))?;
        for _ in 0..rng.gen_range(1..=3) {
            w.start_element("interest")?;
            w.attribute("category", &format!("cat{}", rng.gen_range(0..20)))?;
            w.end_element()?;
        }
        w.end_element()?;
    }
    w.end_element() // person
}

/// Renders an auction site to a string.
pub fn to_string(config: &AuctionConfig) -> String {
    crate::to_string(|w| generate(w, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_wellformed_sized_xml() {
        let cfg = AuctionConfig::sized(100_000);
        let xml = to_string(&cfg);
        assert!(xml.len() as u64 >= cfg.target_bytes);
        vitex_xmlsax::XmlReader::from_str(&xml).collect_events().unwrap();
    }

    #[test]
    fn queries_find_expected_shapes() {
        let xml = to_string(&AuctionConfig::sized(60_000));
        let items = vitex_core::evaluate_str(&xml, "//item[payment = 'Creditcard']/@id").unwrap();
        assert!(!items.is_empty());
        let people = vitex_core::evaluate_str(&xml, "//person[profile/interest]/name").unwrap();
        assert!(!people.is_empty());
        let deep = vitex_core::evaluate_str(&xml, "//regions//item/description//listitem").unwrap();
        assert!(!deep.is_empty());
    }

    #[test]
    fn deterministic() {
        let a = to_string(&AuctionConfig { seed: 5, target_bytes: 20_000 });
        let b = to_string(&AuctionConfig { seed: 5, target_bytes: 20_000 });
        assert_eq!(a, b);
    }
}
