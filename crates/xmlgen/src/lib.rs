//! # vitex-xmlgen — synthetic XML workloads for the ViteX reproduction
//!
//! The paper evaluates on the PIR Protein Sequence Database (75 MB) and
//! motivates the algorithm with deeply recursive documents (its Figure 1).
//! Neither dataset is redistributable here, so this crate generates
//! structurally faithful synthetic equivalents (see DESIGN.md
//! "Substitutions"):
//!
//! * [`protein`] — a `ProteinDatabase` of `ProteinEntry` records mirroring
//!   the PIR schema: shallow, wide, attribute-rich, with long `sequence`
//!   text. Sized by target bytes; used by experiments E1/E2/E4.
//! * [`recursive`] — the paper's Figure 1 pattern, parameterized: nested
//!   `section`s containing nested `table`s with `cell`s, `position`s and
//!   `author`s appearing (or not) behind the candidates. The workload on
//!   which pattern-match counts explode; used by E3/E6.
//! * [`random`] — seeded random trees over a small tag alphabet, the fuzz
//!   half of the differential test suites.
//! * [`auction`] — an XMark-inspired auction site snapshot for workload
//!   variety in E4.
//!
//! All generators are deterministic in their seed and stream through
//! [`vitex_xmlsax::writer::XmlWriter`], so multi-hundred-megabyte documents
//! can be produced without materializing them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auction;
pub mod protein;
pub mod random;
pub mod recursive;

use std::io::Write;

use vitex_xmlsax::writer::{WriteResult, XmlWriter};

/// Renders a generator into an in-memory string.
pub fn to_string(generate: impl FnOnce(&mut XmlWriter<&mut Vec<u8>>) -> WriteResult<()>) -> String {
    let mut buf = Vec::new();
    {
        let mut w = XmlWriter::new(&mut buf);
        generate(&mut w).expect("in-memory generation cannot fail");
        w.finish().expect("in-memory generation cannot fail");
    }
    String::from_utf8(buf).expect("writer emits UTF-8")
}

/// Renders a generator into any sink (e.g. a file or a counting sink).
pub fn to_writer<W: Write>(
    sink: W,
    generate: impl FnOnce(&mut XmlWriter<W>) -> WriteResult<()>,
) -> WriteResult<u64> {
    let mut w = XmlWriter::new(sink);
    generate(&mut w)?;
    w.finish()?;
    Ok(w.bytes_written())
}

/// A sink that counts bytes and discards them — used to measure generator
/// output sizes without allocation.
#[derive(Debug, Default)]
pub struct NullSink {
    bytes: u64,
}

impl NullSink {
    /// Bytes "written" so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Write for NullSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_string_produces_wellformed_xml() {
        let s = to_string(|w| {
            w.start_element("a")?;
            w.leaf("b", "x")
        });
        assert_eq!(s, "<a><b>x</b></a>");
        vitex_xmlsax::XmlReader::from_str(&s).collect_events().unwrap();
    }

    #[test]
    fn null_sink_counts() {
        let mut s = NullSink::default();
        let n = to_writer(&mut s, |w| w.leaf("a", "hello")).unwrap();
        assert_eq!(n, s.bytes());
        assert_eq!(n, "<a>hello</a>".len() as u64);
    }
}
