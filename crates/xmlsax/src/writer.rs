//! A streaming XML writer.
//!
//! Used by the `vitex-xmlgen` dataset generators to synthesize arbitrarily
//! large documents without materializing them, and by tests to round-trip
//! event streams. The writer enforces the same discipline the reader
//! checks: elements must nest, names must be valid, text is escaped.

use std::io::{self, Write};

use crate::escape::{escape_attr, escape_text};
use crate::name;

/// Errors produced by the writer.
#[derive(Debug)]
pub enum WriteError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Attempted to write an invalid name.
    InvalidName(String),
    /// `end_element` with no open element.
    NothingOpen,
    /// The document already has a root element and it was closed.
    RootClosed,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::Io(e) => write!(f, "I/O error: {e}"),
            WriteError::InvalidName(n) => write!(f, "invalid XML name {n:?}"),
            WriteError::NothingOpen => write!(f, "end_element with no open element"),
            WriteError::RootClosed => write!(f, "content after the root element closed"),
        }
    }
}

impl std::error::Error for WriteError {}

impl From<io::Error> for WriteError {
    fn from(e: io::Error) -> Self {
        WriteError::Io(e)
    }
}

/// Result alias for writer operations.
pub type WriteResult<T> = Result<T, WriteError>;

/// Formatting style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Indent {
    /// Everything on one line (canonical for round-tripping text nodes).
    #[default]
    None,
    /// Pretty-print with the given number of spaces per level. Only safe
    /// for data where inter-element whitespace is insignificant.
    Spaces(u8),
}

/// A streaming XML writer over any [`Write`].
pub struct XmlWriter<W: Write> {
    sink: W,
    open: Vec<String>,
    indent: Indent,
    /// The current start tag is still open (`<name attr=...`), awaiting
    /// either more attributes, content (close with `>`), or self-close.
    tag_open: bool,
    root_written: bool,
    root_closed: bool,
    /// Last thing written was element content (affects pretty indent).
    just_wrote_text: bool,
    bytes_written: u64,
}

impl<W: Write> XmlWriter<W> {
    /// Creates a writer with no indentation.
    pub fn new(sink: W) -> Self {
        XmlWriter::with_indent(sink, Indent::None)
    }

    /// Creates a writer with the given indentation style.
    pub fn with_indent(sink: W, indent: Indent) -> Self {
        XmlWriter {
            sink,
            open: Vec::new(),
            indent,
            tag_open: false,
            root_written: false,
            root_closed: false,
            just_wrote_text: false,
            bytes_written: 0,
        }
    }

    /// Total bytes emitted so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Current element depth.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Consumes the writer, returning the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }

    fn raw(&mut self, s: &str) -> WriteResult<()> {
        self.sink.write_all(s.as_bytes())?;
        self.bytes_written += s.len() as u64;
        Ok(())
    }

    fn newline_indent(&mut self) -> WriteResult<()> {
        if let Indent::Spaces(n) = self.indent {
            if self.root_written {
                self.raw("\n")?;
                let pad = " ".repeat(n as usize * self.open.len());
                self.raw(&pad)?;
            }
        }
        Ok(())
    }

    fn close_pending_tag(&mut self) -> WriteResult<()> {
        if self.tag_open {
            self.raw(">")?;
            self.tag_open = false;
        }
        Ok(())
    }

    /// Writes the XML declaration. Must be first.
    pub fn declaration(&mut self) -> WriteResult<()> {
        self.raw("<?xml version=\"1.0\" encoding=\"UTF-8\"?>")?;
        if matches!(self.indent, Indent::Spaces(_)) {
            self.raw("\n")?;
        }
        Ok(())
    }

    /// Opens an element.
    pub fn start_element(&mut self, tag: &str) -> WriteResult<()> {
        if !name::is_valid_name(tag) {
            return Err(WriteError::InvalidName(tag.into()));
        }
        if self.root_closed {
            return Err(WriteError::RootClosed);
        }
        self.close_pending_tag()?;
        if !self.just_wrote_text {
            self.newline_indent()?;
        }
        self.raw("<")?;
        self.raw(tag)?;
        self.open.push(tag.to_owned());
        self.tag_open = true;
        self.root_written = true;
        self.just_wrote_text = false;
        Ok(())
    }

    /// Adds an attribute to the element opened by the last
    /// [`XmlWriter::start_element`] (before any content was written).
    pub fn attribute(&mut self, attname: &str, value: &str) -> WriteResult<()> {
        if !name::is_valid_name(attname) {
            return Err(WriteError::InvalidName(attname.into()));
        }
        assert!(self.tag_open, "attribute() must directly follow start_element()");
        let escaped = escape_attr(value).into_owned();
        self.raw(" ")?;
        self.raw(attname)?;
        self.raw("=\"")?;
        self.raw(&escaped)?;
        self.raw("\"")?;
        Ok(())
    }

    /// Writes escaped character data.
    pub fn text(&mut self, content: &str) -> WriteResult<()> {
        if content.is_empty() {
            return Ok(());
        }
        self.close_pending_tag()?;
        let escaped = escape_text(content).into_owned();
        self.raw(&escaped)?;
        self.just_wrote_text = true;
        Ok(())
    }

    /// Writes a CDATA section (content must not contain `]]>`; it is split
    /// if it does).
    pub fn cdata(&mut self, content: &str) -> WriteResult<()> {
        self.close_pending_tag()?;
        self.raw("<![CDATA[")?;
        // Split any embedded terminator.
        let mut rest = content;
        while let Some(i) = rest.find("]]>") {
            let (head, tail) = rest.split_at(i + 2);
            self.raw(head)?;
            self.raw("]]><![CDATA[")?;
            rest = tail;
        }
        self.raw(rest)?;
        self.raw("]]>")?;
        self.just_wrote_text = true;
        Ok(())
    }

    /// Writes a comment.
    pub fn comment(&mut self, content: &str) -> WriteResult<()> {
        self.close_pending_tag()?;
        self.newline_indent()?;
        self.raw("<!--")?;
        self.raw(&content.replace("--", "- -"))?;
        self.raw("-->")?;
        Ok(())
    }

    /// Closes the innermost open element (self-closing form if it had no
    /// content).
    pub fn end_element(&mut self) -> WriteResult<()> {
        let tag = self.open.pop().ok_or(WriteError::NothingOpen)?;
        if self.tag_open {
            self.raw("/>")?;
            self.tag_open = false;
        } else {
            if !self.just_wrote_text {
                self.newline_indent()?;
            }
            self.raw("</")?;
            self.raw(&tag)?;
            self.raw(">")?;
        }
        self.just_wrote_text = false;
        if self.open.is_empty() {
            self.root_closed = true;
        }
        Ok(())
    }

    /// Convenience: `start_element` + `text` + `end_element`.
    pub fn leaf(&mut self, tag: &str, content: &str) -> WriteResult<()> {
        self.start_element(tag)?;
        self.text(content)?;
        self.end_element()
    }

    /// Closes all open elements and flushes the sink.
    pub fn finish(&mut self) -> WriteResult<()> {
        while !self.open.is_empty() {
            self.end_element()?;
        }
        if matches!(self.indent, Indent::Spaces(_)) {
            self.raw("\n")?;
        }
        self.sink.flush()?;
        Ok(())
    }
}

/// Writes a document to an in-memory string using a builder closure.
pub fn write_to_string(
    f: impl FnOnce(&mut XmlWriter<&mut Vec<u8>>) -> WriteResult<()>,
) -> WriteResult<String> {
    let mut buf = Vec::new();
    {
        let mut w = XmlWriter::new(&mut buf);
        f(&mut w)?;
        w.finish()?;
    }
    Ok(String::from_utf8(buf).expect("writer emits UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::XmlEvent;
    use crate::reader::XmlReader;

    #[test]
    fn writes_simple_document() {
        let s = write_to_string(|w| {
            w.declaration()?;
            w.start_element("book")?;
            w.attribute("id", "b1")?;
            w.leaf("title", "Streaming <XPath> & more")?;
            w.end_element()
        })
        .unwrap();
        assert_eq!(
            s,
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\
             <book id=\"b1\"><title>Streaming &lt;XPath&gt; &amp; more</title></book>"
        );
    }

    #[test]
    fn self_closing_for_empty_elements() {
        let s = write_to_string(|w| {
            w.start_element("a")?;
            w.start_element("b")?;
            w.end_element()?;
            w.end_element()
        })
        .unwrap();
        assert_eq!(s, "<a><b/></a>");
    }

    #[test]
    fn escapes_attribute_values() {
        let s = write_to_string(|w| {
            w.start_element("a")?;
            w.attribute("q", "say \"hi\" & <go>")?;
            w.end_element()
        })
        .unwrap();
        assert_eq!(s, "<a q=\"say &quot;hi&quot; &amp; &lt;go&gt;\"/>");
    }

    #[test]
    fn cdata_splits_terminator() {
        let s = write_to_string(|w| {
            w.start_element("a")?;
            w.cdata("x]]>y")?;
            w.end_element()
        })
        .unwrap();
        assert_eq!(s, "<a><![CDATA[x]]]]><![CDATA[>y]]></a>");
        // And it round-trips through the reader.
        let events = XmlReader::from_str(&s).collect_events().unwrap();
        let text: String = events
            .iter()
            .filter_map(|e| match e {
                XmlEvent::Characters(c) => Some(c.text.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(text, "x]]>y");
    }

    #[test]
    fn rejects_invalid_names() {
        let err = write_to_string(|w| w.start_element("9bad")).unwrap_err();
        assert!(matches!(err, WriteError::InvalidName(_)));
    }

    #[test]
    fn rejects_second_root() {
        let err = write_to_string(|w| {
            w.start_element("a")?;
            w.end_element()?;
            w.start_element("b")
        })
        .unwrap_err();
        assert!(matches!(err, WriteError::RootClosed));
    }

    #[test]
    fn end_without_open_errors() {
        let err = write_to_string(|w| w.end_element()).unwrap_err();
        assert!(matches!(err, WriteError::NothingOpen));
    }

    #[test]
    fn finish_closes_everything() {
        let mut buf = Vec::new();
        let mut w = XmlWriter::new(&mut buf);
        w.start_element("a").unwrap();
        w.start_element("b").unwrap();
        w.text("t").unwrap();
        w.finish().unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "<a><b>t</b></a>");
    }

    #[test]
    fn pretty_printing_indents() {
        let mut buf = Vec::new();
        {
            let mut w = XmlWriter::with_indent(&mut buf, Indent::Spaces(2));
            w.start_element("a").unwrap();
            w.start_element("b").unwrap();
            w.end_element().unwrap();
            w.finish().unwrap();
        }
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "<a>\n  <b/>\n</a>\n");
    }

    #[test]
    fn round_trips_through_reader() {
        let s = write_to_string(|w| {
            w.declaration()?;
            w.start_element("root")?;
            w.attribute("version", "1 & 2")?;
            w.leaf("x", "a<b")?;
            w.leaf("y", "tab\tnewline\nquote\"")?;
            w.end_element()
        })
        .unwrap();
        let events = XmlReader::from_str(&s).collect_events().unwrap();
        let starts: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                XmlEvent::StartElement(se) => Some(se.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(starts, ["root", "x", "y"]);
    }
}
