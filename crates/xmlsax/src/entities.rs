//! Entity and character-reference resolution.
//!
//! Supports the five predefined entities, decimal/hexadecimal character
//! references, and internal general entities declared in a DOCTYPE internal
//! subset. Expansion is guarded by depth and total-size bounds so that
//! recursive declarations ("billion laughs") fail fast instead of exhausting
//! memory — a non-negotiable property for a streaming system meant to run
//! unattended over untrusted feeds.

use std::collections::HashMap;

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::pos::TextPosition;

/// How an entity was declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntityValue {
    /// `<!ENTITY name "replacement">` — replacement text stored verbatim
    /// (character references already resolved, general entity references
    /// kept for recursive expansion).
    Internal(String),
    /// `<!ENTITY name SYSTEM "uri">` (or PUBLIC) — recorded but never
    /// fetched; referencing one is an error.
    External,
}

/// Bounds applied to entity expansion.
#[derive(Debug, Clone, Copy)]
pub struct EntityLimits {
    /// Maximum nesting depth of entity-in-entity expansion.
    pub max_depth: usize,
    /// Maximum total expanded size (bytes) a single reference may produce.
    pub max_expansion: usize,
}

impl Default for EntityLimits {
    fn default() -> Self {
        EntityLimits { max_depth: 16, max_expansion: 1 << 20 }
    }
}

/// The entity table built from a DOCTYPE internal subset.
#[derive(Debug, Default, Clone)]
pub struct EntityTable {
    entities: HashMap<String, EntityValue>,
}

impl EntityTable {
    /// Creates an empty table (predefined entities are always available and
    /// are not stored here).
    pub fn new() -> Self {
        EntityTable::default()
    }

    /// Declares an internal entity. Per XML 1.0 §4.2, the *first*
    /// declaration wins; later duplicates are ignored.
    pub fn declare_internal(&mut self, name: &str, replacement: &str) {
        self.entities
            .entry(name.to_owned())
            .or_insert_with(|| EntityValue::Internal(replacement.to_owned()));
    }

    /// Declares an external entity (recorded so that references produce a
    /// specific error rather than "unknown entity").
    pub fn declare_external(&mut self, name: &str) {
        self.entities.entry(name.to_owned()).or_insert(EntityValue::External);
    }

    /// Looks up a declared entity.
    pub fn get(&self, name: &str) -> Option<&EntityValue> {
        self.entities.get(name)
    }

    /// Number of declared entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether no entities are declared.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Expands the entity `name` (without `&`/`;`), appending the result to
    /// `out`.
    ///
    /// `allow_markup` controls whether replacement text containing `<` is
    /// acceptable (it is not: this non-validating parser does not re-parse
    /// entity bodies, so such references are rejected with a clear error —
    /// see DESIGN.md §8).
    pub fn expand(
        &self,
        name: &str,
        limits: &EntityLimits,
        pos: TextPosition,
        out: &mut String,
    ) -> XmlResult<()> {
        // Predefined entities first — always available.
        if let Some(c) = predefined(name) {
            out.push(c);
            return Ok(());
        }
        let budget_start = out.len();
        self.expand_rec(name, limits, pos, 0, budget_start, out)
    }

    fn expand_rec(
        &self,
        name: &str,
        limits: &EntityLimits,
        pos: TextPosition,
        depth: usize,
        budget_start: usize,
        out: &mut String,
    ) -> XmlResult<()> {
        if depth >= limits.max_depth {
            return Err(XmlError::new(
                XmlErrorKind::EntityExpansionLimit { what: "maximum nesting depth" },
                pos,
            ));
        }
        if let Some(c) = predefined(name) {
            out.push(c);
            return Ok(());
        }
        let value = match self.entities.get(name) {
            Some(v) => v,
            None => {
                return Err(XmlError::new(
                    XmlErrorKind::UnknownEntity { name: name.to_owned() },
                    pos,
                ))
            }
        };
        let text = match value {
            EntityValue::External => {
                return Err(XmlError::new(
                    XmlErrorKind::ExternalEntity { name: name.to_owned() },
                    pos,
                ))
            }
            EntityValue::Internal(t) => t.clone(),
        };
        if text.contains('<') {
            return Err(XmlError::new(XmlErrorKind::MarkupInEntity { name: name.to_owned() }, pos));
        }
        // Scan replacement text for nested general-entity references.
        let mut rest = text.as_str();
        while let Some(amp) = rest.find('&') {
            let (before, after_amp) = rest.split_at(amp);
            out.push_str(before);
            if out.len() - budget_start > limits.max_expansion {
                return Err(XmlError::new(
                    XmlErrorKind::EntityExpansionLimit { what: "maximum expansion size" },
                    pos,
                ));
            }
            let after = &after_amp[1..];
            let semi = after.find(';').ok_or_else(|| {
                XmlError::syntax(format!("unterminated entity reference in entity {name:?}"), pos)
            })?;
            let inner = &after[..semi];
            if let Some(rest_digits) = inner.strip_prefix('#') {
                let c = parse_char_ref(rest_digits, pos)?;
                out.push(c);
            } else {
                self.expand_rec(inner, limits, pos, depth + 1, budget_start, out)?;
            }
            if out.len() - budget_start > limits.max_expansion {
                return Err(XmlError::new(
                    XmlErrorKind::EntityExpansionLimit { what: "maximum expansion size" },
                    pos,
                ));
            }
            rest = &after[semi + 1..];
        }
        out.push_str(rest);
        if out.len() - budget_start > limits.max_expansion {
            return Err(XmlError::new(
                XmlErrorKind::EntityExpansionLimit { what: "maximum expansion size" },
                pos,
            ));
        }
        Ok(())
    }
}

/// The five predefined entities of XML 1.0 §4.6.
pub fn predefined(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => None,
    }
}

/// Parses the body of a character reference (after `#`, before `;`):
/// decimal digits or `x` + hex digits. Rejects characters outside the XML
/// `Char` production.
pub fn parse_char_ref(body: &str, pos: TextPosition) -> XmlResult<char> {
    let code = if let Some(hex) = body.strip_prefix(['x', 'X']) {
        // Only lowercase 'x' is legal XML, but accept 'X' leniently? No —
        // stay strict: the spec says 'x'.
        if body.starts_with('X') {
            return Err(XmlError::syntax("character reference must use lowercase 'x'", pos));
        }
        u32::from_str_radix(hex, 16)
            .map_err(|_| XmlError::syntax(format!("bad character reference &#{body};"), pos))?
    } else {
        body.parse::<u32>()
            .map_err(|_| XmlError::syntax(format!("bad character reference &#{body};"), pos))?
    };
    let ch = char::from_u32(code).ok_or_else(|| {
        XmlError::syntax(format!("character reference &#{body}; is not a character"), pos)
    })?;
    if !is_xml_char(ch) {
        return Err(XmlError::new(XmlErrorKind::InvalidChar { ch }, pos));
    }
    Ok(ch)
}

/// The XML 1.0 `Char` production (§2.2): characters allowed in documents.
pub fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

#[cfg(test)]
mod tests {
    use super::*;

    const POS: TextPosition = TextPosition::START;

    fn expand(table: &EntityTable, name: &str) -> XmlResult<String> {
        let mut out = String::new();
        table.expand(name, &EntityLimits::default(), POS, &mut out)?;
        Ok(out)
    }

    #[test]
    fn predefined_entities() {
        let t = EntityTable::new();
        assert_eq!(expand(&t, "lt").unwrap(), "<");
        assert_eq!(expand(&t, "gt").unwrap(), ">");
        assert_eq!(expand(&t, "amp").unwrap(), "&");
        assert_eq!(expand(&t, "apos").unwrap(), "'");
        assert_eq!(expand(&t, "quot").unwrap(), "\"");
    }

    #[test]
    fn unknown_entity_errors() {
        let t = EntityTable::new();
        let e = expand(&t, "nope").unwrap_err();
        assert!(matches!(e.kind(), XmlErrorKind::UnknownEntity { .. }));
    }

    #[test]
    fn internal_entity_expands() {
        let mut t = EntityTable::new();
        t.declare_internal("copy", "©2005");
        assert_eq!(expand(&t, "copy").unwrap(), "©2005");
    }

    #[test]
    fn nested_entities_expand() {
        let mut t = EntityTable::new();
        t.declare_internal("a", "x");
        t.declare_internal("b", "&a;&a;");
        t.declare_internal("c", "[&b;]");
        assert_eq!(expand(&t, "c").unwrap(), "[xx]");
    }

    #[test]
    fn first_declaration_wins() {
        let mut t = EntityTable::new();
        t.declare_internal("e", "first");
        t.declare_internal("e", "second");
        assert_eq!(expand(&t, "e").unwrap(), "first");
    }

    #[test]
    fn recursive_entities_hit_depth_limit() {
        let mut t = EntityTable::new();
        t.declare_internal("a", "&b;");
        t.declare_internal("b", "&a;");
        let e = expand(&t, "a").unwrap_err();
        assert!(matches!(
            e.kind(),
            XmlErrorKind::EntityExpansionLimit { what: "maximum nesting depth" }
        ));
    }

    #[test]
    fn billion_laughs_hits_size_limit() {
        let mut t = EntityTable::new();
        t.declare_internal("l0", &"ha".repeat(50));
        for i in 1..10 {
            let prev = format!("&l{};", i - 1).repeat(10);
            t.declare_internal(&format!("l{i}"), &prev);
        }
        let limits = EntityLimits { max_depth: 32, max_expansion: 10_000 };
        let mut out = String::new();
        let e = t.expand("l9", &limits, POS, &mut out).unwrap_err();
        assert!(matches!(
            e.kind(),
            XmlErrorKind::EntityExpansionLimit { what: "maximum expansion size" }
        ));
    }

    #[test]
    fn external_entities_are_refused() {
        let mut t = EntityTable::new();
        t.declare_external("xxe");
        let e = expand(&t, "xxe").unwrap_err();
        assert!(matches!(e.kind(), XmlErrorKind::ExternalEntity { .. }));
    }

    #[test]
    fn markup_in_entity_is_refused() {
        let mut t = EntityTable::new();
        t.declare_internal("frag", "<b>bold</b>");
        let e = expand(&t, "frag").unwrap_err();
        assert!(matches!(e.kind(), XmlErrorKind::MarkupInEntity { .. }));
    }

    #[test]
    fn char_refs_in_entity_bodies() {
        let mut t = EntityTable::new();
        t.declare_internal("tab", "a&#9;b");
        assert_eq!(expand(&t, "tab").unwrap(), "a\tb");
    }

    #[test]
    fn char_ref_parsing() {
        assert_eq!(parse_char_ref("65", POS).unwrap(), 'A');
        assert_eq!(parse_char_ref("x41", POS).unwrap(), 'A');
        assert_eq!(parse_char_ref("x1F600", POS).unwrap(), '😀');
        assert!(parse_char_ref("xZZ", POS).is_err());
        assert!(parse_char_ref("", POS).is_err());
        // U+0000 is not an XML char; neither is a lone surrogate.
        assert!(parse_char_ref("0", POS).is_err());
        assert!(parse_char_ref("xD800", POS).is_err());
        // Control chars other than tab/nl/cr are invalid.
        assert!(parse_char_ref("1", POS).is_err());
        assert!(parse_char_ref("x1F", POS).is_err());
    }

    #[test]
    fn xml_char_classifier() {
        assert!(is_xml_char('\t'));
        assert!(is_xml_char('a'));
        assert!(is_xml_char('\u{10FFFF}'));
        assert!(!is_xml_char('\u{0}'));
        assert!(!is_xml_char('\u{B}'));
        assert!(!is_xml_char('\u{FFFE}'));
    }
}
