//! Error types for the streaming parser.
//!
//! Every error carries the [`TextPosition`] at which it was detected so that
//! a streaming client can report precisely where a malformed document broke
//! the single sequential scan.

use std::fmt;
use std::io;
use std::sync::Arc;

use crate::pos::TextPosition;

/// Convenient result alias used throughout the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// The category of a parse failure.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum XmlErrorKind {
    /// An I/O error surfaced by the underlying reader. Shared behind an
    /// `Arc` because `io::Error` is not `Clone` and the parallel front-end
    /// needs clonable (sticky) errors without losing the source chain.
    Io(Arc<io::Error>),
    /// The input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        expected: &'static str,
    },
    /// A byte sequence that is not valid UTF-8.
    InvalidUtf8,
    /// A character that may not appear in XML content (XML 1.0 §2.2).
    InvalidChar {
        /// The offending character.
        ch: char,
    },
    /// A syntactically invalid XML name.
    InvalidName {
        /// The offending name as far as it was read.
        name: String,
    },
    /// Malformed markup with a human-readable description.
    Syntax {
        /// Description of the violation.
        msg: String,
    },
    /// An end tag that does not match the open start tag.
    MismatchedTag {
        /// The name that was expected (the innermost open element).
        expected: String,
        /// The name that was found.
        found: String,
    },
    /// An end tag with no corresponding open element.
    UnbalancedEndTag {
        /// The name of the stray end tag.
        name: String,
    },
    /// A second root element, or content after the root closed.
    TrailingContent,
    /// A document with no root element.
    NoRootElement,
    /// Character data outside the root element.
    TextOutsideRoot,
    /// The same attribute name appeared twice in one start tag.
    DuplicateAttribute {
        /// The repeated attribute name.
        name: String,
    },
    /// Reference to an undeclared entity.
    UnknownEntity {
        /// The entity name as written (without `&`/`;`).
        name: String,
    },
    /// Entity expansion exceeded the configured depth or size bounds
    /// (defends against "billion laughs"-style inputs).
    EntityExpansionLimit {
        /// Description of the exceeded bound.
        what: &'static str,
    },
    /// Reference to an external entity (never fetched; XXE-safe).
    ExternalEntity {
        /// The entity name.
        name: String,
    },
    /// An entity whose replacement text contains markup was referenced in
    /// content — this non-validating parser does not re-parse entity bodies.
    MarkupInEntity {
        /// The entity name.
        name: String,
    },
    /// A declared but unsupported encoding in the XML declaration.
    UnsupportedEncoding {
        /// The declared encoding label.
        encoding: String,
    },
    /// Element nesting exceeded the configured maximum depth.
    DepthLimit {
        /// The configured maximum.
        max: usize,
    },
}

/// A parse error: a kind plus the position where it was detected.
#[derive(Debug, Clone)]
pub struct XmlError {
    kind: XmlErrorKind,
    position: TextPosition,
}

impl XmlError {
    /// Creates an error at a position.
    pub fn new(kind: XmlErrorKind, position: TextPosition) -> Self {
        XmlError { kind, position }
    }

    /// Creates a [`XmlErrorKind::Syntax`] error at a position.
    pub fn syntax(msg: impl Into<String>, position: TextPosition) -> Self {
        XmlError::new(XmlErrorKind::Syntax { msg: msg.into() }, position)
    }

    /// The error category.
    pub fn kind(&self) -> &XmlErrorKind {
        &self.kind
    }

    /// Where the error was detected.
    pub fn position(&self) -> TextPosition {
        self.position
    }

    /// The same error relocated to `position` — used by the parallel
    /// front-end to rebase fragment-relative positions onto the document.
    pub(crate) fn at(mut self, position: TextPosition) -> Self {
        self.position = position;
        self
    }

    /// Whether this error is an I/O error (as opposed to malformed XML).
    pub fn is_io(&self) -> bool {
        matches!(self.kind, XmlErrorKind::Io(_))
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.position)?;
        match &self.kind {
            XmlErrorKind::Io(e) => write!(f, "I/O error: {e}"),
            XmlErrorKind::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input while reading {expected}")
            }
            XmlErrorKind::InvalidUtf8 => write!(f, "invalid UTF-8 sequence"),
            XmlErrorKind::InvalidChar { ch } => {
                write!(f, "character U+{:04X} is not allowed in XML", *ch as u32)
            }
            XmlErrorKind::InvalidName { name } => write!(f, "invalid XML name {name:?}"),
            XmlErrorKind::Syntax { msg } => write!(f, "{msg}"),
            XmlErrorKind::MismatchedTag { expected, found } => {
                write!(f, "mismatched end tag: expected </{expected}>, found </{found}>")
            }
            XmlErrorKind::UnbalancedEndTag { name } => {
                write!(f, "end tag </{name}> has no matching start tag")
            }
            XmlErrorKind::TrailingContent => {
                write!(f, "content after the root element closed")
            }
            XmlErrorKind::NoRootElement => write!(f, "document has no root element"),
            XmlErrorKind::TextOutsideRoot => {
                write!(f, "character data outside the root element")
            }
            XmlErrorKind::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute {name:?}")
            }
            XmlErrorKind::UnknownEntity { name } => {
                write!(f, "reference to undeclared entity &{name};")
            }
            XmlErrorKind::EntityExpansionLimit { what } => {
                write!(f, "entity expansion exceeded {what}")
            }
            XmlErrorKind::ExternalEntity { name } => write!(
                f,
                "reference to external entity &{name}; (external entities are not fetched)"
            ),
            XmlErrorKind::MarkupInEntity { name } => {
                write!(f, "entity &{name}; expands to markup, which this parser does not re-parse")
            }
            XmlErrorKind::UnsupportedEncoding { encoding } => {
                write!(f, "unsupported encoding {encoding:?} (only UTF-8 is supported)")
            }
            XmlErrorKind::DepthLimit { max } => {
                write!(f, "element nesting exceeds the configured maximum of {max}")
            }
        }
    }
}

impl std::error::Error for XmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            XmlErrorKind::Io(e) => Some(&**e),
            _ => None,
        }
    }
}

impl From<io::Error> for XmlError {
    fn from(e: io::Error) -> Self {
        XmlError::new(XmlErrorKind::Io(Arc::new(e)), TextPosition::START)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_message() {
        let e = XmlError::new(
            XmlErrorKind::MismatchedTag { expected: "a".into(), found: "b".into() },
            TextPosition::new(5, 2, 3),
        );
        assert_eq!(e.to_string(), "2:3: mismatched end tag: expected </a>, found </b>");
    }

    #[test]
    fn io_errors_are_flagged() {
        let e: XmlError = io::Error::other("boom").into();
        assert!(e.is_io());
        assert!(e.to_string().contains("boom"));
        let s = XmlError::syntax("bad", TextPosition::START);
        assert!(!s.is_io());
    }
}
