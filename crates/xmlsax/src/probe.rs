//! Observability hook for the parse front-end.
//!
//! `xmlsax` stays dependency-free: it does not know about any metrics
//! registry. Instead the reader and the parallel front-end accept an
//! optional [`ParseProbe`] — a thin trait whose methods all default to
//! no-ops — and report scanner byte counts, speculative chunk timings, and
//! coordinator stitch time through it. `vitex-core`'s telemetry handle
//! implements the trait and folds these into its registry.
//!
//! Every hook is called outside the innermost scan loops: scanner byte
//! counts accumulate in plain per-reader integers and are flushed once per
//! document (or on reader drop), chunk timings fire once per speculative
//! chunk, and stitch time fires once per inline reparse. A probe therefore
//! sees a handful of calls per document, not per byte or per event.

use std::sync::Arc;
use std::time::Instant;

/// Receiver for parse front-end observations. All methods default to
/// no-ops; implementors override what they record. Probes are shared
/// across parse worker threads, hence `Send + Sync`.
pub trait ParseProbe: Send + Sync {
    /// Scanner byte counts for one reader: bytes advanced by the SWAR wide
    /// path vs the scalar path. Flushed once per document end (or reader
    /// drop), with deltas since the previous flush.
    fn on_scan_bytes(&self, wide: u64, scalar: u64) {
        let _ = (wide, scalar);
    }

    /// One speculative chunk parsed by parse worker `worker`, covering
    /// `bytes` of input, starting at `start` and lasting `dur_ns`.
    fn on_chunk(&self, worker: usize, bytes: u64, start: Instant, dur_ns: u64) {
        let _ = (worker, bytes, start, dur_ns);
    }

    /// Coordinator time (ns) spent reconciling speculative results — the
    /// inline reparse of fragments whose speculation missed.
    fn on_stitch(&self, ns: u64) {
        let _ = ns;
    }
}

/// Shared probe handle threaded through readers and parse workers.
pub type ProbeHandle = Arc<dyn ParseProbe>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingProbe {
        wide: AtomicU64,
        scalar: AtomicU64,
        chunks: AtomicU64,
        stitch_ns: AtomicU64,
    }

    impl ParseProbe for CountingProbe {
        fn on_scan_bytes(&self, wide: u64, scalar: u64) {
            self.wide.fetch_add(wide, Ordering::Relaxed);
            self.scalar.fetch_add(scalar, Ordering::Relaxed);
        }
        fn on_chunk(&self, _worker: usize, _bytes: u64, _start: Instant, _dur_ns: u64) {
            self.chunks.fetch_add(1, Ordering::Relaxed);
        }
        fn on_stitch(&self, ns: u64) {
            self.stitch_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    #[test]
    fn default_methods_are_noops() {
        struct Silent;
        impl ParseProbe for Silent {}
        let probe: ProbeHandle = Arc::new(Silent);
        probe.on_scan_bytes(1, 2);
        probe.on_chunk(0, 10, Instant::now(), 5);
        probe.on_stitch(3);
    }

    #[test]
    fn implementors_receive_calls() {
        let probe = Arc::new(CountingProbe::default());
        let handle: ProbeHandle = probe.clone();
        handle.on_scan_bytes(64, 8);
        handle.on_chunk(1, 4096, Instant::now(), 100);
        handle.on_stitch(9);
        assert_eq!(probe.wide.load(Ordering::Relaxed), 64);
        assert_eq!(probe.scalar.load(Ordering::Relaxed), 8);
        assert_eq!(probe.chunks.load(Ordering::Relaxed), 1);
        assert_eq!(probe.stitch_ns.load(Ordering::Relaxed), 9);
    }
}
