//! The streaming pull parser.
//!
//! [`XmlReader`] drives a [`Scanner`] through the XML grammar and yields
//! [`XmlEvent`]s one at a time. It is the "XML SAX parser" box of the ViteX
//! architecture diagram; `vitex-core`'s engine calls [`XmlReader::next_event`]
//! in a loop and feeds each event to the TwigM machine.
//!
//! Well-formedness is enforced incrementally: the reader maintains exactly
//! one piece of unbounded state — the stack of open element names — whose
//! size is the document depth, not the document length.

use std::io::{Cursor, Read};

use crate::entities::{self, EntityLimits, EntityTable};
use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::event::{
    Attribute, CharactersEvent, EndElementEvent, ProcessingInstructionEvent, StartElementEvent,
    XmlEvent,
};
use crate::input::{ByteClass, Scanner};
use crate::name::{self, QName};
use crate::pos::{ByteSpan, TextPosition};
use crate::probe::ProbeHandle;

/// Configuration for [`XmlReader`].
#[derive(Debug, Clone)]
pub struct ReaderConfig {
    /// Merge adjacent character data and CDATA sections into a single
    /// [`XmlEvent::Characters`] event (XPath text-node semantics).
    /// Default: `true`.
    pub coalesce_text: bool,
    /// Suppress character events that consist entirely of whitespace.
    /// Default: `false` (string-values must include such whitespace).
    pub skip_whitespace_text: bool,
    /// Bounds on entity expansion.
    pub entity_limits: EntityLimits,
    /// Maximum element nesting depth. Default: 4096.
    pub max_depth: usize,
    /// Sliding-window buffer size in bytes. Default: 64 KiB.
    pub buffer_capacity: usize,
    /// Use the SWAR word-at-a-time scan inside class runs. Default: `true`;
    /// disable to force the scalar per-byte loop (benchmark ablation).
    pub wide_scan: bool,
}

impl Default for ReaderConfig {
    fn default() -> Self {
        ReaderConfig {
            coalesce_text: true,
            skip_whitespace_text: false,
            entity_limits: EntityLimits::default(),
            max_depth: 4096,
            buffer_capacity: 64 * 1024,
            wide_scan: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DocState {
    /// Nothing consumed yet (BOM / XML declaration pending).
    Init,
    /// Before the root element.
    Prolog,
    /// Inside the root element.
    InRoot,
    /// After the root element closed.
    Epilog,
    /// `EndDocument` has been delivered.
    Done,
}

/// Anything that yields a stream of [`XmlEvent`]s terminated by
/// [`XmlEvent::EndDocument`].
///
/// Abstracts over the sequential [`XmlReader`] and the parallel
/// [`crate::par::ParallelReader`] so downstream drivers (the `vitex-core`
/// engines) accept either front-end without caring which produced the
/// stream. Implementations must keep returning `EndDocument` once it has
/// been delivered.
pub trait EventSource {
    /// Pulls the next event.
    fn next_event(&mut self) -> XmlResult<XmlEvent>;
}

impl<R: Read> EventSource for XmlReader<R> {
    fn next_event(&mut self) -> XmlResult<XmlEvent> {
        XmlReader::next_event(self)
    }
}

/// A mutable reference to an event source is itself an event source, so
/// callers can lend a reader to a driver and keep it afterwards (e.g. to
/// read parse statistics once the run completes).
impl<E: EventSource + ?Sized> EventSource for &mut E {
    fn next_event(&mut self) -> XmlResult<XmlEvent> {
        (**self).next_event()
    }
}

/// A streaming, pull-based XML parser.
pub struct XmlReader<R: Read> {
    scanner: Scanner<R>,
    config: ReaderConfig,
    state: DocState,
    /// Names of currently open elements (innermost last).
    open: Vec<QName>,
    /// Byte offset of the `<` of each open element's start tag.
    open_starts: Vec<u64>,
    /// Line/column of each open element's start tag.
    open_positions: Vec<TextPosition>,
    entities: EntityTable,
    /// A self-closing tag produces a deferred `EndElement`.
    pending_end: Option<EndElementEvent>,
    seen_doctype: bool,
    scratch: String,
    /// Fragment mode (parallel front-end): the reader starts mid-document
    /// inside the root element, tolerates end tags for elements it never
    /// saw open (the coordinator resolves them during replay), and treats
    /// end-of-input as a clean fragment end rather than an error.
    fragment: bool,
    /// Optional observability hook; scanner byte counts are flushed to it
    /// at document end and on drop (deltas, so the two never double-count).
    probe: Option<ProbeHandle>,
    /// Scan counts already reported to the probe.
    scan_reported: (u64, u64),
}

impl XmlReader<Cursor<Vec<u8>>> {
    /// Parses from an owned byte vector.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        XmlReader::new(Cursor::new(bytes))
    }
}

impl<'a> XmlReader<Cursor<&'a [u8]>> {
    /// Parses from a borrowed string. (Not the `FromStr` trait: borrowed
    /// input with an explicit lifetime cannot satisfy it.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &'a str) -> Self {
        XmlReader::new(Cursor::new(s.as_bytes()))
    }

    /// Parses from a borrowed byte slice.
    pub fn from_slice(s: &'a [u8]) -> Self {
        XmlReader::new(Cursor::new(s))
    }
}

impl<R: Read> XmlReader<R> {
    /// Creates a reader with default configuration.
    pub fn new(source: R) -> Self {
        XmlReader::with_config(source, ReaderConfig::default())
    }

    /// Creates a reader with explicit configuration.
    pub fn with_config(source: R, config: ReaderConfig) -> Self {
        let mut scanner = Scanner::with_capacity(source, config.buffer_capacity);
        scanner.set_wide_scan(config.wide_scan);
        XmlReader {
            scanner,
            config,
            state: DocState::Init,
            open: Vec::new(),
            open_starts: Vec::new(),
            open_positions: Vec::new(),
            entities: EntityTable::new(),
            pending_end: None,
            seen_doctype: false,
            scratch: String::new(),
            fragment: false,
            probe: None,
            scan_reported: (0, 0),
        }
    }

    /// Creates a *fragment* reader for the parallel front-end: parsing
    /// starts mid-document (inside the root element) at absolute stream
    /// position `start`, with line/column counted relative to the fragment
    /// (the coordinator rebases them during replay). The reader stays in
    /// content state for its whole life, emits end tags it cannot match
    /// locally as events with an empty element span (resolved at replay),
    /// and reports end-of-input as `EndDocument`.
    pub(crate) fn fragment(source: R, config: ReaderConfig, start: TextPosition) -> Self {
        let mut scanner = Scanner::with_capacity_at(source, config.buffer_capacity, start);
        scanner.set_wide_scan(config.wide_scan);
        XmlReader {
            scanner,
            config,
            state: DocState::InRoot,
            open: Vec::new(),
            open_starts: Vec::new(),
            open_positions: Vec::new(),
            entities: EntityTable::new(),
            pending_end: None,
            seen_doctype: false,
            scratch: String::new(),
            fragment: true,
            probe: None,
            scan_reported: (0, 0),
        }
    }

    /// Attaches an observability probe (see [`crate::probe::ParseProbe`]).
    /// Scanner byte counts are reported to it when the document ends and
    /// when the reader is dropped.
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = Some(probe);
    }

    /// Reports un-flushed scanner byte counts to the probe, if any.
    fn flush_scan_probe(&mut self) {
        if let Some(probe) = &self.probe {
            let (wide, scalar) = self.scanner.scan_counts();
            let d_wide = wide - self.scan_reported.0;
            let d_scalar = scalar - self.scan_reported.1;
            if d_wide > 0 || d_scalar > 0 {
                probe.on_scan_bytes(d_wide, d_scalar);
                self.scan_reported = (wide, scalar);
            }
        }
    }

    /// Whether a self-closing tag's deferred `EndElement` is still queued
    /// (the parallel front-end must drain it before cutting a fragment).
    pub(crate) fn has_pending_end(&self) -> bool {
        self.pending_end.is_some()
    }

    /// Current element nesting depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Current stream position.
    pub fn position(&self) -> TextPosition {
        self.scanner.position()
    }

    /// Current absolute byte offset.
    pub fn offset(&self) -> u64 {
        self.scanner.offset()
    }

    /// The entity table accumulated from the DOCTYPE internal subset.
    pub fn entity_table(&self) -> &EntityTable {
        &self.entities
    }

    /// Pulls the next event. After [`XmlEvent::EndDocument`] has been
    /// returned, every further call returns it again.
    pub fn next_event(&mut self) -> XmlResult<XmlEvent> {
        let event = self.next_event_inner();
        if matches!(&event, Ok(XmlEvent::EndDocument)) {
            self.flush_scan_probe();
        }
        event
    }

    fn next_event_inner(&mut self) -> XmlResult<XmlEvent> {
        if let Some(end) = self.pending_end.take() {
            self.pop_open();
            if self.open.is_empty() && self.state == DocState::InRoot && !self.fragment {
                self.state = DocState::Epilog;
            }
            return Ok(XmlEvent::EndElement(end));
        }
        match self.state {
            DocState::Init => self.read_document_start(),
            DocState::Done => Ok(XmlEvent::EndDocument),
            _ => self.read_content(),
        }
    }

    /// Convenience: runs the document to completion, returning all events
    /// including the final `EndDocument`. Intended for tests and small
    /// inputs; production consumers should stream.
    pub fn collect_events(mut self) -> XmlResult<Vec<XmlEvent>> {
        let mut events = Vec::new();
        loop {
            let e = self.next_event()?;
            let done = e.is_end_document();
            events.push(e);
            if done {
                return Ok(events);
            }
        }
    }

    // ---------------------------------------------------------------- //
    // Document start: BOM + XML declaration
    // ---------------------------------------------------------------- //

    fn read_document_start(&mut self) -> XmlResult<XmlEvent> {
        if self.scanner.starts_with(b"\xEF\xBB\xBF")? {
            self.scanner.skip_raw(3);
        }
        self.state = DocState::Prolog;
        // `<?xml` followed by whitespace is the declaration; `<?xml-...` is
        // an ordinary PI.
        if self.scanner.starts_with(b"<?xml")? {
            match self.scanner.peek_at(5)? {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    return self.read_xml_declaration();
                }
                _ => {}
            }
        }
        Ok(XmlEvent::StartDocument { version: None, encoding: None })
    }

    fn read_xml_declaration(&mut self) -> XmlResult<XmlEvent> {
        self.scanner.consume_ascii(b"<?xml")?;
        let mut version = None;
        let mut encoding = None;
        loop {
            self.skip_whitespace()?;
            match self.scanner.peek_byte()? {
                Some(b'?') => {
                    self.expect_ascii(b"?>")?;
                    break;
                }
                Some(_) => {
                    let pos = self.scanner.position();
                    let key = self.read_name()?;
                    self.skip_whitespace()?;
                    self.expect_ascii(b"=")?;
                    self.skip_whitespace()?;
                    let value = self.read_quoted_literal()?;
                    match key.as_str() {
                        "version" => version = Some(value),
                        "encoding" => {
                            if !value.eq_ignore_ascii_case("utf-8")
                                && !value.eq_ignore_ascii_case("utf8")
                                && !value.eq_ignore_ascii_case("us-ascii")
                                && !value.eq_ignore_ascii_case("ascii")
                            {
                                return Err(XmlError::new(
                                    XmlErrorKind::UnsupportedEncoding { encoding: value },
                                    pos,
                                ));
                            }
                            encoding = Some(value);
                        }
                        "standalone" => {}
                        other => {
                            return Err(XmlError::syntax(
                                format!("unexpected XML-declaration attribute {other:?}"),
                                pos,
                            ))
                        }
                    }
                }
                None => {
                    return Err(XmlError::new(
                        XmlErrorKind::UnexpectedEof { expected: "XML declaration" },
                        self.scanner.position(),
                    ))
                }
            }
        }
        Ok(XmlEvent::StartDocument { version, encoding })
    }

    // ---------------------------------------------------------------- //
    // Main content dispatch
    // ---------------------------------------------------------------- //

    fn read_content(&mut self) -> XmlResult<XmlEvent> {
        loop {
            let pos = self.scanner.position();
            match self.scanner.peek_byte()? {
                None => return self.handle_eof(pos),
                Some(b'<') => match self.classify_markup()? {
                    Markup::EndTag => return self.read_end_tag(),
                    Markup::Comment => return Ok(XmlEvent::Comment(self.read_comment()?)),
                    Markup::Cdata => {
                        if self.state != DocState::InRoot {
                            return Err(XmlError::syntax(
                                "CDATA section outside the root element",
                                pos,
                            ));
                        }
                        return self.read_text();
                    }
                    Markup::Doctype => {
                        let event = self.read_doctype()?;
                        return Ok(event);
                    }
                    Markup::Pi => return self.read_pi().map(XmlEvent::ProcessingInstruction),
                    Markup::StartTag => return self.read_start_tag(),
                },
                Some(_) => {
                    if self.state == DocState::InRoot {
                        return self.read_text();
                    }
                    // Outside the root element only whitespace may appear.
                    if !self.skip_whitespace()? {
                        return Err(XmlError::new(XmlErrorKind::TextOutsideRoot, pos));
                    }
                }
            }
        }
    }

    fn handle_eof(&mut self, pos: TextPosition) -> XmlResult<XmlEvent> {
        if self.fragment {
            // A fragment simply ends at its slice boundary; whether open
            // elements remain is for the coordinator to judge once the
            // *document* ends.
            self.state = DocState::Done;
            return Ok(XmlEvent::EndDocument);
        }
        match self.state {
            DocState::InRoot => Err(XmlError::new(
                XmlErrorKind::UnexpectedEof { expected: "end tags for open elements" },
                pos,
            )),
            DocState::Prolog | DocState::Init => {
                Err(XmlError::new(XmlErrorKind::NoRootElement, pos))
            }
            DocState::Epilog | DocState::Done => {
                self.state = DocState::Done;
                Ok(XmlEvent::EndDocument)
            }
        }
    }

    fn classify_markup(&mut self) -> XmlResult<Markup> {
        // peek_byte returned '<'; decide which construct follows.
        Ok(match self.scanner.peek_at(1)? {
            Some(b'/') => Markup::EndTag,
            Some(b'?') => Markup::Pi,
            Some(b'!') => {
                if self.scanner.starts_with(b"<!--")? {
                    Markup::Comment
                } else if self.scanner.starts_with(b"<![CDATA[")? {
                    Markup::Cdata
                } else if self.scanner.starts_with(b"<!DOCTYPE")? {
                    Markup::Doctype
                } else {
                    return Err(XmlError::syntax(
                        "unrecognized markup after '<!'",
                        self.scanner.position(),
                    ));
                }
            }
            _ => Markup::StartTag,
        })
    }

    // ---------------------------------------------------------------- //
    // Tags
    // ---------------------------------------------------------------- //

    fn read_start_tag(&mut self) -> XmlResult<XmlEvent> {
        let start_offset = self.scanner.offset();
        let position = self.scanner.position();
        match self.state {
            DocState::Epilog => return Err(XmlError::new(XmlErrorKind::TrailingContent, position)),
            DocState::Prolog => {}
            DocState::InRoot => {}
            _ => unreachable!("start tag in state {:?}", self.state),
        }
        self.expect_ascii(b"<")?;
        let name = QName::new(self.read_name()?);
        let mut attributes: Vec<Attribute> = Vec::new();
        let self_closing;
        loop {
            let had_ws = self.skip_whitespace()?;
            match self.scanner.peek_byte()? {
                Some(b'>') => {
                    self.expect_ascii(b">")?;
                    self_closing = false;
                    break;
                }
                Some(b'/') => {
                    self.expect_ascii(b"/>")?;
                    self_closing = true;
                    break;
                }
                Some(_) => {
                    if !had_ws {
                        return Err(XmlError::syntax(
                            "expected whitespace before attribute",
                            self.scanner.position(),
                        ));
                    }
                    let attr_pos = self.scanner.position();
                    let attr_name = QName::new(self.read_name()?);
                    if attributes.iter().any(|a| a.name == attr_name) {
                        return Err(XmlError::new(
                            XmlErrorKind::DuplicateAttribute { name: attr_name.as_str().into() },
                            attr_pos,
                        ));
                    }
                    self.skip_whitespace()?;
                    self.expect_ascii(b"=")?;
                    self.skip_whitespace()?;
                    let value = self.read_attribute_value()?;
                    attributes.push(Attribute { name: attr_name, value });
                }
                None => {
                    return Err(XmlError::new(
                        XmlErrorKind::UnexpectedEof { expected: "start tag" },
                        self.scanner.position(),
                    ))
                }
            }
        }
        if self.open.len() >= self.config.max_depth {
            return Err(XmlError::new(
                XmlErrorKind::DepthLimit { max: self.config.max_depth },
                position,
            ));
        }
        let end_offset = self.scanner.offset();
        self.open.push(name.clone());
        self.open_starts.push(start_offset);
        self.open_positions.push(position);
        if self.state == DocState::Prolog {
            self.state = DocState::InRoot;
        }
        let level = self.open.len() as u32;
        if self_closing {
            self.pending_end = Some(EndElementEvent {
                name: name.clone(),
                level,
                element_span: ByteSpan::new(start_offset, end_offset),
                position,
            });
        }
        Ok(XmlEvent::StartElement(StartElementEvent {
            name,
            attributes,
            level,
            span: ByteSpan::new(start_offset, end_offset),
            position,
            self_closing,
        }))
    }

    fn read_end_tag(&mut self) -> XmlResult<XmlEvent> {
        let position = self.scanner.position();
        self.expect_ascii(b"</")?;
        let name = self.read_name()?;
        self.skip_whitespace()?;
        self.expect_ascii(b">")?;
        let expected = match self.open.last() {
            Some(n) => n,
            None if self.fragment => {
                // An end tag for an element opened before this fragment
                // began. Emit it with an empty span at the close offset;
                // the coordinator's replay substitutes the true start
                // offset and enforces the name match.
                let end_offset = self.scanner.offset();
                return Ok(XmlEvent::EndElement(EndElementEvent {
                    name: QName::new(name),
                    level: 0,
                    element_span: ByteSpan::new(end_offset, end_offset),
                    position,
                }));
            }
            None => return Err(XmlError::new(XmlErrorKind::UnbalancedEndTag { name }, position)),
        };
        if expected.as_str() != name {
            return Err(XmlError::new(
                XmlErrorKind::MismatchedTag { expected: expected.as_str().into(), found: name },
                position,
            ));
        }
        let level = self.open.len() as u32;
        let start_offset = *self.open_starts.last().expect("stack in sync");
        let end_offset = self.scanner.offset();
        let name = self.pop_open();
        if self.open.is_empty() && !self.fragment {
            self.state = DocState::Epilog;
        }
        Ok(XmlEvent::EndElement(EndElementEvent {
            name,
            level,
            element_span: ByteSpan::new(start_offset, end_offset),
            position,
        }))
    }

    fn pop_open(&mut self) -> QName {
        self.open_starts.pop();
        self.open_positions.pop();
        self.open.pop().expect("pop_open with empty stack")
    }

    // ---------------------------------------------------------------- //
    // Text
    // ---------------------------------------------------------------- //

    fn read_text(&mut self) -> XmlResult<XmlEvent> {
        let position = self.scanner.position();
        let start_offset = self.scanner.offset();
        let mut text = std::mem::take(&mut self.scratch);
        text.clear();
        // Rolling window to detect the illegal raw sequence `]]>` even when
        // split across scanning chunks (decoded entities / CDATA content are
        // exempt, as the spec requires).
        let mut raw_tail: [char; 2] = ['\0', '\0'];
        loop {
            // Fast ASCII path via the prebuilt byte class (see TEXT_RUN).
            let before = text.len();
            self.scanner.consume_class_run(&TEXT_RUN, &mut text)?;
            if text.len() > before {
                let tail_chars: Vec<char> = text[before..].chars().rev().take(2).collect();
                raw_tail = match tail_chars.as_slice() {
                    [a] => [raw_tail[1], *a],
                    [a, b] => [*b, *a],
                    _ => raw_tail,
                };
            }
            match self.scanner.peek_byte()? {
                None => break,
                Some(b'<') => {
                    if self.scanner.starts_with(b"<![CDATA[")?
                        && (self.config.coalesce_text || text.is_empty())
                    {
                        self.read_cdata_into(&mut text)?;
                        raw_tail = ['\0', '\0'];
                        if !self.config.coalesce_text {
                            break;
                        }
                        continue;
                    }
                    break;
                }
                Some(b'&') => {
                    self.read_reference_into(&mut text)?;
                    raw_tail = ['\0', '\0'];
                    continue;
                }
                Some(_) => {
                    let c = self.scanner.next_char()?.expect("peeked byte");
                    if !entities::is_xml_char(c) {
                        return Err(XmlError::new(
                            XmlErrorKind::InvalidChar { ch: c },
                            self.scanner.position(),
                        ));
                    }
                    if raw_tail == [']', ']'] && c == '>' {
                        return Err(XmlError::syntax(
                            "']]>' must not appear in character data",
                            position,
                        ));
                    }
                    raw_tail = [raw_tail[1], c];
                    text.push(c);
                }
            }
        }
        let span = ByteSpan::new(start_offset, self.scanner.offset());
        let is_whitespace = text.chars().all(|c| matches!(c, ' ' | '\t' | '\n'));
        let level = self.open.len() as u32;
        let event = CharactersEvent { text, level, span, position, is_whitespace };
        if event.text.is_empty() || (self.config.skip_whitespace_text && is_whitespace) {
            // Nothing reportable (e.g. an empty CDATA section, or pure
            // whitespace with skipping enabled): recurse into the next
            // construct.
            self.scratch = event.text;
            return self.read_content();
        }
        Ok(XmlEvent::Characters(event))
    }

    fn read_cdata_into(&mut self, out: &mut String) -> XmlResult<()> {
        self.expect_ascii(b"<![CDATA[")?;
        let open_pos = self.scanner.position();
        let mut tail: [char; 2] = ['\0', '\0'];
        loop {
            match self.scanner.next_char()? {
                None => {
                    return Err(XmlError::new(
                        XmlErrorKind::UnexpectedEof { expected: "CDATA section" },
                        open_pos,
                    ))
                }
                Some(c) => {
                    if !entities::is_xml_char(c) {
                        return Err(XmlError::new(
                            XmlErrorKind::InvalidChar { ch: c },
                            self.scanner.position(),
                        ));
                    }
                    if tail == [']', ']'] && c == '>' {
                        // Remove the two buffered ']' that belonged to the
                        // terminator.
                        out.truncate(out.len() - 2);
                        return Ok(());
                    }
                    tail = [tail[1], c];
                    out.push(c);
                }
            }
        }
    }

    /// Reads `&...;` (the `&` is still unconsumed) and appends the decoded
    /// replacement to `out`.
    fn read_reference_into(&mut self, out: &mut String) -> XmlResult<()> {
        let pos = self.scanner.position();
        self.expect_ascii(b"&")?;
        let mut body = String::new();
        loop {
            match self.scanner.next_char()? {
                None => {
                    return Err(XmlError::new(
                        XmlErrorKind::UnexpectedEof { expected: "entity reference" },
                        pos,
                    ))
                }
                Some(';') => break,
                Some(c) if c == '#' || name::is_name_char(c) => body.push(c),
                Some(c) => {
                    return Err(XmlError::syntax(
                        format!("invalid character {c:?} in entity reference"),
                        pos,
                    ))
                }
            }
        }
        if let Some(num) = body.strip_prefix('#') {
            out.push(entities::parse_char_ref(num, pos)?);
        } else if body.is_empty() {
            return Err(XmlError::syntax("empty entity reference", pos));
        } else {
            self.entities.expand(&body, &self.config.entity_limits, pos, out)?;
        }
        Ok(())
    }

    // ---------------------------------------------------------------- //
    // Comments and processing instructions
    // ---------------------------------------------------------------- //

    fn read_comment(&mut self) -> XmlResult<String> {
        let open_pos = self.scanner.position();
        self.expect_ascii(b"<!--")?;
        let mut text = String::new();
        loop {
            match self.scanner.next_char()? {
                None => {
                    return Err(XmlError::new(
                        XmlErrorKind::UnexpectedEof { expected: "comment" },
                        open_pos,
                    ))
                }
                Some(c) => {
                    if !entities::is_xml_char(c) {
                        return Err(XmlError::new(
                            XmlErrorKind::InvalidChar { ch: c },
                            self.scanner.position(),
                        ));
                    }
                    text.push(c);
                    if text.ends_with("--") {
                        match self.scanner.peek_byte()? {
                            Some(b'>') => {
                                self.expect_ascii(b">")?;
                                text.truncate(text.len() - 2);
                                return Ok(text);
                            }
                            _ => {
                                return Err(XmlError::syntax(
                                    "'--' is not allowed inside a comment",
                                    self.scanner.position(),
                                ))
                            }
                        }
                    }
                }
            }
        }
    }

    fn read_pi(&mut self) -> XmlResult<ProcessingInstructionEvent> {
        let position = self.scanner.position();
        self.expect_ascii(b"<?")?;
        let target = self.read_name()?;
        if target.eq_ignore_ascii_case("xml") {
            return Err(XmlError::syntax(
                "processing-instruction target 'xml' is reserved",
                position,
            ));
        }
        let mut data = String::new();
        let had_ws = self.skip_whitespace()?;
        loop {
            match self.scanner.peek_byte()? {
                None => {
                    return Err(XmlError::new(
                        XmlErrorKind::UnexpectedEof { expected: "processing instruction" },
                        position,
                    ))
                }
                Some(b'?') if self.scanner.peek_at(1)? == Some(b'>') => {
                    self.expect_ascii(b"?>")?;
                    break;
                }
                Some(_) => {
                    if !had_ws && data.is_empty() {
                        return Err(XmlError::syntax(
                            "expected whitespace after PI target",
                            self.scanner.position(),
                        ));
                    }
                    let c = self.scanner.next_char()?.expect("peeked byte");
                    if !entities::is_xml_char(c) {
                        return Err(XmlError::new(
                            XmlErrorKind::InvalidChar { ch: c },
                            self.scanner.position(),
                        ));
                    }
                    data.push(c);
                }
            }
        }
        Ok(ProcessingInstructionEvent { target, data, position })
    }

    // ---------------------------------------------------------------- //
    // DOCTYPE
    // ---------------------------------------------------------------- //

    fn read_doctype(&mut self) -> XmlResult<XmlEvent> {
        let position = self.scanner.position();
        if self.state != DocState::Prolog {
            return Err(XmlError::syntax("DOCTYPE must appear before the root element", position));
        }
        if self.seen_doctype {
            return Err(XmlError::syntax("multiple DOCTYPE declarations", position));
        }
        self.seen_doctype = true;
        self.expect_ascii(b"<!DOCTYPE")?;
        if !self.skip_whitespace()? {
            return Err(XmlError::syntax("expected whitespace after '<!DOCTYPE'", position));
        }
        let name = self.read_name()?;
        self.skip_whitespace()?;
        // Optional ExternalID.
        if self.scanner.starts_with(b"SYSTEM")? {
            self.expect_ascii(b"SYSTEM")?;
            self.skip_whitespace()?;
            let _ = self.read_quoted_literal()?;
            self.skip_whitespace()?;
        } else if self.scanner.starts_with(b"PUBLIC")? {
            self.expect_ascii(b"PUBLIC")?;
            self.skip_whitespace()?;
            let _ = self.read_quoted_literal()?;
            self.skip_whitespace()?;
            let _ = self.read_quoted_literal()?;
            self.skip_whitespace()?;
        }
        if self.scanner.peek_byte()? == Some(b'[') {
            self.expect_ascii(b"[")?;
            self.read_internal_subset()?;
            self.skip_whitespace()?;
        }
        self.expect_ascii(b">")?;
        Ok(XmlEvent::DoctypeDeclaration { name })
    }

    fn read_internal_subset(&mut self) -> XmlResult<()> {
        loop {
            self.skip_whitespace()?;
            match self.scanner.peek_byte()? {
                None => {
                    return Err(XmlError::new(
                        XmlErrorKind::UnexpectedEof { expected: "DOCTYPE internal subset" },
                        self.scanner.position(),
                    ))
                }
                Some(b']') => {
                    self.expect_ascii(b"]")?;
                    return Ok(());
                }
                Some(b'%') => {
                    return Err(XmlError::syntax(
                        "parameter entities are not supported",
                        self.scanner.position(),
                    ))
                }
                Some(b'<') => {
                    if self.scanner.starts_with(b"<!--")? {
                        self.read_comment()?;
                    } else if self.scanner.starts_with(b"<?")? {
                        self.read_pi()?;
                    } else if self.scanner.starts_with(b"<!ENTITY")? {
                        self.read_entity_decl()?;
                    } else if self.scanner.starts_with(b"<!")? {
                        // ELEMENT / ATTLIST / NOTATION: skip to the matching
                        // '>', honouring quoted literals.
                        self.skip_markup_decl()?;
                    } else {
                        return Err(XmlError::syntax(
                            "unexpected markup in DOCTYPE internal subset",
                            self.scanner.position(),
                        ));
                    }
                }
                Some(_) => {
                    return Err(XmlError::syntax(
                        "unexpected character in DOCTYPE internal subset",
                        self.scanner.position(),
                    ))
                }
            }
        }
    }

    fn read_entity_decl(&mut self) -> XmlResult<()> {
        let pos = self.scanner.position();
        self.expect_ascii(b"<!ENTITY")?;
        if !self.skip_whitespace()? {
            return Err(XmlError::syntax("expected whitespace after '<!ENTITY'", pos));
        }
        if self.scanner.peek_byte()? == Some(b'%') {
            // Parameter entity declaration: tolerated but ignored.
            self.skip_markup_decl_tail()?;
            return Ok(());
        }
        let name = self.read_name()?;
        if !self.skip_whitespace()? {
            return Err(XmlError::syntax("expected whitespace after entity name", pos));
        }
        match self.scanner.peek_byte()? {
            Some(b'"') | Some(b'\'') => {
                let raw = self.read_quoted_literal()?;
                self.entities.declare_internal(&name, &raw);
            }
            _ => {
                // SYSTEM / PUBLIC external entity: record and skip.
                self.entities.declare_external(&name);
                self.skip_markup_decl_tail()?;
                return Ok(());
            }
        }
        self.skip_whitespace()?;
        self.expect_ascii(b">")?;
        Ok(())
    }

    /// Skips the remainder of a `<!...>` declaration whose prefix has been
    /// consumed, honouring quoted literals.
    fn skip_markup_decl_tail(&mut self) -> XmlResult<()> {
        loop {
            match self.scanner.next_char()? {
                None => {
                    return Err(XmlError::new(
                        XmlErrorKind::UnexpectedEof { expected: "markup declaration" },
                        self.scanner.position(),
                    ))
                }
                Some('>') => return Ok(()),
                Some(q @ ('"' | '\'')) => loop {
                    match self.scanner.next_char()? {
                        None => {
                            return Err(XmlError::new(
                                XmlErrorKind::UnexpectedEof { expected: "quoted literal" },
                                self.scanner.position(),
                            ))
                        }
                        Some(c) if c == q => break,
                        Some(_) => {}
                    }
                },
                Some(_) => {}
            }
        }
    }

    fn skip_markup_decl(&mut self) -> XmlResult<()> {
        self.expect_ascii(b"<!")?;
        self.skip_markup_decl_tail()
    }

    // ---------------------------------------------------------------- //
    // Lexical helpers
    // ---------------------------------------------------------------- //

    /// Skips XML whitespace; returns whether any was consumed.
    ///
    /// Bulk path: a zero-copy class run chews through space/tab/newline
    /// without materializing the bytes; only `\r` (which needs line-ending
    /// normalization) falls back to the char-wise path.
    fn skip_whitespace(&mut self) -> XmlResult<bool> {
        let mut any = false;
        loop {
            if self.scanner.skip_class_run(&WS_RUN)? > 0 {
                any = true;
            }
            match self.scanner.peek_byte()? {
                Some(b'\r') => {
                    self.scanner.next_char()?;
                    any = true;
                }
                _ => return Ok(any),
            }
        }
    }

    /// Reads an XML `Name`.
    fn read_name(&mut self) -> XmlResult<String> {
        let pos = self.scanner.position();
        let mut out = String::new();
        // Fast ASCII path.
        self.scanner.consume_class_run(&NAME_RUN, &mut out)?;
        // Slow path for non-ASCII name characters.
        while let Some(c) = self.scanner.peek_char()? {
            if c.is_ascii() || !name::is_name_char(c) {
                break;
            }
            out.push(c);
            self.scanner.next_char()?;
            // Resume the fast path after each non-ASCII char.
            self.scanner.consume_class_run(&NAME_RUN, &mut out)?;
        }
        if !name::is_valid_name(&out) {
            return Err(XmlError::new(XmlErrorKind::InvalidName { name: out }, pos));
        }
        Ok(out)
    }

    /// Reads `"..."` or `'...'` without reference expansion (XML
    /// declaration, DOCTYPE literals, entity replacement text).
    fn read_quoted_literal(&mut self) -> XmlResult<String> {
        let pos = self.scanner.position();
        let quote = match self.scanner.next_char()? {
            Some(q @ ('"' | '\'')) => q,
            None => {
                return Err(XmlError::new(
                    XmlErrorKind::UnexpectedEof { expected: "quoted literal" },
                    pos,
                ))
            }
            _ => return Err(XmlError::syntax("expected quoted literal", pos)),
        };
        let mut out = String::new();
        loop {
            match self.scanner.next_char()? {
                None => {
                    return Err(XmlError::new(
                        XmlErrorKind::UnexpectedEof { expected: "quoted literal" },
                        pos,
                    ))
                }
                Some(c) if c == quote => return Ok(out),
                Some(c) => out.push(c),
            }
        }
    }

    /// Reads an attribute value with XML 1.0 §3.3.3 normalization:
    /// references expanded, whitespace characters become spaces, `<` is
    /// forbidden.
    fn read_attribute_value(&mut self) -> XmlResult<String> {
        let pos = self.scanner.position();
        let quote = match self.scanner.next_char()? {
            Some(q @ ('"' | '\'')) => q,
            None => {
                return Err(XmlError::new(
                    XmlErrorKind::UnexpectedEof { expected: "attribute value" },
                    pos,
                ))
            }
            _ => return Err(XmlError::syntax("expected quoted attribute value", pos)),
        };
        let run = if quote == '"' { &ATTR_RUN_DQ } else { &ATTR_RUN_SQ };
        let mut out = String::new();
        loop {
            // Bulk-copy the printable run up to the next quote, reference,
            // `<`, whitespace-to-normalize, or non-ASCII byte; the
            // char-wise arms below handle the stopping byte.
            self.scanner.consume_class_run(run, &mut out)?;
            match self.scanner.peek_byte()? {
                None => {
                    return Err(XmlError::new(
                        XmlErrorKind::UnexpectedEof { expected: "attribute value" },
                        pos,
                    ))
                }
                Some(b'<') => {
                    return Err(XmlError::syntax(
                        "'<' is not allowed in attribute values",
                        self.scanner.position(),
                    ))
                }
                Some(b'&') => {
                    // References are expanded but their content is *not*
                    // re-normalized (per spec: a character reference to
                    // tab stays a tab).
                    self.read_reference_into(&mut out)?;
                }
                Some(_) => {
                    let c = self.scanner.next_char()?.expect("peeked byte");
                    if c == quote {
                        return Ok(out);
                    }
                    if !entities::is_xml_char(c) {
                        return Err(XmlError::new(
                            XmlErrorKind::InvalidChar { ch: c },
                            self.scanner.position(),
                        ));
                    }
                    out.push(if matches!(c, '\t' | '\n') { ' ' } else { c });
                }
            }
        }
    }

    fn expect_ascii(&mut self, s: &'static [u8]) -> XmlResult<()> {
        if !self.scanner.starts_with(s)? {
            return Err(XmlError::syntax(
                format!("expected {:?}", String::from_utf8_lossy(s)),
                self.scanner.position(),
            ));
        }
        self.scanner.consume_ascii(s)
    }
}

const fn is_ascii_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b':' | b'_' | b'-' | b'.')
}

/// Membership table for ASCII name bytes — the scanner's fast path chews
/// through whole tag/attribute names with table lookups (E2: SAX
/// dominates runtime, and names are the most frequent token class).
static NAME_RUN: ByteClass = ByteClass::new({
    let mut t = [false; 256];
    let mut b = 0usize;
    while b < 0x80 {
        t[b] = is_ascii_name_byte(b as u8);
        b += 1;
    }
    t
});

/// Membership table for plain character-data bytes: everything except
/// markup/reference starters (`<`, `&`), the `]`/`>` bytes (kept
/// char-wise so the `']]>'` well-formedness check sees them) and control
/// characters other than tab/newline. `\r` and non-ASCII are excluded by
/// [`ByteClass`] itself.
static TEXT_RUN: ByteClass = ByteClass::new({
    let mut t = [false; 256];
    let mut b = 0usize;
    while b < 0x80 {
        let byte = b as u8;
        t[b] = byte != b'<'
            && byte != b'&'
            && byte != b']'
            && byte != b'>'
            && (byte >= 0x20 || byte == b'\t' || byte == b'\n');
        b += 1;
    }
    t
});

/// Membership tables for attribute-value bytes that can be copied
/// verbatim (one per quote kind): printable ASCII minus the closing
/// quote and the `<`/`&` specials. Tab/newline stay char-wise (they
/// normalize to spaces), as do `\r`, controls and non-ASCII.
static ATTR_RUN_DQ: ByteClass = ByteClass::new(attr_value_table(b'"'));
/// See [`ATTR_RUN_DQ`]; single-quoted values.
static ATTR_RUN_SQ: ByteClass = ByteClass::new(attr_value_table(b'\''));

const fn attr_value_table(quote: u8) -> [bool; 256] {
    let mut t = [false; 256];
    let mut b = 0x20usize;
    while b < 0x80 {
        t[b] = b as u8 != quote && b as u8 != b'<' && b as u8 != b'&';
        b += 1;
    }
    t
}

/// Membership table for XML whitespace, minus `\r` (normalization stays
/// char-wise). Drives the zero-copy skip in [`XmlReader::skip_whitespace`].
static WS_RUN: ByteClass = ByteClass::new({
    let mut t = [false; 256];
    t[b' ' as usize] = true;
    t[b'\t' as usize] = true;
    t[b'\n' as usize] = true;
    t
});

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Markup {
    StartTag,
    EndTag,
    Comment,
    Cdata,
    Doctype,
    Pi,
}

/// Fragment readers (and aborted documents) may never see `EndDocument`;
/// the drop flush reports whatever scan bytes the probe has not yet seen.
impl<R: Read> Drop for XmlReader<R> {
    fn drop(&mut self) {
        self.flush_scan_probe();
    }
}

/// Iterating a reader yields events up to and including `EndDocument`,
/// then stops. An error also terminates iteration.
impl<R: Read> Iterator for XmlReader<R> {
    type Item = XmlResult<XmlEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.state == DocState::Done {
            return None;
        }
        match self.next_event() {
            Ok(e) => {
                if e.is_end_document() {
                    self.state = DocState::Done;
                }
                Some(Ok(e))
            }
            Err(e) => {
                self.state = DocState::Done;
                Some(Err(e))
            }
        }
    }
}
