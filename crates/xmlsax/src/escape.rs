//! Escaping helpers shared by the writer and tests.
//!
//! Only the five predefined XML entities are involved here; numeric
//! character references and general entities are handled by
//! [`crate::entities`].

use std::borrow::Cow;

/// Escapes text content: `&`, `<`, `>` (the latter for `]]>` safety).
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, |c| matches!(c, '&' | '<' | '>'))
}

/// Escapes an attribute value for emission inside double quotes:
/// `&`, `<`, `>`, `"`, plus tab/newline so round-tripping survives
/// attribute-value normalization.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, |c| matches!(c, '&' | '<' | '>' | '"' | '\t' | '\n' | '\r'))
}

fn escape_with(s: &str, needs: impl Fn(char) -> bool) -> Cow<'_, str> {
    if !s.chars().any(&needs) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        if needs(c) {
            match c {
                '&' => out.push_str("&amp;"),
                '<' => out.push_str("&lt;"),
                '>' => out.push_str("&gt;"),
                '"' => out.push_str("&quot;"),
                '\'' => out.push_str("&apos;"),
                // Control whitespace in attribute values must survive
                // normalization, so emit character references.
                other => {
                    out.push_str("&#");
                    out.push_str(&(other as u32).to_string());
                    out.push(';');
                }
            }
        } else {
            out.push(c);
        }
    }
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_passthrough_borrows() {
        let s = "plain text";
        assert!(matches!(escape_text(s), Cow::Borrowed(_)));
    }

    #[test]
    fn text_escapes_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        // Quotes are fine in text.
        assert_eq!(escape_text(r#"say "hi"'"#), r#"say "hi"'"#);
    }

    #[test]
    fn attr_escapes_quotes_and_whitespace() {
        assert_eq!(escape_attr(r#"a"b"#), "a&quot;b");
        assert_eq!(escape_attr("a\tb"), "a&#9;b");
        assert_eq!(escape_attr("a\nb"), "a&#10;b");
        assert_eq!(escape_attr("<&>"), "&lt;&amp;&gt;");
    }
}
