//! # vitex-xmlsax — a streaming XML parser for the ViteX system
//!
//! This crate implements the "XML SAX parser" module of the ViteX
//! architecture (Chen, Davidson, Zheng — ICDE 2005, Figure 2): a
//! non-validating, single-pass, forward-only XML 1.0 parser that turns a
//! byte stream into a sequence of SAX-style events without ever building a
//! document tree.
//!
//! It is written from scratch (no external XML dependencies) and is designed
//! for the streaming requirements the paper lists in its motivation section:
//!
//! * **single sequential scan** — input is consumed through any
//!   [`std::io::Read`] with a bounded internal buffer; memory use is
//!   independent of document size,
//! * **incremental delivery** — events are produced as soon as the bytes
//!   forming them have been seen,
//! * **positional accounting** — every event carries byte offsets so that
//!   downstream consumers (the TwigM machine) can identify result fragments
//!   inside the original stream without retaining it.
//!
//! ## APIs
//!
//! Two complementary interfaces are provided:
//!
//! * a **pull** API, [`XmlReader`], an iterator-style `next_event()` loop —
//!   this is what `vitex-core`'s engine drives;
//! * a **push** (classic SAX) API, [`push::Handler`] +
//!   [`push::parse_document`], for callers that prefer callbacks.
//!
//! A streaming [`writer::XmlWriter`] (used by the `vitex-xmlgen` dataset
//! generators) and entity/escaping utilities round out the crate.
//!
//! ## Conformance notes
//!
//! The parser enforces the well-formedness constraints that matter for
//! streaming query processing: balanced and properly nested tags, a single
//! root element, unique attribute names, syntactically valid names, correct
//! comment / CDATA / PI syntax, and XML line-ending + attribute-value
//! normalization. It is **non-validating**: DTD internal subsets are scanned
//! so that internal general entities can be expanded (with configurable
//! bounds that defuse entity-expansion attacks), but no validation is
//! performed and external entities are never fetched.
//!
//! ## Quick example
//!
//! ```
//! use vitex_xmlsax::{XmlReader, XmlEvent};
//!
//! let xml = "<book><title>Streaming XPath</title></book>";
//! let mut reader = XmlReader::from_str(xml);
//! let mut titles = Vec::new();
//! loop {
//!     match reader.next_event().unwrap() {
//!         XmlEvent::StartElement(e) if e.name.as_str() == "title" => {
//!             if let XmlEvent::Characters(t) = reader.next_event().unwrap() {
//!                 titles.push(t.text);
//!             }
//!         }
//!         XmlEvent::EndDocument => break,
//!         _ => {}
//!     }
//! }
//! assert_eq!(titles, ["Streaming XPath"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entities;
pub mod error;
pub mod escape;
pub mod event;
pub mod input;
pub mod name;
pub mod par;
pub mod pos;
pub mod probe;
pub mod push;
pub mod reader;
pub mod writer;

pub use error::{XmlError, XmlErrorKind, XmlResult};
pub use event::{Attribute, CharactersEvent, EndElementEvent, StartElementEvent, XmlEvent};
pub use name::QName;
pub use par::{ParStats, ParallelConfig, ParallelReader};
pub use pos::TextPosition;
pub use probe::{ParseProbe, ProbeHandle};
pub use reader::{EventSource, ReaderConfig, XmlReader};
