//! Classic SAX-style push API.
//!
//! Some consumers (like the paper's TwigM machine, whose transition
//! functions fire *on* events) are most naturally written as callback
//! handlers. [`Handler`] is that interface; [`parse_document`] drives a
//! pull [`XmlReader`] and invokes the handler for every event.
//!
//! All callbacks have no-op defaults, so a handler implements only what it
//! needs. A callback may abort the parse early by returning
//! [`Control::Stop`].

use std::io::Read;

use crate::error::XmlResult;
use crate::event::{
    CharactersEvent, EndElementEvent, ProcessingInstructionEvent, StartElementEvent, XmlEvent,
};
use crate::reader::XmlReader;

/// Flow-control result of a handler callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Control {
    /// Keep parsing.
    #[default]
    Continue,
    /// Stop parsing after this event (not an error — e.g. "first match
    /// found, that's all I needed").
    Stop,
}

/// SAX event callbacks. All methods default to "do nothing, continue".
pub trait Handler {
    /// The document started; XML-declaration fields if present.
    fn start_document(
        &mut self,
        version: Option<&str>,
        encoding: Option<&str>,
    ) -> XmlResult<Control> {
        let _ = (version, encoding);
        Ok(Control::Continue)
    }

    /// An element opened.
    fn start_element(&mut self, event: &StartElementEvent) -> XmlResult<Control> {
        let _ = event;
        Ok(Control::Continue)
    }

    /// An element closed.
    fn end_element(&mut self, event: &EndElementEvent) -> XmlResult<Control> {
        let _ = event;
        Ok(Control::Continue)
    }

    /// Character data.
    fn characters(&mut self, event: &CharactersEvent) -> XmlResult<Control> {
        let _ = event;
        Ok(Control::Continue)
    }

    /// A comment.
    fn comment(&mut self, text: &str) -> XmlResult<Control> {
        let _ = text;
        Ok(Control::Continue)
    }

    /// A processing instruction.
    fn processing_instruction(&mut self, event: &ProcessingInstructionEvent) -> XmlResult<Control> {
        let _ = event;
        Ok(Control::Continue)
    }

    /// A DOCTYPE declaration.
    fn doctype(&mut self, name: &str) -> XmlResult<Control> {
        let _ = name;
        Ok(Control::Continue)
    }

    /// The document ended cleanly.
    fn end_document(&mut self) -> XmlResult<()> {
        Ok(())
    }
}

/// Outcome of [`parse_document`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The whole document was consumed.
    Completed,
    /// A handler returned [`Control::Stop`].
    Stopped,
}

/// Drives `reader` to completion (or until the handler stops it), invoking
/// `handler` for every event.
pub fn parse_document<R: Read, H: Handler>(
    mut reader: XmlReader<R>,
    handler: &mut H,
) -> XmlResult<ParseOutcome> {
    loop {
        let event = reader.next_event()?;
        let control = match &event {
            XmlEvent::StartDocument { version, encoding } => {
                handler.start_document(version.as_deref(), encoding.as_deref())?
            }
            XmlEvent::StartElement(e) => handler.start_element(e)?,
            XmlEvent::EndElement(e) => handler.end_element(e)?,
            XmlEvent::Characters(e) => handler.characters(e)?,
            XmlEvent::Comment(text) => handler.comment(text)?,
            XmlEvent::ProcessingInstruction(e) => handler.processing_instruction(e)?,
            XmlEvent::DoctypeDeclaration { name } => handler.doctype(name)?,
            XmlEvent::EndDocument => {
                handler.end_document()?;
                return Ok(ParseOutcome::Completed);
            }
        };
        if control == Control::Stop {
            return Ok(ParseOutcome::Stopped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        log: Vec<String>,
        stop_on: Option<String>,
    }

    impl Handler for Recorder {
        fn start_document(&mut self, v: Option<&str>, _e: Option<&str>) -> XmlResult<Control> {
            self.log.push(format!("startdoc v={v:?}"));
            Ok(Control::Continue)
        }
        fn start_element(&mut self, e: &StartElementEvent) -> XmlResult<Control> {
            self.log.push(format!("start {} L{}", e.name, e.level));
            if self.stop_on.as_deref() == Some(e.name.as_str()) {
                return Ok(Control::Stop);
            }
            Ok(Control::Continue)
        }
        fn end_element(&mut self, e: &EndElementEvent) -> XmlResult<Control> {
            self.log.push(format!("end {} L{}", e.name, e.level));
            Ok(Control::Continue)
        }
        fn characters(&mut self, e: &CharactersEvent) -> XmlResult<Control> {
            self.log.push(format!("text {:?}", e.text));
            Ok(Control::Continue)
        }
        fn end_document(&mut self) -> XmlResult<()> {
            self.log.push("enddoc".into());
            Ok(())
        }
    }

    #[test]
    fn delivers_all_events_in_order() {
        let mut rec = Recorder::default();
        let outcome = parse_document(XmlReader::from_str("<a><b>hi</b></a>"), &mut rec).unwrap();
        assert_eq!(outcome, ParseOutcome::Completed);
        assert_eq!(
            rec.log,
            vec![
                "startdoc v=None",
                "start a L1",
                "start b L2",
                "text \"hi\"",
                "end b L2",
                "end a L1",
                "enddoc",
            ]
        );
    }

    #[test]
    fn handler_can_stop_early() {
        let mut rec = Recorder { stop_on: Some("b".into()), ..Default::default() };
        let outcome = parse_document(XmlReader::from_str("<a><b/><c/></a>"), &mut rec).unwrap();
        assert_eq!(outcome, ParseOutcome::Stopped);
        assert_eq!(rec.log.last().unwrap(), "start b L2");
    }

    #[test]
    fn errors_propagate() {
        let mut rec = Recorder::default();
        let err = parse_document(XmlReader::from_str("<a><b></a>"), &mut rec).unwrap_err();
        assert!(err.to_string().contains("mismatched end tag"));
    }
}
