//! Speculative chunked parsing — the parallel parse front-end.
//!
//! The sequential [`XmlReader`] is a single-core pipeline; once machine
//! execution is sharded across threads (vitex-core PR 4/5), parsing becomes
//! the end-to-end ceiling. This module breaks that ceiling while keeping
//! the *observable* event stream byte-identical to the sequential reader:
//!
//! 1. **Split.** The (fully buffered) document is cut at candidate chunk
//!    boundaries, each snapped forward to the next `<` byte. `<` cannot
//!    appear in character data or attribute values, so inside element
//!    content every `<` starts markup — the only constructs a `<` can be
//!    *inside* are comments, CDATA sections, PIs and the DOCTYPE (handled
//!    below).
//! 2. **Speculate.** Worker threads parse each chunk as a *document
//!    fragment* ([`XmlReader::fragment`]): parsing starts in content state,
//!    end tags without a local open element are emitted for later
//!    resolution, and byte offsets are absolute while line/column restart
//!    at 1:1. Each worker records the event run, its stop offset, and any
//!    parse error.
//! 3. **Reconcile.** The coordinating thread replays fragments in order.
//!    A fragment is accepted only if it starts exactly where the previous
//!    one stopped; a boundary that was inside a comment/CDATA/PI makes the
//!    previous fragment overshoot it, so the misparsed speculation is
//!    discarded and the hole is re-parsed inline (bounded waste: at worst
//!    the document is parsed twice). During replay the coordinator keeps
//!    the one global open-element stack, so *cross-chunk* well-formedness
//!    (tag matching, depth limits, single root, no text outside the root)
//!    is enforced with the same errors and positions as the sequential
//!    reader, and every event's level, element span, and line/column are
//!    rebased to document-absolute values.
//!
//! Documents with a DOCTYPE fall back to the sequential reader outright:
//! internal-subset entity declarations would have to be visible to workers
//! that may already be parsing ahead of the declaration.
//!
//! The trade: the sequential reader holds O(window) memory; the parallel
//! front-end buffers the document and its speculated events. Use it for
//! throughput, not footprint.

use std::io::Cursor;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::Instant;

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::event::XmlEvent;
use crate::name::QName;
use crate::pos::{ByteSpan, TextPosition};
use crate::probe::ProbeHandle;
use crate::reader::{EventSource, ReaderConfig, XmlReader};

/// Chunks smaller than this are not worth a thread hop; the splitter
/// lowers the chunk count instead.
const MIN_CHUNK_BYTES: usize = 32 * 1024;

/// Configuration for [`ParallelReader`].
///
/// The default has `threads: 0` (sequential), no explicit chunk size,
/// and the default [`ReaderConfig`].
#[derive(Debug, Clone, Default)]
pub struct ParallelConfig {
    /// Worker thread count. `0` or `1` selects the sequential reader
    /// (bit-identical by construction, not just by reconciliation).
    pub threads: usize,
    /// Explicit candidate chunk size in bytes (each boundary still snaps
    /// to the next `<`). `None` sizes chunks from the document length and
    /// thread count. Small explicit sizes are for seam testing.
    pub chunk_bytes: Option<usize>,
    /// Configuration for the underlying readers (fragment workers inherit
    /// everything except `max_depth`, which the coordinator enforces
    /// globally).
    pub reader: ReaderConfig,
    /// Test-only fault injection: the worker that claims this chunk index
    /// panics before parsing it. Exercises the poison path — the replay
    /// must surface a clean sticky error, never hang or re-raise.
    #[doc(hidden)]
    pub fail_chunk: Option<usize>,
}

/// Counters describing how a parallel parse went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Fragments parsed speculatively on workers (including chunk 0).
    pub chunks: usize,
    /// Speculative fragments discarded because a boundary fell inside an
    /// opaque construct and the predecessor overshot it.
    pub misspeculated: usize,
    /// Holes re-parsed inline on the coordinating thread.
    pub reparsed: usize,
    /// The document had a DOCTYPE (or a degenerate shape) and was handed
    /// to the sequential reader wholesale.
    pub sequential_fallback: bool,
}

/// One speculatively parsed chunk.
struct Fragment {
    /// Absolute byte offset the parse started at.
    start: u64,
    /// Absolute byte offset the parse stopped at (first event boundary at
    /// or past the chunk's target end — possibly far past it on
    /// misspeculation).
    end: u64,
    /// Reader position at `end`: absolute for chunk 0, fragment-relative
    /// (line/column restart at 1:1) otherwise.
    end_pos: TextPosition,
    /// The event run. `EndDocument` is never stored.
    events: Vec<XmlEvent>,
    /// Terminal parse error, if the chunk ended in one.
    error: Option<XmlError>,
    /// Whether positions in `events`/`error` are already absolute
    /// (chunk 0 runs the ordinary reader from the document start).
    absolute: bool,
}

/// An element the replay has open, for span/name resolution.
struct OpenElem {
    name: QName,
    start_offset: u64,
}

/// The parallel counterpart of [`XmlReader`]: same event stream, produced
/// by speculative chunk parsing on worker threads. See the module docs.
///
/// The constructor spawns the workers and returns immediately; each
/// finished chunk streams back to the coordinator over a channel, so
/// [`next_event`] overlaps replay (and inline hole re-parsing) with the
/// still-running speculative parses.
///
/// [`next_event`]: EventSource::next_event
pub struct ParallelReader {
    inner: Inner,
    /// Set once `EndDocument` has been observed through [`Self::next_batch`]
    /// (the batch API never yields it; later calls return `None`).
    batches_done: bool,
}

enum Inner {
    /// Sequential fallback: 0/1 threads, DOCTYPE, or empty input.
    Seq {
        reader: Box<XmlReader<Cursor<Vec<u8>>>>,
        stats: ParStats,
    },
    Par(Box<Replay>),
}

impl ParallelReader {
    /// Parses `bytes` on `threads` worker threads with default reader
    /// configuration.
    pub fn from_bytes(bytes: Vec<u8>, threads: usize) -> Self {
        ParallelReader::with_config(bytes, ParallelConfig { threads, ..ParallelConfig::default() })
    }

    /// Parses a string slice (tests and small inputs).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str, threads: usize) -> Self {
        ParallelReader::from_bytes(s.as_bytes().to_vec(), threads)
    }

    /// Parses with explicit configuration.
    pub fn with_config(bytes: Vec<u8>, config: ParallelConfig) -> Self {
        ParallelReader::with_config_probe(bytes, config, None)
    }

    /// Parses with explicit configuration and an observability probe (see
    /// [`crate::probe::ParseProbe`]). The probe receives per-chunk parse
    /// timings from the worker threads as chunks finish (the workers
    /// outlive this constructor and stream fragments back), stitch
    /// timings from the coordinator as the replay progresses, and scanner
    /// byte counts as each internal reader finishes.
    pub fn with_config_probe(
        bytes: Vec<u8>,
        config: ParallelConfig,
        probe: Option<ProbeHandle>,
    ) -> Self {
        let boundaries = if config.threads > 1 && !has_doctype(&bytes) {
            split_points(&bytes, config.threads, config.chunk_bytes)
        } else {
            Vec::new()
        };
        if boundaries.is_empty() {
            let stats = ParStats { sequential_fallback: true, ..ParStats::default() };
            let mut reader =
                Box::new(XmlReader::with_config(Cursor::new(bytes), config.reader.clone()));
            if let Some(p) = probe {
                reader.set_probe(p);
            }
            return ParallelReader { inner: Inner::Seq { reader, stats }, batches_done: false };
        }
        let bytes = Arc::new(bytes);
        let source = spawn_parse_workers(
            &bytes,
            Arc::new(boundaries.clone()),
            config.threads,
            &config.reader,
            config.fail_chunk,
            probe.as_ref(),
        );
        // Fragment starts are fixed by the split, independent of how the
        // speculative parses go: chunk 0 begins at offset 0, chunk i at
        // boundaries[i-1]. Keeping them here lets the replay skip
        // misspeculated fragments and size hole re-parses without waiting
        // for workers that are still running.
        let mut starts = Vec::with_capacity(boundaries.len() + 1);
        starts.push(0u64);
        starts.extend_from_slice(&boundaries);
        let stats = ParStats { chunks: starts.len(), ..ParStats::default() };
        ParallelReader {
            inner: Inner::Par(Box::new(Replay {
                bytes,
                config: config.reader,
                starts,
                source,
                next_frag: 0,
                cur: None,
                cur_event: 0,
                cursor: 0,
                base: TextPosition::START,
                open: Vec::new(),
                root_seen: false,
                done: false,
                failed: None,
                stats,
                probe,
            })),
            batches_done: false,
        }
    }

    /// Pulls the next run of reconciled events without per-event virtual
    /// dispatch: up to an internal cap of owned events per call. The
    /// stream-terminating `EndDocument` is never included — exhaustion is
    /// signalled by `Ok(None)`, after the same end-of-document
    /// well-formedness checks `next_event` performs. Errors are sticky,
    /// exactly as for [`next_event`].
    ///
    /// [`next_event`]: EventSource::next_event
    pub fn next_batch(&mut self) -> XmlResult<Option<Vec<XmlEvent>>> {
        const BATCH_EVENTS: usize = 256;
        if self.batches_done {
            return Ok(None);
        }
        let mut events = Vec::with_capacity(BATCH_EVENTS);
        while events.len() < BATCH_EVENTS {
            let ev = self.next_event()?;
            if ev.is_end_document() {
                self.batches_done = true;
                break;
            }
            events.push(ev);
        }
        if events.is_empty() {
            Ok(None)
        } else {
            Ok(Some(events))
        }
    }

    /// Counters for this parse. When the sequential fallback was taken,
    /// `sequential_fallback` is set and the remaining counters are zero;
    /// otherwise `chunks` (and, as the replay progresses,
    /// `misspeculated`/`reparsed`) reflect the chunked parse.
    pub fn stats(&self) -> ParStats {
        match &self.inner {
            Inner::Seq { stats, .. } => *stats,
            Inner::Par(replay) => replay.stats,
        }
    }

    /// Convenience: runs the stream to completion, returning all events
    /// including the final `EndDocument` (mirrors
    /// [`XmlReader::collect_events`]).
    pub fn collect_events(mut self) -> XmlResult<Vec<XmlEvent>> {
        let mut events = Vec::new();
        loop {
            let e = self.next_event()?;
            let done = e.is_end_document();
            events.push(e);
            if done {
                return Ok(events);
            }
        }
    }
}

impl EventSource for ParallelReader {
    fn next_event(&mut self) -> XmlResult<XmlEvent> {
        match &mut self.inner {
            Inner::Seq { reader, .. } => reader.next_event(),
            Inner::Par(replay) => replay.next_event(),
        }
    }
}

// ------------------------------------------------------------------ //
// Splitting
// ------------------------------------------------------------------ //

/// Fragment start offsets after chunk 0, each snapped to the next `<` at
/// or past a size-based candidate. Empty if the document is too small to
/// split.
fn split_points(bytes: &[u8], threads: usize, chunk_bytes: Option<usize>) -> Vec<u64> {
    let len = bytes.len();
    let chunk = match chunk_bytes {
        Some(c) => c.max(1),
        // Over-split relative to the thread count so the work-stealing
        // loop can balance fragments of uneven parse cost.
        None => (len / (threads * 4).max(1)).max(MIN_CHUNK_BYTES),
    };
    let mut points = Vec::new();
    let mut candidate = chunk;
    while candidate < len {
        match bytes[candidate..].iter().position(|&b| b == b'<') {
            Some(rel) => {
                let at = candidate + rel;
                if at >= len {
                    break;
                }
                if points.last() != Some(&(at as u64)) && at > 0 {
                    points.push(at as u64);
                }
                candidate = at.max(candidate) + chunk.max(1);
            }
            None => break,
        }
    }
    points
}

/// Whether the prolog contains a DOCTYPE (entity declarations cannot be
/// made visible to workers already parsing ahead of them, so such
/// documents take the sequential path).
fn has_doctype(bytes: &[u8]) -> bool {
    let mut i = if bytes.starts_with(b"\xEF\xBB\xBF") { 3 } else { 0 };
    loop {
        while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        let rest = &bytes[i..];
        if rest.is_empty() || rest[0] != b'<' {
            return false;
        }
        if rest.starts_with(b"<!--") {
            match find_sub(&bytes[i + 4..], b"-->") {
                Some(j) => i += 4 + j + 3,
                None => return false,
            }
        } else if rest.starts_with(b"<?") {
            match find_sub(&bytes[i + 2..], b"?>") {
                Some(j) => i += 2 + j + 2,
                None => return false,
            }
        } else if rest.starts_with(b"<!DOCTYPE") {
            return true;
        } else {
            // Root start tag (or malformed markup the parse will reject).
            return false;
        }
    }
}

fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

// ------------------------------------------------------------------ //
// Speculative workers
// ------------------------------------------------------------------ //

/// Speculative fragments streamed back from the parse workers as each
/// chunk finishes, out of claim order. The replay blocks in [`wait`] only
/// when it actually needs a fragment that has not arrived yet — chunks it
/// will skip (misspeculations) never force a wait.
///
/// A worker that dies mid-chunk is detected by channel disconnection with
/// the wanted slot still empty (work-stealing guarantees the chunk was
/// claimed by *some* worker, so if every sender is gone and the fragment
/// never arrived, its worker panicked); [`wait`] then returns a clean
/// parse error instead of hanging or re-raising the panic.
///
/// [`wait`]: FragStream::wait
struct FragStream {
    rx: Receiver<(usize, Fragment)>,
    slots: Vec<Option<Fragment>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl FragStream {
    fn wait(&mut self, idx: usize, at: TextPosition) -> XmlResult<Fragment> {
        loop {
            if let Some(frag) = self.slots[idx].take() {
                return Ok(frag);
            }
            match self.rx.recv() {
                Ok((i, frag)) => self.slots[i] = Some(frag),
                Err(_) => {
                    return Err(XmlError::syntax(
                        "parse worker panicked before delivering its chunk",
                        at,
                    ))
                }
            }
        }
    }
}

impl Drop for FragStream {
    fn drop(&mut self) {
        // Workers never block (the fragment channel is unbounded), so this
        // join only waits for in-flight parses. A panicked worker's Err is
        // deliberately ignored: the panic already surfaced as a clean
        // sticky error through `wait`.
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Spawns up to `threads` owned worker threads that steal chunk indices
/// from a shared counter, parse chunk 0 with the ordinary reader (absolute
/// positions) and every boundary-delimited fragment speculatively, and
/// send each finished fragment back the moment it is done.
fn spawn_parse_workers(
    bytes: &Arc<Vec<u8>>,
    boundaries: Arc<Vec<u64>>,
    threads: usize,
    config: &ReaderConfig,
    fail_chunk: Option<usize>,
    probe: Option<&ProbeHandle>,
) -> FragStream {
    let n = boundaries.len() + 1;
    let workers = threads.min(n).max(1);
    let next = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = channel();
    let handles = (0..workers)
        .map(|w| {
            let bytes = Arc::clone(bytes);
            let boundaries = Arc::clone(&boundaries);
            let config = config.clone();
            let probe = probe.cloned();
            let next = Arc::clone(&next);
            let tx = tx.clone();
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if fail_chunk == Some(i) {
                    panic!("injected parse-worker fault at chunk {i}");
                }
                let target_end =
                    if i < boundaries.len() { boundaries[i] } else { bytes.len() as u64 };
                let t0 = probe.as_ref().map(|_| Instant::now());
                let frag = if i == 0 {
                    parse_prefix(&bytes, target_end, &config, probe.as_ref())
                } else {
                    parse_fragment(&bytes, boundaries[i - 1], target_end, &config, probe.as_ref())
                };
                if let (Some(p), Some(t0)) = (probe.as_ref(), t0) {
                    let covered = frag.end.saturating_sub(frag.start);
                    p.on_chunk(w, covered, t0, t0.elapsed().as_nanos() as u64);
                }
                if tx.send((i, frag)).is_err() {
                    // Coordinator gone (reader dropped early): stop parsing.
                    break;
                }
            })
        })
        .collect();
    FragStream { rx, slots: (0..n).map(|_| None).collect(), handles }
}

/// Chunk 0: the ordinary sequential reader over the document prefix, so
/// the prolog (BOM, XML declaration, comments, PIs) and the root start are
/// handled with fully absolute state.
fn parse_prefix(
    bytes: &[u8],
    target_end: u64,
    config: &ReaderConfig,
    probe: Option<&ProbeHandle>,
) -> Fragment {
    let mut reader = XmlReader::with_config(Cursor::new(bytes), config.clone());
    if let Some(p) = probe {
        reader.set_probe(p.clone());
    }
    drive(reader, 0, target_end, true)
}

/// A speculative fragment: starts at `start` (a `<` byte) in content
/// state. Depth limits are deferred to the replay, which knows absolute
/// depths.
fn parse_fragment(
    bytes: &[u8],
    start: u64,
    target_end: u64,
    config: &ReaderConfig,
    probe: Option<&ProbeHandle>,
) -> Fragment {
    let mut cfg = config.clone();
    cfg.max_depth = usize::MAX;
    let origin = TextPosition::new(start, 1, 1);
    let mut reader = XmlReader::fragment(Cursor::new(&bytes[start as usize..]), cfg, origin);
    if let Some(p) = probe {
        reader.set_probe(p.clone());
    }
    drive(reader, start, target_end, false)
}

/// Pulls events until the reader's cursor reaches `target_end` with no
/// deferred self-closing end tag pending, recording a terminal error in
/// place of further events. `EndDocument` is consumed but not stored —
/// the coordinator decides how the *document* ends.
fn drive<R: std::io::Read>(
    mut reader: XmlReader<R>,
    start: u64,
    target_end: u64,
    absolute: bool,
) -> Fragment {
    let mut events = Vec::new();
    let mut error = None;
    while reader.offset() < target_end || reader.has_pending_end() {
        match reader.next_event() {
            Ok(ev) => {
                if ev.is_end_document() {
                    break;
                }
                events.push(ev);
            }
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }
    Fragment { start, end: reader.offset(), end_pos: reader.position(), events, error, absolute }
}

// ------------------------------------------------------------------ //
// Reconciling replay
// ------------------------------------------------------------------ //

/// Replay state: walks accepted fragments in document order, re-parsing
/// misspeculated holes, maintaining the single global open-element stack,
/// and rebasing positions/levels/spans to absolute values.
struct Replay {
    bytes: Arc<Vec<u8>>,
    config: ReaderConfig,
    /// Static start offset of every chunk in document order (`starts[0]`
    /// is 0); fixed by the split, so the replay can skip and size holes
    /// without waiting for the fragments themselves.
    starts: Vec<u64>,
    /// Fragments streaming in from the workers, out of order.
    source: FragStream,
    next_frag: usize,
    cur: Option<Fragment>,
    cur_event: usize,
    /// Absolute offset the next accepted fragment must start at.
    cursor: u64,
    /// Absolute position at `cursor` (base for rebasing the current
    /// fragment's relative line/column values).
    base: TextPosition,
    open: Vec<OpenElem>,
    root_seen: bool,
    done: bool,
    /// Sticky terminal error: once returned, returned again.
    failed: Option<XmlError>,
    stats: ParStats,
    /// Observability hook: stitch (inline reparse) time is reported here.
    probe: Option<ProbeHandle>,
}

impl Replay {
    fn next_event(&mut self) -> XmlResult<XmlEvent> {
        if let Some(err) = &self.failed {
            return Err(err.clone());
        }
        if self.done {
            return Ok(XmlEvent::EndDocument);
        }
        loop {
            // Ensure a current fragment (accepting, discarding, or
            // re-parsing as needed); none left means the document is done.
            if self.cur.is_none() {
                match self.advance_fragment() {
                    Ok(true) => {}
                    Ok(false) => return self.finish(),
                    Err(e) => return Err(self.fail(e)),
                }
            }
            let next = {
                let frag = self.cur.as_mut().expect("current fragment");
                if self.cur_event < frag.events.len() {
                    // Take ownership; the slot is never revisited.
                    let ev =
                        std::mem::replace(&mut frag.events[self.cur_event], XmlEvent::EndDocument);
                    self.cur_event += 1;
                    Some((ev, frag.absolute))
                } else {
                    None
                }
            };
            match next {
                Some((ev, absolute)) => match self.replay_event(ev, absolute) {
                    Ok(Some(out)) => return Ok(out),
                    Ok(None) => continue, // suppressed (e.g. prolog/epilog whitespace)
                    Err(e) => return Err(self.fail(e)),
                },
                None => {
                    // Fragment exhausted: surface its terminal error, else
                    // move the cursor to its stop point.
                    let frag = self.cur.take().expect("current fragment");
                    self.cur_event = 0;
                    if let Some(err) = frag.error {
                        let err = if frag.absolute {
                            err
                        } else {
                            let pos = self.rebase(err.position());
                            err.at(pos)
                        };
                        return Err(self.fail(err));
                    }
                    self.cursor = frag.end;
                    self.base =
                        if frag.absolute { frag.end_pos } else { compose(self.base, frag.end_pos) };
                }
            }
        }
    }

    /// Selects the fragment starting exactly at `cursor`: skips
    /// speculations the previous fragment overshot, re-parses the hole
    /// inline when the next speculation starts too far ahead. Returns
    /// `Ok(false)` when the document is exhausted; blocks on the worker
    /// stream only when the fragment it is about to *accept* has not
    /// arrived yet (skips and holes are decided from the static starts).
    fn advance_fragment(&mut self) -> XmlResult<bool> {
        while self.next_frag < self.starts.len() && self.starts[self.next_frag] < self.cursor {
            // Misspeculated: the previous fragment overshot this start.
            // The parse result is never needed, so don't wait for it.
            self.next_frag += 1;
            self.stats.misspeculated += 1;
        }
        if self.next_frag < self.starts.len() && self.starts[self.next_frag] == self.cursor {
            self.cur = Some(self.source.wait(self.next_frag, self.base)?);
            self.cur_event = 0;
            self.next_frag += 1;
            return Ok(true);
        }
        if self.cursor >= self.bytes.len() as u64 {
            return Ok(false);
        }
        // Hole: the accepted stream stopped short of the next speculation
        // (or of document end). Re-parse it inline up to that point.
        let target = match self.starts.get(self.next_frag) {
            Some(&start) => start,
            None => self.bytes.len() as u64,
        };
        self.stats.reparsed += 1;
        let t0 = self.probe.as_ref().map(|_| Instant::now());
        self.cur = Some(parse_fragment(
            &self.bytes,
            self.cursor,
            target,
            &self.config,
            self.probe.as_ref(),
        ));
        self.cur_event = 0;
        if let (Some(p), Some(t0)) = (&self.probe, t0) {
            p.on_stitch(t0.elapsed().as_nanos() as u64);
        }
        Ok(true)
    }

    /// Applies global well-formedness and position/level/span fixups to
    /// one speculated event. `Ok(None)` drops the event (whitespace
    /// outside the root).
    fn replay_event(&mut self, ev: XmlEvent, absolute: bool) -> XmlResult<Option<XmlEvent>> {
        Ok(Some(match ev {
            XmlEvent::StartDocument { .. }
            | XmlEvent::DoctypeDeclaration { .. }
            | XmlEvent::Comment(_) => ev,
            XmlEvent::ProcessingInstruction(mut e) => {
                if !absolute {
                    e.position = self.rebase(e.position);
                }
                XmlEvent::ProcessingInstruction(e)
            }
            XmlEvent::StartElement(mut e) => {
                if !absolute {
                    e.position = self.rebase(e.position);
                }
                if self.open.is_empty() {
                    if self.root_seen {
                        return Err(XmlError::new(XmlErrorKind::TrailingContent, e.position));
                    }
                    self.root_seen = true;
                }
                if self.open.len() >= self.config.max_depth {
                    return Err(XmlError::new(
                        XmlErrorKind::DepthLimit { max: self.config.max_depth },
                        e.position,
                    ));
                }
                self.open.push(OpenElem { name: e.name.clone(), start_offset: e.span.start });
                e.level = self.open.len() as u32;
                XmlEvent::StartElement(e)
            }
            XmlEvent::EndElement(mut e) => {
                if !absolute {
                    e.position = self.rebase(e.position);
                }
                let top = match self.open.pop() {
                    Some(top) => top,
                    None => {
                        return Err(XmlError::new(
                            XmlErrorKind::UnbalancedEndTag { name: e.name.as_str().into() },
                            e.position,
                        ))
                    }
                };
                if top.name != e.name {
                    return Err(XmlError::new(
                        XmlErrorKind::MismatchedTag {
                            expected: top.name.as_str().into(),
                            found: e.name.as_str().into(),
                        },
                        e.position,
                    ));
                }
                e.level = (self.open.len() + 1) as u32;
                e.element_span = ByteSpan::new(top.start_offset, e.element_span.end);
                XmlEvent::EndElement(e)
            }
            XmlEvent::Characters(mut e) => {
                if !absolute {
                    e.position = self.rebase(e.position);
                }
                if self.open.is_empty() {
                    // The sequential reader consumes whitespace between
                    // top-level constructs silently, but it decides on the
                    // *raw source*: a character reference or CDATA section
                    // that merely decodes to whitespace is still an error.
                    // Fragment readers parse the epilog in content state
                    // and hand us the decoded run, so walk the raw span to
                    // recover the sequential verdict and the exact error
                    // position, independent of entity/multibyte decoding.
                    let raw = e.span.slice(&self.bytes).expect("event span within document");
                    let mut pos = e.position;
                    let mut i = 0;
                    while i < raw.len() {
                        match raw[i] {
                            b' ' | b'\t' | b'\n' => {
                                pos.advance(raw[i] as char, 1);
                                i += 1;
                            }
                            b'\r' => {
                                // §2.11 normalization: \r\n is one '\n'.
                                let len = if raw.get(i + 1) == Some(&b'\n') { 2 } else { 1 };
                                pos.advance('\n', len);
                                i += len;
                            }
                            // Only a CDATA opener can put '<' inside a
                            // text span; the sequential reader rejects it
                            // before looking at its contents.
                            b'<' => {
                                return Err(XmlError::syntax(
                                    "CDATA section outside the root element",
                                    pos,
                                ))
                            }
                            _ => return Err(XmlError::new(XmlErrorKind::TextOutsideRoot, pos)),
                        }
                    }
                    return Ok(None);
                }
                e.level = self.open.len() as u32;
                XmlEvent::Characters(e)
            }
            XmlEvent::EndDocument => unreachable!("drive() never stores EndDocument"),
        }))
    }

    /// Document end: enforce the whole-document conditions the sequential
    /// reader checks at EOF.
    fn finish(&mut self) -> XmlResult<XmlEvent> {
        let pos = self.base;
        if !self.open.is_empty() {
            return Err(self.fail(XmlError::new(
                XmlErrorKind::UnexpectedEof { expected: "end tags for open elements" },
                pos,
            )));
        }
        if !self.root_seen {
            return Err(self.fail(XmlError::new(XmlErrorKind::NoRootElement, pos)));
        }
        self.done = true;
        Ok(XmlEvent::EndDocument)
    }

    fn rebase(&self, rel: TextPosition) -> TextPosition {
        compose(self.base, rel)
    }

    fn fail(&mut self, err: XmlError) -> XmlError {
        self.failed = Some(err.clone());
        err
    }
}

/// Rebases a fragment-relative position onto the absolute position of the
/// fragment's first byte. Offsets are already absolute (fragment scanners
/// start at the true byte offset); lines add up with a shared origin; the
/// column only needs rebasing while still on the fragment's first line.
fn compose(base: TextPosition, rel: TextPosition) -> TextPosition {
    TextPosition {
        offset: rel.offset,
        line: base.line + (rel.line - 1),
        column: if rel.line > 1 { rel.column } else { base.column + (rel.column - 1) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_events(xml: &str) -> XmlResult<Vec<XmlEvent>> {
        XmlReader::from_str(xml).collect_events()
    }

    fn par_events(xml: &str, chunk: usize) -> XmlResult<Vec<XmlEvent>> {
        ParallelReader::with_config(
            xml.as_bytes().to_vec(),
            ParallelConfig { threads: 3, chunk_bytes: Some(chunk), ..ParallelConfig::default() },
        )
        .collect_events()
    }

    fn assert_equivalent(xml: &str, chunk: usize) {
        let seq = seq_events(xml);
        let par = par_events(xml, chunk);
        match (&seq, &par) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "chunk={chunk} xml={xml:?}"),
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "chunk={chunk} xml={xml:?}")
            }
            _ => panic!("divergence at chunk={chunk} xml={xml:?}:\nseq={seq:?}\npar={par:?}"),
        }
    }

    #[test]
    fn simple_document_all_chunk_sizes() {
        let xml = "<a><b x='1'>hi</b><c/>text<d>more</d></a>";
        for chunk in 1..=xml.len() {
            assert_equivalent(xml, chunk);
        }
    }

    #[test]
    fn multiline_positions_survive_rebasing() {
        let xml = "<root>\n  <item id=\"1\">alpha</item>\n  <item id=\"2\">beta</item>\n</root>\n";
        for chunk in [1, 3, 7, 16, 64] {
            assert_equivalent(xml, chunk);
        }
    }

    #[test]
    fn seam_inside_comment_and_cdata_misspeculates_correctly() {
        let xml = "<r>pre<!-- a <fake> tag --><x/><![CDATA[raw <y> &amp; stuff]]>post</r>";
        for chunk in 1..=xml.len() {
            assert_equivalent(xml, chunk);
        }
    }

    #[test]
    fn cross_chunk_mismatched_tag_error_is_identical() {
        let xml = "<a><b>text</a></b>";
        for chunk in [1, 4, 9, 64] {
            assert_equivalent(xml, chunk);
        }
    }

    #[test]
    fn decoded_whitespace_outside_root_errors_like_sequential() {
        // Char-ref and CDATA whitespace outside the root decode to
        // whitespace text, but the sequential reader rejects them on the
        // raw source before decoding; the replay must produce the same
        // error at the same position.
        for xml in [
            "<r>a</r> &#32;",
            "<r>a</r>&#x20;",
            "<r>a</r> <![CDATA[ ]]>",
            "<r>a</r>\n<![CDATA[]]> ",
        ] {
            for chunk in 1..=xml.len() {
                assert_equivalent(xml, chunk);
            }
        }
    }

    #[test]
    fn text_outside_root_error_position_is_exact() {
        // Multibyte and entity-bearing runs after the root: the error
        // must point at the first non-whitespace character of the raw
        // source, independent of entity/multibyte decoding.
        for xml in ["<r>a</r>  \u{e9}x", "<r>a</r> \r\n x&amp;y", "<r>a</r>\t&#233;"] {
            for chunk in 1..=xml.len() {
                assert_equivalent(xml, chunk);
            }
        }
    }

    #[test]
    fn literal_whitespace_epilog_is_consumed() {
        for xml in ["<r>a</r> \n\t ", "<r/>\r\n \r"] {
            for chunk in 1..=xml.len() {
                assert_equivalent(xml, chunk);
            }
        }
    }

    #[test]
    fn doctype_falls_back_to_sequential() {
        let xml = "<!DOCTYPE r [<!ENTITY e \"ha\">]><r>&e;</r>";
        let par = ParallelReader::from_str(xml, 4);
        assert!(par.stats().sequential_fallback);
        assert_eq!(par.collect_events().unwrap(), seq_events(xml).unwrap());
    }

    #[test]
    fn zero_and_one_thread_are_sequential() {
        for threads in [0, 1] {
            let par = ParallelReader::from_str("<r><a/></r>", threads);
            assert!(par.stats().sequential_fallback);
            assert_eq!(par.collect_events().unwrap(), seq_events("<r><a/></r>").unwrap());
        }
    }

    #[test]
    fn end_document_is_sticky() {
        let mut par = ParallelReader::with_config(
            b"<r>aaaa</r>".to_vec(),
            ParallelConfig { threads: 2, chunk_bytes: Some(4), ..ParallelConfig::default() },
        );
        loop {
            if par.next_event().unwrap().is_end_document() {
                break;
            }
        }
        assert!(par.next_event().unwrap().is_end_document());
        assert!(par.next_event().unwrap().is_end_document());
    }

    #[test]
    fn probe_sees_chunks_scan_bytes_and_stitches() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;

        #[derive(Default)]
        struct Probe {
            chunks: AtomicU64,
            chunk_bytes: AtomicU64,
            scan_bytes: AtomicU64,
            stitches: AtomicU64,
        }
        impl crate::probe::ParseProbe for Probe {
            fn on_scan_bytes(&self, wide: u64, scalar: u64) {
                self.scan_bytes.fetch_add(wide + scalar, Ordering::Relaxed);
            }
            fn on_chunk(&self, _worker: usize, bytes: u64, _start: Instant, _dur_ns: u64) {
                self.chunks.fetch_add(1, Ordering::Relaxed);
                self.chunk_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            fn on_stitch(&self, _ns: u64) {
                self.stitches.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Seams inside the comment/CDATA force misspeculation; sweep all
        // chunk sizes so at least some of them leave holes to reparse.
        let xml = "<r>pre<!-- a <fake> tag --><x/><![CDATA[raw <y>]]>post</r>";
        let probe = Arc::new(Probe::default());
        let mut total_reparsed = 0u64;
        for chunk in 1..=xml.len() {
            let mut par = ParallelReader::with_config_probe(
                xml.as_bytes().to_vec(),
                ParallelConfig {
                    threads: 3,
                    chunk_bytes: Some(chunk),
                    ..ParallelConfig::default()
                },
                Some(probe.clone()),
            );
            while !par.next_event().unwrap().is_end_document() {}
            total_reparsed += par.stats().reparsed as u64;
        }
        let chunks = probe.chunks.load(Ordering::Relaxed);
        assert!(chunks > 1, "expected speculative chunks, got {chunks}");
        assert!(probe.chunk_bytes.load(Ordering::Relaxed) > 0);
        assert!(probe.scan_bytes.load(Ordering::Relaxed) > 0);
        assert!(total_reparsed > 0, "seams should force at least one reparse");
        assert_eq!(probe.stitches.load(Ordering::Relaxed), total_reparsed);
    }

    #[test]
    fn next_batch_matches_the_event_stream() {
        let xml = "<r>pre<!-- a <fake> tag --><x/><![CDATA[raw <y>]]>post<d>more</d></r>";
        for chunk in [1, 3, 7, 64] {
            let expected: Vec<XmlEvent> = par_events(xml, chunk)
                .unwrap()
                .into_iter()
                .filter(|e| !e.is_end_document())
                .collect();
            let mut par = ParallelReader::with_config(
                xml.as_bytes().to_vec(),
                ParallelConfig {
                    threads: 3,
                    chunk_bytes: Some(chunk),
                    ..ParallelConfig::default()
                },
            );
            let mut got = Vec::new();
            while let Some(batch) = par.next_batch().unwrap() {
                got.extend(batch);
            }
            assert_eq!(got, expected, "chunk={chunk}");
            // Exhaustion is sticky.
            assert!(par.next_batch().unwrap().is_none());
        }
        // The sequential fallback speaks the same batch API.
        let mut seq = ParallelReader::from_str(xml, 1);
        let mut got = Vec::new();
        while let Some(batch) = seq.next_batch().unwrap() {
            got.extend(batch);
        }
        let expected: Vec<XmlEvent> =
            seq_events(xml).unwrap().into_iter().filter(|e| !e.is_end_document()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn parse_worker_panic_surfaces_a_clean_sticky_error() {
        let xml = "<r>".to_string() + &"<a>text</a>".repeat(40) + "</r>";
        let mut par = ParallelReader::with_config(
            xml.into_bytes(),
            ParallelConfig {
                threads: 2,
                chunk_bytes: Some(16),
                fail_chunk: Some(3),
                ..ParallelConfig::default()
            },
        );
        let first = loop {
            match par.next_event() {
                Ok(ev) => assert!(!ev.is_end_document(), "stream must not complete"),
                Err(e) => break e.to_string(),
            }
        };
        assert!(first.contains("parse worker panicked"), "unexpected error: {first}");
        assert_eq!(par.next_event().unwrap_err().to_string(), first);
        assert_eq!(par.next_batch().unwrap_err().to_string(), first);
    }

    #[test]
    fn error_is_sticky() {
        let mut par = ParallelReader::with_config(
            b"<r><a>text</b></r>".to_vec(),
            ParallelConfig { threads: 2, chunk_bytes: Some(5), ..ParallelConfig::default() },
        );
        let first = loop {
            match par.next_event() {
                Ok(_) => continue,
                Err(e) => break e.to_string(),
            }
        };
        assert_eq!(par.next_event().unwrap_err().to_string(), first);
    }
}
