//! XML names: validation and qualified-name handling.
//!
//! ViteX matches query nametests against element and attribute names
//! lexically (prefix included), exactly as the 2005 system did. This module
//! provides the [`QName`] type used everywhere a name appears, plus the
//! character-class predicates from the XML 1.0 (Fifth Edition) `Name`
//! production used by the tokenizer.

use std::borrow::Borrow;
use std::fmt;

/// Is `c` a valid first character of an XML `Name` (colon allowed)?
///
/// Implements the `NameStartChar` production of XML 1.0 §2.3.
pub fn is_name_start_char(c: char) -> bool {
    matches!(c,
        ':' | '_'
        | 'A'..='Z' | 'a'..='z'
        | '\u{C0}'..='\u{D6}' | '\u{D8}'..='\u{F6}' | '\u{F8}'..='\u{2FF}'
        | '\u{370}'..='\u{37D}' | '\u{37F}'..='\u{1FFF}'
        | '\u{200C}'..='\u{200D}' | '\u{2070}'..='\u{218F}'
        | '\u{2C00}'..='\u{2FEF}' | '\u{3001}'..='\u{D7FF}'
        | '\u{F900}'..='\u{FDCF}' | '\u{FDF0}'..='\u{FFFD}'
        | '\u{10000}'..='\u{EFFFF}')
}

/// Is `c` a valid non-first character of an XML `Name`?
///
/// Implements the `NameChar` production of XML 1.0 §2.3.
pub fn is_name_char(c: char) -> bool {
    is_name_start_char(c)
        || matches!(c,
            '-' | '.' | '0'..='9'
            | '\u{B7}'
            | '\u{300}'..='\u{36F}'
            | '\u{203F}'..='\u{2040}')
}

/// Validates a complete XML `Name`.
pub fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if is_name_start_char(c) => chars.all(is_name_char),
        _ => false,
    }
}

/// Validates an `NCName` (a `Name` with no colon) — what XPath nametests
/// are made of.
pub fn is_valid_ncname(s: &str) -> bool {
    is_valid_name(s) && !s.contains(':')
}

/// A qualified XML name as written in the document, e.g. `title` or
/// `dc:title`.
///
/// `QName` stores the raw lexical form; [`QName::prefix`] and
/// [`QName::local`] split it on the first colon. Comparison and hashing use
/// the raw form, which is also how the TwigM machine matches nametests.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    raw: Box<str>,
}

impl QName {
    /// Wraps a raw name without validation (the tokenizer has already
    /// validated character classes).
    pub fn new(raw: impl Into<String>) -> Self {
        QName { raw: raw.into().into_boxed_str() }
    }

    /// The full lexical form.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// The raw bytes of the lexical form.
    pub fn as_bytes(&self) -> &[u8] {
        self.raw.as_bytes()
    }

    /// The namespace prefix, if the name contains a colon.
    pub fn prefix(&self) -> Option<&str> {
        self.raw.split_once(':').map(|(p, _)| p)
    }

    /// The local part (everything after the first colon, or the whole name).
    pub fn local(&self) -> &str {
        self.raw.split_once(':').map_or(&*self.raw, |(_, l)| l)
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl From<&str> for QName {
    fn from(s: &str) -> Self {
        QName::new(s)
    }
}

impl From<String> for QName {
    fn from(s: String) -> Self {
        QName::new(s)
    }
}

impl Borrow<str> for QName {
    fn borrow(&self) -> &str {
        &self.raw
    }
}

impl AsRef<str> for QName {
    fn as_ref(&self) -> &str {
        &self.raw
    }
}

impl PartialEq<str> for QName {
    fn eq(&self, other: &str) -> bool {
        &*self.raw == other
    }
}

impl PartialEq<&str> for QName {
    fn eq(&self, other: &&str) -> bool {
        &*self.raw == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_names_validate() {
        assert!(is_valid_name("book"));
        assert!(is_valid_name("_id"));
        assert!(is_valid_name("ns:book"));
        assert!(is_valid_name("a-b.c_d9"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("9lives"));
        assert!(!is_valid_name("-x"));
        assert!(!is_valid_name(".x"));
        assert!(!is_valid_name("a b"));
    }

    #[test]
    fn unicode_names_validate() {
        assert!(is_valid_name("café"));
        assert!(is_valid_name("日本語"));
        assert!(is_valid_name("Ω"));
        // U+00D7 MULTIPLICATION SIGN is excluded from NameStartChar.
        assert!(!is_valid_name("×"));
    }

    #[test]
    fn ncname_rejects_colon() {
        assert!(is_valid_ncname("book"));
        assert!(!is_valid_ncname("ns:book"));
    }

    #[test]
    fn qname_splits_prefix_and_local() {
        let q = QName::new("dc:title");
        assert_eq!(q.prefix(), Some("dc"));
        assert_eq!(q.local(), "title");
        assert_eq!(q.as_str(), "dc:title");
        assert_eq!(q.to_string(), "dc:title");

        let plain = QName::new("title");
        assert_eq!(plain.prefix(), None);
        assert_eq!(plain.local(), "title");
    }

    #[test]
    fn qname_compares_with_str() {
        let q = QName::new("a");
        assert_eq!(q, "a");
        assert_ne!(q, "b");
    }

    #[test]
    fn qname_byte_and_ref_access() {
        let q = QName::new("tag");
        assert_eq!(q.as_bytes(), b"tag");
        assert_eq!(<QName as AsRef<str>>::as_ref(&q), "tag");
    }
}
