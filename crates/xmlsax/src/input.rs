//! Buffered, position-tracking byte scanner over any [`Read`].
//!
//! This is the lowest layer of the streaming parser: a fixed-size sliding
//! window over the input with UTF-8 decoding, XML 1.0 §2.11 line-ending
//! normalization (`\r\n` and bare `\r` become `\n`), and byte/line/column
//! accounting. Memory use is bounded by the window size regardless of
//! document size — the property the ViteX memory experiments rely on.

use std::io::Read;

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::pos::TextPosition;

/// Default sliding-window capacity. Large enough that refills are rare,
/// small enough to keep the parser's footprint negligible next to the
/// machine's own state.
const DEFAULT_BUF_CAPACITY: usize = 64 * 1024;

/// A buffered scanner with single-character lookahead primitives.
pub struct Scanner<R: Read> {
    source: R,
    buf: Vec<u8>,
    /// First unconsumed byte in `buf`.
    start: usize,
    /// One past the last valid byte in `buf`.
    end: usize,
    /// The underlying reader reported end-of-stream.
    source_eof: bool,
    pos: TextPosition,
    /// Whether class runs use the SWAR word-at-a-time scan.
    wide: bool,
    /// Class-run bytes advanced by the SWAR wide path (plain integers:
    /// the accounting is two adds per *run*, not per byte, so it stays on
    /// even when no probe ever reads it).
    scan_wide_bytes: u64,
    /// Class-run bytes advanced by the scalar path (including the short
    /// scalar probe that precedes every wide scan).
    scan_scalar_bytes: u64,
}

impl<R: Read> Scanner<R> {
    /// Creates a scanner with the default window size.
    pub fn new(source: R) -> Self {
        Scanner::with_capacity(source, DEFAULT_BUF_CAPACITY)
    }

    /// Creates a scanner with a specific window size (minimum 16 bytes).
    pub fn with_capacity(source: R, capacity: usize) -> Self {
        Scanner {
            source,
            buf: vec![0; capacity.max(16)],
            start: 0,
            end: 0,
            source_eof: false,
            pos: TextPosition::START,
            wide: true,
            scan_wide_bytes: 0,
            scan_scalar_bytes: 0,
        }
    }

    /// Creates a scanner whose position starts at `pos` instead of the
    /// stream origin — used by the parallel front-end to parse a document
    /// fragment while keeping byte offsets absolute.
    pub(crate) fn with_capacity_at(source: R, capacity: usize, pos: TextPosition) -> Self {
        let mut sc = Scanner::with_capacity(source, capacity);
        sc.pos = pos;
        sc
    }

    /// Enables or disables the SWAR wide scan inside class runs (enabled
    /// by default). Disabling it forces the scalar per-byte loop — useful
    /// for isolating the wide-scan speedup in benchmarks.
    pub fn set_wide_scan(&mut self, wide: bool) {
        self.wide = wide;
    }

    /// Class-run scan accounting since construction: `(wide_bytes,
    /// scalar_bytes)`. Only the bulk class-run path is counted — char-wise
    /// consumption (markup punctuation, UTF-8, `\r` normalization) is not
    /// scanning in the memchr sense.
    pub fn scan_counts(&self) -> (u64, u64) {
        (self.scan_wide_bytes, self.scan_scalar_bytes)
    }

    /// Current position (of the next unconsumed byte).
    pub fn position(&self) -> TextPosition {
        self.pos
    }

    /// Current absolute byte offset.
    pub fn offset(&self) -> u64 {
        self.pos.offset
    }

    fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Makes at least `n` bytes available in the window, unless the stream
    /// ends first. Returns the number actually available (`< n` only at
    /// end of stream).
    fn ensure(&mut self, n: usize) -> XmlResult<usize> {
        while self.buffered() < n && !self.source_eof {
            // Slide the window if the tail has no room.
            if self.end == self.buf.len() {
                if self.start > 0 {
                    self.buf.copy_within(self.start..self.end, 0);
                    self.end -= self.start;
                    self.start = 0;
                }
                if self.end == self.buf.len() {
                    // A single construct larger than the window (only
                    // possible for pathological lookahead requests; normal
                    // scanning consumes as it goes). Grow geometrically.
                    self.buf.resize(self.buf.len() * 2, 0);
                }
            }
            let read = self
                .source
                .read(&mut self.buf[self.end..])
                .map_err(|e| XmlError::new(XmlErrorKind::Io(e.into()), self.pos))?;
            if read == 0 {
                self.source_eof = true;
            } else {
                self.end += read;
            }
        }
        Ok(self.buffered().min(n))
    }

    /// Peeks the next byte without consuming it.
    pub fn peek_byte(&mut self) -> XmlResult<Option<u8>> {
        if self.ensure(1)? == 0 {
            return Ok(None);
        }
        Ok(Some(self.buf[self.start]))
    }

    /// Peeks the byte at lookahead distance `i` (0 = next byte).
    pub fn peek_at(&mut self, i: usize) -> XmlResult<Option<u8>> {
        if self.ensure(i + 1)? < i + 1 {
            return Ok(None);
        }
        Ok(Some(self.buf[self.start + i]))
    }

    /// Whether the unconsumed input starts with `prefix`.
    pub fn starts_with(&mut self, prefix: &[u8]) -> XmlResult<bool> {
        if self.ensure(prefix.len())? < prefix.len() {
            return Ok(false);
        }
        Ok(&self.buf[self.start..self.start + prefix.len()] == prefix)
    }

    /// Consumes `prefix`, which the caller has verified (ASCII only — the
    /// position advance assumes one column per byte).
    pub fn consume_ascii(&mut self, prefix: &[u8]) -> XmlResult<()> {
        debug_assert!(prefix.is_ascii());
        debug_assert!(self.buffered() >= prefix.len());
        for &b in prefix {
            self.start += 1;
            self.pos.advance(b as char, 1);
        }
        Ok(())
    }

    /// Consumes `n` raw bytes the caller has already peeked, advancing the
    /// offset without newline accounting (used for the UTF-8 BOM).
    pub fn skip_raw(&mut self, n: usize) {
        debug_assert!(self.buffered() >= n);
        self.start += n;
        self.pos.offset += n as u64;
    }

    /// Consumes and returns the next character, applying line-ending
    /// normalization: `\r\n` and bare `\r` are delivered as `\n`.
    ///
    /// Returns `Ok(None)` at end of stream.
    pub fn next_char(&mut self) -> XmlResult<Option<char>> {
        let first = match self.peek_byte()? {
            Some(b) => b,
            None => return Ok(None),
        };
        if first == b'\r' {
            // Normalize; consume a following '\n' too if present.
            let mut consumed = 1;
            if self.peek_at(1)? == Some(b'\n') {
                consumed = 2;
            }
            self.start += consumed;
            self.pos.advance('\n', consumed);
            return Ok(Some('\n'));
        }
        if first < 0x80 {
            self.start += 1;
            self.pos.advance(first as char, 1);
            return Ok(Some(first as char));
        }
        // Multi-byte UTF-8.
        let len =
            utf8_len(first).ok_or_else(|| XmlError::new(XmlErrorKind::InvalidUtf8, self.pos))?;
        if self.ensure(len)? < len {
            return Err(XmlError::new(XmlErrorKind::InvalidUtf8, self.pos));
        }
        let bytes = &self.buf[self.start..self.start + len];
        let s = std::str::from_utf8(bytes)
            .map_err(|_| XmlError::new(XmlErrorKind::InvalidUtf8, self.pos))?;
        let ch = s.chars().next().expect("non-empty validated UTF-8");
        self.start += len;
        self.pos.advance(ch, len);
        Ok(Some(ch))
    }

    /// Peeks the next character (with the same normalization as
    /// [`Scanner::next_char`]) without consuming it.
    pub fn peek_char(&mut self) -> XmlResult<Option<char>> {
        let first = match self.peek_byte()? {
            Some(b) => b,
            None => return Ok(None),
        };
        if first == b'\r' {
            return Ok(Some('\n'));
        }
        if first < 0x80 {
            return Ok(Some(first as char));
        }
        let len =
            utf8_len(first).ok_or_else(|| XmlError::new(XmlErrorKind::InvalidUtf8, self.pos))?;
        if self.ensure(len)? < len {
            return Err(XmlError::new(XmlErrorKind::InvalidUtf8, self.pos));
        }
        let bytes = &self.buf[self.start..self.start + len];
        let s = std::str::from_utf8(bytes)
            .map_err(|_| XmlError::new(XmlErrorKind::InvalidUtf8, self.pos))?;
        Ok(s.chars().next())
    }

    /// Fast path: consumes a run of bytes for which `pred` holds, appending
    /// them to `out`. Stops at the first byte failing `pred`, at any
    /// non-ASCII byte, at `\r` (so normalization can kick in), or at end of
    /// stream. Returns how many bytes were consumed.
    ///
    /// Prefer [`Scanner::consume_class_run`] on hot paths: a prebuilt
    /// [`ByteClass`] replaces the per-byte predicate call with a table
    /// lookup and the run is accounted in bulk.
    pub fn consume_ascii_run(
        &mut self,
        pred: impl Fn(u8) -> bool,
        out: &mut String,
    ) -> XmlResult<usize> {
        let mut table = [false; 256];
        for (b, slot) in table.iter_mut().enumerate().take(0x80) {
            *slot = b as u8 != b'\r' && pred(b as u8);
        }
        self.consume_class_run(&ByteClass::new(table), out)
    }

    /// The memchr-style fast path: consumes the longest prefix of bytes
    /// whose [`ByteClass`] entry is set, appending it to `out` in one
    /// `push_str` and advancing the position **in bulk** (one newline
    /// count per run instead of a branch per byte). Classes never include
    /// `\r` (normalization) or non-ASCII bytes (UTF-8 decoding), so the
    /// char-wise slow path keeps handling those. Returns how many bytes
    /// were consumed.
    pub fn consume_class_run(&mut self, class: &ByteClass, out: &mut String) -> XmlResult<usize> {
        // The class is ASCII-only sans '\r'; safe to push as str.
        self.consume_class_run_with(class, |run| {
            out.push_str(std::str::from_utf8(run).expect("ascii run"))
        })
    }

    /// Zero-copy variant of [`Scanner::consume_class_run`]: the run is
    /// handed to `sink` as borrowed slices (one per buffer window crossed)
    /// instead of being appended to a `String`. Callers that only need the
    /// span — or that copy into their own storage — skip the intermediate
    /// allocation entirely.
    pub fn consume_class_run_with(
        &mut self,
        class: &ByteClass,
        mut sink: impl FnMut(&[u8]),
    ) -> XmlResult<usize> {
        let mut total = 0;
        loop {
            if self.buffered() == 0 && self.ensure(1)? == 0 {
                break;
            }
            let window = &self.buf[self.start..self.end];
            let n = match class.find_stop(window, self.wide) {
                Some(0) => break,
                Some(stop) => stop,
                None => window.len(),
            };
            let run = &self.buf[self.start..self.start + n];
            sink(run);
            self.pos.advance_ascii_run(run);
            if self.wide && class.wide.ok {
                // The first word of every run is probed scalar-wise before
                // the SWAR loop takes over (see ByteClass::find_stop).
                let probe = n.min(8) as u64;
                self.scan_scalar_bytes += probe;
                self.scan_wide_bytes += n as u64 - probe;
            } else {
                self.scan_scalar_bytes += n as u64;
            }
            self.start += n;
            total += n;
            if n < window.len() {
                break; // stopped at a boundary byte, not at window end
            }
        }
        Ok(total)
    }

    /// Consumes a class run without materializing it anywhere — the
    /// borrowed-slice fast path for callers that discard the bytes (e.g.
    /// whitespace skipping). Returns how many bytes were consumed.
    pub fn skip_class_run(&mut self, class: &ByteClass) -> XmlResult<usize> {
        self.consume_class_run_with(class, |_| {})
    }
}

/// All-ones in the low bit of every lane of a `u64` (8 ASCII lanes).
const LANE_LO: u64 = 0x0101_0101_0101_0101;
/// The high bit of every lane.
const LANE_HI: u64 = 0x8080_8080_8080_8080;

/// SWAR companion of a [`ByteClass`]: the ASCII members decomposed into at
/// most 8 contiguous ranges so an 8-byte word can be classified with a few
/// adds and masks instead of 8 table lookups. Derived at `const` time from
/// the membership table; classes too fragmented to decompose fall back to
/// the scalar loop (`ok == false`).
#[derive(Debug, Clone, Copy)]
struct WideSpec {
    /// Per-range lane-replicated add constants, precomputed at `const`
    /// time: `((0x80 - lo) * LANE_LO, (0x7F - hi) * LANE_LO)` for member
    /// range `lo..=hi`. Slots past `len` hold an empty range (`lo > hi`)
    /// whose compare never flags a lane, so [`WideSpec::stop_mask`] can
    /// run a fixed-trip, fully unrollable loop.
    adds: [(u64, u64); 8],
    ok: bool,
}

impl WideSpec {
    /// The add-constant pair of the empty range `1..=0`: `gt_hi` flags
    /// every lane, so `ge_lo & !gt_hi` contributes no members.
    const NEVER: (u64, u64) = ((0x80 - 1) * LANE_LO, 0x7F * LANE_LO);

    const fn derive(table: &[bool; 256]) -> WideSpec {
        let mut adds = [WideSpec::NEVER; 8];
        let mut len = 0;
        let mut b = 0usize;
        while b < 0x80 {
            if table[b] {
                let lo = b;
                while b < 0x80 && table[b] {
                    b += 1;
                }
                let hi = b - 1;
                if len == adds.len() {
                    return WideSpec { adds: [WideSpec::NEVER; 8], ok: false };
                }
                adds[len] = ((0x80 - lo as u64) * LANE_LO, (0x7F - hi as u64) * LANE_LO);
                len += 1;
            } else {
                b += 1;
            }
        }
        let _ = len;
        WideSpec { adds, ok: true }
    }

    /// Returns a mask with `0x80` set in every lane of `x` that must stop
    /// the run: bytes outside all member ranges, plus non-ASCII bytes.
    ///
    /// The per-range compare is the 7-bit trick `x + (0x80 - lo)` /
    /// `x + (0x7F - hi)`: with the high bit masked off, lane sums never
    /// exceed `0xFE`, so no carry crosses lanes and the result is *exact*
    /// (unlike the classic `haszero` subtraction, which can smear borrows
    /// upward).
    #[inline(always)]
    fn stop_mask(&self, x: u64) -> u64 {
        let x7 = x & !LANE_HI;
        let mut member = 0u64;
        // Fixed trip count over the padded table (empty ranges are
        // no-ops): no data-dependent branch, fully unrollable.
        let mut r = 0usize;
        while r < self.adds.len() {
            let (add_lo, add_hi) = self.adds[r];
            let ge_lo = x7.wrapping_add(add_lo) & LANE_HI;
            let gt_hi = x7.wrapping_add(add_hi) & LANE_HI;
            member |= ge_lo & !gt_hi;
            r += 1;
        }
        // Non-ASCII lanes (high bit in x) stop regardless of what their
        // low 7 bits looked like to the range compares.
        (x | !member) & LANE_HI
    }
}

/// A 256-entry byte-membership table driving
/// [`Scanner::consume_class_run`]: the scanning loop is a table lookup per
/// byte instead of a predicate call, and tables are built once (`const`)
/// per byte class rather than once per run.
///
/// Construction masks out `\r` and non-ASCII bytes unconditionally — runs
/// must stop there so line-ending normalization and UTF-8 decoding stay in
/// the char-wise slow path.
#[derive(Debug, Clone)]
pub struct ByteClass {
    table: [bool; 256],
    wide: WideSpec,
}

impl ByteClass {
    /// Builds a class from a membership table (entries for `\r` and bytes
    /// `>= 0x80` are ignored and forced to `false`).
    pub const fn new(mut table: [bool; 256]) -> Self {
        table[b'\r' as usize] = false;
        let mut b = 0x80;
        while b < 256 {
            table[b] = false;
            b += 1;
        }
        ByteClass { wide: WideSpec::derive(&table), table }
    }

    /// Whether byte `b` belongs to the class.
    #[inline(always)]
    pub fn contains(&self, b: u8) -> bool {
        self.table[b as usize]
    }

    /// Index of the first byte of `window` *not* in the class, or `None`
    /// if every byte is a member. With `wide` set (and a decomposable
    /// class) the window is classified 8 bytes per step via
    /// [`WideSpec::stop_mask`]; the scalar loop handles the tail and
    /// serves as the fallback.
    #[inline]
    pub(crate) fn find_stop(&self, window: &[u8], wide: bool) -> Option<usize> {
        let mut i = 0;
        if wide && self.wide.ok {
            // Most runs are short (tag/attribute names average well under
            // 8 bytes): probe the first word scalar-wise so they never
            // pay the SWAR setup; only runs that survive it go wide.
            let probe = window.len().min(8);
            while i < probe {
                if !self.contains(window[i]) {
                    return Some(i);
                }
                i += 1;
            }
            // 16 bytes per iteration: the two words' mask computations
            // have no data dependency, so they overlap in the pipeline.
            while i + 16 <= window.len() {
                let a = u64::from_le_bytes(window[i..i + 8].try_into().expect("8-byte chunk"));
                let b = u64::from_le_bytes(window[i + 8..i + 16].try_into().expect("8-byte chunk"));
                let sa = self.wide.stop_mask(a);
                let sb = self.wide.stop_mask(b);
                if sa | sb != 0 {
                    // from_le_bytes puts window[i] in the least significant
                    // lane on every host, so trailing_zeros finds the first.
                    return Some(if sa != 0 {
                        i + sa.trailing_zeros() as usize / 8
                    } else {
                        i + 8 + sb.trailing_zeros() as usize / 8
                    });
                }
                i += 16;
            }
            if i + 8 <= window.len() {
                let x = u64::from_le_bytes(window[i..i + 8].try_into().expect("8-byte chunk"));
                let stops = self.wide.stop_mask(x);
                if stops != 0 {
                    return Some(i + stops.trailing_zeros() as usize / 8);
                }
                i += 8;
            }
        }
        window[i..].iter().position(|&b| !self.contains(b)).map(|p| i + p)
    }
}

/// Length of a UTF-8 sequence from its first byte, or `None` if invalid.
fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC2..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF4 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn scan(s: &str) -> Scanner<Cursor<Vec<u8>>> {
        Scanner::new(Cursor::new(s.as_bytes().to_vec()))
    }

    #[test]
    fn reads_chars_and_tracks_position() {
        let mut sc = scan("ab\ncd");
        assert_eq!(sc.next_char().unwrap(), Some('a'));
        assert_eq!(sc.next_char().unwrap(), Some('b'));
        assert_eq!(sc.next_char().unwrap(), Some('\n'));
        assert_eq!(sc.position().line, 2);
        assert_eq!(sc.position().column, 1);
        assert_eq!(sc.next_char().unwrap(), Some('c'));
        assert_eq!(sc.position().column, 2);
        assert_eq!(sc.next_char().unwrap(), Some('d'));
        assert_eq!(sc.next_char().unwrap(), None);
        assert_eq!(sc.offset(), 5);
    }

    #[test]
    fn normalizes_line_endings() {
        let mut sc = scan("a\r\nb\rc");
        let mut got = String::new();
        while let Some(c) = sc.next_char().unwrap() {
            got.push(c);
        }
        assert_eq!(got, "a\nb\nc");
        // Offsets still count raw bytes.
        assert_eq!(sc.offset(), 6);
        assert_eq!(sc.position().line, 3);
    }

    #[test]
    fn decodes_multibyte_utf8() {
        let mut sc = scan("é日x");
        assert_eq!(sc.next_char().unwrap(), Some('é'));
        assert_eq!(sc.next_char().unwrap(), Some('日'));
        assert_eq!(sc.next_char().unwrap(), Some('x'));
        assert_eq!(sc.offset(), 6);
    }

    #[test]
    fn rejects_invalid_utf8() {
        let mut sc = Scanner::new(Cursor::new(vec![0xFF, 0x41]));
        assert!(sc.next_char().is_err());
    }

    #[test]
    fn rejects_truncated_utf8() {
        let mut sc = Scanner::new(Cursor::new(vec![0xC3])); // lone lead byte
        assert!(sc.next_char().is_err());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut sc = scan("xy");
        assert_eq!(sc.peek_byte().unwrap(), Some(b'x'));
        assert_eq!(sc.peek_at(1).unwrap(), Some(b'y'));
        assert_eq!(sc.peek_at(2).unwrap(), None);
        assert_eq!(sc.peek_char().unwrap(), Some('x'));
        assert_eq!(sc.next_char().unwrap(), Some('x'));
    }

    #[test]
    fn starts_with_and_consume() {
        let mut sc = scan("<!--rest");
        assert!(sc.starts_with(b"<!--").unwrap());
        assert!(!sc.starts_with(b"<!DOCTYPE").unwrap());
        sc.consume_ascii(b"<!--").unwrap();
        assert_eq!(sc.next_char().unwrap(), Some('r'));
    }

    #[test]
    fn ascii_run_stops_at_boundary() {
        let mut sc = scan("hello<world");
        let mut out = String::new();
        let n = sc.consume_ascii_run(|b| b != b'<', &mut out).unwrap();
        assert_eq!(n, 5);
        assert_eq!(out, "hello");
        assert_eq!(sc.peek_byte().unwrap(), Some(b'<'));
    }

    #[test]
    fn ascii_run_stops_at_non_ascii_and_cr() {
        let mut sc = scan("ab\récd");
        let mut out = String::new();
        sc.consume_ascii_run(|_| true, &mut out).unwrap();
        assert_eq!(out, "ab");
        assert_eq!(sc.next_char().unwrap(), Some('\n')); // normalized \r
        out.clear();
        sc.consume_ascii_run(|_| true, &mut out).unwrap();
        assert_eq!(out, ""); // é is non-ASCII
        assert_eq!(sc.next_char().unwrap(), Some('é'));
    }

    #[test]
    fn byte_class_masks_cr_and_non_ascii() {
        let class = ByteClass::new([true; 256]);
        assert!(class.contains(b'a') && class.contains(b'\n') && class.contains(0x7F));
        assert!(!class.contains(b'\r'));
        assert!(!class.contains(0x80) && !class.contains(0xFF));
    }

    #[test]
    fn class_run_accounts_position_in_bulk() {
        static ALL: ByteClass = ByteClass::new([true; 256]);
        let mut sc = scan("ab\ncd\né");
        let mut out = String::new();
        let n = sc.consume_class_run(&ALL, &mut out).unwrap();
        assert_eq!(n, 6);
        assert_eq!(out, "ab\ncd\n");
        assert_eq!(sc.position().line, 3);
        assert_eq!(sc.position().column, 1);
        assert_eq!(sc.offset(), 6);
        assert_eq!(sc.next_char().unwrap(), Some('é'));
    }

    #[test]
    fn class_run_spans_refills() {
        static ALPHA: ByteClass = ByteClass::new({
            let mut t = [false; 256];
            let mut b = 0usize;
            while b < 0x80 {
                t[b] = (b as u8).is_ascii_alphabetic();
                b += 1;
            }
            t
        });
        let text = format!("{}1rest", "xyz".repeat(40));
        let mut sc = Scanner::with_capacity(Cursor::new(text.into_bytes()), 16);
        let mut out = String::new();
        let n = sc.consume_class_run(&ALPHA, &mut out).unwrap();
        assert_eq!(n, 120);
        assert_eq!(out, "xyz".repeat(40));
        assert_eq!(sc.peek_byte().unwrap(), Some(b'1'));
    }

    #[test]
    fn works_across_tiny_buffer_refills() {
        let text = "abcdefghijklmnopqrstuvwxyz".repeat(8);
        let mut sc = Scanner::with_capacity(Cursor::new(text.clone().into_bytes()), 16);
        let mut got = String::new();
        while let Some(c) = sc.next_char().unwrap() {
            got.push(c);
        }
        assert_eq!(got, text);
    }

    #[test]
    fn lookahead_larger_than_window_grows() {
        let mut sc = Scanner::with_capacity(Cursor::new(b"0123456789abcdef0123".to_vec()), 16);
        assert_eq!(sc.peek_at(18).unwrap(), Some(b'2'));
        assert_eq!(sc.next_char().unwrap(), Some('0'));
    }

    #[test]
    fn wide_spec_decomposes_ranges() {
        // Alphanumerics + ':' '_' '-' '.' — the NAME_RUN shape.
        let class = ByteClass::new({
            let mut t = [false; 256];
            let mut b = 0usize;
            while b < 0x80 {
                let c = b as u8;
                t[b] = c.is_ascii_alphanumeric() || matches!(c, b':' | b'_' | b'-' | b'.');
                b += 1;
            }
            t
        });
        assert!(class.wide.ok);
        // '-' '.' merge into one range (0x2D..=0x2E); ':' rides on '0'..='9':
        // the class fits the 8-range budget, so `ok` held above.
        for b in 0u8..=0x7F {
            let member = class.contains(b);
            let word = u64::from_le_bytes([b; 8]);
            let stops = class.wide.stop_mask(word);
            assert_eq!(stops == 0, member, "byte {b:#x}");
        }
    }

    #[test]
    fn wide_spec_rejects_fragmented_class() {
        // Every other byte: 64 ranges, far past the 8-range budget.
        let class = ByteClass::new({
            let mut t = [false; 256];
            let mut b = 0usize;
            while b < 0x80 {
                t[b] = b.is_multiple_of(2);
                b += 1;
            }
            t
        });
        assert!(!class.wide.ok);
        // find_stop still works via the scalar fallback.
        assert_eq!(class.find_stop(b"\x00\x02\x04\x05", true), Some(3));
    }

    #[test]
    fn find_stop_wide_matches_scalar_on_all_boundaries() {
        static TEXTISH: ByteClass = ByteClass::new({
            let mut t = [false; 256];
            let mut b = 0usize;
            while b < 0x80 {
                let c = b as u8;
                t[b] = !matches!(c, b'<' | b'&' | b']' | b'>')
                    && (c >= 0x20 || c == b'\t' || c == b'\n');
                b += 1;
            }
            t
        });
        // Stop byte at every lane position of the 8-byte word, plus in the
        // scalar tail, plus high-bit and no-stop windows.
        for stop_at in 0..20usize {
            let mut window = vec![b'a'; 20];
            for &stop in &[b'<', b'&', b'\r', 0x80u8, 0x00] {
                window[stop_at] = stop;
                let wide = TEXTISH.find_stop(&window, true);
                let scalar = TEXTISH.find_stop(&window, false);
                assert_eq!(wide, scalar, "stop {stop:#x} at {stop_at}");
                assert_eq!(wide, Some(stop_at));
                window[stop_at] = b'a';
            }
        }
        assert_eq!(TEXTISH.find_stop(&[b'x'; 23], true), None);
        assert_eq!(TEXTISH.find_stop(&[], true), None);
    }

    #[test]
    fn wide_and_scalar_scan_agree_exhaustively() {
        // Pseudo-random windows over the full byte range, wide vs scalar.
        static TEXTISH: ByteClass = ByteClass::new({
            let mut t = [false; 256];
            let mut b = 0usize;
            while b < 0x80 {
                let c = b as u8;
                t[b] = !matches!(c, b'<' | b'&') && (c >= 0x20 || c == b'\t' || c == b'\n');
                b += 1;
            }
            t
        });
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for len in 0..64usize {
            let mut window = Vec::with_capacity(len);
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                window.push((state >> 56) as u8);
            }
            assert_eq!(
                TEXTISH.find_stop(&window, true),
                TEXTISH.find_stop(&window, false),
                "window {window:?}"
            );
        }
    }

    #[test]
    fn skip_class_run_consumes_without_output() {
        static WS: ByteClass = ByteClass::new({
            let mut t = [false; 256];
            t[b' ' as usize] = true;
            t[b'\t' as usize] = true;
            t[b'\n' as usize] = true;
            t
        });
        let mut sc = scan("  \n\t x");
        let n = sc.skip_class_run(&WS).unwrap();
        assert_eq!(n, 5);
        assert_eq!(sc.peek_byte().unwrap(), Some(b'x'));
        assert_eq!(sc.position().line, 2);
        assert_eq!(sc.position().column, 3);
    }

    #[test]
    fn scan_counts_split_wide_and_scalar() {
        static ALL: ByteClass = ByteClass::new([true; 256]);
        let text = "x".repeat(100);
        let mut sc = scan(&text);
        sc.skip_class_run(&ALL).unwrap();
        let (wide, scalar) = sc.scan_counts();
        assert_eq!(wide + scalar, 100);
        assert_eq!(scalar, 8, "first word is always probed scalar-wise");
        // With the wide scan disabled everything is scalar.
        let mut sc = scan(&text);
        sc.set_wide_scan(false);
        sc.skip_class_run(&ALL).unwrap();
        assert_eq!(sc.scan_counts(), (0, 100));
    }

    #[test]
    fn consume_class_run_with_borrows_slices() {
        static ALPHA: ByteClass = ByteClass::new({
            let mut t = [false; 256];
            let mut b = 0usize;
            while b < 0x80 {
                t[b] = (b as u8).is_ascii_alphabetic();
                b += 1;
            }
            t
        });
        let text = format!("{}9", "abcd".repeat(10));
        let mut sc = Scanner::with_capacity(Cursor::new(text.into_bytes()), 16);
        let mut collected = Vec::new();
        let n = sc.consume_class_run_with(&ALPHA, |run| collected.extend_from_slice(run)).unwrap();
        assert_eq!(n, 40);
        assert_eq!(collected, "abcd".repeat(10).into_bytes());
        assert_eq!(sc.peek_byte().unwrap(), Some(b'9'));
    }

    #[test]
    fn scalar_mode_matches_wide_mode_end_to_end() {
        static ALL: ByteClass = ByteClass::new([true; 256]);
        let text = format!("{}\n{}\x7f tail", "run ".repeat(50), "line".repeat(9));
        for wide in [true, false] {
            let mut sc = Scanner::with_capacity(Cursor::new(text.clone().into_bytes()), 32);
            sc.set_wide_scan(wide);
            let mut out = String::new();
            let n = sc.consume_class_run(&ALL, &mut out).unwrap();
            assert_eq!(n, text.len(), "wide={wide}");
            assert_eq!(out, text);
            assert_eq!(sc.position().line, 2);
        }
    }
}
