//! SAX event types produced by the pull reader.
//!
//! The event vocabulary mirrors what the ViteX paper's TwigM machine
//! consumes: `startElement` and `endElement` carry the element **level**
//! (depth; the root element is level 1), which is the quantity the machine's
//! stack entries store, plus byte spans for fragment identification.

use crate::name::QName;
use crate::pos::{ByteSpan, TextPosition};

/// A single attribute of a start tag, with its value fully normalized
/// (entities expanded, whitespace normalization applied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// The attribute name as written.
    pub name: QName,
    /// The normalized attribute value.
    pub value: String,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<QName>, value: impl Into<String>) -> Self {
        Attribute { name: name.into(), value: value.into() }
    }
}

/// A `startElement` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartElementEvent {
    /// The element name.
    pub name: QName,
    /// Attributes in document order.
    pub attributes: Vec<Attribute>,
    /// Depth of this element; the root element has level 1.
    pub level: u32,
    /// Byte span of the start tag itself (`<` through `>`).
    pub span: ByteSpan,
    /// Line/column of the `<`.
    pub position: TextPosition,
    /// Whether the tag was self-closing (`<a/>`); a matching
    /// [`XmlEvent::EndElement`] is still delivered so consumers see a
    /// uniform open/close discipline.
    pub self_closing: bool,
}

impl StartElementEvent {
    /// Looks up an attribute value by exact name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|a| a.name.as_str() == name).map(|a| a.value.as_str())
    }
}

/// An `endElement` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndElementEvent {
    /// The element name.
    pub name: QName,
    /// Depth of the element being closed (same value its start event had).
    pub level: u32,
    /// Byte span of the whole element, `<` of the start tag through `>` of
    /// the end tag — this is what identifies a result *fragment*.
    pub element_span: ByteSpan,
    /// Line/column of the end tag (for self-closing tags, of the start tag).
    pub position: TextPosition,
}

/// A run of character data.
///
/// With text coalescing enabled (the default), adjacent character data and
/// CDATA sections are merged into a single event, matching the XPath data
/// model in which text nodes are maximal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharactersEvent {
    /// The decoded text (entities expanded, line endings normalized).
    pub text: String,
    /// Depth of the *parent* element of this text node.
    pub level: u32,
    /// Byte span covering the raw source of the text run.
    pub span: ByteSpan,
    /// Line/column where the run began.
    pub position: TextPosition,
    /// True if the run consists entirely of XML whitespace.
    pub is_whitespace: bool,
}

/// A processing instruction `<?target data?>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessingInstructionEvent {
    /// The PI target.
    pub target: String,
    /// The PI data (possibly empty).
    pub data: String,
    /// Line/column of the `<?`.
    pub position: TextPosition,
}

/// One SAX event in the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// Emitted once, before any other event. Carries the declared version
    /// and encoding if an XML declaration was present.
    StartDocument {
        /// `version` pseudo-attribute of the XML declaration, if present.
        version: Option<String>,
        /// `encoding` pseudo-attribute of the XML declaration, if present.
        encoding: Option<String>,
    },
    /// An element opened.
    StartElement(StartElementEvent),
    /// An element closed.
    EndElement(EndElementEvent),
    /// Character data (text and/or CDATA).
    Characters(CharactersEvent),
    /// A comment (`<!-- ... -->`); content without the delimiters.
    Comment(String),
    /// A processing instruction.
    ProcessingInstruction(ProcessingInstructionEvent),
    /// A DOCTYPE declaration was seen (name only; the internal subset has
    /// been scanned for entity declarations).
    DoctypeDeclaration {
        /// The declared document-type name.
        name: String,
    },
    /// The document ended cleanly. Returned again on further calls.
    EndDocument,
}

impl XmlEvent {
    /// Short tag for diagnostics and tests.
    pub fn kind_name(&self) -> &'static str {
        match self {
            XmlEvent::StartDocument { .. } => "StartDocument",
            XmlEvent::StartElement(_) => "StartElement",
            XmlEvent::EndElement(_) => "EndElement",
            XmlEvent::Characters(_) => "Characters",
            XmlEvent::Comment(_) => "Comment",
            XmlEvent::ProcessingInstruction(_) => "ProcessingInstruction",
            XmlEvent::DoctypeDeclaration { .. } => "Doctype",
            XmlEvent::EndDocument => "EndDocument",
        }
    }

    /// Whether this is the terminal event.
    pub fn is_end_document(&self) -> bool {
        matches!(self, XmlEvent::EndDocument)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_lookup() {
        let e = StartElementEvent {
            name: "a".into(),
            attributes: vec![Attribute::new("id", "1"), Attribute::new("x", "2")],
            level: 1,
            span: ByteSpan::new(0, 10),
            position: TextPosition::START,
            self_closing: false,
        };
        assert_eq!(e.attribute("id"), Some("1"));
        assert_eq!(e.attribute("x"), Some("2"));
        assert_eq!(e.attribute("nope"), None);
    }

    #[test]
    fn kind_names() {
        assert_eq!(XmlEvent::EndDocument.kind_name(), "EndDocument");
        assert!(XmlEvent::EndDocument.is_end_document());
        assert_eq!(XmlEvent::Comment(String::new()).kind_name(), "Comment");
        assert!(!XmlEvent::Comment(String::new()).is_end_document());
    }
}
