//! Source-position tracking for the streaming parser.
//!
//! Every SAX event reports where in the byte stream it came from. ViteX uses
//! byte offsets as stable node identifiers (the paper subscripts nodes with
//! their line numbers — `table_5`, `cell_8` — for exactly this purpose), and
//! the offsets double as fragment boundaries when extracting query results
//! from a retained document.

use std::fmt;

/// A position inside the input stream.
///
/// `offset` counts bytes from the start of the stream (0-based); `line` and
/// `column` are 1-based and count Unicode scalar values, with lines split on
/// normalized `\n` (the scanner performs XML 1.0 §2.11 line-ending
/// normalization before counting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TextPosition {
    /// Byte offset from the start of the stream.
    pub offset: u64,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number in Unicode scalar values.
    pub column: u32,
}

impl TextPosition {
    /// The position of the very first byte.
    pub const START: TextPosition = TextPosition { offset: 0, line: 1, column: 1 };

    /// Creates a position from raw parts.
    pub fn new(offset: u64, line: u32, column: u32) -> Self {
        TextPosition { offset, line, column }
    }

    /// Advances the position over one decoded character occupying
    /// `byte_len` bytes in the stream.
    pub(crate) fn advance(&mut self, ch: char, byte_len: usize) {
        self.offset += byte_len as u64;
        if ch == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
    }

    /// Advances the position over a whole ASCII run (no `\r` — the
    /// scanner's byte classes exclude it) in bulk: one newline scan per
    /// run instead of a branch per byte. Equivalent to calling
    /// [`TextPosition::advance`] for each byte.
    ///
    /// Newlines are counted 8 bytes at a time with an exact SWAR zero-lane
    /// mask (`!((y7 + 0x7F·) | y) & 0x80·` where `y = x ^ '\n'·`): lane
    /// sums never exceed `0xFE`, so no carry crosses lanes and the mask
    /// has one bit per `\n`, with no false positives.
    pub(crate) fn advance_ascii_run(&mut self, run: &[u8]) {
        debug_assert!(run.is_ascii() && !run.contains(&b'\r'));
        const LANE_LO: u64 = 0x0101_0101_0101_0101;
        const LANE_HI: u64 = 0x8080_8080_8080_8080;
        self.offset += run.len() as u64;
        let mut newlines = 0u32;
        let mut last: Option<usize> = None;
        let mut i = 0usize;
        while i + 8 <= run.len() {
            let x = u64::from_le_bytes(run[i..i + 8].try_into().expect("8-byte chunk"));
            let y = x ^ (LANE_LO * b'\n' as u64);
            let m = !((y & !LANE_HI).wrapping_add(!LANE_HI) | y) & LANE_HI;
            if m != 0 {
                newlines += m.count_ones();
                last = Some(i + 7 - m.leading_zeros() as usize / 8);
            }
            i += 8;
        }
        for (j, &b) in run[i..].iter().enumerate() {
            if b == b'\n' {
                newlines += 1;
                last = Some(i + j);
            }
        }
        match last {
            None => self.column += run.len() as u32,
            Some(p) => {
                self.line += newlines;
                self.column = (run.len() - p) as u32;
            }
        }
    }
}

impl Default for TextPosition {
    fn default() -> Self {
        TextPosition::START
    }
}

impl fmt::Display for TextPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A half-open byte range `[start, end)` identifying an event or element in
/// the original stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ByteSpan {
    /// First byte of the construct.
    pub start: u64,
    /// One past the last byte of the construct.
    pub end: u64,
}

impl ByteSpan {
    /// Creates a span from raw offsets.
    pub fn new(start: u64, end: u64) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        ByteSpan { start, end }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `self` fully contains `other`.
    pub fn contains(&self, other: &ByteSpan) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Extracts the spanned bytes from a fully buffered document, if the
    /// span is in range.
    pub fn slice<'a>(&self, doc: &'a [u8]) -> Option<&'a [u8]> {
        let s = usize::try_from(self.start).ok()?;
        let e = usize::try_from(self.end).ok()?;
        doc.get(s..e)
    }
}

impl fmt::Display for ByteSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_tracks_lines_and_columns() {
        let mut p = TextPosition::START;
        p.advance('a', 1);
        assert_eq!((p.offset, p.line, p.column), (1, 1, 2));
        p.advance('\n', 1);
        assert_eq!((p.offset, p.line, p.column), (2, 2, 1));
        p.advance('é', 2); // two UTF-8 bytes, one column
        assert_eq!((p.offset, p.line, p.column), (4, 2, 2));
    }

    #[test]
    fn advance_ascii_run_matches_per_char_advance() {
        for run in [&b"abc"[..], b"a\nbc", b"\n\n", b"x\ny\nz", b""] {
            let mut bulk = TextPosition::new(5, 2, 3);
            let mut slow = bulk;
            bulk.advance_ascii_run(run);
            for &b in run {
                slow.advance(b as char, 1);
            }
            assert_eq!(bulk, slow, "run {run:?}");
        }
    }

    #[test]
    fn advance_ascii_run_wide_path_matches_per_char_advance() {
        // Runs long enough to exercise the 8-byte SWAR loop, with newlines
        // placed in every lane and in the scalar tail.
        for nl_at in 0..27usize {
            let mut run = vec![b'q'; 27];
            run[nl_at] = b'\n';
            if nl_at >= 3 {
                run[nl_at - 3] = b'\n'; // two newlines in mixed lanes
            }
            let mut bulk = TextPosition::new(11, 4, 9);
            let mut slow = bulk;
            bulk.advance_ascii_run(&run);
            for &b in &run {
                slow.advance(b as char, 1);
            }
            assert_eq!(bulk, slow, "newline at {nl_at}");
        }
        // All newlines, and no newlines, across lane-multiple lengths.
        for len in [8usize, 16, 24, 31] {
            for byte in [b'\n', b' '] {
                let run = vec![byte; len];
                let mut bulk = TextPosition::START;
                let mut slow = bulk;
                bulk.advance_ascii_run(&run);
                for &b in &run {
                    slow.advance(b as char, 1);
                }
                assert_eq!(bulk, slow, "len {len} byte {byte:?}");
            }
        }
    }

    #[test]
    fn display_is_line_colon_column() {
        let p = TextPosition::new(10, 3, 7);
        assert_eq!(p.to_string(), "3:7");
    }

    #[test]
    fn span_slice_and_contains() {
        let doc = b"<a><b/></a>";
        let outer = ByteSpan::new(0, 11);
        let inner = ByteSpan::new(3, 7);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert_eq!(inner.slice(doc).unwrap(), b"<b/>");
        assert_eq!(inner.len(), 4);
        assert!(!inner.is_empty());
        assert!(ByteSpan::new(5, 5).is_empty());
    }

    #[test]
    fn span_slice_out_of_range_is_none() {
        let doc = b"abc";
        assert!(ByteSpan::new(1, 9).slice(doc).is_none());
    }
}
