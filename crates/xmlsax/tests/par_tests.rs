//! Seam-boundary battery for the speculative chunked front-end.
//!
//! Every construct a chunk boundary can land inside — tags, attributes,
//! CDATA sections, comments, processing instructions, entity references —
//! is swept with a boundary at *every* byte offset, asserting the chunked
//! event stream (events, positions, levels, spans) and any terminal error
//! are identical to the sequential reader's. The inline tests in
//! `src/par.rs` cover the mechanism; this battery covers the seams.

use vitex_xmlsax::{ParallelConfig, ParallelReader, XmlEvent, XmlReader};

/// Runs `xml` chunked at every chunk size from 1 byte to the whole
/// document, at 2 and 4 threads, comparing against the sequential stream.
/// Errors are compared by display string (which embeds position + kind).
fn sweep_all_seams(xml: &str) {
    let expected = XmlReader::from_str(xml).collect_events();
    for threads in [2usize, 4] {
        for chunk in 1..=xml.len().max(1) {
            let cfg =
                ParallelConfig { threads, chunk_bytes: Some(chunk), ..ParallelConfig::default() };
            let par = ParallelReader::with_config(xml.as_bytes().to_vec(), cfg);
            let got = par.collect_events();
            match (&expected, &got) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a, b,
                    "event stream diverged: threads={threads} chunk={chunk} xml={xml:?}"
                ),
                (Err(a), Err(b)) => assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "error diverged: threads={threads} chunk={chunk} xml={xml:?}"
                ),
                (a, b) => panic!(
                    "outcome diverged: threads={threads} chunk={chunk} xml={xml:?}\n\
                     sequential: {a:?}\nchunked: {b:?}"
                ),
            }
        }
    }
}

#[test]
fn seam_inside_start_tag() {
    sweep_all_seams("<root><item attr=\"value\">text</item></root>");
}

#[test]
fn seam_inside_end_tag_and_self_closing() {
    sweep_all_seams("<root><empty/><a>x</a><empty2 /></root>");
}

#[test]
fn seam_inside_attribute_value() {
    sweep_all_seams(r#"<r a="one two three" b='single > quoted' c="with &amp; ref"/>"#);
}

#[test]
fn seam_inside_cdata() {
    sweep_all_seams("<r>before<![CDATA[ raw < & > markup-ish </r> ]]>after</r>");
}

#[test]
fn seam_inside_comment() {
    sweep_all_seams("<r><!-- a comment with <fake-tags/> and -- almost --><x/></r>");
}

#[test]
fn seam_inside_processing_instruction() {
    sweep_all_seams("<r><?target data with <angle> brackets?><x/></r>");
}

#[test]
fn seam_inside_entity_references() {
    sweep_all_seams("<r>&lt;a&gt; &amp; &quot;b&quot; &#65;&#x42;</r>");
}

#[test]
fn seam_inside_prolog_and_trailing_misc() {
    sweep_all_seams("<?xml version=\"1.0\"?><!--lead--><r><a/></r><!--tail-->");
}

#[test]
fn seam_with_multibyte_utf8_text() {
    sweep_all_seams("<r>héllo wörld — 日本語テキスト</r>");
}

#[test]
fn seam_with_newlines_positions_stay_absolute() {
    let xml = "<r>\n  <a>\n    line three\n  </a>\n  <b attr=\"v\"/>\n</r>\n";
    sweep_all_seams(xml);
    // Spot-check one rebased position: the <b> start tag sits on line 5.
    let cfg = ParallelConfig { threads: 2, chunk_bytes: Some(7), ..ParallelConfig::default() };
    let events =
        ParallelReader::with_config(xml.as_bytes().to_vec(), cfg).collect_events().unwrap();
    let b = events
        .iter()
        .find_map(|e| match e {
            XmlEvent::StartElement(s) if s.name.as_str() == "b" => Some(s.position),
            _ => None,
        })
        .expect("<b> parsed");
    assert_eq!((b.line, b.column), (5, 3));
}

#[test]
fn seam_errors_cross_chunk_mismatch_and_eof() {
    // Mismatch detected only at replay time (open/close in different chunks).
    sweep_all_seams("<root><a><b>text</b></wrong></root>");
    // Truncated input: EOF error position must match the sequential one.
    sweep_all_seams("<root><a>unterminated");
    sweep_all_seams("<root><a attr=\"unclosed");
}

#[test]
fn seam_second_root_and_text_outside_root() {
    sweep_all_seams("<a/><b/>");
    sweep_all_seams("<a/>stray text");
    sweep_all_seams("  <a>ok</a>  ");
}

#[test]
fn deep_nesting_across_many_chunks() {
    let depth = 40;
    let mut xml = String::new();
    for i in 0..depth {
        xml.push_str(&format!("<n{i}>"));
    }
    xml.push_str("leaf");
    for i in (0..depth).rev() {
        xml.push_str(&format!("</n{i}>"));
    }
    sweep_all_seams(&xml);
}

#[test]
fn doctype_takes_sequential_fallback_and_still_matches() {
    let xml = "<!DOCTYPE r [<!ENTITY who \"world\">]><r>hello &who;</r>";
    let expected = XmlReader::from_str(xml).collect_events().unwrap();
    let cfg = ParallelConfig { threads: 4, chunk_bytes: Some(3), ..ParallelConfig::default() };
    let par = ParallelReader::with_config(xml.as_bytes().to_vec(), cfg);
    assert!(par.stats().sequential_fallback, "DOCTYPE must force the sequential path");
    assert_eq!(par.collect_events().unwrap(), expected);
}

#[test]
fn mixed_everything_document() {
    sweep_all_seams(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <catalog>\n\
           <!-- inventory -->\n\
           <item id=\"a1\" price=\"3.50\">\n\
             <name>Widget &amp; Co</name>\n\
             <desc><![CDATA[raw <stuff> here]]></desc>\n\
             <?audit checked?>\n\
           </item>\n\
           <item id=\"a2\"><name>Gadget</name></item>\n\
         </catalog>",
    );
}
