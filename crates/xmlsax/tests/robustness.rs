//! Robustness: the parser must never panic, loop, or mis-account —
//! whatever bytes arrive. Mutated well-formed documents, truncations, and
//! raw random bytes all either parse or fail with a positioned error.

use proptest::prelude::*;

use vitex_xmlsax::{XmlEvent, XmlReader};

const BASE: &str = "<?xml version=\"1.0\"?>\
    <!DOCTYPE r [<!ENTITY e \"ok\">]>\
    <r a=\"1\" b='two'>\
    text &amp; &e; &#65;\
    <!--comment--><?pi data?>\
    <child><![CDATA[<raw>]]></child>\
    <deep><deep><deep>x</deep></deep></deep>\
    </r>";

/// Drives a parse to completion or error; returns whether it succeeded.
/// The point is that this returns at all (no panic, no hang).
fn survives(bytes: &[u8]) -> bool {
    let mut reader = XmlReader::from_slice(bytes);
    for _ in 0..100_000 {
        match reader.next_event() {
            Ok(XmlEvent::EndDocument) => return true,
            Ok(_) => {}
            Err(_) => return false,
        }
    }
    panic!("parser failed to terminate within 100k events on {} bytes", bytes.len());
}

#[test]
fn base_document_parses() {
    assert!(survives(BASE.as_bytes()));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Single-byte mutations of a well-formed document.
    #[test]
    fn byte_mutations_never_panic(pos in 0usize..BASE.len(), byte in 0u8..=255) {
        let mut bytes = BASE.as_bytes().to_vec();
        bytes[pos] = byte;
        survives(&bytes);
    }

    /// Truncations at every length.
    #[test]
    fn truncations_never_panic(len in 0usize..BASE.len()) {
        survives(&BASE.as_bytes()[..len]);
    }

    /// Random byte soup.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        survives(&bytes);
    }

    /// Random ASCII markup-ish soup (higher hit rate on parser branches).
    #[test]
    fn markup_soup_never_panics(s in "[<>&;!\\[\\]a-z\"'=/? -]{0,120}") {
        survives(s.as_bytes());
    }

    /// Byte insertions.
    #[test]
    fn insertions_never_panic(pos in 0usize..BASE.len(), byte in 0u8..=255) {
        let mut bytes = BASE.as_bytes().to_vec();
        bytes.insert(pos, byte);
        survives(&bytes);
    }
}

/// The engine on top must be equally unshakeable: a failing stream
/// surfaces as an error, never as a panic or inconsistent machine.
#[test]
fn engine_survives_mutations() {
    use vitex_xpath::query_tree::QueryTree;
    let tree = QueryTree::parse("//child").unwrap();
    for pos in (0..BASE.len()).step_by(7) {
        for byte in [b'<', b'>', b'&', 0, b'"'] {
            let mut bytes = BASE.as_bytes().to_vec();
            bytes[pos] = byte;
            let mut engine = vitex_core::Engine::new(&tree).unwrap();
            let _ = engine.run(XmlReader::from_slice(&bytes), |_| {});
        }
    }
}
