//! End-to-end tests for the pull reader: happy paths, every
//! well-formedness check, streaming behaviour, and failure injection.

use vitex_xmlsax::event::ProcessingInstructionEvent;
use vitex_xmlsax::reader::ReaderConfig;
use vitex_xmlsax::{XmlErrorKind, XmlEvent, XmlReader};

/// Collects all events, panicking on error.
fn events(xml: &str) -> Vec<XmlEvent> {
    XmlReader::from_str(xml).collect_events().unwrap()
}

/// Returns the parse error for a malformed document.
fn parse_err(xml: &str) -> vitex_xmlsax::XmlError {
    XmlReader::from_str(xml).collect_events().unwrap_err()
}

/// Compact event trace: `+name` open, `-name` close, `"text"`, etc.
fn trace(xml: &str) -> String {
    trace_with(xml, ReaderConfig::default())
}

fn trace_with(xml: &str, config: ReaderConfig) -> String {
    let reader = XmlReader::with_config(std::io::Cursor::new(xml.as_bytes()), config);
    let mut out = String::new();
    for ev in reader {
        match ev.unwrap() {
            XmlEvent::StartDocument { .. } => {}
            XmlEvent::StartElement(e) => {
                out.push('+');
                out.push_str(e.name.as_str());
                for a in &e.attributes {
                    out.push_str(&format!("[{}={}]", a.name, a.value));
                }
                out.push(' ');
            }
            XmlEvent::EndElement(e) => {
                out.push('-');
                out.push_str(e.name.as_str());
                out.push(' ');
            }
            XmlEvent::Characters(c) => {
                out.push_str(&format!("{:?} ", c.text));
            }
            XmlEvent::Comment(c) => out.push_str(&format!("#{c}# ")),
            XmlEvent::ProcessingInstruction(ProcessingInstructionEvent { target, .. }) => {
                out.push_str(&format!("?{target} "))
            }
            XmlEvent::DoctypeDeclaration { name } => out.push_str(&format!("!{name} ")),
            XmlEvent::EndDocument => out.push('$'),
        }
    }
    out
}

// ------------------------------------------------------------------ //
// Happy paths
// ------------------------------------------------------------------ //

#[test]
fn minimal_document() {
    assert_eq!(trace("<a/>"), "+a -a $");
}

#[test]
fn nested_elements_and_text() {
    assert_eq!(trace("<a><b>x</b><c>y</c></a>"), "+a +b \"x\" -b +c \"y\" -c -a $");
}

#[test]
fn attributes_in_document_order() {
    assert_eq!(trace(r#"<a x="1" y="2"/>"#), "+a[x=1][y=2] -a $");
}

#[test]
fn single_and_double_quoted_attributes() {
    assert_eq!(trace(r#"<a x='sq' y="dq"/>"#), "+a[x=sq][y=dq] -a $");
}

#[test]
fn xml_declaration_is_reported() {
    let evs = events("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
    match &evs[0] {
        XmlEvent::StartDocument { version, encoding } => {
            assert_eq!(version.as_deref(), Some("1.0"));
            assert_eq!(encoding.as_deref(), Some("UTF-8"));
        }
        other => panic!("expected StartDocument, got {other:?}"),
    }
}

#[test]
fn xml_declaration_with_standalone() {
    assert_eq!(trace("<?xml version=\"1.0\" standalone=\"yes\"?><a/>"), "+a -a $");
}

#[test]
fn bom_is_skipped() {
    let mut bytes = vec![0xEF, 0xBB, 0xBF];
    bytes.extend_from_slice(b"<a/>");
    let evs = XmlReader::from_bytes(bytes).collect_events().unwrap();
    assert!(matches!(evs[1], XmlEvent::StartElement(_)));
}

#[test]
fn levels_are_depths() {
    let evs = events("<a><b><c/></b></a>");
    let levels: Vec<u32> = evs
        .iter()
        .filter_map(|e| match e {
            XmlEvent::StartElement(s) => Some(s.level),
            _ => None,
        })
        .collect();
    assert_eq!(levels, [1, 2, 3]);
    let end_levels: Vec<u32> = evs
        .iter()
        .filter_map(|e| match e {
            XmlEvent::EndElement(s) => Some(s.level),
            _ => None,
        })
        .collect();
    assert_eq!(end_levels, [3, 2, 1]);
}

#[test]
fn element_spans_cover_whole_elements() {
    let xml = "<a><b>xy</b></a>";
    let evs = events(xml);
    for e in &evs {
        if let XmlEvent::EndElement(end) = e {
            let frag = end.element_span.slice(xml.as_bytes()).unwrap();
            match end.name.as_str() {
                "b" => assert_eq!(frag, b"<b>xy</b>"),
                "a" => assert_eq!(frag, xml.as_bytes()),
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn self_closing_gets_synthetic_end() {
    assert_eq!(trace("<a><b/></a>"), "+a +b -b -a $");
    let evs = events("<a/>");
    match (&evs[1], &evs[2]) {
        (XmlEvent::StartElement(s), XmlEvent::EndElement(e)) => {
            assert!(s.self_closing);
            assert_eq!(s.span, e.element_span);
        }
        other => panic!("unexpected events {other:?}"),
    }
}

#[test]
fn comments_and_pis() {
    assert_eq!(trace("<!--pre--><a><?go now?></a><!--post-->"), "#pre# +a ?go -a #post# $");
}

#[test]
fn whitespace_outside_root_is_ignored() {
    assert_eq!(trace("\n  <a/>\n  "), "+a -a $");
}

#[test]
fn crlf_outside_root_is_ignored() {
    assert_eq!(trace("<?xml version=\"1.0\"?>\r\n<a/>\r\n"), "+a -a $");
}

// ------------------------------------------------------------------ //
// Text handling
// ------------------------------------------------------------------ //

#[test]
fn entities_in_text() {
    assert_eq!(trace("<a>&lt;&amp;&gt;&apos;&quot;</a>"), "+a \"<&>'\\\"\" -a $");
}

#[test]
fn char_references() {
    assert_eq!(trace("<a>&#65;&#x42;</a>"), "+a \"AB\" -a $");
}

#[test]
fn cdata_is_text() {
    assert_eq!(trace("<a><![CDATA[<not&markup>]]></a>"), "+a \"<not&markup>\" -a $");
}

#[test]
fn adjacent_text_and_cdata_coalesce() {
    assert_eq!(trace("<a>x<![CDATA[y]]>z</a>"), "+a \"xyz\" -a $");
}

#[test]
fn coalescing_can_be_disabled() {
    let cfg = ReaderConfig { coalesce_text: false, ..Default::default() };
    assert_eq!(trace_with("<a>x<![CDATA[y]]>z</a>", cfg), "+a \"x\" \"y\" \"z\" -a $");
}

#[test]
fn comments_split_text_nodes() {
    // Matches the XPath data model: a comment terminates a text node.
    assert_eq!(trace("<a>x<!--c-->y</a>"), "+a \"x\" #c# \"y\" -a $");
}

#[test]
fn whitespace_text_is_reported_by_default() {
    assert_eq!(trace("<a> <b/> </a>"), "+a \" \" +b -b \" \" -a $");
}

#[test]
fn whitespace_text_can_be_skipped() {
    let cfg = ReaderConfig { skip_whitespace_text: true, ..Default::default() };
    assert_eq!(trace_with("<a> <b/> </a>", cfg), "+a +b -b -a $");
}

#[test]
fn whitespace_flag_is_set() {
    let evs = events("<a>\t\n <b/>x</a>");
    let flags: Vec<bool> = evs
        .iter()
        .filter_map(|e| match e {
            XmlEvent::Characters(c) => Some(c.is_whitespace),
            _ => None,
        })
        .collect();
    assert_eq!(flags, [true, false]);
}

#[test]
fn line_endings_are_normalized_in_text() {
    assert_eq!(trace("<a>x\r\ny\rz</a>"), "+a \"x\\ny\\nz\" -a $");
}

#[test]
fn attribute_values_normalize_whitespace() {
    assert_eq!(trace("<a x=\"p\tq\nr\"/>"), "+a[x=p q r] -a $");
}

#[test]
fn attribute_char_refs_survive_normalization() {
    // A character reference to tab must stay a tab (XML 1.0 §3.3.3).
    let evs = events("<a x=\"p&#9;q\"/>");
    if let XmlEvent::StartElement(e) = &evs[1] {
        assert_eq!(e.attribute("x"), Some("p\tq"));
    } else {
        panic!();
    }
}

#[test]
fn entities_in_attribute_values() {
    assert_eq!(trace("<a x=\"&lt;&amp;&gt;\"/>"), "+a[x=<&>] -a $");
}

#[test]
fn multibyte_text_round_trips() {
    assert_eq!(trace("<a>héllo 日本 😀</a>"), "+a \"héllo 日本 😀\" -a $");
}

#[test]
fn empty_cdata_produces_no_event() {
    assert_eq!(trace("<a><![CDATA[]]></a>"), "+a -a $");
}

#[test]
fn cdata_with_brackets() {
    assert_eq!(trace("<a><![CDATA[a]]b]]]></a>"), "+a \"a]]b]\" -a $");
}

// ------------------------------------------------------------------ //
// DOCTYPE and entities
// ------------------------------------------------------------------ //

#[test]
fn doctype_name_is_reported() {
    assert_eq!(trace("<!DOCTYPE book><book/>"), "!book +book -book $");
}

#[test]
fn doctype_with_system_id() {
    assert_eq!(trace("<!DOCTYPE a SYSTEM \"a.dtd\"><a/>"), "!a +a -a $");
}

#[test]
fn doctype_with_public_id() {
    assert_eq!(trace("<!DOCTYPE a PUBLIC \"-//X//DTD//EN\" \"a.dtd\"><a/>"), "!a +a -a $");
}

#[test]
fn internal_entities_expand_in_content() {
    let xml = "<!DOCTYPE a [<!ENTITY who \"world\">]><a>hello &who;</a>";
    assert_eq!(trace(xml), "!a +a \"hello world\" -a $");
}

#[test]
fn internal_entities_expand_in_attributes() {
    let xml = "<!DOCTYPE a [<!ENTITY v \"42\">]><a x=\"&v;!\"/>";
    assert_eq!(trace(xml), "!a +a[x=42!] -a $");
}

#[test]
fn nested_internal_entities() {
    let xml = "<!DOCTYPE a [<!ENTITY x \"1\"><!ENTITY y \"&x;&x;\">]><a>&y;</a>";
    assert_eq!(trace(xml), "!a +a \"11\" -a $");
}

#[test]
fn doctype_skips_element_and_attlist_decls() {
    let xml = "<!DOCTYPE a [\
        <!ELEMENT a (#PCDATA)>\
        <!ATTLIST a x CDATA \"d>e\">\
        <!ENTITY e \"ok\">\
    ]><a>&e;</a>";
    assert_eq!(trace(xml), "!a +a \"ok\" -a $");
}

#[test]
fn doctype_internal_comments_are_skipped() {
    let xml = "<!DOCTYPE a [<!--<!ENTITY fake \"x\">--><!ENTITY real \"y\">]><a>&real;</a>";
    assert_eq!(trace(xml), "!a +a \"y\" -a $");
}

#[test]
fn external_entity_reference_fails() {
    let xml = "<!DOCTYPE a [<!ENTITY xxe SYSTEM \"file:///etc/passwd\">]><a>&xxe;</a>";
    let e = parse_err(xml);
    assert!(matches!(e.kind(), XmlErrorKind::ExternalEntity { .. }));
}

#[test]
fn recursive_entity_fails() {
    let xml = "<!DOCTYPE a [<!ENTITY a \"&b;\"><!ENTITY b \"&a;\">]><a>&a;</a>";
    let e = parse_err(xml);
    assert!(matches!(e.kind(), XmlErrorKind::EntityExpansionLimit { .. }));
}

#[test]
fn billion_laughs_is_bounded() {
    let mut dtd = String::from("<!DOCTYPE a [<!ENTITY l0 \"lol\">");
    for i in 1..=12 {
        dtd.push_str(&format!("<!ENTITY l{i} \"{}\">", format!("&l{};", i - 1).repeat(10)));
    }
    dtd.push_str("]><a>&l12;</a>");
    let e = parse_err(&dtd);
    assert!(matches!(e.kind(), XmlErrorKind::EntityExpansionLimit { .. }));
}

// ------------------------------------------------------------------ //
// Well-formedness violations
// ------------------------------------------------------------------ //

#[test]
fn mismatched_tags() {
    assert!(matches!(parse_err("<a><b></a>").kind(), XmlErrorKind::MismatchedTag { .. }));
}

#[test]
fn unbalanced_end_tag() {
    // After the root closed, a stray end tag has nothing to match.
    assert!(matches!(parse_err("<a></a></b>").kind(), XmlErrorKind::UnbalancedEndTag { .. }));
    // Before any root element, likewise.
    assert!(matches!(parse_err("</a>").kind(), XmlErrorKind::UnbalancedEndTag { .. }));
}

#[test]
fn unexpected_eof_inside_element() {
    assert!(matches!(parse_err("<a><b>").kind(), XmlErrorKind::UnexpectedEof { .. }));
}

#[test]
fn unexpected_eof_inside_tag() {
    assert!(matches!(parse_err("<a x=").kind(), XmlErrorKind::UnexpectedEof { .. }));
}

#[test]
fn unexpected_eof_inside_comment() {
    assert!(matches!(parse_err("<a/><!-- oops").kind(), XmlErrorKind::UnexpectedEof { .. }));
}

#[test]
fn unexpected_eof_inside_cdata() {
    assert!(matches!(parse_err("<a><![CDATA[x").kind(), XmlErrorKind::UnexpectedEof { .. }));
}

#[test]
fn empty_input_has_no_root() {
    assert!(matches!(parse_err("").kind(), XmlErrorKind::NoRootElement));
    assert!(matches!(parse_err("  \n ").kind(), XmlErrorKind::NoRootElement));
    assert!(matches!(parse_err("<!--only comments-->").kind(), XmlErrorKind::NoRootElement));
}

#[test]
fn two_roots_rejected() {
    assert!(matches!(parse_err("<a/><b/>").kind(), XmlErrorKind::TrailingContent));
}

#[test]
fn text_outside_root_rejected() {
    assert!(matches!(parse_err("hello<a/>").kind(), XmlErrorKind::TextOutsideRoot));
    assert!(matches!(parse_err("<a/>bye").kind(), XmlErrorKind::TextOutsideRoot));
}

#[test]
fn duplicate_attributes_rejected() {
    assert!(matches!(
        parse_err("<a x=\"1\" x=\"2\"/>").kind(),
        XmlErrorKind::DuplicateAttribute { .. }
    ));
}

#[test]
fn invalid_names_rejected() {
    assert!(matches!(parse_err("<9a/>").kind(), XmlErrorKind::InvalidName { .. }));
    assert!(matches!(parse_err("<a 9x=\"1\"/>").kind(), XmlErrorKind::InvalidName { .. }));
}

#[test]
fn missing_attribute_equals_rejected() {
    assert!(parse_err("<a x\"1\"/>").to_string().contains("expected"));
}

#[test]
fn unquoted_attribute_rejected() {
    assert!(parse_err("<a x=1/>").to_string().contains("quoted"));
}

#[test]
fn lt_in_attribute_value_rejected() {
    assert!(parse_err("<a x=\"<\"/>").to_string().contains("not allowed"));
}

#[test]
fn missing_whitespace_between_attributes_rejected() {
    assert!(parse_err("<a x=\"1\"y=\"2\"/>").to_string().contains("whitespace"));
}

#[test]
fn double_hyphen_in_comment_rejected() {
    assert!(parse_err("<a><!-- x -- y --></a>").to_string().contains("--"));
}

#[test]
fn cdata_end_in_text_rejected() {
    assert!(parse_err("<a>x]]>y</a>").to_string().contains("]]>"));
}

#[test]
fn cdata_end_split_is_still_detected() {
    // ']]' then '>' arriving via separate slow-path characters.
    assert!(parse_err("<a>]]></a>").to_string().contains("]]>"));
}

#[test]
fn escaped_cdata_end_is_fine() {
    assert_eq!(trace("<a>x]]&gt;y</a>"), "+a \"x]]>y\" -a $");
}

#[test]
fn unknown_entity_rejected() {
    assert!(matches!(parse_err("<a>&nope;</a>").kind(), XmlErrorKind::UnknownEntity { .. }));
}

#[test]
fn bad_char_reference_rejected() {
    assert!(parse_err("<a>&#xZZ;</a>").to_string().contains("character reference"));
    assert!(matches!(parse_err("<a>&#0;</a>").kind(), XmlErrorKind::InvalidChar { .. }));
}

#[test]
fn reserved_pi_target_rejected() {
    assert!(parse_err("<a><?xml version=\"1.0\"?></a>").to_string().contains("reserved"));
}

#[test]
fn doctype_after_root_rejected() {
    assert!(parse_err("<a/><!DOCTYPE a>").to_string().contains("DOCTYPE"));
}

#[test]
fn second_doctype_rejected() {
    assert!(parse_err("<!DOCTYPE a><!DOCTYPE b><a/>").to_string().contains("multiple"));
}

#[test]
fn unsupported_encoding_rejected() {
    let e = parse_err("<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?><a/>");
    assert!(matches!(e.kind(), XmlErrorKind::UnsupportedEncoding { .. }));
}

#[test]
fn control_characters_rejected() {
    assert!(matches!(parse_err("<a>\u{1}</a>").kind(), XmlErrorKind::InvalidChar { .. }));
}

#[test]
fn depth_limit_enforced() {
    let cfg = ReaderConfig { max_depth: 4, ..Default::default() };
    let xml = "<a><a><a><a><a/></a></a></a></a>";
    let e = XmlReader::with_config(std::io::Cursor::new(xml.as_bytes()), cfg)
        .collect_events()
        .unwrap_err();
    assert!(matches!(e.kind(), XmlErrorKind::DepthLimit { max: 4 }));
}

#[test]
fn error_positions_are_accurate() {
    let e = parse_err("<a>\n  <b></c>\n</a>");
    assert_eq!(e.position().line, 2);
    // column of the `<` of `</c>`
    assert_eq!(e.position().column, 6);
}

// ------------------------------------------------------------------ //
// Streaming behaviour
// ------------------------------------------------------------------ //

/// A reader that returns bytes one at a time, to exercise every
/// refill boundary.
struct TrickleReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl std::io::Read for TrickleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() || buf.is_empty() {
            return Ok(0);
        }
        buf[0] = self.data[self.pos];
        self.pos += 1;
        Ok(1)
    }
}

#[test]
fn single_byte_reads_work() {
    let xml = "<?xml version=\"1.0\"?><root a=\"v\"><x>té&amp;xt</x><![CDATA[cd]]></root>";
    let trickle = TrickleReader { data: xml.as_bytes(), pos: 0 };
    let cfg = ReaderConfig { buffer_capacity: 16, ..Default::default() };
    let evs = XmlReader::with_config(trickle, cfg).collect_events().unwrap();
    let fast = XmlReader::from_str(xml).collect_events().unwrap();
    assert_eq!(evs, fast);
}

#[test]
fn io_errors_surface() {
    struct FailingReader;
    impl std::io::Read for FailingReader {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(std::io::ErrorKind::ConnectionReset, "stream died"))
        }
    }
    let e = XmlReader::new(FailingReader).collect_events().unwrap_err();
    assert!(e.is_io());
}

#[test]
fn end_document_repeats() {
    let mut r = XmlReader::from_str("<a/>");
    while !r.next_event().unwrap().is_end_document() {}
    assert!(r.next_event().unwrap().is_end_document());
    assert!(r.next_event().unwrap().is_end_document());
}

#[test]
fn iterator_stops_after_end() {
    let evs: Vec<_> = XmlReader::from_str("<a/>").collect();
    assert_eq!(evs.len(), 4); // StartDocument, Start, End, EndDocument
    assert!(evs.iter().all(|e| e.is_ok()));
}

#[test]
fn iterator_stops_after_error() {
    let evs: Vec<_> = XmlReader::from_str("<a><b></a>").collect();
    assert!(evs.last().unwrap().is_err());
    let errors = evs.iter().filter(|e| e.is_err()).count();
    assert_eq!(errors, 1);
}

#[test]
fn depth_tracks_open_elements() {
    let mut r = XmlReader::from_str("<a><b/></a>");
    assert_eq!(r.depth(), 0);
    r.next_event().unwrap(); // StartDocument
    r.next_event().unwrap(); // <a>
    assert_eq!(r.depth(), 1);
    r.next_event().unwrap(); // <b>
    assert_eq!(r.depth(), 2);
    r.next_event().unwrap(); // </b>
    assert_eq!(r.depth(), 1);
}

#[test]
fn paper_figure_1_document_parses() {
    // The sample data from Figure 1 of the ViteX paper (tags only; the
    // paper's `<cell> A </>` shorthand expanded to full end tags).
    let xml = "<book>\
        <section><section><section>\
        <table><table><table><cell>A</cell></table></table>\
        <position>B</position></table>\
        </section></section>\
        <author>C</author></section>\
        </book>";
    let evs = events(xml);
    let starts = evs.iter().filter(|e| matches!(e, XmlEvent::StartElement(_))).count();
    assert_eq!(starts, 10); // book, 3×section, 3×table, cell, position, author
}
