//! A small inline bitset for stack-entry match flags.
//!
//! A TwigM stack entry records, per predicate child of its query node,
//! whether a complete match of that child's subtree has been bookkept onto
//! it (the paper's "information about the match status of its children in
//! the query tree"). Queries almost never have more than 64 predicate
//! children on one node, so the set is a single `u64` inline, with a heap
//! spill only for pathological queries.

/// A fixed-universe bitset sized at machine-build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmallBitSet {
    /// Up to 64 bits inline.
    Inline(u64),
    /// More than 64 bits.
    Spilled(Box<[u64]>),
}

impl SmallBitSet {
    /// An empty set able to hold `universe` bits.
    pub fn empty(universe: usize) -> Self {
        if universe <= 64 {
            SmallBitSet::Inline(0)
        } else {
            SmallBitSet::Spilled(vec![0u64; universe.div_ceil(64)].into_boxed_slice())
        }
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        match self {
            SmallBitSet::Inline(w) => {
                debug_assert!(i < 64);
                *w |= 1 << i;
            }
            SmallBitSet::Spilled(ws) => ws[i / 64] |= 1 << (i % 64),
        }
    }

    /// Tests bit `i`.
    pub fn get(&self, i: usize) -> bool {
        match self {
            SmallBitSet::Inline(w) => {
                debug_assert!(i < 64);
                *w & (1 << i) != 0
            }
            SmallBitSet::Spilled(ws) => ws[i / 64] & (1 << (i % 64)) != 0,
        }
    }

    /// Whether the first `universe` bits are all set.
    pub fn all_set(&self, universe: usize) -> bool {
        match self {
            SmallBitSet::Inline(w) => {
                if universe == 0 {
                    true
                } else if universe == 64 {
                    *w == u64::MAX
                } else {
                    debug_assert!(universe < 64);
                    let mask = (1u64 << universe) - 1;
                    *w & mask == mask
                }
            }
            SmallBitSet::Spilled(ws) => {
                let full_words = universe / 64;
                if ws[..full_words].iter().any(|&w| w != u64::MAX) {
                    return false;
                }
                let rem = universe % 64;
                rem == 0 || ws[full_words] & ((1u64 << rem) - 1) == (1u64 << rem) - 1
            }
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> u32 {
        match self {
            SmallBitSet::Inline(w) => w.count_ones(),
            SmallBitSet::Spilled(ws) => ws.iter().map(|w| w.count_ones()).sum(),
        }
    }

    /// Approximate heap bytes used by this set (0 when inline).
    pub fn heap_bytes(&self) -> usize {
        match self {
            SmallBitSet::Inline(_) => 0,
            SmallBitSet::Spilled(ws) => ws.len() * 8,
        }
    }
}

/// A growable bitset over machine indices, used by the multi-query
/// dispatch index ([`crate::multi::MultiEngine`]): one word-packed set per
/// interned element name, iterated with bit-scanning so an event's cost is
/// proportional to the number of *interested* machines, not to the number
/// of registered queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynBitSet {
    words: Vec<u64>,
}

impl DynBitSet {
    /// An empty set (no capacity reserved).
    pub fn new() -> Self {
        DynBitSet::default()
    }

    /// Sets bit `i`, growing as needed.
    pub fn insert(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (i % 64);
    }

    /// Clears bit `i` (a no-op when it is not set). Supports the
    /// incremental unsubscribe path of the multi-query planner.
    pub fn remove(&mut self, i: usize) {
        if let Some(w) = self.words.get_mut(i / 64) {
            *w &= !(1 << (i % 64));
        }
    }

    /// Tests bit `i`.
    pub fn contains(&self, i: usize) -> bool {
        self.words.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Calls `f` with each set bit's index, ascending.
    pub fn for_each(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }

    /// Calls `f` with each index set in `self` **or** `other`, ascending.
    /// The union is formed word-by-word; nothing is allocated.
    pub fn union_for_each(&self, other: &DynBitSet, mut f: impl FnMut(usize)) {
        let longest = self.words.len().max(other.words.len());
        for wi in 0..longest {
            let mut w = self.words.get(wi).copied().unwrap_or(0)
                | other.words.get(wi).copied().unwrap_or(0);
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_set_get() {
        let mut s = SmallBitSet::empty(5);
        assert!(!s.get(0));
        assert!(!s.all_set(5));
        for i in 0..5 {
            s.set(i);
        }
        assert!(s.all_set(5));
        assert_eq!(s.count(), 5);
        assert!(matches!(s, SmallBitSet::Inline(_)));
        assert_eq!(s.heap_bytes(), 0);
    }

    #[test]
    fn zero_universe_is_trivially_complete() {
        let s = SmallBitSet::empty(0);
        assert!(s.all_set(0));
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn exactly_64_bits_inline() {
        let mut s = SmallBitSet::empty(64);
        assert!(matches!(s, SmallBitSet::Inline(_)));
        for i in 0..63 {
            s.set(i);
        }
        assert!(!s.all_set(64));
        s.set(63);
        assert!(s.all_set(64));
    }

    #[test]
    fn spilled_set_get() {
        let mut s = SmallBitSet::empty(130);
        assert!(matches!(s, SmallBitSet::Spilled(_)));
        assert!(s.heap_bytes() >= 24);
        s.set(0);
        s.set(64);
        s.set(129);
        assert!(s.get(0) && s.get(64) && s.get(129));
        assert!(!s.get(1) && !s.get(65) && !s.get(128));
        assert_eq!(s.count(), 3);
        assert!(!s.all_set(130));
        for i in 0..130 {
            s.set(i);
        }
        assert!(s.all_set(130));
    }

    #[test]
    fn dyn_bitset_insert_iterate() {
        let mut s = DynBitSet::new();
        assert!(s.is_empty());
        for i in [0usize, 3, 63, 64, 130] {
            s.insert(i);
        }
        assert!(s.contains(64) && !s.contains(65) && !s.contains(1000));
        assert_eq!(s.count(), 5);
        let mut got = Vec::new();
        s.for_each(|i| got.push(i));
        assert_eq!(got, [0, 3, 63, 64, 130]);
    }

    #[test]
    fn dyn_bitset_remove() {
        let mut s = DynBitSet::new();
        s.insert(3);
        s.insert(70);
        s.remove(3);
        s.remove(500); // out of range: no-op
        assert!(!s.contains(3));
        assert!(s.contains(70));
        assert_eq!(s.count(), 1);
        s.remove(70);
        assert!(s.is_empty());
    }

    #[test]
    fn dyn_bitset_union_iteration() {
        let mut a = DynBitSet::new();
        a.insert(1);
        a.insert(200);
        let mut b = DynBitSet::new();
        b.insert(1);
        b.insert(70);
        let mut got = Vec::new();
        a.union_for_each(&b, |i| got.push(i));
        assert_eq!(got, [1, 70, 200], "union, deduplicated, ascending");
        let mut got = Vec::new();
        b.union_for_each(&a, |i| got.push(i));
        assert_eq!(got, [1, 70, 200], "length mismatch handled both ways");
        let empty = DynBitSet::new();
        let mut got = Vec::new();
        empty.union_for_each(&a, |i| got.push(i));
        assert_eq!(got, [1, 200]);
    }

    #[test]
    fn partial_prefix_all_set() {
        // all_set checks only the first `universe` bits.
        let mut s = SmallBitSet::empty(3);
        s.set(0);
        s.set(1);
        s.set(2);
        assert!(s.all_set(3));
        assert!(s.all_set(2));
        assert!(!s.get(3));
    }
}
