//! Sharded parallel execution: plan groups partitioned across worker
//! threads, with a deterministic merge back into single-threaded order.
//!
//! TwigM machines are independent consumers of the same event stream, and
//! the planner already routes each event to disjoint plan groups — so the
//! groups are an embarrassingly partitionable unit of work. The
//! [`ShardedEngine`] exploits that: it wraps the multi-query engine,
//! splits the active plan groups round-robin across `N` worker threads,
//! broadcasts the driver's interned events over bounded rings
//! ([`worker::Ring`]), runs each shard's own dispatch index over its
//! subset, and k-way-merges the per-shard match streams by watermark
//! ([`merge::MatchMerger`]) into **exactly** the output — same matches,
//! same order, same statistics — the single-threaded engine produces.
//!
//! ## Sessions
//!
//! Worker threads are scoped to a [`ShardSession`], not to a single
//! document: [`ShardedEngine::session`] spawns the workers once, then
//! [`ShardSession::run_document`] streams any number of documents
//! back-to-back through the same registered query set without
//! re-planning — the document-collections workload, where keeping the
//! workers warm is what makes the threads pay. Registration churn
//! (`add_query` / `remove_query`) happens between sessions; the partition
//! is recomputed over the then-active groups each time a session opens,
//! so retired slots recycled by the planner's free-list migrate shards
//! naturally.
//!
//! ## Placement
//!
//! *Which* groups land on which worker is the [`place`] subsystem's
//! call: round-robin ([`Placement::RoundRobin`]) or cost-aware LPT
//! bin-packing over ledger-refined estimates ([`Placement::CostAware`],
//! the default), with mid-session repartitioning at document boundaries
//! when measured imbalance exceeds a hysteresis threshold. Groups live
//! in a [`worker::GroupPool`] between documents, and every document's
//! `DocStart` carries the assignment to run under — so a repartition is
//! just a new assignment version, adopted by the workers before the
//! next event flows.
//!
//! ## Determinism
//!
//! With `shards = 1` the engine *is* the single-threaded
//! [`MultiEngine::run`] path — bit for bit, no threads, no rings. With
//! `shards > 1` determinism is by construction: every match carries its
//! `(event seq, group id)` key, each shard's stream is emitted in key
//! order, and the merger releases a match only once every shard's
//! watermark has passed its event. The differential battery asserts
//! equality at several shard counts.

pub(crate) mod feed;
pub(crate) mod merge;
pub(crate) mod place;
pub(crate) mod worker;

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;

use vitex_xmlsax::event::{CharactersEvent, EndElementEvent, StartElementEvent};
use vitex_xmlsax::par::{ParStats, ParallelConfig, ParallelReader};
use vitex_xmlsax::probe::ProbeHandle;
use vitex_xmlsax::EventSource;
use vitex_xpath::query_tree::QueryTree;

use crate::driver::EventSink;
use crate::error::{EngineError, EngineResult};
use crate::intern::{Interner, Symbol};
use crate::multi::{DispatchMode, MultiEngine, MultiOutput};
use crate::plan::{PlanGroup, PlanMode, StepTrie, TriePush};
use crate::result::{Match, NodeId, QueryId};
use crate::stats::{MachineStats, PlanStats, StreamStats};

use merge::{MatchMerger, TaggedMatch};
use place::{Assignment, CostModel, ShardPlan};
pub use place::{Placement, PlacementSnapshot};
use worker::{run_worker, EventBatch, GroupPool, Ring, SeqBatch, ShardEvent, WorkerReport};

/// Events per broadcast batch: large enough to amortize ring locking and
/// `Arc<[_]>` allocation, small enough to keep delivery incremental.
const EVENT_BATCH: usize = 256;

/// Ring depth in batches — the backpressure bound per shard.
const RING_BATCHES: usize = 8;

/// A multi-query engine that executes plan groups on `N` worker threads.
///
/// The registration surface mirrors [`MultiEngine`] (it *is* one
/// underneath); only execution differs. See the module docs for the
/// architecture and [`ShardedEngine::session`] for streaming several
/// documents through warm workers.
pub struct ShardedEngine {
    multi: MultiEngine,
    shards: usize,
    /// Group→shard planning policy for sessions this engine opens.
    placement: Placement,
    /// Test-only fault injection: `(shard, seq)` — that shard's worker
    /// panics when it applies the event with that sequence number.
    fault: Option<(usize, u64)>,
    /// Test-only fault injection: that shard's worker panics while
    /// adopting a repartitioned assignment.
    swap_fault: Option<usize>,
}

impl ShardedEngine {
    /// An empty engine running `shards` workers (0 is clamped to 1), with
    /// indexed dispatch, plan sharing, and cost-aware placement.
    pub fn new(shards: usize) -> Self {
        ShardedEngine::with_options(shards, DispatchMode::Indexed, PlanMode::Shared)
    }

    /// An empty engine with explicit dispatch and plan modes; both apply
    /// within every shard exactly as they do single-threaded.
    pub fn with_options(shards: usize, dispatch: DispatchMode, plan: PlanMode) -> Self {
        ShardedEngine {
            multi: MultiEngine::with_options(dispatch, plan),
            shards: shards.max(1),
            placement: Placement::default(),
            fault: None,
            swap_fault: None,
        }
    }

    /// Selects the group→shard planning policy (see [`Placement`]).
    /// Takes effect when the next session opens; matches and statistics
    /// are placement-invariant by construction, so this only moves work
    /// between workers.
    pub fn set_placement(&mut self, placement: Placement) {
        self.placement = placement;
    }

    /// The configured placement policy.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Test-only fault injection: make shard `shard`'s worker panic when
    /// it applies the event with sequence number `seq` (in any later run
    /// or session, until [`Self::clear_worker_fault`]). Exercises the
    /// poison path from integration tests.
    #[doc(hidden)]
    pub fn inject_worker_fault(&mut self, shard: usize, seq: u64) {
        self.fault = Some((shard, seq));
    }

    /// Test-only fault injection: make shard `shard`'s worker panic while
    /// adopting a *repartitioned* assignment (the initial adoption at
    /// session open is exempt). Exercises the poison path in the swap
    /// window from integration tests.
    #[doc(hidden)]
    pub fn inject_swap_fault(&mut self, shard: usize) {
        self.swap_fault = Some(shard);
    }

    /// Clears faults installed by [`Self::inject_worker_fault`] /
    /// [`Self::inject_swap_fault`].
    #[doc(hidden)]
    pub fn clear_worker_fault(&mut self) {
        self.fault = None;
        self.swap_fault = None;
    }

    /// The configured worker count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The wrapped single-threaded engine, for registration-surface calls
    /// not mirrored here.
    pub fn engine(&self) -> &MultiEngine {
        &self.multi
    }

    /// Registers a query; returns its handle.
    pub fn add_query(&mut self, query: &str) -> EngineResult<QueryId> {
        self.multi.add_query(query)
    }

    /// Registers an already-built query tree.
    pub fn add_tree(&mut self, tree: &QueryTree) -> EngineResult<QueryId> {
        self.multi.add_tree(tree)
    }

    /// Unregisters a query (see [`MultiEngine::remove_query`]).
    pub fn remove_query(&mut self, id: QueryId) -> Option<bool> {
        self.multi.remove_query(id)
    }

    /// Active subscription count.
    pub fn len(&self) -> usize {
        self.multi.len()
    }

    /// Whether no subscription is active.
    pub fn is_empty(&self) -> bool {
        self.multi.is_empty()
    }

    /// Active plan-group (machine) count.
    pub fn group_count(&self) -> usize {
        self.multi.group_count()
    }

    /// Plan-level statistics for the current subscription set.
    pub fn plan_stats(&self) -> PlanStats {
        self.multi.plan_stats()
    }

    /// Attaches a telemetry handle. Beyond the single-threaded counters,
    /// sharded runs record ring occupancy/stalls, worker busy/idle time,
    /// per-batch shard spans, and merge hold/release statistics.
    pub fn set_telemetry(&mut self, telemetry: crate::telemetry::Telemetry) {
        self.multi.set_telemetry(telemetry);
    }

    /// Enables (or disables) per-subscription cost attribution (see
    /// [`MultiEngine::set_profiling`]). Sharded runs additionally
    /// attribute sampled worker self-time, shared trie steps billed on
    /// the document thread, and merge hold latency to each plan group.
    pub fn set_profiling(&mut self, on: bool) {
        self.multi.set_profiling(on);
    }

    /// Snapshot of the cost ledger — deterministic per-query counters
    /// plus per-group diagnostics (self-time, shared steps, merge holds).
    /// `None` when profiling is disabled.
    pub fn group_costs(&self) -> Option<crate::telemetry::ProfileSnapshot> {
        self.multi.profile_snapshot()
    }

    /// The live cost-ledger handle (see [`MultiEngine::cost_ledger`]).
    pub fn cost_ledger(&self) -> crate::telemetry::CostLedger {
        self.multi.cost_ledger()
    }

    /// Streams one document; a one-document [`ShardedEngine::session`].
    /// With one shard this *is* [`MultiEngine::run`].
    pub fn run<E: EventSource, F: FnMut(QueryId, Match)>(
        &mut self,
        reader: E,
        on_match: F,
    ) -> EngineResult<MultiOutput> {
        if self.shards == 1 {
            return self.multi.run(reader, on_match);
        }
        self.session(|session| session.run_document(reader, on_match))
    }

    /// Streams one buffered document through the **overlapped** front-end:
    /// speculative parse workers ([`ParallelReader`]) feed the
    /// coordinator's admission walk, which hands verified event windows to
    /// a pool of producer threads that publish them into the shard rings
    /// while the parse is still running — parse and match overlap instead
    /// of pipelining through a single producer. Output (matches, callback
    /// order, statistics) is byte-identical to [`ShardedEngine::run`] over
    /// the same bytes; the returned [`ParStats`] describe the speculative
    /// parse. With one shard — or when the parse falls back to sequential
    /// — this degrades gracefully to the pipelined path.
    pub fn run_overlapped<F: FnMut(QueryId, Match)>(
        &mut self,
        bytes: Vec<u8>,
        config: ParallelConfig,
        on_match: F,
    ) -> EngineResult<(MultiOutput, ParStats)> {
        self.session(|session| session.run_document_overlapped(bytes, config, on_match))
    }

    /// Opens a streaming session: spawns the worker threads, partitions
    /// the active plan groups across them, hands `f` a [`ShardSession`]
    /// to stream documents through, and tears the workers down when `f`
    /// returns. The subscription set is frozen for the session (the
    /// borrow checker enforces it — the session mutably borrows the
    /// engine), so documents stream back-to-back with zero re-planning,
    /// re-partitioning or thread churn between them.
    pub fn session<T>(
        &mut self,
        f: impl FnOnce(&mut ShardSession<'_>) -> EngineResult<T>,
    ) -> EngineResult<T> {
        if self.shards == 1 {
            // Inline: same API, no threads, bit-for-bit the single-threaded
            // engine.
            return f(&mut ShardSession { inner: SessionInner::Inline(&mut self.multi) });
        }
        let placement = self.placement;
        let injected_fault = self.fault;
        let injected_swap_fault = self.swap_fault;
        let parts = self.multi.shard_parts();
        let plan = parts.planner.stats(parts.interner);
        // Group-resident bytes are re-read from the workers after each
        // document (stack capacity grows with the stream); everything else
        // in the plan is frozen for the session. `plan_overhead` is the
        // non-group remainder (trie, interner).
        let plan_overhead = plan.plan_bytes
            - parts
                .planner
                .groups()
                .iter()
                .filter(|g| g.is_active())
                .map(|g| g.approx_bytes())
                .sum::<u64>();
        let nsymbols = parts.interner.len();
        let record_groups: Vec<Option<usize>> = parts.records.iter().map(|r| r.group).collect();
        let subscribers: Vec<Vec<QueryId>> =
            parts.planner.groups().iter().map(|g| g.subscribers().to_vec()).collect();
        let group_slots = subscribers.len();

        // Cost attribution: the ledger folds on the document thread at
        // end of document, exactly like the single-threaded fold site, so
        // the per-query counters cannot depend on the shard count. The
        // query texts and group canonical keys are snapshotted up front
        // (the plan is frozen for the session); both stay empty when
        // profiling is off.
        let profile = parts.profile.clone();
        let profiled = profile.is_enabled();
        let record_texts: Vec<String> = if profiled {
            parts.records.iter().map(|r| r.text.clone()).collect()
        } else {
            Vec::new()
        };
        let group_canonicals: Vec<Option<String>> = if profiled {
            parts
                .planner
                .groups()
                .iter()
                .map(|g| g.is_active().then(|| g.canonical_key().to_string()))
                .collect()
        } else {
            Vec::new()
        };

        // Partition the active groups. Surplus workers would own zero
        // machines yet still pop and acknowledge every batch, so the
        // worker count is clamped to the active group count (a session
        // always runs at least one worker — stream statistics must flow
        // even with no subscriptions). Clamping happens *here*, against
        // the post-churn active set, so removals between sessions shrink
        // the worker pool rather than leave idle acknowledgers.
        let active_gids: Vec<usize> = parts
            .planner
            .groups()
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_active())
            .map(|(gid, _)| gid)
            .collect();
        let nshards = self.shards.min(active_gids.len()).max(1);

        // Cost estimates for placement planning: uniform prior — which
        // makes the first LPT plan coincide with round-robin — optionally
        // seeded from the live cost ledger. Seeding is guarded by each
        // group's canonical step key: the planner's free-list recycles
        // retired gids, and a recycled slot must not inherit the retired
        // query's bill.
        let mut cost = CostModel::uniform(group_slots);
        if placement == Placement::CostAware {
            if let Some(snapshot) = parts.profile.snapshot() {
                cost.seed_from_ledger(&snapshot, &group_canonicals);
            }
        }
        let initial_plan = match placement {
            Placement::RoundRobin => place::round_robin_plan(&active_gids, nshards),
            Placement::CostAware => place::lpt_plan(&active_gids, &cost, nshards),
        };

        // Prefix-shared execution: the document thread advances the
        // *global* plan trie once per event and ships the push decisions;
        // each worker only needs a map from trie node to the main-path
        // machine nodes of its own group subset. Walking the trie on the
        // document thread (rather than per shard) is what keeps the
        // prefix counters — and therefore the plan statistics — identical
        // at every shard count. The per-group trie paths are snapshotted
        // here (gid-indexed) so repartitioning can rebuild the per-shard
        // maps without touching the trie again.
        let prefix_mode = parts.planner.mode() == PlanMode::PrefixShared;
        let mut prefix_paths: Vec<Vec<(u32, u32)>> = Vec::new();
        if prefix_mode {
            prefix_paths.resize_with(group_slots, Vec::new);
            let trie = parts.planner.trie();
            for &gid in &active_gids {
                let group = parts.planner.group(gid);
                prefix_paths[gid] = trie
                    .path_of(group.trie_node())
                    .iter()
                    .zip(group.main_nodes())
                    .map(|(&node, &mnode)| (node, mnode))
                    .collect();
            }
        }
        let assignment = Arc::new(place::make_assignment(0, &initial_plan, &prefix_paths));

        let (trie, group_slice) = parts.planner.run_split();
        let trie = prefix_mode.then_some(trie);
        let mut active_groups: Vec<(usize, &mut PlanGroup)> = Vec::new();
        for (gid, group) in group_slice.iter_mut().enumerate() {
            if group.is_active() {
                active_groups.push((gid, group));
            }
        }
        // All active groups start in the pool; workers check theirs out
        // per document under whatever assignment that document carries.
        let pool = GroupPool::new(active_groups, group_slots);

        let use_index = parts.mode == DispatchMode::Indexed;
        // In indexed mode the engine's global index doubles as a broadcast
        // filter: an event no group is interested in is not even built,
        // let alone shipped (every shard's own index would drop it). Scan
        // mode pokes every machine, so everything ships.
        let filter = use_index.then_some(parts.index);
        let telemetry = parts.driver.telemetry();
        let rings: Vec<Arc<Ring<SeqBatch>>> = (0..nshards)
            .map(|_| Arc::new(Ring::with_telemetry(RING_BATCHES, telemetry.clone())))
            .collect();
        let (tx, rx): (Sender<WorkerReport>, Receiver<WorkerReport>) = channel();
        thread::scope(|scope| {
            let pool = &pool;
            for (shard, shard_ring) in rings.iter().enumerate() {
                let ring = Arc::clone(shard_ring);
                let tx = tx.clone();
                let fault =
                    injected_fault.and_then(|(s, seq)| if s == shard { Some(seq) } else { None });
                let swap_fault = injected_swap_fault == Some(shard);
                scope.spawn(move || {
                    run_worker(
                        shard,
                        pool,
                        use_index,
                        nsymbols,
                        prefix_mode,
                        fault,
                        swap_fault,
                        profiled,
                        ring,
                        tx,
                    )
                });
            }
            drop(tx);
            // Rings must close even if `f` (or output assembly) panics:
            // the scope joins the workers on unwind, and a worker blocked
            // in `Ring::pop` would never exit.
            let _close_on_exit = CloseRings(&rings);
            let mut session = ShardSession {
                inner: SessionInner::Threaded(Box::new(ThreadedSession {
                    driver: parts.driver,
                    interner: parts.interner,
                    filter,
                    trie,
                    rings: &rings,
                    rx: &rx,
                    subscribers,
                    record_groups,
                    group_slots,
                    nshards,
                    plan,
                    plan_overhead,
                    profile,
                    record_texts,
                    group_canonicals,
                    shared_scratch: Vec::new(),
                    poisoned: None,
                    placement,
                    cost,
                    active_gids,
                    assignment,
                    prefix_paths,
                    repartitions: 0,
                    last_imbalance: None,
                })),
            };
            f(&mut session)
        })
    }
}

/// The clean error a poisoned session surfaces — and keeps surfacing on
/// every subsequent document (the dead worker cannot be respawned
/// mid-session; open a new session to recover).
fn poison_error(shard: usize) -> EngineError {
    EngineError::Worker(if shard == usize::MAX {
        "shard workers terminated unexpectedly; session poisoned".to_string()
    } else {
        format!("shard worker {shard} panicked mid-document; session poisoned")
    })
}

/// Closes every ring on drop — the session's worker-release guard, run on
/// both the normal and the unwinding exit path.
struct CloseRings<'a>(&'a [Arc<Ring<SeqBatch>>]);

impl Drop for CloseRings<'_> {
    fn drop(&mut self) {
        for ring in self.0 {
            ring.close();
        }
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards)
            .field("queries", &self.multi.len())
            .field("groups", &self.multi.group_count())
            .finish()
    }
}

/// A live sharded session: worker threads are up, the plan is frozen, and
/// any number of documents can stream through. Obtained from
/// [`ShardedEngine::session`].
pub struct ShardSession<'a> {
    inner: SessionInner<'a>,
}

enum SessionInner<'a> {
    /// One shard: delegate to the single-threaded engine.
    Inline(&'a mut MultiEngine),
    /// Worker threads are running (boxed: the threaded state is large).
    Threaded(Box<ThreadedSession<'a>>),
}

impl ShardSession<'_> {
    /// Streams one document through the session's workers and returns the
    /// same [`MultiOutput`] — matches, per-query statistics, plan and
    /// stream counters, all in the same order — that
    /// [`MultiEngine::run`] produces for this subscription set.
    /// `on_match` fires on the calling thread, in single-threaded
    /// emission order, while the document is still streaming (held back
    /// only by the merge watermarks).
    pub fn run_document<E: EventSource, F: FnMut(QueryId, Match)>(
        &mut self,
        reader: E,
        on_match: F,
    ) -> EngineResult<MultiOutput> {
        match &mut self.inner {
            SessionInner::Inline(multi) => multi.run(reader, on_match),
            SessionInner::Threaded(t) => t.run_document(reader, on_match),
        }
    }

    /// Streams one owned document through the overlapped front-end:
    /// parse workers deliver chunk event batches which the coordinator
    /// admits (numbering, interning, trie sequencing) and hands to
    /// publisher threads that feed the shard rings directly — parsing,
    /// admission, publication, and matching all overlap. Output is
    /// byte-identical to [`ShardSession::run_document`] over the same
    /// bytes; the parallel-parse statistics ride along.
    pub fn run_document_overlapped<F: FnMut(QueryId, Match)>(
        &mut self,
        bytes: Vec<u8>,
        config: ParallelConfig,
        on_match: F,
    ) -> EngineResult<(MultiOutput, ParStats)> {
        match &mut self.inner {
            SessionInner::Inline(multi) => {
                // One shard: nothing to overlap with — run the parallel
                // reader straight into the single-threaded engine.
                let telemetry = multi.telemetry();
                let probe =
                    telemetry.is_enabled().then(|| Arc::new(telemetry.clone()) as ProbeHandle);
                let mut reader = ParallelReader::with_config_probe(bytes, config, probe);
                let out = multi.run(&mut reader, on_match)?;
                let stats = reader.stats();
                telemetry.fold_par(&stats);
                Ok((out, stats))
            }
            SessionInner::Threaded(t) => feed::run_document_overlapped(t, bytes, config, on_match),
        }
    }

    /// The session's current placement state: policy, effective worker
    /// count, the group→shard map the *next* document will run under,
    /// repartitions so far, and the last measured imbalance. Inline
    /// (one-shard) sessions report a trivial snapshot — one shard, no
    /// per-group map, nothing to repartition.
    pub fn placement_snapshot(&self) -> PlacementSnapshot {
        match &self.inner {
            SessionInner::Inline(_) => PlacementSnapshot {
                placement: Placement::RoundRobin,
                shards: 1,
                shard_of: Vec::new(),
                repartitions: 0,
                last_imbalance_millis: None,
            },
            SessionInner::Threaded(t) => t.placement_snapshot(),
        }
    }
}

/// Session state for the `shards > 1` path.
struct ThreadedSession<'a> {
    driver: &'a mut crate::driver::DocumentDriver,
    interner: &'a Interner,
    /// `Some` in indexed mode: the engine's global dispatch index, used
    /// to skip broadcasting events with no interested group anywhere.
    filter: Option<&'a crate::multi::DispatchIndex>,
    /// `Some` under prefix sharing: the global plan trie, advanced once
    /// per event on the document thread (push decisions ship with the
    /// events; the run counters feed the plan statistics).
    trie: Option<&'a mut StepTrie>,
    rings: &'a [Arc<Ring<SeqBatch>>],
    rx: &'a Receiver<WorkerReport>,
    /// Subscriber snapshot per group slot (frozen for the session).
    subscribers: Vec<Vec<QueryId>>,
    /// Plan group per registration record (`None` = removed).
    record_groups: Vec<Option<usize>>,
    group_slots: usize,
    nshards: usize,
    /// Plan statistics snapshot (the plan cannot change mid-session);
    /// `plan_bytes` is refreshed per document from worker snapshots.
    plan: PlanStats,
    /// The non-group share of `plan.plan_bytes` (trie, interner).
    plan_overhead: u64,
    /// Cost ledger handle: disabled (inert) unless profiling is on.
    profile: crate::telemetry::CostLedger,
    /// Query text per registration record (empty unless profiling).
    record_texts: Vec<String>,
    /// Canonical step key per group slot, `None` for inactive slots
    /// (empty unless profiling).
    group_canonicals: Vec<Option<String>>,
    /// Per-group shared trie-step billing scratch for the document
    /// thread's trie walk (sized per document while profiling).
    shared_scratch: Vec<u64>,
    /// `Some(shard)` once a worker died mid-document: the session is
    /// poisoned and every subsequent document fails fast (`usize::MAX`
    /// when the failing shard is unknown — the report channel died).
    poisoned: Option<usize>,
    /// The session's placement policy (frozen at open, like the plan).
    placement: Placement,
    /// Per-group cost estimates, refined from every document's measured
    /// work; drives LPT replanning under cost-aware placement.
    cost: CostModel,
    /// The active group ids this session partitions (ascending).
    active_gids: Vec<usize>,
    /// The assignment the *next* document will run under; shipped inside
    /// its `DocStart` and swapped by [`ThreadedSession::after_document`]
    /// when a repartition fires.
    assignment: Arc<Assignment>,
    /// Per-group `(trie node, machine node)` paths (gid-indexed; empty
    /// unless prefix sharing) for rebuilding per-shard prefix maps when
    /// replanning.
    prefix_paths: Vec<Vec<(u32, u32)>>,
    /// Repartitions performed this session.
    repartitions: u64,
    /// Measured imbalance (millis) of the most recent document.
    last_imbalance: Option<u64>,
}

impl ThreadedSession<'_> {
    fn run_document<E: EventSource, F: FnMut(QueryId, Match)>(
        &mut self,
        reader: E,
        mut on_match: F,
    ) -> EngineResult<MultiOutput> {
        if let Some(shard) = self.poisoned {
            return Err(poison_error(shard));
        }
        let telemetry = self.driver.telemetry();
        let mut matches: Vec<Vec<Match>> = self.record_groups.iter().map(|_| Vec::new()).collect();
        let mut merger =
            MatchMerger::with_profile(self.nshards, telemetry.clone(), self.profile.is_enabled());
        let mut group_stats: Vec<MachineStats> = vec![MachineStats::default(); self.group_slots];
        self.shared_scratch.clear();
        if self.profile.is_enabled() {
            self.shared_scratch.resize(self.group_slots, 0);
        }
        let mut group_bytes = 0u64;
        let mut done = 0usize;
        if let Some(trie) = &mut self.trie {
            trie.begin_document();
        }
        let stream = {
            let mut pump = DocPump {
                interner: self.interner,
                filter: self.filter,
                telemetry: &telemetry,
                trie: self.trie.as_deref_mut(),
                rings: self.rings,
                rx: self.rx,
                merger: &mut merger,
                subscribers: &self.subscribers,
                matches: &mut matches,
                on_match: &mut on_match,
                group_stats: &mut group_stats,
                group_bytes: &mut group_bytes,
                done: &mut done,
                poisoned: &mut self.poisoned,
                profile: &self.profile,
                shared_steps: &mut self.shared_scratch,
                seq: 0,
                after: 0,
                open_names: Vec::new(),
                pushed: Vec::new(),
                trie_open: Vec::new(),
                trie_frames: Vec::new(),
                empty_pushes: Vec::new().into(),
                batch: Vec::with_capacity(EVENT_BATCH),
                ended: false,
            };
            pump.batch.push(ShardEvent::DocStart { assignment: Arc::clone(&self.assignment) });
            let stream = self.driver.run(reader, &mut pump);
            // On a parse error the driver never reached `document_end`;
            // close the document on the worker side anyway so the workers
            // quiesce and the session stays usable for the next document.
            if !pump.ended {
                pump.finish_document();
            }
            // Block until every shard has acknowledged DocEnd, delivering
            // merged matches as they become safe.
            while *pump.done < self.nshards && pump.poisoned.is_none() {
                match recv_report(self.rx) {
                    Some(report) => pump.ingest(report),
                    None => {
                        // Every worker hung up without a final report: a
                        // panic escaped containment. Close the rings and
                        // poison the session with an unknown shard.
                        for ring in self.rings {
                            ring.close();
                        }
                        *pump.poisoned = Some(usize::MAX);
                    }
                }
            }
            debug_assert!(
                pump.poisoned.is_some() || pump.merger.is_drained(),
                "all shards reported through the final event"
            );
            stream
        };
        if let Some(shard) = self.poisoned {
            return Err(poison_error(shard));
        }
        let stream: StreamStats = stream?;
        let stats: Vec<MachineStats> = self
            .record_groups
            .iter()
            .map(|g| match g {
                Some(gid) => group_stats[*gid].clone(),
                None => MachineStats::default(),
            })
            .collect();
        // Refresh the per-run halves of the plan snapshot: group-resident
        // bytes from the worker acknowledgements, prefix counters from
        // the document thread's trie run.
        let mut plan = PlanStats { plan_bytes: self.plan_overhead + group_bytes, ..self.plan };
        if let Some(trie) = &self.trie {
            let run = trie.run_stats();
            plan.prefix_steps_executed = run.steps_executed;
            plan.prefix_steps_saved = run.steps_saved;
            plan.prefix_forks = run.forks;
            plan.prefix_stack_bytes = run.peak_stack_bytes();
        }
        if telemetry.is_enabled() {
            // Mirror MultiEngine::run's deterministic folds so the
            // counters cannot depend on the shard count: per subscription,
            // plus the plan snapshot and the total match count.
            for s in &stats {
                telemetry.fold_machine(s);
            }
            telemetry.fold_plan(&plan);
            telemetry.add_matches(matches.iter().map(|m| m.len() as u64).sum());
        }
        if self.profile.is_enabled() {
            self.profile.add_doc();
            // Identical fold discipline to `MultiEngine::run`: one fold
            // per subscription from the per-record stats, so the ledger's
            // deterministic section is invariant across shard counts.
            for (i, g) in self.record_groups.iter().enumerate() {
                self.profile.fold_query(
                    QueryId(i),
                    &self.record_texts[i],
                    *g,
                    &stats[i],
                    &matches[i],
                );
            }
            for (gid, canonical) in self.group_canonicals.iter().enumerate() {
                if let Some(canonical) = canonical {
                    self.profile.fold_group(
                        gid,
                        canonical,
                        self.subscribers[gid].len() as u64,
                        &group_stats[gid],
                    );
                }
            }
            if self.shared_scratch.iter().any(|&n| n > 0) {
                self.profile.add_shared_steps(&self.shared_scratch);
            }
            for (gid, deliveries, ns) in merger.take_holds() {
                self.profile.add_hold(gid as usize, deliveries, ns);
            }
        }
        self.after_document(&group_stats, &telemetry);
        Ok(MultiOutput {
            matches,
            stats,
            plan,
            elements: stream.elements,
            text_nodes: stream.text_nodes,
            events: stream.events,
        })
    }

    /// Post-document placement bookkeeping, shared by both front-ends:
    /// measure per-shard loads under the assignment the document just ran
    /// with (from the deterministic machine work counters, so the
    /// decision stream is identical at every dispatch/front-end
    /// configuration), refine the cost estimates, export the imbalance
    /// gauge, and — under cost-aware placement, past the hysteresis
    /// threshold — swap in a rebalanced assignment for the next document.
    /// Swapping here is what keeps repartitioning output-transparent: the
    /// new assignment travels inside the next `DocStart`, workers adopt
    /// it before any event of that document flows, and the watermark
    /// merge never notices.
    pub(super) fn after_document(
        &mut self,
        group_stats: &[MachineStats],
        telemetry: &crate::telemetry::Telemetry,
    ) {
        let mut loads = vec![0u64; self.nshards];
        for (shard, gids) in self.assignment.shard_gids.iter().enumerate() {
            for &gid in gids {
                let work = place::work_of(&group_stats[gid]);
                self.cost.observe(gid, work);
                loads[shard] += work;
            }
        }
        let measured = place::imbalance_millis(&loads);
        self.last_imbalance = Some(measured);
        telemetry.gauge_set(|r| &r.shard_imbalance, measured);
        if self.placement != Placement::CostAware
            || self.nshards < 2
            || measured < place::REPARTITION_THRESHOLD_MILLIS
        {
            return;
        }
        let plan = place::lpt_plan(&self.active_gids, &self.cost, self.nshards);
        if plan.shard_gids == self.assignment.shard_gids {
            return;
        }
        // Only swap when the refined estimates actually predict an
        // improvement over keeping the current assignment — hysteresis
        // against estimate noise oscillating two near-equal plans.
        let current = ShardPlan { shard_gids: self.assignment.shard_gids.clone() };
        let predicted = place::imbalance_millis(&plan.loads(&self.cost));
        let staying = place::imbalance_millis(&current.loads(&self.cost));
        if predicted >= staying {
            return;
        }
        self.assignment = Arc::new(place::make_assignment(
            self.assignment.version + 1,
            &plan,
            &self.prefix_paths,
        ));
        self.repartitions += 1;
        telemetry.add(|r| &r.shard_repartitions, 1);
    }

    fn placement_snapshot(&self) -> PlacementSnapshot {
        let plan = ShardPlan { shard_gids: self.assignment.shard_gids.clone() };
        let shard_of = plan
            .shard_of(self.group_slots)
            .into_iter()
            .map(|s| (s != usize::MAX).then_some(s))
            .collect();
        PlacementSnapshot {
            placement: self.placement,
            shards: self.nshards,
            shard_of,
            repartitions: self.repartitions,
            last_imbalance_millis: self.last_imbalance,
        }
    }
}

/// Receives one worker report; `None` means every worker hung up without
/// a final poisoned report — the caller treats that as an unknown-shard
/// poisoning of the session.
fn recv_report(rx: &Receiver<WorkerReport>) -> Option<WorkerReport> {
    rx.recv().ok()
}

/// Folds one worker report into the coordinator-side document state.
/// Shared between the pipelined pump ([`DocPump::ingest`]) and the
/// overlapped admission walk ([`feed`]), so poisoning semantics cannot
/// diverge: a poisoned report closes every ring, records the failing
/// shard, and suppresses all further callbacks (no matches after an
/// error); late reports from surviving workers draining their rings are
/// dropped for the same reason.
#[allow(clippy::too_many_arguments)]
pub(super) fn ingest_report<F: FnMut(QueryId, Match)>(
    report: WorkerReport,
    rings: &[Arc<Ring<SeqBatch>>],
    poisoned: &mut Option<usize>,
    merger: &mut MatchMerger,
    subscribers: &[Vec<QueryId>],
    matches: &mut [Vec<Match>],
    on_match: &mut F,
    group_stats: &mut [MachineStats],
    group_bytes: &mut u64,
    done: &mut usize,
    profile: &crate::telemetry::CostLedger,
) {
    if report.poisoned {
        for ring in rings {
            ring.close();
        }
        poisoned.get_or_insert(report.shard);
        return;
    }
    if poisoned.is_some() {
        return;
    }
    if let Some(doc_stats) = report.doc_stats {
        for snapshot in doc_stats {
            profile.add_self_ns(snapshot.gid, snapshot.self_ns);
            group_stats[snapshot.gid] = snapshot.stats;
            *group_bytes += snapshot.approx_bytes;
        }
        *done += 1;
    }
    merger.push(report.shard, report.matches, report.through_seq);
    merger.drain(|t| fan_out(subscribers, matches, on_match, t));
}

/// Fans one merged match out to its group's subscribers via the same
/// [`crate::multi::fan_out_match`] the single-threaded sink uses — one
/// fan-out implementation, so delivery order cannot diverge.
fn fan_out<F: FnMut(QueryId, Match)>(
    subscribers: &[Vec<QueryId>],
    matches: &mut [Vec<Match>],
    on_match: &mut F,
    t: TaggedMatch,
) {
    crate::multi::fan_out_match(&subscribers[t.gid as usize], matches, on_match, t.m);
}

/// The broadcasting [`EventSink`]: numbers events, batches them, ships
/// each batch to every shard ring, and opportunistically drains worker
/// reports between batches so merged matches stream to the caller while
/// the document is still being read.
struct DocPump<'a, F: FnMut(QueryId, Match)> {
    interner: &'a Interner,
    filter: Option<&'a crate::multi::DispatchIndex>,
    /// Records the broadcast batch-size histogram.
    telemetry: &'a crate::telemetry::Telemetry,
    /// `Some` under prefix sharing: the global trie, advanced here once
    /// per element event; the resulting pushes ship inside
    /// [`ShardEvent::Start`].
    trie: Option<&'a mut StepTrie>,
    rings: &'a [Arc<Ring<SeqBatch>>],
    rx: &'a Receiver<WorkerReport>,
    merger: &'a mut MatchMerger,
    subscribers: &'a [Vec<QueryId>],
    matches: &'a mut Vec<Vec<Match>>,
    on_match: &'a mut F,
    /// Per-group machine statistics, filled by DocEnd acknowledgements.
    group_stats: &'a mut [MachineStats],
    /// Post-document group-resident bytes summed across DocEnd
    /// acknowledgements (feeds [`PlanStats::plan_bytes`]).
    group_bytes: &'a mut u64,
    /// Shards that have acknowledged DocEnd so far.
    done: &'a mut usize,
    /// Set when a worker dies mid-document (see [`ingest_report`]).
    poisoned: &'a mut Option<usize>,
    /// Cost ledger handle, folded through [`ingest_report`] (self-time
    /// from DocEnd snapshots); inert when profiling is off.
    profile: &'a crate::telemetry::CostLedger,
    /// Per-group shared trie-step billing: non-empty only while
    /// profiling under prefix sharing; the document thread's trie walk
    /// bills one shared step per `(push, routed group)` pair, mirroring
    /// the single-threaded `PrefixSink`.
    shared_steps: &'a mut Vec<u64>,
    /// Sequence number of the last event pushed (1-based).
    seq: u64,
    /// Highest sequence number covered by already-flushed batches: the
    /// `after` of the next [`SeqBatch`]. Trails `seq` by exactly the
    /// unflushed events (filtered events consume sequence numbers without
    /// shipping payloads, so a batch's range can exceed its length).
    after: u64,
    /// `Arc` names of open *shipped* elements, innermost last: the end
    /// tag reuses the start tag's allocation. Skips pair up (same symbol
    /// against the same frozen filter), so pushes and pops balance.
    open_names: Vec<Arc<str>>,
    /// Scratch: the trie pushes of the current element event.
    pushed: Vec<TriePush>,
    /// Flat stack of trie nodes pushed per open shipped element (the end
    /// tag retreats exactly these).
    trie_open: Vec<u32>,
    /// One `trie_open` offset per open shipped element.
    trie_frames: Vec<u32>,
    /// Shared empty push list (most events push nothing).
    empty_pushes: Arc<[TriePush]>,
    batch: Vec<ShardEvent>,
    ended: bool,
}

impl<F: FnMut(QueryId, Match)> DocPump<'_, F> {
    /// Folds one worker report in: matches into the merger (releasing and
    /// fanning out whatever became safe), DocEnd acknowledgements into
    /// the statistics snapshot.
    fn ingest(&mut self, report: WorkerReport) {
        ingest_report(
            report,
            self.rings,
            self.poisoned,
            self.merger,
            self.subscribers,
            self.matches,
            self.on_match,
            self.group_stats,
            self.group_bytes,
            self.done,
            self.profile,
        );
    }

    /// Broadcasts the pending batch (built once, `Arc`-shared per ring)
    /// and drains any worker reports that have already arrived.
    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        self.telemetry.observe(|r| &r.batch_events, self.batch.len() as u64);
        let events: EventBatch = std::mem::take(&mut self.batch).into();
        let batch = SeqBatch { after: self.after, through: self.seq, events };
        self.after = self.seq;
        for ring in self.rings {
            ring.push(batch.clone());
        }
        self.batch.reserve(EVENT_BATCH);
        while let Ok(report) = self.rx.try_recv() {
            self.ingest(report);
        }
    }

    /// Terminates the document on the worker side: `DocEnd` at the final
    /// sequence number, flushed with whatever the batch still holds.
    fn finish_document(&mut self) {
        self.batch.push(ShardEvent::DocEnd { seq: self.seq });
        self.flush();
        self.ended = true;
    }
}

impl<F: FnMut(QueryId, Match)> EventSink for DocPump<'_, F> {
    fn resolve(&mut self, name: &str) -> Option<Symbol> {
        self.interner.lookup(name)
    }

    fn start_element(
        &mut self,
        sym: Option<Symbol>,
        event: &StartElementEvent,
        node_id: NodeId,
        attr_id_base: NodeId,
    ) {
        self.seq += 1;
        // Prefix sharing: advance the global trie exactly once per
        // element event — the same walk the single-threaded engine does,
        // so the run counters cannot depend on the shard count.
        if let Some(trie) = &mut self.trie {
            self.pushed.clear();
            trie.advance(sym, event.level, &mut self.pushed);
            if !self.shared_steps.is_empty() {
                for p in self.pushed.iter() {
                    for &gid in trie.routed(p.node as usize) {
                        self.shared_steps[gid as usize] += 1;
                    }
                }
            }
        }
        // Sequence numbers advance for *every* event (they are the merge
        // key), but payloads for events no shard would dispatch are never
        // built or shipped. The matching end tag resolves to the same
        // symbol against the same frozen index, so skips always pair up.
        // A skipped event can never have trie pushes: every routed trie
        // step name (and any wildcard) is registered in the filter index.
        if self.filter.is_some_and(|index| !index.has_element_target(sym)) {
            debug_assert!(self.pushed.is_empty(), "filtered events cannot advance the trie");
            return;
        }
        let pushes: Arc<[TriePush]> = if self.trie.is_some() {
            self.trie_frames.push(self.trie_open.len() as u32);
            self.trie_open.extend(self.pushed.iter().map(|p| p.node));
            if self.pushed.is_empty() {
                Arc::clone(&self.empty_pushes)
            } else {
                self.pushed.as_slice().into()
            }
        } else {
            Arc::clone(&self.empty_pushes)
        };
        let name: Arc<str> = event.name.as_str().into();
        self.open_names.push(Arc::clone(&name));
        self.batch.push(ShardEvent::Start {
            seq: self.seq,
            sym,
            name,
            level: event.level,
            attrs: event.attributes.as_slice().into(),
            node_id,
            attr_id_base,
            span: event.span,
            pushes,
        });
        if self.batch.len() >= EVENT_BATCH {
            self.flush();
        }
    }

    fn characters(&mut self, event: &CharactersEvent, node_id: NodeId) {
        self.seq += 1;
        if self.filter.is_some_and(|index| !index.has_text_target()) {
            return;
        }
        self.batch.push(ShardEvent::Text {
            seq: self.seq,
            text: event.text.as_str().into(),
            level: event.level,
            node_id,
            span: event.span,
        });
        if self.batch.len() >= EVENT_BATCH {
            self.flush();
        }
    }

    fn end_element(&mut self, sym: Option<Symbol>, event: &EndElementEvent) {
        self.seq += 1;
        if self.filter.is_some_and(|index| !index.has_element_target(sym)) {
            return;
        }
        if let Some(trie) = &mut self.trie {
            let base = self.trie_frames.pop().expect("shipped tags pair") as usize;
            for &node in &self.trie_open[base..] {
                trie.retreat_one(node, event.level);
            }
            self.trie_open.truncate(base);
        }
        let name = self.open_names.pop().expect("shipped end tags pair with shipped start tags");
        self.batch.push(ShardEvent::End {
            seq: self.seq,
            sym,
            name,
            level: event.level,
            element_span: event.element_span,
        });
        if self.batch.len() >= EVENT_BATCH {
            self.flush();
        }
    }

    fn document_end(&mut self) {
        self.finish_document();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitex_xmlsax::XmlReader;

    #[test]
    fn round_robin_assignment_balances_and_orders() {
        let assigned = place::round_robin_plan(&[0, 2, 3, 7, 8], 2);
        assert_eq!(assigned.shard_gids, [vec![0, 3, 8], vec![2, 7]]);
        let one = place::round_robin_plan(&[4, 5], 1);
        assert_eq!(one.shard_gids, [vec![4, 5]]);
        let empty = place::round_robin_plan(&[], 3);
        assert_eq!(empty.shard_gids, [vec![], vec![], Vec::<usize>::new()]);
    }

    #[test]
    fn sharded_output_matches_single_threaded() {
        let xml = "<r><a id=\"1\"><b>hi</b></a><c/><a id=\"2\"/></r>";
        let queries = ["//a", "//a/@id", "//b/text()", "//a", "//*"];
        let reference = {
            let mut multi = MultiEngine::new();
            for q in queries {
                multi.add_query(q).unwrap();
            }
            multi.run(XmlReader::from_str(xml), |_, _| {}).unwrap()
        };
        for shards in [1usize, 2, 3, 8] {
            let mut sharded = ShardedEngine::new(shards);
            for q in queries {
                sharded.add_query(q).unwrap();
            }
            let mut streamed = Vec::new();
            let out =
                sharded.run(XmlReader::from_str(xml), |q, m| streamed.push((q.0, m.node))).unwrap();
            assert_eq!(out.matches, reference.matches, "{shards} shards");
            assert_eq!(out.stats, reference.stats, "{shards} shards");
            assert_eq!(out.plan, reference.plan, "{shards} shards");
            assert_eq!(out.elements, reference.elements);
            assert_eq!(out.events, reference.events);
            assert!(!streamed.is_empty());
        }
    }

    #[test]
    fn session_streams_documents_back_to_back() {
        let mut sharded = ShardedEngine::new(3);
        let qa = sharded.add_query("//a").unwrap();
        let qb = sharded.add_query("//b").unwrap();
        let docs = ["<a><b/></a>", "<a><a/><b/><b/></a>", "<x/>"];
        let outs = sharded
            .session(|session| {
                docs.iter()
                    .map(|xml| session.run_document(XmlReader::from_str(xml), |_, _| {}))
                    .collect::<EngineResult<Vec<_>>>()
            })
            .unwrap();
        assert_eq!(outs[0].matches[qa.0].len(), 1);
        assert_eq!(outs[1].matches[qa.0].len(), 2);
        assert_eq!(outs[1].matches[qb.0].len(), 2);
        assert_eq!(outs[2].matches[qa.0].len(), 0);
        assert_eq!(outs[2].elements, 1);
    }

    #[test]
    fn parse_error_mid_session_leaves_the_session_usable() {
        let mut sharded = ShardedEngine::new(2);
        let q = sharded.add_query("//b").unwrap();
        let out = sharded
            .session(|session| {
                let err = session.run_document(XmlReader::from_str("<a><b></a>"), |_, _| {});
                assert!(err.is_err(), "malformed document surfaces its error");
                session.run_document(XmlReader::from_str("<a><b/></a>"), |_, _| {})
            })
            .unwrap();
        assert_eq!(out.matches[q.0].len(), 1);
    }

    #[test]
    fn more_shards_than_groups_is_fine() {
        let mut sharded = ShardedEngine::new(8);
        let q = sharded.add_query("//a").unwrap();
        let out = sharded.run(XmlReader::from_str("<a><a/></a>"), |_, _| {}).unwrap();
        assert_eq!(out.matches[q.0].len(), 2);
        // And with no queries at all, the stream statistics still flow.
        let mut empty = ShardedEngine::new(4);
        let out = empty.run(XmlReader::from_str("<a><b/></a>"), |_, _| {}).unwrap();
        assert_eq!(out.elements, 2);
        assert!(out.matches.is_empty());
    }

    #[test]
    fn churn_between_sessions_rebalances() {
        let mut sharded = ShardedEngine::new(2);
        let qa = sharded.add_query("//a").unwrap();
        let qb = sharded.add_query("//b").unwrap();
        let out = sharded.run(XmlReader::from_str("<a><b/></a>"), |_, _| {}).unwrap();
        assert_eq!(out.matches[qa.0].len(), 1);
        assert_eq!(sharded.remove_query(qa), Some(true));
        let qc = sharded.add_query("//c").unwrap();
        let out = sharded.run(XmlReader::from_str("<a><b/><c/></a>"), |_, _| {}).unwrap();
        assert!(out.matches[qa.0].is_empty(), "removed query stays silent");
        assert_eq!(out.matches[qb.0].len(), 1);
        assert_eq!(out.matches[qc.0].len(), 1);
        assert_eq!(out.plan.recycled_slots, 1, "//c recycled //a's slot");
    }
}
