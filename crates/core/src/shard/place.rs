//! Cost-aware shard placement: ledger-driven group→shard planning with
//! mid-session repartitioning.
//!
//! The round-robin partition assumes plan groups cost roughly the same —
//! which collapses under skew: one hog query (the E14 scenario) pins a
//! whole shard while the rest idle. This module plans placements from
//! per-group **cost estimates** instead: a [`ShardPlan`] is computed by
//! greedy LPT (longest-processing-time) bin-packing, the classic 4/3
//! approximation for makespan on identical machines.
//!
//! Estimates come from the same deterministic machine counters the cost
//! ledger bills ([`crate::telemetry::GroupCost::work`]): pushes + pops +
//! predicate evaluations + dispatch hits. Those arrive at the coordinator
//! with every `DocEnd` acknowledgement regardless of whether profiling is
//! on, so the [`CostModel`] refines itself after every document — and
//! because the counters are invariant across dispatch × plan × shard ×
//! front-end configurations, so are the placement decisions. Matches are
//! invariant *by construction* either way (the watermark merge orders by
//! `(event seq, group id)`, which no placement can perturb); determinism
//! of the decisions just makes experiments and tests reproducible.
//!
//! Repartitioning happens only between documents and only past a
//! hysteresis threshold ([`REPARTITION_THRESHOLD_MILLIS`]), so a nearly
//! balanced session never churns its dispatch indexes, and a skewed one
//! converges after the first document measured under skew.

use std::collections::HashMap;
use std::sync::Arc;

use crate::stats::MachineStats;

use super::worker::PrefixMap;

/// How a sharded session maps plan groups onto worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Round-robin over ascending group ids — the skew-oblivious
    /// baseline, kept as the escape hatch (`--placement round-robin`)
    /// and for differential comparison.
    RoundRobin,
    /// Greedy LPT bin-packing over per-group cost estimates, refined
    /// from measured work after every document, with repartitioning at
    /// document boundaries when measured imbalance exceeds the
    /// hysteresis threshold. The default.
    #[default]
    CostAware,
}

impl Placement {
    /// Parses the CLI spelling (`round-robin` | `cost`).
    pub fn parse(s: &str) -> Option<Placement> {
        match s {
            "round-robin" => Some(Placement::RoundRobin),
            "cost" => Some(Placement::CostAware),
            _ => None,
        }
    }
}

/// A point-in-time view of a [`crate::shard::ShardSession`]'s placement
/// state, from [`crate::shard::ShardSession::placement_snapshot`]:
/// which policy is active, how many workers actually run (after clamping
/// to the active group count), where each group sits, and how the
/// repartitioner has been behaving.
#[derive(Debug, Clone)]
pub struct PlacementSnapshot {
    /// The session's planning policy.
    pub placement: Placement,
    /// Effective worker count.
    pub shards: usize,
    /// Shard of each plan-group slot under the assignment the *next*
    /// document would run with (`None` = inactive slot). Empty for
    /// inline one-shard sessions.
    pub shard_of: Vec<Option<usize>>,
    /// Assignment swaps performed so far this session.
    pub repartitions: u64,
    /// Measured imbalance of the most recent document, in millis
    /// (1000 = perfectly balanced; `shards * 1000` = one shard carried
    /// everything). `None` before the first document.
    pub last_imbalance_millis: Option<u64>,
}

/// Measured imbalance (in millis, 1000 = perfectly balanced) above which
/// a cost-aware session replans between documents. 1300 means "the
/// hottest shard carries ≥ 1.3× the ideal per-shard load" — far enough
/// from the round-robin noise floor that balanced workloads never churn.
pub(crate) const REPARTITION_THRESHOLD_MILLIS: u64 = 1300;

/// The deterministic work counter placement planning consumes — the same
/// formula as [`crate::telemetry::GroupCost::work`] and
/// [`crate::telemetry::QueryCost::work`], read straight off the per-run
/// machine stats that every `DocEnd` acknowledgement carries.
pub(crate) fn work_of(stats: &MachineStats) -> u64 {
    stats.pushes + stats.pops + stats.predicate_evals + stats.dispatch_hits
}

/// A group→shard assignment over a fixed worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ShardPlan {
    /// Ascending group ids per shard. Every shard owns at least one group
    /// whenever `active gids ≥ nshards` (LPT always fills an empty bin
    /// first; round-robin by construction).
    pub(crate) shard_gids: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// The shard of each group slot (`usize::MAX` for slots this plan
    /// does not place), sized to `group_slots`.
    pub(crate) fn shard_of(&self, group_slots: usize) -> Vec<usize> {
        let mut shard_of = vec![usize::MAX; group_slots];
        for (shard, gids) in self.shard_gids.iter().enumerate() {
            for &gid in gids {
                shard_of[gid] = shard;
            }
        }
        shard_of
    }

    /// Predicted per-shard loads under `costs`.
    pub(crate) fn loads(&self, costs: &CostModel) -> Vec<u64> {
        self.shard_gids
            .iter()
            .map(|gids| gids.iter().map(|&gid| costs.estimate(gid)).sum())
            .collect()
    }
}

/// Round-robin plan in ascending gid order — the [`Placement::RoundRobin`]
/// baseline, also what LPT degenerates to under uniform costs.
pub(crate) fn round_robin_plan(active_gids: &[usize], nshards: usize) -> ShardPlan {
    let nshards = nshards.max(1);
    let mut shard_gids: Vec<Vec<usize>> = (0..nshards).map(|_| Vec::new()).collect();
    for (i, &gid) in active_gids.iter().enumerate() {
        shard_gids[i % nshards].push(gid);
    }
    ShardPlan { shard_gids }
}

/// Greedy LPT bin-packing: place groups in descending estimated cost
/// (ties broken by ascending gid), each onto the currently least-loaded
/// shard (ties broken by lowest shard index). Fully deterministic; with
/// uniform estimates it reproduces round-robin exactly, so a cost-aware
/// session's *first* document runs the identical partition the
/// round-robin baseline would.
pub(crate) fn lpt_plan(active_gids: &[usize], costs: &CostModel, nshards: usize) -> ShardPlan {
    let nshards = nshards.max(1);
    let mut ranked: Vec<usize> = active_gids.to_vec();
    ranked.sort_by(|&a, &b| costs.estimate(b).cmp(&costs.estimate(a)).then(a.cmp(&b)));
    let mut shard_gids: Vec<Vec<usize>> = (0..nshards).map(|_| Vec::new()).collect();
    let mut loads = vec![0u64; nshards];
    for gid in ranked {
        let shard = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &load)| (load, i))
            .map(|(i, _)| i)
            .expect("nshards >= 1");
        shard_gids[shard].push(gid);
        loads[shard] += costs.estimate(gid);
    }
    for gids in &mut shard_gids {
        gids.sort_unstable();
    }
    ShardPlan { shard_gids }
}

/// Load imbalance in millis: `max_shard_load / ideal_load * 1000`, where
/// ideal is `total / nshards`. 1000 = perfectly balanced; 2000 = the
/// hottest shard carries twice its fair share; `nshards * 1000` = one
/// shard carries everything. Zero-work documents report 1000 (nothing to
/// balance, nothing imbalanced).
pub(crate) fn imbalance_millis(loads: &[u64]) -> u64 {
    let total: u64 = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 1000;
    }
    let max = *loads.iter().max().expect("non-empty");
    // max * n * 1000 / total, in u128 to dodge overflow on huge counters.
    (max as u128 * loads.len() as u128 * 1000 / total as u128) as u64
}

/// Per-group cost estimates driving LPT planning.
///
/// Seeded uniform (every active group costs 1) so the initial plan is
/// round-robin-equivalent; optionally pre-seeded from a prior cost-ledger
/// snapshot, and refined from measured per-document work thereafter. The
/// refinement is an integer average of the previous estimate and the new
/// observation — enough smoothing to ride out per-document variance,
/// deterministic by construction.
#[derive(Debug)]
pub(crate) struct CostModel {
    est: Vec<u64>,
    /// Whether `est[gid]` reflects at least one observation (seeded or
    /// measured) rather than the uniform prior.
    observed: Vec<bool>,
}

impl CostModel {
    /// Uniform prior over `group_slots` slots.
    pub(crate) fn uniform(group_slots: usize) -> CostModel {
        CostModel { est: vec![1; group_slots], observed: vec![false; group_slots] }
    }

    /// Pre-seed estimates from a cost-ledger snapshot taken before the
    /// session opened. `canonicals[gid]` is the *current* canonical step
    /// key of each active slot: a ledger row is only trusted when its
    /// canonical key matches, because the planner's free-list recycles
    /// retired group ids — a recycled slot must never inherit the retired
    /// query's accumulated bill (the partition-staleness bug this guards
    /// against).
    pub(crate) fn seed_from_ledger(
        &mut self,
        snapshot: &crate::telemetry::ProfileSnapshot,
        canonicals: &[Option<String>],
    ) {
        for g in &snapshot.groups {
            let fresh =
                canonicals.get(g.gid).and_then(|c| c.as_deref()).is_some_and(|c| c == g.canonical);
            if fresh && g.work() > 0 {
                self.est[g.gid] = g.work();
                self.observed[g.gid] = true;
            }
        }
    }

    /// Fold one document's measured work for `gid` into the estimate.
    pub(crate) fn observe(&mut self, gid: usize, work: u64) {
        let work = work.max(1);
        if self.observed[gid] {
            self.est[gid] = (self.est[gid] + work).div_ceil(2);
        } else {
            self.est[gid] = work;
            self.observed[gid] = true;
        }
    }

    /// Current estimate for `gid` (≥ 1 for any slot ever seeded).
    pub(crate) fn estimate(&self, gid: usize) -> u64 {
        self.est[gid]
    }
}

/// One immutable group→shard assignment, shipped to the workers inside
/// every `DocStart` event. Workers adopt it when the `version` differs
/// from the one they are running (rebuilding their local dispatch index
/// and, under prefix sharing, their trie-routing map) and otherwise just
/// re-acquire the same groups — so a repartition costs exactly one
/// index rebuild per worker, at a document boundary, and nothing at all
/// when the plan is stable.
#[derive(Debug)]
pub(crate) struct Assignment {
    pub(crate) version: u64,
    /// Ascending gids per shard.
    pub(crate) shard_gids: Vec<Vec<usize>>,
    /// Per-shard prefix-routing maps (empty unless the session runs
    /// prefix-shared plans). `Arc` so adopting workers share rather than
    /// clone.
    pub(crate) prefix_maps: Vec<Arc<PrefixMap>>,
}

/// Builds the assignment for `plan`, deriving per-shard prefix maps from
/// the per-group trie paths when `prefix_paths` is non-empty. Each path
/// entry is the group's `(trie node, machine main node)` pairs in path
/// order — precomputed at session open, so replanning never needs the
/// trie (which the document thread owns exclusively).
pub(crate) fn make_assignment(
    version: u64,
    plan: &ShardPlan,
    prefix_paths: &[Vec<(u32, u32)>],
) -> Assignment {
    let mut prefix_maps = Vec::new();
    if !prefix_paths.is_empty() {
        for gids in &plan.shard_gids {
            let mut map: PrefixMap = HashMap::new();
            for (li, &gid) in gids.iter().enumerate() {
                for &(node, mnode) in &prefix_paths[gid] {
                    map.entry(node).or_default().push((li as u32, mnode));
                }
            }
            prefix_maps.push(Arc::new(map));
        }
    }
    Assignment { version, shard_gids: plan.shard_gids.clone(), prefix_maps }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(costs: &[(usize, u64)], slots: usize) -> CostModel {
        let mut m = CostModel::uniform(slots);
        for &(gid, w) in costs {
            m.observe(gid, w);
        }
        m
    }

    #[test]
    fn placement_parses_cli_spellings() {
        assert_eq!(Placement::parse("round-robin"), Some(Placement::RoundRobin));
        assert_eq!(Placement::parse("cost"), Some(Placement::CostAware));
        assert_eq!(Placement::parse("lpt"), None);
    }

    #[test]
    fn lpt_with_uniform_costs_is_round_robin() {
        let gids = [0usize, 2, 3, 7, 8];
        let costs = CostModel::uniform(9);
        let lpt = lpt_plan(&gids, &costs, 2);
        assert_eq!(lpt, round_robin_plan(&gids, 2));
        assert_eq!(lpt.shard_gids, [vec![0, 3, 8], vec![2, 7]]);
    }

    #[test]
    fn lpt_isolates_a_hog() {
        // One group dwarfs the rest: LPT parks it alone and spreads the
        // cheap groups over the remaining shards.
        let gids: Vec<usize> = (0..9).collect();
        let mut costs = CostModel::uniform(9);
        costs.observe(4, 1_000_000);
        for gid in [0usize, 1, 2, 3, 5, 6, 7, 8] {
            costs.observe(gid, 10);
        }
        let plan = lpt_plan(&gids, &costs, 4);
        let shard_of = plan.shard_of(9);
        let hog_shard = shard_of[4];
        assert_eq!(plan.shard_gids[hog_shard], vec![4], "hog isolated on its own shard");
        for (gid, &s) in shard_of.iter().enumerate() {
            if gid != 4 {
                assert_ne!(s, hog_shard, "group {gid} must avoid the hog's shard");
            }
        }
    }

    #[test]
    fn lpt_fills_every_shard_when_groups_suffice() {
        let gids: Vec<usize> = (0..4).collect();
        let costs = model(&[(0, 100), (1, 1), (2, 1), (3, 1)], 4);
        let plan = lpt_plan(&gids, &costs, 4);
        assert!(plan.shard_gids.iter().all(|g| !g.is_empty()), "{:?}", plan.shard_gids);
    }

    #[test]
    fn imbalance_millis_scales() {
        assert_eq!(imbalance_millis(&[10, 10, 10, 10]), 1000);
        assert_eq!(imbalance_millis(&[40, 0, 0, 0]), 4000);
        assert_eq!(imbalance_millis(&[30, 10]), 1500);
        assert_eq!(imbalance_millis(&[0, 0]), 1000, "zero work is balanced");
        assert_eq!(imbalance_millis(&[]), 1000);
    }

    #[test]
    fn cost_model_averages_observations() {
        let mut m = CostModel::uniform(2);
        assert_eq!(m.estimate(0), 1);
        m.observe(0, 100);
        assert_eq!(m.estimate(0), 100, "first observation replaces the prior");
        m.observe(0, 50);
        assert_eq!(m.estimate(0), 75);
        m.observe(1, 0);
        assert_eq!(m.estimate(1), 1, "estimates stay >= 1");
    }

    #[test]
    fn ledger_seed_rejects_stale_canonicals() {
        use crate::telemetry::{GroupCost, ProfileSnapshot};
        let snapshot = ProfileSnapshot {
            docs: 1,
            queries: Vec::new(),
            groups: vec![
                GroupCost { gid: 0, canonical: "//a".into(), pushes: 500, ..Default::default() },
                GroupCost { gid: 1, canonical: "//b".into(), pushes: 700, ..Default::default() },
            ],
        };
        // Slot 0 was recycled: it now serves "//c", so the ledger's
        // "//a" bill must not leak into its estimate. Slot 1 still
        // serves "//b" and keeps its seed.
        let canonicals = vec![Some("//c".to_string()), Some("//b".to_string())];
        let mut m = CostModel::uniform(2);
        m.seed_from_ledger(&snapshot, &canonicals);
        assert_eq!(m.estimate(0), 1, "recycled slot keeps the uniform prior");
        assert_eq!(m.estimate(1), 700, "matching canonical seeds the estimate");
    }

    #[test]
    fn assignment_builds_per_shard_prefix_maps() {
        let plan = ShardPlan { shard_gids: vec![vec![0, 2], vec![1]] };
        // gid 0: trie path [5, 6] -> machine nodes [0, 1]; gid 1: [5] ->
        // [0]; gid 2: [9] -> [0].
        let paths = vec![vec![(5, 0), (6, 1)], vec![(5, 0)], vec![(9, 0)]];
        let a = make_assignment(3, &plan, &paths);
        assert_eq!(a.version, 3);
        assert_eq!(a.prefix_maps.len(), 2);
        // Shard 0 local slots: li 0 = gid 0, li 1 = gid 2.
        assert_eq!(a.prefix_maps[0].get(&5), Some(&vec![(0u32, 0u32)]));
        assert_eq!(a.prefix_maps[0].get(&6), Some(&vec![(0u32, 1u32)]));
        assert_eq!(a.prefix_maps[0].get(&9), Some(&vec![(1u32, 0u32)]));
        assert_eq!(a.prefix_maps[1].get(&5), Some(&vec![(0u32, 0u32)]));
        let none = make_assignment(1, &plan, &[]);
        assert!(none.prefix_maps.is_empty(), "no prefix maps outside prefix mode");
    }
}
