//! Shard workers: the bounded event ring and the per-shard event loop.
//!
//! A worker owns a disjoint subset of the plan groups for the duration of
//! a [`crate::shard::ShardSession`] (the borrow is scoped — groups return
//! to the engine when the session closes). It pops event batches off its
//! ring, runs its own [`DispatchIndex`] over the subset — so per-event
//! filtering behaves exactly like the single-threaded engine restricted
//! to those groups — and reports emitted matches tagged with their global
//! ordering key, plus a watermark, back to the document thread.
//!
//! Batches carry an explicit sequence window ([`SeqBatch`]): with the
//! overlapped front-end several producer threads push into the same ring,
//! so batches can arrive out of document order. The worker restores order
//! locally — a batch whose `after` does not meet the applied frontier is
//! stashed until the gap fills — because the twig machines are streaming
//! stack automata and must see events in document order.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use vitex_xmlsax::event::Attribute;
use vitex_xmlsax::pos::ByteSpan;

use crate::intern::Symbol;
use crate::multi::DispatchIndex;
use crate::plan::{PlanGroup, TriePush};
use crate::result::NodeId;
use crate::stats::MachineStats;
use crate::telemetry::{Telemetry, TID_SHARD_BASE};

use super::merge::TaggedMatch;
use super::place::Assignment;

/// Prefix-shared execution: global trie node → the `(local slot, machine
/// node)` pairs a push of that node drives within this shard's group
/// subset. Built by the session on the document thread (which owns the
/// trie) and handed to the worker, so workers never walk the trie
/// themselves — they just apply the shipped push decisions.
pub(crate) type PrefixMap = HashMap<u32, Vec<(u32, u32)>>;

/// One document event in shard-transportable form. String payloads (tag
/// name, attributes, text) are `Arc`-shared: the document thread builds
/// each event **once** and broadcasting to N shards bumps reference
/// counts; everything else is `Copy`.
#[derive(Debug, Clone)]
pub(crate) enum ShardEvent {
    /// A document begins: acquire the groups this shard owns under
    /// `assignment` (adopting it — rebuilding the local dispatch index —
    /// when its version differs from the one currently running) and
    /// reset machine state (stacks, stats, dedup sets).
    DocStart { assignment: Arc<Assignment> },
    /// `startElement` with the symbol the driver resolved once.
    Start {
        seq: u64,
        sym: Option<Symbol>,
        name: Arc<str>,
        level: u32,
        attrs: Arc<[Attribute]>,
        node_id: NodeId,
        attr_id_base: NodeId,
        span: ByteSpan,
        /// Main-path push decisions from the document thread's plan trie
        /// (prefix-shared execution; empty otherwise). `Arc`-shared like
        /// the other payloads: built once, bumped per ring.
        pushes: Arc<[TriePush]>,
    },
    /// A text node.
    Text { seq: u64, text: Arc<str>, level: u32, node_id: NodeId, span: ByteSpan },
    /// `endElement`, replaying the start tag's symbol.
    End { seq: u64, sym: Option<Symbol>, name: Arc<str>, level: u32, element_span: ByteSpan },
    /// The document ended; `seq` is the total number of sequenced events,
    /// i.e. the final watermark. The worker snapshots machine statistics
    /// and acknowledges.
    DocEnd { seq: u64 },
}

/// A broadcast batch: built once, shared by every shard's ring.
pub(crate) type EventBatch = Arc<[ShardEvent]>;

/// A ring item: one broadcast batch plus the contiguous sequence window it
/// covers. `after` is the highest sequence number already covered by
/// earlier batches of the same document (the precondition for applying
/// this one); `through` is the highest this batch covers — which can
/// exceed the last *shipped* event's own seq, because filtered events
/// consume sequence numbers without shipping a payload. The pipelined
/// front-end produces these in order (`after` always equals the worker's
/// frontier); overlapped producers may deliver them out of order.
#[derive(Debug, Clone)]
pub(crate) struct SeqBatch {
    pub(crate) after: u64,
    pub(crate) through: u64,
    pub(crate) events: EventBatch,
}

/// A bounded SPSC ring buffer carrying event batches from the document
/// thread to one worker.
///
/// Safe-Rust implementation: a mutex-guarded deque with condvars for the
/// full/empty edges. The coarse lock is taken once per *batch* (hundreds
/// of events), so lock traffic is off the per-event hot path; the bound
/// provides backpressure — a slow shard stalls the document reader
/// instead of buffering the whole stream.
#[derive(Debug)]
pub(crate) struct Ring<T> {
    state: Mutex<RingState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    /// Occupancy, stall and idle accounting; disabled handles make every
    /// recording call a no-op.
    telemetry: Telemetry,
}

#[derive(Debug)]
struct RingState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` items, with no telemetry.
    #[cfg(test)]
    pub(crate) fn new(capacity: usize) -> Self {
        Ring::with_telemetry(capacity, Telemetry::disabled())
    }

    /// A ring holding at most `capacity` items that records occupancy,
    /// enqueue stalls and consumer idle time into `telemetry`.
    pub(crate) fn with_telemetry(capacity: usize, telemetry: Telemetry) -> Self {
        Ring {
            state: Mutex::new(RingState {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            telemetry,
        }
    }

    /// Enqueues `item`, blocking while the ring is full. Items pushed
    /// after [`Ring::close`] are dropped (the consumer is gone).
    pub(crate) fn push(&self, item: T) {
        let mut state = self.state.lock().expect("ring lock");
        if state.queue.len() >= self.capacity && !state.closed {
            // Backpressure engaged: the consumer shard is behind.
            let t_stall = self.telemetry.timer();
            self.telemetry.add(|r| &r.ring_enqueue_stalls, 1);
            while state.queue.len() >= self.capacity && !state.closed {
                state = self.not_full.wait(state).expect("ring lock");
            }
            self.telemetry.add_elapsed(|r| &r.ring_stall_ns, t_stall);
        }
        if !state.closed {
            state.queue.push_back(item);
            self.telemetry.add(|r| &r.ring_batches, 1);
            self.telemetry.gauge_set(|r| &r.ring_occupancy, state.queue.len() as u64);
            drop(state);
            self.not_empty.notify_one();
        }
    }

    /// Dequeues the next item, blocking while the ring is empty. Returns
    /// `None` once the ring is closed **and** drained.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("ring lock");
        let mut t_idle: Option<Instant> = None;
        loop {
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.telemetry.add_elapsed(|r| &r.worker_idle_ns, t_idle);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                self.telemetry.add_elapsed(|r| &r.worker_idle_ns, t_idle);
                return None;
            }
            if t_idle.is_none() {
                t_idle = self.telemetry.timer();
            }
            state = self.not_empty.wait(state).expect("ring lock");
        }
    }

    /// Closes the ring: pending items remain poppable, further pushes are
    /// dropped, and a blocked consumer (or producer) wakes up.
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().expect("ring lock");
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// The session's group loan desk: every active plan group's exclusive
/// borrow, parked in a per-slot mutex between documents.
///
/// Workers take their assigned groups at every [`ShardEvent::DocStart`]
/// and put them back at every [`ShardEvent::DocEnd`] — *before* sending
/// the end-of-document acknowledgement, and the coordinator ships the
/// next document's `DocStart` only after collecting every
/// acknowledgement, so whenever a new assignment arrives the pool is
/// fully stocked and a group can migrate between workers without any
/// cross-worker handoff protocol. Machines reset at `DocStart`, so a
/// migrated group carries no document state. The per-document mutex
/// traffic is two uncontended locks per group — noise next to a
/// document's event volume.
pub(crate) struct GroupPool<'a> {
    /// Indexed by global group id; `None` for inactive slots and for
    /// groups currently out on loan.
    slots: Vec<Mutex<Option<&'a mut PlanGroup>>>,
}

impl<'a> GroupPool<'a> {
    /// Stocks the pool with the session's active groups; `group_slots`
    /// sizes the gid-indexed table.
    pub(crate) fn new(groups: Vec<(usize, &'a mut PlanGroup)>, group_slots: usize) -> Self {
        let mut slots: Vec<Mutex<Option<&'a mut PlanGroup>>> =
            (0..group_slots).map(|_| Mutex::new(None)).collect();
        for (gid, group) in groups {
            slots[gid] = Mutex::new(Some(group));
        }
        GroupPool { slots }
    }

    /// Borrows group `gid` out of the pool. Panics if the group is
    /// absent — that would mean two workers believe they own the same
    /// gid, which the version-gated assignment protocol rules out.
    pub(crate) fn take(&self, gid: usize) -> &'a mut PlanGroup {
        self.slots[gid]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("group checked out twice — assignment shards overlap")
    }

    /// Returns group `gid` to the pool.
    pub(crate) fn put(&self, gid: usize, group: &'a mut PlanGroup) {
        let prev = self.slots[gid]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .replace(group);
        debug_assert!(prev.is_none(), "pool slot {gid} already occupied");
    }
}

/// One worker→document-thread report: the matches emitted while
/// processing a batch (often empty), the shard's new watermark, and — on
/// the report acknowledging a [`ShardEvent::DocEnd`] — per-group machine
/// statistics snapshots for output assembly.
#[derive(Debug)]
pub(crate) struct WorkerReport {
    pub(crate) shard: usize,
    pub(crate) matches: Vec<TaggedMatch>,
    pub(crate) through_seq: u64,
    pub(crate) doc_stats: Option<Vec<GroupSnapshot>>,
    /// The worker is unwinding from a panic. The document thread must
    /// stop feeding the session and re-raise (the scope join surfaces
    /// the original panic payload) instead of waiting on this shard.
    pub(crate) poisoned: bool,
}

/// End-of-document state of one plan group, reported by its worker:
/// machine statistics for [`crate::multi::MultiOutput::stats`] and the
/// group's resident bytes (stack capacity grows with the documents seen,
/// so plan-memory accounting must read the post-run value).
#[derive(Debug)]
pub(crate) struct GroupSnapshot {
    pub(crate) gid: usize,
    pub(crate) stats: MachineStats,
    pub(crate) approx_bytes: u64,
    /// Sampled self-time (ns) this group's machines spent inside event
    /// handlers during the document. Timing-class: lives here rather than
    /// on [`MachineStats`] because the stats struct is asserted equal
    /// across shard/dispatch configurations. Zero unless profiling is on.
    pub(crate) self_ns: u64,
}

/// Self-time sampling stride: every `SELF_SAMPLE`-th machine touch is
/// timed and the elapsed nanoseconds scaled back up. The stride is the
/// profiler's overhead dial: the touch path is the hottest loop in the
/// engine, so even the counter bump shows up at small strides (64 cost
/// ~8% on the k=1000 workload; 1024 keeps thousands of samples per
/// document and measures ~3%).
const SELF_SAMPLE: u64 = 1024;

/// The worker entry point: runs on its own thread for the lifetime of a
/// session, processing batches until the ring closes. The worker owns no
/// groups between documents — it borrows its assigned subset from `pool`
/// at every `DocStart` (in ascending group-id order, mirroring the
/// single-threaded engine) and returns them at `DocEnd`. `nsymbols`
/// sizes the local dispatch index (the interner is frozen for the
/// session); under `prefix_mode` the index carries predicate-only
/// interests and the trie-routing map arrives inside the assignment.
/// Telemetry (batch timing, busy time, per-batch spans) records through
/// the handle the ring was built with. `fault` and `swap_fault` are the
/// test-only injection hooks: the worker panics when it applies the
/// event with that sequence number, or mid-adoption of a repartitioned
/// assignment.
///
/// A panicking worker must not take the session down with it: the
/// [`PoisonGuard`] closes the ring and sends a poisoned report during the
/// unwind (`std::thread::panicking()` is true even for a caught panic),
/// and catching the unwind here lets the thread return normally so the
/// session's scope join succeeds instead of re-raising. The document
/// thread turns the poisoned report into a clean [`EngineError::Worker`].
/// Groups the worker held when it panicked stay checked out — harmless,
/// because the poisoned session never starts another document.
///
/// [`EngineError::Worker`]: crate::error::EngineError::Worker
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_worker(
    shard: usize,
    pool: &GroupPool<'_>,
    use_index: bool,
    nsymbols: usize,
    prefix_mode: bool,
    fault: Option<u64>,
    swap_fault: bool,
    profiled: bool,
    ring: Arc<Ring<SeqBatch>>,
    out: Sender<WorkerReport>,
) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        worker_loop(
            shard,
            pool,
            use_index,
            nsymbols,
            prefix_mode,
            fault,
            swap_fault,
            profiled,
            &ring,
            &out,
        );
    }));
    // The guard inside worker_loop already reported the poisoning.
    let _ = result;
}

/// Sequence number of a shard event (`None` for the un-sequenced
/// document-start marker).
fn event_seq(ev: &ShardEvent) -> Option<u64> {
    match ev {
        ShardEvent::DocStart { .. } => None,
        ShardEvent::Start { seq, .. }
        | ShardEvent::Text { seq, .. }
        | ShardEvent::End { seq, .. }
        | ShardEvent::DocEnd { seq } => Some(*seq),
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<'a>(
    shard: usize,
    pool: &GroupPool<'a>,
    use_index: bool,
    nsymbols: usize,
    prefix_mode: bool,
    fault: Option<u64>,
    swap_fault: bool,
    profiled: bool,
    ring: &Arc<Ring<SeqBatch>>,
    out: &Sender<WorkerReport>,
) {
    // If this worker panics (a machine bug, or the injected fault), the
    // session must not hang: close our ring so a producer blocked in
    // `Ring::push` on it wakes up, and report the poisoning so the
    // document thread stops waiting for our DocEnd acknowledgement.
    let _poison_on_panic = PoisonGuard { shard, ring, out };
    let telemetry = ring.telemetry.clone();

    // The groups currently on loan from the pool (empty between
    // documents), plus the local dispatch structures over that subset,
    // keyed by global group id so match tags are globally comparable.
    // All of it is assignment-dependent state, (re)built when a DocStart
    // carries a version we have not adopted yet. Under prefix sharing
    // the index carries predicate-only element interests — the main path
    // arrives pre-planned inside the events, routed through the
    // assignment's per-shard prefix map.
    let mut groups: Vec<(usize, &'a mut PlanGroup)> = Vec::new();
    let mut cur_version: Option<u64> = None;
    let mut index = DispatchIndex::default();
    let mut local_of: Vec<u32> = Vec::new();
    // Ascending global gids, indexable by local slot (the scan path).
    let mut gids: Vec<u32> = Vec::new();
    let mut prefix: Option<Arc<PrefixMap>> = None;

    // Prefix-mode scratch: per-event main plans, predicate targets and
    // the frame stack of machines that pushed per open element.
    let mut plans: Vec<(u32, u32, u32)> = Vec::new();
    let mut pred_lis: Vec<u32> = Vec::new();
    let mut main_scratch: Vec<(u32, u32)> = Vec::new();
    let mut frame_lis: Vec<u32> = Vec::new();
    let mut frames: Vec<u32> = Vec::new();

    let mut matches: Vec<TaggedMatch> = Vec::new();
    // Profiling scratch: sampled per-group self-time for the current
    // document and the shared touch counter driving the sampling stride.
    let mut self_ns: Vec<u64> = Vec::new();
    let mut touch_count: u64 = 0;
    // Contiguously applied sequence frontier for the current document, and
    // the reorder stash for out-of-order producer deliveries, keyed by the
    // frontier value each held batch is waiting for.
    let mut frontier = 0u64;
    let mut stash: BTreeMap<u64, SeqBatch> = BTreeMap::new();
    let shard_tid = TID_SHARD_BASE + shard as u32;
    while let Some(popped) = ring.pop() {
        let t_batch = telemetry.timer();
        let before = frontier;
        let mut doc_stats = None;
        let mut next = Some(popped);
        while let Some(batch) = next.take() {
            if matches!(batch.events.first(), Some(ShardEvent::DocStart { .. })) {
                // A new document begins. The coordinator seeds DocStart
                // into each ring before any producer publishes, so FIFO
                // order guarantees nothing of the new document precedes
                // it; everything of the previous document was applied
                // (its DocEnd was acknowledged before the session moved
                // on), so the stash is necessarily empty.
                debug_assert!(stash.is_empty(), "prior document fully applied");
                stash.clear();
            } else if batch.after != frontier {
                // Gap: an overlapped producer ran ahead. Hold the batch
                // until the batches covering (frontier, after] arrive.
                stash.insert(batch.after, batch);
                break;
            }
            for event in batch.events.iter() {
                if let Some(f) = fault {
                    if event_seq(event) == Some(f) {
                        panic!("injected shard-worker fault at seq {f}");
                    }
                }
                // Routes this event to the machine of local group `li`. Both
                // dispatch paths visit groups in ascending global gid order,
                // mirroring the single-threaded engine.
                let mut touch = |li: u32, seq: u64, gid: u32| {
                    let sampled = profiled && {
                        touch_count += 1;
                        touch_count.is_multiple_of(SELF_SAMPLE)
                    };
                    let t0 = sampled.then(Instant::now);
                    let machine = groups[li as usize].1.machine_mut();
                    let sink = &mut |m| matches.push(TaggedMatch { seq, gid, m });
                    match event {
                        ShardEvent::Start {
                            sym,
                            name,
                            level,
                            attrs,
                            node_id,
                            attr_id_base,
                            span,
                            ..
                        } => {
                            machine.start_element_interned(
                                *sym,
                                name,
                                *level,
                                attrs,
                                *node_id,
                                *attr_id_base,
                                *span,
                                sink,
                            );
                        }
                        ShardEvent::Text { text, level, node_id, span, .. } => {
                            machine.characters(text, *level, *node_id, *span, sink);
                        }
                        ShardEvent::End { name, level, element_span, .. } => {
                            machine.end_element(name, *level, *element_span, sink);
                        }
                        ShardEvent::DocStart { .. } | ShardEvent::DocEnd { .. } => unreachable!(),
                    }
                    if let Some(t0) = t0 {
                        self_ns[li as usize] += t0.elapsed().as_nanos() as u64 * SELF_SAMPLE;
                    }
                };
                match event {
                    ShardEvent::DocStart { assignment } => {
                        debug_assert!(groups.is_empty(), "prior document returned its groups");
                        let adopt = cur_version != Some(assignment.version);
                        if adopt && swap_fault && cur_version.is_some() {
                            // Injected fault: die mid-swap, after the old
                            // assignment retired but before the new one is
                            // adopted (the repartition hazard window).
                            panic!("injected shard-worker fault during assignment swap");
                        }
                        for &gid in &assignment.shard_gids[shard] {
                            groups.push((gid, pool.take(gid)));
                        }
                        if adopt {
                            index = DispatchIndex::default();
                            let max_gid = groups.iter().map(|(gid, _)| gid + 1).max().unwrap_or(0);
                            local_of.clear();
                            local_of.resize(max_gid, u32::MAX);
                            for (li, (gid, group)) in groups.iter().enumerate() {
                                if prefix_mode {
                                    index.add_group_prefix(*gid, group.machine().spec(), nsymbols);
                                } else {
                                    index.add_group(*gid, group.machine().spec(), nsymbols);
                                }
                                local_of[*gid] = li as u32;
                            }
                            gids = groups.iter().map(|(gid, _)| *gid as u32).collect();
                            prefix =
                                prefix_mode.then(|| Arc::clone(&assignment.prefix_maps[shard]));
                            cur_version = Some(assignment.version);
                        }
                        for (_, group) in groups.iter_mut() {
                            group.machine_mut().reset();
                        }
                        frame_lis.clear();
                        frames.clear();
                        self_ns.clear();
                        self_ns.resize(groups.len(), 0);
                    }
                    ShardEvent::Start {
                        seq,
                        sym,
                        name,
                        level,
                        attrs,
                        node_id,
                        attr_id_base,
                        span,
                        pushes,
                    } if prefix.is_some() => {
                        let map = prefix.as_ref().expect("guarded by arm");
                        plans.clear();
                        for p in pushes.iter() {
                            if let Some(targets) = map.get(&p.node) {
                                for &(li, mnode) in targets {
                                    plans.push((li, mnode, p.ptr));
                                }
                            }
                        }
                        plans.sort_unstable();
                        pred_lis.clear();
                        if use_index {
                            index.for_each_element_target(*sym, |gid| pred_lis.push(local_of[gid]));
                        } else {
                            pred_lis.extend(0..groups.len() as u32);
                        }
                        frames.push(frame_lis.len() as u32);
                        crate::multi::merge_prefix_targets(
                            &plans,
                            &pred_lis,
                            &mut main_scratch,
                            &mut frame_lis,
                            |li, main, preds| {
                                let sampled = profiled && {
                                    touch_count += 1;
                                    touch_count.is_multiple_of(SELF_SAMPLE)
                                };
                                let t0 = sampled.then(Instant::now);
                                let (gid, group) = &mut groups[li as usize];
                                let gid = *gid as u32;
                                let r = group.machine_mut().start_element_prefix(
                                    main,
                                    preds,
                                    *sym,
                                    name,
                                    *level,
                                    attrs,
                                    *node_id,
                                    *attr_id_base,
                                    *span,
                                    &mut |m| matches.push(TaggedMatch { seq: *seq, gid, m }),
                                );
                                if let Some(t0) = t0 {
                                    self_ns[li as usize] +=
                                        t0.elapsed().as_nanos() as u64 * SELF_SAMPLE;
                                }
                                r
                            },
                        );
                    }
                    ShardEvent::End { seq, name, level, element_span, .. } if prefix.is_some() => {
                        let base = frames.pop().expect("shipped tags pair") as usize;
                        for &li in &frame_lis[base..] {
                            let sampled = profiled && {
                                touch_count += 1;
                                touch_count.is_multiple_of(SELF_SAMPLE)
                            };
                            let t0 = sampled.then(Instant::now);
                            let (gid, group) = &mut groups[li as usize];
                            let gid = *gid as u32;
                            group.machine_mut().end_element(
                                name,
                                *level,
                                *element_span,
                                &mut |m| matches.push(TaggedMatch { seq: *seq, gid, m }),
                            );
                            if let Some(t0) = t0 {
                                self_ns[li as usize] +=
                                    t0.elapsed().as_nanos() as u64 * SELF_SAMPLE;
                            }
                        }
                        frame_lis.truncate(base);
                    }
                    ShardEvent::Start { seq, sym, .. } | ShardEvent::End { seq, sym, .. } => {
                        if use_index {
                            index.for_each_element_target(*sym, |gid| {
                                touch(local_of[gid], *seq, gid as u32)
                            });
                        } else {
                            for (li, &gid) in gids.iter().enumerate() {
                                touch(li as u32, *seq, gid);
                            }
                        }
                    }
                    ShardEvent::Text { seq, .. } => {
                        if use_index {
                            index
                                .for_each_text_target(|gid| touch(local_of[gid], *seq, gid as u32));
                        } else {
                            for (li, &gid) in gids.iter().enumerate() {
                                touch(li as u32, *seq, gid);
                            }
                        }
                    }
                    ShardEvent::DocEnd { .. } => {
                        doc_stats = Some(
                            groups
                                .iter()
                                .enumerate()
                                .map(|(li, (gid, group))| GroupSnapshot {
                                    gid: *gid,
                                    stats: group.machine().stats().clone(),
                                    approx_bytes: group.approx_bytes(),
                                    self_ns: self_ns[li],
                                })
                                .collect(),
                        );
                        // Return the loans before the acknowledgement goes
                        // out: once every shard has acknowledged, the
                        // coordinator may ship a new assignment, and any
                        // group may then belong to a different worker.
                        for (gid, group) in groups.drain(..) {
                            pool.put(gid, group);
                        }
                    }
                }
            }
            frontier = batch.through;
            // A stashed batch may now be directly applicable.
            next = stash.remove(&frontier);
        }
        telemetry.add_elapsed(|r| &r.worker_busy_ns, t_batch);
        telemetry.record_span("batch", "shard", shard_tid, t_batch);
        if frontier != before || doc_stats.is_some() {
            let report = WorkerReport {
                shard,
                matches: std::mem::take(&mut matches),
                through_seq: frontier,
                doc_stats,
                poisoned: false,
            };
            if out.send(report).is_err() {
                return; // session is gone; nothing left to report to
            }
        } else {
            // Stash-only round: nothing was applied, so nothing to say.
            debug_assert!(matches.is_empty());
        }
    }
}

/// The worker's unwind guard (see [`run_worker`]). On a normal exit the
/// drop is a no-op.
struct PoisonGuard<'a> {
    shard: usize,
    ring: &'a Ring<SeqBatch>,
    out: &'a Sender<WorkerReport>,
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.ring.close();
            let _ = self.out.send(WorkerReport {
                shard: self.shard,
                matches: Vec::new(),
                through_seq: 0,
                doc_stats: None,
                poisoned: true,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ring_is_fifo_and_close_drains() {
        let ring = Ring::new(4);
        ring.push(1);
        ring.push(2);
        ring.close();
        ring.push(3); // dropped: closed
        assert_eq!(ring.pop(), Some(1));
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn ring_occupancy_high_water_is_registry_lifetime_scoped() {
        // Pin the documented gauge scope: the occupancy high-water mark
        // accumulates for the life of the registry — it does NOT reset
        // between documents of a session (per-document peaks require
        // snapshot differencing). A future "reset per document" change
        // must flip this test deliberately.
        let telemetry = Telemetry::enabled();
        let ring = Ring::with_telemetry(4, telemetry.clone());
        ring.push(1);
        ring.push(2);
        ring.push(3);
        for _ in 0..3 {
            ring.pop();
        }
        // "Next document": shallower occupancy must not lower the peak.
        ring.push(4);
        let (value, high) = occupancy(&telemetry);
        assert_eq!(value, 1, "last recorded occupancy");
        assert_eq!(high, 3, "high-water spans the whole registry lifetime");

        fn occupancy(telemetry: &Telemetry) -> (u64, u64) {
            let snapshot = telemetry.snapshot().expect("telemetry enabled");
            let g = snapshot
                .gauges
                .iter()
                .find(|g| g.name == "vitex_ring_occupancy")
                .expect("occupancy gauge exported");
            (g.value, g.high)
        }
    }

    #[test]
    fn ring_bounds_apply_backpressure() {
        let ring = Arc::new(Ring::new(2));
        let popped = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let consumer = {
                let ring = Arc::clone(&ring);
                let popped = Arc::clone(&popped);
                s.spawn(move || {
                    while ring.pop().is_some() {
                        popped.fetch_add(1, Ordering::SeqCst);
                    }
                })
            };
            // 64 pushes through a capacity-2 ring must block-and-resume
            // rather than drop or reorder.
            for i in 0..64 {
                ring.push(i);
            }
            ring.close();
            consumer.join().unwrap();
        });
        assert_eq!(popped.load(Ordering::SeqCst), 64);
    }
}
