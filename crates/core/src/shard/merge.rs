//! Deterministic merge of per-shard match streams.
//!
//! Workers emit matches tagged with a global ordering key — the sequence
//! number of the document event that produced the match and the plan
//! group id that emitted it. The single-threaded engine visits groups in
//! ascending group-id order within each event, so sorting the union of
//! all shard streams by `(seq, gid)` (ties within one `(seq, gid)` keep
//! the machine's emission order, which each shard's FIFO preserves)
//! reproduces its output **exactly** — same matches, same delivery order.
//!
//! The merge is *streaming*: it never waits for end of document. Each
//! shard advances a **watermark** — the highest event sequence number it
//! has fully processed — with every report, and the merger releases a
//! match as soon as every shard's watermark has passed the match's event,
//! because no shard can still produce anything that sorts earlier. This
//! keeps the sharded engine incremental (solutions reach the subscriber
//! callback while the document is still streaming) without ever
//! reordering against the single-threaded reference.
//!
//! The merge is agnostic to **how** events reached the workers. Under the
//! overlapped front-end, publisher threads feed the shard rings out of
//! order and workers reorder batches locally before applying them, so
//! watermarks still advance monotonically — but they may *jump*: a worker
//! that applies a stashed run of batches reports one watermark covering
//! the whole run, and filtered events consume sequence numbers without
//! ever shipping, so consecutive reports can skip arbitrarily many seqs.
//! Both are fine: `push` only requires monotonicity (an equal watermark
//! re-report is a no-op), and release needs no per-seq bookkeeping — only
//! the min across shards.

use std::collections::VecDeque;
use std::time::Instant;

use crate::result::Match;
use crate::telemetry::Telemetry;

/// One match tagged with its global ordering key.
#[derive(Debug, Clone)]
pub(crate) struct TaggedMatch {
    /// Sequence number (1-based) of the document event that emitted the
    /// match.
    pub(crate) seq: u64,
    /// Plan group that produced it (the subscriber fan-out happens after
    /// the merge, on the document thread).
    pub(crate) gid: u32,
    /// The match payload (`Arc`-backed strings, so it crossed the thread
    /// boundary without deep-copying).
    pub(crate) m: Match,
}

/// One shard's in-flight stream state.
#[derive(Debug, Default)]
struct ShardStream {
    /// Matches received but not yet released, already sorted by
    /// `(seq, gid)` — a worker processes events in sequence order and
    /// groups in ascending gid order. Each match carries its arrival
    /// instant (`None` with telemetry disabled) so release latency — time
    /// held waiting on other shards' watermarks — can be observed.
    queue: VecDeque<(TaggedMatch, Option<Instant>)>,
    /// Every event with `seq <= watermark` is fully processed by this
    /// shard; it can produce nothing earlier.
    watermark: u64,
}

/// K-way watermark merge of shard match streams into the single-threaded
/// emission order.
#[derive(Debug)]
pub(crate) struct MatchMerger {
    shards: Vec<ShardStream>,
    telemetry: Telemetry,
    /// Cost-attribution mode: stamp arrivals and accumulate per-group
    /// hold time even when the metrics registry is disabled.
    profiled: bool,
    /// Per-group `(deliveries, hold_ns)` accumulated on release while
    /// profiling; drained per document by [`MatchMerger::take_holds`].
    holds: std::collections::BTreeMap<u32, (u64, u64)>,
}

impl MatchMerger {
    /// A merger for `nshards` streams, all watermarks at zero (sequence
    /// numbers are 1-based, so nothing is releasable yet).
    #[cfg(test)]
    pub(crate) fn new(nshards: usize) -> Self {
        MatchMerger::with_profile(nshards, Telemetry::disabled(), false)
    }

    /// A merger that records hold depth, release latency and release
    /// counts into `telemetry`; with `profiled` it additionally
    /// attributes release counts and hold latency to plan groups for the
    /// cost ledger, independent of whether the registry is enabled.
    pub(crate) fn with_profile(nshards: usize, telemetry: Telemetry, profiled: bool) -> Self {
        MatchMerger {
            shards: (0..nshards).map(|_| ShardStream::default()).collect(),
            telemetry,
            profiled,
            holds: std::collections::BTreeMap::new(),
        }
    }

    /// Drains the per-group `(deliveries, hold_ns)` attribution gathered
    /// since the last call. Empty unless profiling was requested.
    pub(crate) fn take_holds(&mut self) -> Vec<(u32, u64, u64)> {
        let out = self.holds.iter().map(|(&gid, &(n, ns))| (gid, n, ns)).collect();
        self.holds.clear();
        out
    }

    /// Ingests one worker report: `matches` in the shard's emission order
    /// plus the shard's new watermark. Watermarks only move forward.
    pub(crate) fn push(&mut self, shard: usize, matches: Vec<TaggedMatch>, through_seq: u64) {
        let arrived = match self.telemetry.timer() {
            t @ Some(_) => t,
            // The ledger needs hold latency even without the registry.
            None if self.profiled => Some(Instant::now()),
            None => None,
        };
        let s = &mut self.shards[shard];
        debug_assert!(
            matches.windows(2).all(|w| (w[0].seq, w[0].gid) <= (w[1].seq, w[1].gid)),
            "a shard stream arrives sorted by (seq, gid)"
        );
        s.queue.extend(matches.into_iter().map(|m| (m, arrived)));
        debug_assert!(through_seq >= s.watermark, "watermarks are monotonic");
        s.watermark = s.watermark.max(through_seq);
        if self.telemetry.is_enabled() {
            let depth: u64 = self.shards.iter().map(|s| s.queue.len() as u64).sum();
            self.telemetry.gauge_set(|r| &r.merge_hold_depth, depth);
        }
    }

    /// Releases every match now globally ordered — head of some shard
    /// queue, and no shard's watermark is still behind its event — in
    /// `(seq, gid)` order.
    pub(crate) fn drain(&mut self, mut emit: impl FnMut(TaggedMatch)) {
        let safe_seq = self.shards.iter().map(|s| s.watermark).min().unwrap_or(0);
        loop {
            let best = self
                .shards
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.queue.front().map(|(t, _)| ((t.seq, t.gid), i)))
                .min();
            match best {
                Some(((seq, _), i)) if seq <= safe_seq => {
                    let (t, arrived) = self.shards[i].queue.pop_front().expect("head exists");
                    self.telemetry.add(|r| &r.merge_released, 1);
                    self.telemetry.observe_elapsed(|r| &r.merge_release_ns, arrived);
                    if self.profiled {
                        let held = arrived.map(|a| a.elapsed().as_nanos() as u64).unwrap_or(0);
                        let e = self.holds.entry(t.gid).or_insert((0, 0));
                        e.0 += 1;
                        e.1 += held;
                    }
                    emit(t);
                }
                _ => break,
            }
        }
    }

    /// Whether every queue is empty (end-of-document invariant once all
    /// shards have reported through the final event).
    pub(crate) fn is_drained(&self) -> bool {
        self.shards.iter().all(|s| s.queue.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::MatchKind;
    use vitex_xmlsax::pos::ByteSpan;

    fn tm(seq: u64, gid: u32, node: u64) -> TaggedMatch {
        TaggedMatch {
            seq,
            gid,
            m: Match {
                kind: MatchKind::Element,
                node,
                name: Some("a".into()),
                span: ByteSpan::new(0, 1),
                value: None,
                level: 1,
            },
        }
    }

    fn keys(merger: &mut MatchMerger) -> Vec<(u64, u32, u64)> {
        let mut out = Vec::new();
        merger.drain(|t| out.push((t.seq, t.gid, t.m.node)));
        out
    }

    #[test]
    fn holds_matches_until_every_shard_passes_the_event() {
        let mut m = MatchMerger::new(2);
        m.push(0, vec![tm(3, 0, 30)], 5);
        // Shard 1 is only through seq 2: the seq-3 match must wait — shard
        // 1 could still produce a seq-3 match of a lower gid.
        m.push(1, vec![], 2);
        assert_eq!(keys(&mut m), []);
        m.push(1, vec![tm(3, 1, 31)], 5);
        assert_eq!(keys(&mut m), [(3, 0, 30), (3, 1, 31)]);
        assert!(m.is_drained());
    }

    #[test]
    fn merges_same_event_matches_by_group_id() {
        let mut m = MatchMerger::new(3);
        m.push(2, vec![tm(1, 7, 70)], 9);
        m.push(0, vec![tm(1, 2, 20), tm(4, 2, 21)], 9);
        m.push(1, vec![tm(1, 5, 50)], 9);
        assert_eq!(keys(&mut m), [(1, 2, 20), (1, 5, 50), (1, 7, 70), (4, 2, 21)]);
    }

    #[test]
    fn within_group_emission_order_is_preserved() {
        let mut m = MatchMerger::new(1);
        m.push(0, vec![tm(2, 0, 9), tm(2, 0, 4), tm(2, 0, 7)], 2);
        assert_eq!(keys(&mut m), [(2, 0, 9), (2, 0, 4), (2, 0, 7)]);
    }

    #[test]
    fn empty_reports_still_advance_watermarks() {
        let mut m = MatchMerger::new(2);
        m.push(0, vec![tm(1, 0, 1)], 1);
        assert_eq!(keys(&mut m), []);
        m.push(1, vec![], 1);
        assert_eq!(keys(&mut m), [(1, 0, 1)]);
    }
}
