//! The overlapped front-end: parse, admission, publication and matching
//! all running concurrently.
//!
//! The pipelined front-end ([`super::DocPump`]) overlaps matching with
//! parsing, but parse, admission and ring publication still serialize on
//! the document thread. Here that thread shrinks to the **admission
//! walk** — the only inherently serial work: chunk admission, node
//! numbering, symbol interning, broadcast-filter decisions and
//! global-trie [`TriePush`] sequencing for prefix-shared plans — while
//!
//! * parse workers (the [`ParallelReader`] behind
//!   [`ParallelReader::next_batch`]) decode speculative chunks
//!   concurrently and deliver reconciled event batches, and
//! * publisher threads turn admitted windows into shard events — the
//!   `Arc` payload allocation lives here, off the serial path — and push
//!   them into **every** shard ring, tagged with their sequence window.
//!
//! Publishers race, so batches reach a ring out of document order; each
//! worker reorders locally by the [`SeqBatch`] windows, and the
//! `(event seq, group id)` watermark merge then restores single-threaded
//! emission order exactly as in the pipelined path. The output contract
//! is byte-identical across all front-ends: same matches, same callback
//! order, same statistics.
//!
//! Teardown discipline (this is what makes fault handling hang-free):
//! the job channel is dropped and every publisher joined **before** the
//! `DocEnd` batch is pushed — on the success *and* the error path — so
//! by the time workers see `DocEnd` every published window is in their
//! rings and they can always drain to the final watermark. A worker
//! panic arrives as a poisoned report ([`super::ingest_report`] closes
//! the rings, suppresses further callbacks and poisons the session); a
//! parse error stops admission but still sends `DocEnd` at the last
//! admitted sequence number, so the workers quiesce and the error
//! surfaces cleanly.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;

use vitex_xmlsax::event::{CharactersEvent, EndElementEvent, StartElementEvent};
use vitex_xmlsax::par::{ParStats, ParallelConfig, ParallelReader};
use vitex_xmlsax::probe::ProbeHandle;
use vitex_xmlsax::XmlEvent;

use crate::error::EngineResult;
use crate::intern::Symbol;
use crate::multi::MultiOutput;
use crate::plan::TriePush;
use crate::result::{Match, NodeId, QueryId};
use crate::stats::{MachineStats, PlanStats, StreamStats};
use crate::telemetry::{Telemetry, TID_COORDINATOR, TID_PRODUCER_BASE};

use super::merge::MatchMerger;
use super::worker::{EventBatch, Ring, SeqBatch, ShardEvent};
use super::{ingest_report, poison_error, recv_report, ThreadedSession};

/// One admitted event awaiting publication: the owned parser event plus
/// everything the admission walk decided about it (sequence number,
/// resolved symbol, node ids, trie pushes). Publishers turn these into
/// [`ShardEvent`]s — the string payloads become `Arc`-shared there, so
/// the allocation cost is off the admission thread.
enum ShardItem {
    Start {
        seq: u64,
        sym: Option<Symbol>,
        node_id: NodeId,
        attr_id_base: NodeId,
        pushes: Arc<[TriePush]>,
        event: StartElementEvent,
    },
    Text {
        seq: u64,
        node_id: NodeId,
        event: CharactersEvent,
    },
    End {
        seq: u64,
        sym: Option<Symbol>,
        event: EndElementEvent,
    },
}

impl ShardItem {
    fn into_shard_event(self) -> ShardEvent {
        match self {
            ShardItem::Start { seq, sym, node_id, attr_id_base, pushes, event } => {
                ShardEvent::Start {
                    seq,
                    sym,
                    name: event.name.as_str().into(),
                    level: event.level,
                    attrs: event.attributes.as_slice().into(),
                    node_id,
                    attr_id_base,
                    span: event.span,
                    pushes,
                }
            }
            ShardItem::Text { seq, node_id, event } => ShardEvent::Text {
                seq,
                text: event.text.as_str().into(),
                level: event.level,
                node_id,
                span: event.span,
            },
            ShardItem::End { seq, sym, event } => ShardEvent::End {
                seq,
                sym,
                name: event.name.as_str().into(),
                level: event.level,
                element_span: event.element_span,
            },
        }
    }
}

/// One admitted sequence window bound for the rings. `items` holds only
/// the shipped events; the window `(after, through]` also covers events
/// the broadcast filter dropped (they consume sequence numbers without
/// payloads, exactly like the pipelined path).
struct PublishJob {
    after: u64,
    through: u64,
    items: Vec<ShardItem>,
}

/// A publisher thread: pulls admitted windows off the shared job
/// channel, materializes the shard events, and pushes the batch into
/// every ring. Runs until the job channel is dropped — publishers always
/// drain fully, so no published window can go missing (the workers'
/// reorder stash would wait on it forever). `producer` is this thread's
/// index, used only for its trace lane (`TID_PRODUCER_BASE + producer`,
/// a range disjoint from the parse workers').
fn publish_loop(
    producer: usize,
    jobs: &Mutex<Receiver<PublishJob>>,
    rings: &[Arc<Ring<SeqBatch>>],
    telemetry: &Telemetry,
) {
    loop {
        let t_idle = telemetry.timer();
        let job = jobs.lock().expect("publisher job lock").recv();
        telemetry.add_elapsed(|r| &r.producer_idle_ns, t_idle);
        let Ok(job) = job else { return };
        let t_publish = telemetry.timer();
        telemetry.add(|r| &r.producer_batches, 1);
        telemetry.observe(|r| &r.batch_events, job.items.len() as u64);
        let events: EventBatch =
            job.items.into_iter().map(ShardItem::into_shard_event).collect::<Vec<_>>().into();
        let batch = SeqBatch { after: job.after, through: job.through, events };
        for ring in rings {
            ring.push(batch.clone());
        }
        telemetry.record_span(
            "publish",
            "producer",
            TID_PRODUCER_BASE + producer as u32,
            t_publish,
        );
    }
}

/// Streams one owned document through the overlapped front-end. See the
/// module docs for the architecture; the output contract is that of
/// [`super::ThreadedSession::run_document`], byte for byte.
pub(super) fn run_document_overlapped<F: FnMut(QueryId, Match)>(
    t: &mut ThreadedSession<'_>,
    bytes: Vec<u8>,
    config: ParallelConfig,
    mut on_match: F,
) -> EngineResult<(MultiOutput, ParStats)> {
    if let Some(shard) = t.poisoned {
        return Err(poison_error(shard));
    }
    let telemetry = t.driver.telemetry();
    let probe = telemetry.is_enabled().then(|| Arc::new(telemetry.clone()) as ProbeHandle);
    let producers = config.threads.max(1);
    let mut reader = ParallelReader::with_config_probe(bytes, config, probe);
    telemetry.gauge_set(|r| &r.producer_threads, producers as u64);

    let rings = t.rings;
    let interner = t.interner;
    let filter = t.filter;
    let mut matches: Vec<Vec<Match>> = t.record_groups.iter().map(|_| Vec::new()).collect();
    let mut merger =
        MatchMerger::with_profile(t.nshards, telemetry.clone(), t.profile.is_enabled());
    let mut group_stats: Vec<MachineStats> = vec![MachineStats::default(); t.group_slots];
    t.shared_scratch.clear();
    if t.profile.is_enabled() {
        t.shared_scratch.resize(t.group_slots, 0);
    }
    let mut group_bytes = 0u64;
    let mut done = 0usize;
    let mut poisoned: Option<usize> = None;
    if let Some(trie) = &mut t.trie {
        trie.begin_document();
    }

    // Admission-walk state — the overlapped mirror of what
    // `DocumentDriver::run` plus `DocPump` track per document.
    let mut stats = StreamStats::default();
    let mut next_id: NodeId = 0;
    let mut seq = 0u64;
    let mut after = 0u64;
    let mut open_syms: Vec<Option<Symbol>> = Vec::new();
    let mut pushed: Vec<TriePush> = Vec::new();
    let mut trie_open: Vec<u32> = Vec::new();
    let mut trie_frames: Vec<u32> = Vec::new();
    let empty_pushes: Arc<[TriePush]> = Vec::new().into();

    let t_doc = telemetry.timer();
    // Seed DocStart into every ring before any publisher can run: ring
    // FIFO then guarantees each worker resets its document state before
    // it sees any of this document's windows, whatever order the racing
    // publishers deliver them in.
    let doc_start_events: EventBatch =
        vec![ShardEvent::DocStart { assignment: Arc::clone(&t.assignment) }].into();
    let doc_start = SeqBatch { after: 0, through: 0, events: doc_start_events };
    for ring in rings {
        ring.push(doc_start.clone());
    }

    let (job_tx, job_rx): (SyncSender<PublishJob>, Receiver<PublishJob>) =
        sync_channel(producers * 2);
    let job_rx = Mutex::new(job_rx);
    let result: EngineResult<()> = thread::scope(|scope| {
        let job_rx = &job_rx;
        let mut handles = Vec::with_capacity(producers);
        for producer in 0..producers {
            let telemetry = telemetry.clone();
            handles.push(scope.spawn(move || publish_loop(producer, job_rx, rings, &telemetry)));
        }

        let mut trie = t.trie.as_deref_mut();
        let result = loop {
            let batch = match reader.next_batch() {
                Ok(Some(events)) => events,
                Ok(None) => {
                    // The driver counts EndDocument like every other
                    // event; `next_batch` swallows it.
                    stats.events += 1;
                    break Ok(());
                }
                Err(e) => break Err(e.into()),
            };
            let mut items = Vec::with_capacity(batch.len());
            for event in batch {
                stats.events += 1;
                match event {
                    XmlEvent::StartElement(e) => {
                        stats.elements += 1;
                        let node_id = next_id;
                        next_id += 1 + e.attributes.len() as u64;
                        let sym = interner.lookup(e.name.as_str());
                        open_syms.push(sym);
                        let t_ev = telemetry.timer();
                        seq += 1;
                        if let Some(tr) = trie.as_deref_mut() {
                            pushed.clear();
                            tr.advance(sym, e.level, &mut pushed);
                            // Shared trie steps are billed here, on the
                            // admission walk — the same per-(push, routed
                            // group) discipline as the pipelined pump.
                            if !t.shared_scratch.is_empty() {
                                for p in pushed.iter() {
                                    for &gid in tr.routed(p.node as usize) {
                                        t.shared_scratch[gid as usize] += 1;
                                    }
                                }
                            }
                        }
                        if filter.is_some_and(|index| !index.has_element_target(sym)) {
                            debug_assert!(
                                pushed.is_empty(),
                                "filtered events cannot advance the trie"
                            );
                        } else {
                            let pushes: Arc<[TriePush]> = if trie.is_some() {
                                trie_frames.push(trie_open.len() as u32);
                                trie_open.extend(pushed.iter().map(|p| p.node));
                                if pushed.is_empty() {
                                    Arc::clone(&empty_pushes)
                                } else {
                                    pushed.as_slice().into()
                                }
                            } else {
                                Arc::clone(&empty_pushes)
                            };
                            items.push(ShardItem::Start {
                                seq,
                                sym,
                                node_id,
                                attr_id_base: node_id + 1,
                                pushes,
                                event: e,
                            });
                        }
                        telemetry.observe_elapsed(|r| &r.dispatch_ns, t_ev);
                    }
                    XmlEvent::Characters(c) => {
                        stats.text_nodes += 1;
                        let node_id = next_id;
                        next_id += 1;
                        let t_ev = telemetry.timer();
                        seq += 1;
                        if filter.is_none_or(|index| index.has_text_target()) {
                            items.push(ShardItem::Text { seq, node_id, event: c });
                        }
                        telemetry.observe_elapsed(|r| &r.dispatch_ns, t_ev);
                    }
                    XmlEvent::EndElement(e) => {
                        let sym = open_syms.pop().flatten();
                        let t_ev = telemetry.timer();
                        seq += 1;
                        if filter.is_some_and(|index| !index.has_element_target(sym)) {
                            // Skipped: pairs with the skipped start tag
                            // (same symbol, same frozen index).
                        } else {
                            if let Some(tr) = trie.as_deref_mut() {
                                let base = trie_frames.pop().expect("shipped tags pair") as usize;
                                for &node in &trie_open[base..] {
                                    tr.retreat_one(node, e.level);
                                }
                                trie_open.truncate(base);
                            }
                            items.push(ShardItem::End { seq, sym, event: e });
                        }
                        telemetry.observe_elapsed(|r| &r.dispatch_ns, t_ev);
                    }
                    XmlEvent::EndDocument => {
                        unreachable!("next_batch never delivers EndDocument")
                    }
                    XmlEvent::StartDocument { .. }
                    | XmlEvent::Comment(_)
                    | XmlEvent::ProcessingInstruction(_)
                    | XmlEvent::DoctypeDeclaration { .. } => {}
                }
            }
            // Publish the admitted window (blocking on the bounded job
            // channel is the backpressure path), then fold in whatever
            // worker reports have already arrived so merged matches
            // stream to the caller while the document is still parsing.
            if seq > after || !items.is_empty() {
                if job_tx.send(PublishJob { after, through: seq, items }).is_err() {
                    // Every publisher is gone (panicked); the join below
                    // poisons the session.
                    break Ok(());
                }
                after = seq;
            }
            while let Ok(report) = t.rx.try_recv() {
                ingest_report(
                    report,
                    rings,
                    &mut poisoned,
                    &mut merger,
                    &t.subscribers,
                    &mut matches,
                    &mut on_match,
                    &mut group_stats,
                    &mut group_bytes,
                    &mut done,
                    &t.profile,
                );
            }
            if poisoned.is_some() {
                break Ok(());
            }
        };
        // Publishers drain the job channel fully before exiting, so once
        // they are joined every admitted window is in the rings — only
        // then may DocEnd be pushed (the caller does, right after this
        // scope). A panicked publisher breaks that guarantee: windows go
        // missing and the workers could never drain, so poison instead.
        drop(job_tx);
        for handle in handles {
            if handle.join().is_err() {
                for ring in rings {
                    ring.close();
                }
                poisoned.get_or_insert(usize::MAX);
            }
        }
        result
    });

    // Close the document on the worker side even after a parse error —
    // the workers quiesce at the last admitted event and the session
    // stays usable (mirrors the pipelined finish-on-error path).
    let doc_end_events: EventBatch = vec![ShardEvent::DocEnd { seq }].into();
    let doc_end = SeqBatch { after, through: seq, events: doc_end_events };
    for ring in rings {
        ring.push(doc_end.clone());
    }
    while done < t.nshards && poisoned.is_none() {
        match recv_report(t.rx) {
            Some(report) => ingest_report(
                report,
                rings,
                &mut poisoned,
                &mut merger,
                &t.subscribers,
                &mut matches,
                &mut on_match,
                &mut group_stats,
                &mut group_bytes,
                &mut done,
                &t.profile,
            ),
            None => {
                for ring in rings {
                    ring.close();
                }
                poisoned = Some(usize::MAX);
            }
        }
    }
    t.poisoned = poisoned;
    if let Some(shard) = poisoned {
        return Err(poison_error(shard));
    }
    result?;
    debug_assert!(merger.is_drained(), "all shards reported through the final event");

    telemetry.add_elapsed(|r| &r.doc_ns, t_doc);
    telemetry.record_span("document", "stream", TID_COORDINATOR, t_doc);
    telemetry.fold_stream(&stats);

    // Output assembly: identical to `ThreadedSession::run_document`.
    let out_stats: Vec<MachineStats> = t
        .record_groups
        .iter()
        .map(|g| match g {
            Some(gid) => group_stats[*gid].clone(),
            None => MachineStats::default(),
        })
        .collect();
    let mut plan = PlanStats { plan_bytes: t.plan_overhead + group_bytes, ..t.plan };
    if let Some(trie) = &t.trie {
        let run = trie.run_stats();
        plan.prefix_steps_executed = run.steps_executed;
        plan.prefix_steps_saved = run.steps_saved;
        plan.prefix_forks = run.forks;
        plan.prefix_stack_bytes = run.peak_stack_bytes();
    }
    if telemetry.is_enabled() {
        for s in &out_stats {
            telemetry.fold_machine(s);
        }
        telemetry.fold_plan(&plan);
        telemetry.add_matches(matches.iter().map(|m| m.len() as u64).sum());
    }
    if t.profile.is_enabled() {
        t.profile.add_doc();
        // Identical fold discipline to the pipelined path, so the
        // ledger's deterministic section is invariant across front-ends.
        for (i, g) in t.record_groups.iter().enumerate() {
            t.profile.fold_query(QueryId(i), &t.record_texts[i], *g, &out_stats[i], &matches[i]);
        }
        for (gid, canonical) in t.group_canonicals.iter().enumerate() {
            if let Some(canonical) = canonical {
                t.profile.fold_group(
                    gid,
                    canonical,
                    t.subscribers[gid].len() as u64,
                    &group_stats[gid],
                );
            }
        }
        if t.shared_scratch.iter().any(|&n| n > 0) {
            t.profile.add_shared_steps(&t.shared_scratch);
        }
        for (gid, deliveries, ns) in merger.take_holds() {
            t.profile.add_hold(gid as usize, deliveries, ns);
        }
    }
    t.after_document(&group_stats, &telemetry);
    let par_stats = reader.stats();
    telemetry.fold_par(&par_stats);
    Ok((
        MultiOutput {
            matches,
            stats: out_stats,
            plan,
            elements: stats.elements,
            text_nodes: stats.text_nodes,
            events: stats.events,
        },
        par_stats,
    ))
}
