//! The evaluation engine: SAX reader → document driver → TwigM machine.
//!
//! This is the assembled ViteX system of the paper's Figure 2: the XPath
//! parser and TwigM builder run once per query; the
//! [`crate::driver::DocumentDriver`] then streams the document, resolving
//! each element name against the engine's interner once per event and
//! feeding the machine through the symbol-dispatch fast path. All query
//! logic lives in [`crate::machine`]; all document plumbing lives in
//! [`crate::driver`].

use vitex_xmlsax::event::{CharactersEvent, EndElementEvent, StartElementEvent};
use vitex_xmlsax::{EventSource, XmlReader};
use vitex_xpath::query_tree::QueryTree;

use crate::builder::{BuildError, EvalMode, MachineSpec};
use crate::driver::{DocumentDriver, EventSink};
use crate::error::EngineResult;
use crate::intern::{Interner, Symbol};
use crate::machine::TwigM;
use crate::result::{Match, NodeId};
use crate::stats::MachineStats;

/// Everything a full evaluation run reports.
#[derive(Debug, Clone)]
pub struct EvalOutput {
    /// The solutions, in emission (completion) order.
    pub matches: Vec<Match>,
    /// Machine instrumentation for the run.
    pub stats: MachineStats,
    /// Elements seen.
    pub elements: u64,
    /// Text nodes seen.
    pub text_nodes: u64,
    /// Total SAX events processed.
    pub events: u64,
}

/// A reusable query engine: build once, run over many documents.
pub struct Engine {
    machine: TwigM,
    interner: Interner,
    driver: DocumentDriver,
}

impl Engine {
    /// Compiles `tree` in the default (compact) mode.
    pub fn new(tree: &QueryTree) -> Result<Self, BuildError> {
        Engine::with_mode(tree, EvalMode::Compact)
    }

    /// Compiles `tree` with an explicit evaluation mode.
    pub fn with_mode(tree: &QueryTree, mode: EvalMode) -> Result<Self, BuildError> {
        let mut interner = Interner::new();
        let spec = MachineSpec::compile_with(tree, &mut interner)?;
        Ok(Engine {
            machine: TwigM::from_spec(spec, mode),
            interner,
            driver: DocumentDriver::new(),
        })
    }

    /// Convenience: compiles a query string.
    pub fn from_query(query: &str) -> EngineResult<Self> {
        let tree = QueryTree::parse(query)?;
        Ok(Engine::new(&tree)?)
    }

    /// The underlying machine (for its spec and statistics).
    pub fn machine(&self) -> &TwigM {
        &self.machine
    }

    /// Attaches a telemetry handle: the driver records stream counters and
    /// dispatch timing, and each run folds the machine's counters and the
    /// match count into the registry.
    pub fn set_telemetry(&mut self, telemetry: crate::telemetry::Telemetry) {
        self.driver.set_telemetry(telemetry);
    }

    /// Streams `reader` through the machine, invoking `on_match` for every
    /// solution the moment it becomes decidable. Resets the machine first,
    /// so an engine can be reused across documents. Accepts any
    /// [`EventSource`] (sequential or parallel front-end).
    pub fn run<E: EventSource, F: FnMut(Match)>(
        &mut self,
        reader: E,
        on_match: F,
    ) -> EngineResult<EvalOutput> {
        self.machine.reset();
        let mut matches = Vec::new();
        let stream = {
            let mut sink = EngineSink {
                machine: &mut self.machine,
                interner: &self.interner,
                matches: &mut matches,
                on_match,
            };
            self.driver.run(reader, &mut sink)?
        };
        debug_assert!(self.machine.is_quiescent(), "well-formed input drains all stacks");
        let telemetry = self.driver.telemetry();
        telemetry.fold_machine(self.machine.stats());
        telemetry.add_matches(matches.len() as u64);
        Ok(EvalOutput {
            matches,
            stats: self.machine.stats().clone(),
            elements: stream.elements,
            text_nodes: stream.text_nodes,
            events: stream.events,
        })
    }
}

/// The single-query [`EventSink`]: every event goes to the one machine.
struct EngineSink<'a, F: FnMut(Match)> {
    machine: &'a mut TwigM,
    interner: &'a Interner,
    matches: &'a mut Vec<Match>,
    on_match: F,
}

impl<F: FnMut(Match)> EventSink for EngineSink<'_, F> {
    fn resolve(&mut self, name: &str) -> Option<Symbol> {
        self.interner.lookup(name)
    }

    fn start_element(
        &mut self,
        sym: Option<Symbol>,
        event: &StartElementEvent,
        node_id: NodeId,
        attr_id_base: NodeId,
    ) {
        let matches = &mut *self.matches;
        let on_match = &mut self.on_match;
        self.machine.start_element_interned(
            sym,
            event.name.as_str(),
            event.level,
            &event.attributes,
            node_id,
            attr_id_base,
            event.span,
            &mut |m| {
                matches.push(m.clone());
                on_match(m);
            },
        );
    }

    fn characters(&mut self, event: &CharactersEvent, node_id: NodeId) {
        let matches = &mut *self.matches;
        let on_match = &mut self.on_match;
        self.machine.characters(&event.text, event.level, node_id, event.span, &mut |m| {
            matches.push(m.clone());
            on_match(m);
        });
    }

    fn end_element(&mut self, _sym: Option<Symbol>, event: &EndElementEvent) {
        let matches = &mut *self.matches;
        let on_match = &mut self.on_match;
        self.machine.end_element(event.name.as_str(), event.level, event.element_span, &mut |m| {
            matches.push(m.clone());
            on_match(m);
        });
    }
}

/// Evaluates a prepared query tree over any event source, collecting all
/// matches.
pub fn evaluate_reader<E: EventSource>(reader: E, tree: &QueryTree) -> EngineResult<EvalOutput> {
    let mut engine = Engine::new(tree)?;
    engine.run(reader, |_| {})
}

/// One-call evaluation of a query string over an in-memory document.
///
/// ```
/// let ms = vitex_core::evaluate_str("<a><b/><c/><b/></a>", "//b").unwrap();
/// assert_eq!(ms.len(), 2);
/// ```
pub fn evaluate_str(xml: &str, query: &str) -> EngineResult<Vec<Match>> {
    let tree = QueryTree::parse(query)?;
    Ok(evaluate_reader(XmlReader::from_str(xml), &tree)?.matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::MatchKind;

    #[test]
    fn evaluate_str_basics() {
        let ms = evaluate_str("<a><b>x</b><c><b>y</b></c></a>", "//a//b").unwrap();
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().all(|m| m.kind == MatchKind::Element));
    }

    #[test]
    fn matches_carry_spans_for_fragment_extraction() {
        let xml = "<a><b id=\"1\">x</b></a>";
        let ms = evaluate_str(xml, "//b").unwrap();
        assert_eq!(ms.len(), 1);
        let frag = ms[0].span.slice(xml.as_bytes()).unwrap();
        assert_eq!(frag, b"<b id=\"1\">x</b>");
    }

    #[test]
    fn paper_q2_shape() {
        let xml = "<ProteinDatabase>\
            <ProteinEntry id=\"p1\"><reference>r</reference></ProteinEntry>\
            <ProteinEntry id=\"p2\"></ProteinEntry>\
            </ProteinDatabase>";
        let ms = evaluate_str(xml, "//ProteinEntry[reference]/@id").unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value.as_deref(), Some("p1"));
        assert_eq!(ms[0].kind, MatchKind::Attribute);
    }

    #[test]
    fn incremental_callback_fires_before_document_end() {
        // The match for the first <b> must be delivered at its endElement,
        // not at document end — record the count of elements seen at
        // callback time via a shared cell.
        let xml = "<a><b/><later/><later/></a>";
        let tree = QueryTree::parse("//b").unwrap();
        let mut engine = Engine::new(&tree).unwrap();
        let mut at_emit = Vec::new();
        let out = engine.run(XmlReader::from_str(xml), |m| at_emit.push(m.node)).unwrap();
        assert_eq!(out.matches.len(), 1);
        assert_eq!(at_emit, vec![1]);
    }

    #[test]
    fn engine_is_reusable_across_documents() {
        let tree = QueryTree::parse("//b").unwrap();
        let mut engine = Engine::new(&tree).unwrap();
        let a = engine.run(XmlReader::from_str("<a><b/></a>"), |_| {}).unwrap();
        let b = engine.run(XmlReader::from_str("<a><b/><b/></a>"), |_| {}).unwrap();
        assert_eq!(a.matches.len(), 1);
        assert_eq!(b.matches.len(), 2);
        assert_eq!(b.stats.emitted, 2, "stats reset between runs");
    }

    #[test]
    fn malformed_xml_surfaces_error() {
        assert!(evaluate_str("<a><b></a>", "//b").is_err());
    }

    #[test]
    fn bad_query_surfaces_error() {
        assert!(evaluate_str("<a/>", "not a query").is_err());
    }

    #[test]
    fn counts_are_reported() {
        let tree = QueryTree::parse("//b").unwrap();
        let mut engine = Engine::new(&tree).unwrap();
        let out = engine.run(XmlReader::from_str("<a><b>t</b><c/></a>"), |_| {}).unwrap();
        assert_eq!(out.elements, 3);
        assert_eq!(out.text_nodes, 1);
        assert!(out.events >= 8);
    }

    #[test]
    fn node_ids_count_attributes() {
        // ids: a=0 (attrs 1,2), b=3 → //b matches node 3.
        let ms = evaluate_str("<a x=\"1\" y=\"2\"><b/></a>", "//b").unwrap();
        assert_eq!(ms[0].node, 3);
        // and attribute matches use the attribute's own id.
        let ms = evaluate_str("<a x=\"1\" y=\"2\"><b/></a>", "//a/@y").unwrap();
        assert_eq!(ms[0].node, 2);
    }

    #[test]
    fn interned_and_string_dispatch_agree() {
        // The engine path (symbol dispatch through the driver) and the raw
        // string API must produce identical results — including on names
        // absent from the query (symbol `None`).
        use vitex_xmlsax::XmlEvent;
        let xml = "<a><x/><b>t</b><x><b/></x></a>";
        let tree = QueryTree::parse("//a/*[b]").unwrap();
        let engine_ids: Vec<u64> =
            evaluate_str(xml, "//a/*[b]").unwrap().iter().map(|m| m.node).collect();
        // Drive a machine manually through the string API.
        let mut machine = TwigM::new(&tree).unwrap();
        let mut next_id = 0u64;
        let mut manual_ids = Vec::new();
        for event in XmlReader::from_str(xml).collect_events().unwrap() {
            match event {
                XmlEvent::StartElement(e) => {
                    let id = next_id;
                    next_id += 1 + e.attributes.len() as u64;
                    machine.start_element(
                        e.name.as_str(),
                        e.level,
                        &e.attributes,
                        id,
                        id + 1,
                        e.span,
                        &mut |m| manual_ids.push(m.node),
                    );
                }
                XmlEvent::Characters(c) => {
                    let id = next_id;
                    next_id += 1;
                    machine
                        .characters(&c.text, c.level, id, c.span, &mut |m| manual_ids.push(m.node));
                }
                XmlEvent::EndElement(e) => {
                    machine.end_element(e.name.as_str(), e.level, e.element_span, &mut |m| {
                        manual_ids.push(m.node)
                    });
                }
                _ => {}
            }
        }
        assert_eq!(engine_ids, manual_ids);
    }
}
