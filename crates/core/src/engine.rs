//! The evaluation engine: SAX reader → TwigM machine → matches.
//!
//! This is the assembled ViteX system of the paper's Figure 2: the XPath
//! parser and TwigM builder run once per query; the SAX parser and TwigM
//! machine then stream the document. The engine's only jobs are document-
//! order node numbering (elements, their attributes, text nodes) and event
//! plumbing — all query logic lives in [`crate::machine`].

use std::io::Read;

use vitex_xmlsax::{XmlEvent, XmlReader};
use vitex_xpath::query_tree::QueryTree;

use crate::builder::{BuildError, EvalMode};
use crate::error::EngineResult;
use crate::machine::TwigM;
use crate::result::{Match, NodeId};
use crate::stats::MachineStats;

/// Everything a full evaluation run reports.
#[derive(Debug, Clone)]
pub struct EvalOutput {
    /// The solutions, in emission (completion) order.
    pub matches: Vec<Match>,
    /// Machine instrumentation for the run.
    pub stats: MachineStats,
    /// Elements seen.
    pub elements: u64,
    /// Text nodes seen.
    pub text_nodes: u64,
    /// Total SAX events processed.
    pub events: u64,
}

/// A reusable query engine: build once, run over many documents.
pub struct Engine {
    machine: TwigM,
}

impl Engine {
    /// Compiles `tree` in the default (compact) mode.
    pub fn new(tree: &QueryTree) -> Result<Self, BuildError> {
        Engine::with_mode(tree, EvalMode::Compact)
    }

    /// Compiles `tree` with an explicit evaluation mode.
    pub fn with_mode(tree: &QueryTree, mode: EvalMode) -> Result<Self, BuildError> {
        Ok(Engine { machine: TwigM::with_mode(tree, mode)? })
    }

    /// Convenience: compiles a query string.
    pub fn from_query(query: &str) -> EngineResult<Self> {
        let tree = QueryTree::parse(query)?;
        Ok(Engine::new(&tree)?)
    }

    /// The underlying machine (for its spec and statistics).
    pub fn machine(&self) -> &TwigM {
        &self.machine
    }

    /// Streams `reader` through the machine, invoking `on_match` for every
    /// solution the moment it becomes decidable. Resets the machine first,
    /// so an engine can be reused across documents.
    pub fn run<R: Read, F: FnMut(Match)>(
        &mut self,
        mut reader: XmlReader<R>,
        mut on_match: F,
    ) -> EngineResult<EvalOutput> {
        self.machine.reset();
        let mut next_id: NodeId = 0;
        let mut elements = 0u64;
        let mut text_nodes = 0u64;
        let mut events = 0u64;
        let mut matches = Vec::new();
        loop {
            let event = reader.next_event()?;
            events += 1;
            match event {
                XmlEvent::StartElement(e) => {
                    elements += 1;
                    let elem_id = next_id;
                    next_id += 1 + e.attributes.len() as u64;
                    self.machine.start_element(
                        e.name.as_str(),
                        e.level,
                        &e.attributes,
                        elem_id,
                        elem_id + 1,
                        e.span,
                        &mut |m| {
                            matches.push(m.clone());
                            on_match(m);
                        },
                    );
                }
                XmlEvent::Characters(c) => {
                    text_nodes += 1;
                    let id = next_id;
                    next_id += 1;
                    self.machine.characters(&c.text, c.level, id, c.span, &mut |m| {
                        matches.push(m.clone());
                        on_match(m);
                    });
                }
                XmlEvent::EndElement(e) => {
                    self.machine.end_element(e.name.as_str(), e.level, e.element_span, &mut |m| {
                        matches.push(m.clone());
                        on_match(m);
                    });
                }
                XmlEvent::EndDocument => break,
                XmlEvent::StartDocument { .. }
                | XmlEvent::Comment(_)
                | XmlEvent::ProcessingInstruction(_)
                | XmlEvent::DoctypeDeclaration { .. } => {}
            }
        }
        debug_assert!(self.machine.is_quiescent(), "well-formed input drains all stacks");
        Ok(EvalOutput {
            matches,
            stats: self.machine.stats().clone(),
            elements,
            text_nodes,
            events,
        })
    }
}

/// Evaluates a prepared query tree over a reader, collecting all matches.
pub fn evaluate_reader<R: Read>(
    reader: XmlReader<R>,
    tree: &QueryTree,
) -> EngineResult<EvalOutput> {
    let mut engine = Engine::new(tree)?;
    engine.run(reader, |_| {})
}

/// One-call evaluation of a query string over an in-memory document.
///
/// ```
/// let ms = vitex_core::evaluate_str("<a><b/><c/><b/></a>", "//b").unwrap();
/// assert_eq!(ms.len(), 2);
/// ```
pub fn evaluate_str(xml: &str, query: &str) -> EngineResult<Vec<Match>> {
    let tree = QueryTree::parse(query)?;
    Ok(evaluate_reader(XmlReader::from_str(xml), &tree)?.matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::MatchKind;

    #[test]
    fn evaluate_str_basics() {
        let ms = evaluate_str("<a><b>x</b><c><b>y</b></c></a>", "//a//b").unwrap();
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().all(|m| m.kind == MatchKind::Element));
    }

    #[test]
    fn matches_carry_spans_for_fragment_extraction() {
        let xml = "<a><b id=\"1\">x</b></a>";
        let ms = evaluate_str(xml, "//b").unwrap();
        assert_eq!(ms.len(), 1);
        let frag = ms[0].span.slice(xml.as_bytes()).unwrap();
        assert_eq!(frag, b"<b id=\"1\">x</b>");
    }

    #[test]
    fn paper_q2_shape() {
        let xml = "<ProteinDatabase>\
            <ProteinEntry id=\"p1\"><reference>r</reference></ProteinEntry>\
            <ProteinEntry id=\"p2\"></ProteinEntry>\
            </ProteinDatabase>";
        let ms = evaluate_str(xml, "//ProteinEntry[reference]/@id").unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value.as_deref(), Some("p1"));
        assert_eq!(ms[0].kind, MatchKind::Attribute);
    }

    #[test]
    fn incremental_callback_fires_before_document_end() {
        // The match for the first <b> must be delivered at its endElement,
        // not at document end — record the count of elements seen at
        // callback time via a shared cell.
        let xml = "<a><b/><later/><later/></a>";
        let tree = QueryTree::parse("//b").unwrap();
        let mut engine = Engine::new(&tree).unwrap();
        let mut at_emit = Vec::new();
        let out = engine
            .run(XmlReader::from_str(xml), |m| at_emit.push(m.node))
            .unwrap();
        assert_eq!(out.matches.len(), 1);
        assert_eq!(at_emit, vec![1]);
    }

    #[test]
    fn engine_is_reusable_across_documents() {
        let tree = QueryTree::parse("//b").unwrap();
        let mut engine = Engine::new(&tree).unwrap();
        let a = engine.run(XmlReader::from_str("<a><b/></a>"), |_| {}).unwrap();
        let b = engine.run(XmlReader::from_str("<a><b/><b/></a>"), |_| {}).unwrap();
        assert_eq!(a.matches.len(), 1);
        assert_eq!(b.matches.len(), 2);
        assert_eq!(b.stats.emitted, 2, "stats reset between runs");
    }

    #[test]
    fn malformed_xml_surfaces_error() {
        assert!(evaluate_str("<a><b></a>", "//b").is_err());
    }

    #[test]
    fn bad_query_surfaces_error() {
        assert!(evaluate_str("<a/>", "not a query").is_err());
    }

    #[test]
    fn counts_are_reported() {
        let tree = QueryTree::parse("//b").unwrap();
        let mut engine = Engine::new(&tree).unwrap();
        let out = engine
            .run(XmlReader::from_str("<a><b>t</b><c/></a>"), |_| {})
            .unwrap();
        assert_eq!(out.elements, 3);
        assert_eq!(out.text_nodes, 1);
        assert!(out.events >= 8);
    }

    #[test]
    fn node_ids_count_attributes() {
        // ids: a=0 (attrs 1,2), b=3 → //b matches node 3.
        let ms = evaluate_str("<a x=\"1\" y=\"2\"><b/></a>", "//b").unwrap();
        assert_eq!(ms[0].node, 3);
        // and attribute matches use the attribute's own id.
        let ms = evaluate_str("<a x=\"1\" y=\"2\"><b/></a>", "//a/@y").unwrap();
        assert_eq!(ms[0].node, 2);
    }
}
