//! # vitex-core — the TwigM streaming XPath machine
//!
//! This crate is the primary contribution of the ViteX paper (Chen,
//! Davidson, Zheng — ICDE 2005): a streaming XPath processor that evaluates
//! XP{/, //, *, []} queries over a single sequential scan of XML in
//! **polynomial time and space**, even though a single XML node may
//! participate in an *exponential* number of pattern matches on recursive
//! data.
//!
//! ## How it works (paper §3, reconstructed in detail in DESIGN.md §4)
//!
//! * [`builder`] compiles a [`vitex_xpath::QueryTree`] into a **TwigM
//!   machine** in time linear in the query size: one machine node per query
//!   node, each element-test machine node owning a **stack**.
//! * [`machine::TwigM`] consumes SAX events. A stack entry is the paper's
//!   triplet — *(level of the XML node, match status of its query children,
//!   candidate solutions)* — and compactly encodes **all** pattern matches
//!   the open XML nodes participate in.
//! * On `endElement` the popped entry's match flags are *bookkept* into the
//!   parent machine node's stack, and candidate solutions are forwarded
//!   (when the entry's predicates are satisfied) or lazily re-attached to
//!   an outer candidate ancestor (when they are not). A candidate that
//!   reaches the root machine node fully satisfied **is** a query solution
//!   and is emitted immediately — the paper's incremental delivery.
//! * Pattern matches are never enumerated: a candidate lives in exactly one
//!   stack entry at a time, which is what turns the exponential match space
//!   into `O(|D|·|Q|·(|Q|+B))` work.
//!
//! ## Entry points
//!
//! * [`evaluate_str`] / [`evaluate_reader`] — one-call evaluation.
//! * [`engine::Engine`] — incremental: feed events, receive matches via a
//!   callback as soon as they are decidable.
//! * [`multi::MultiEngine`] — publish/subscribe: many standing queries,
//!   one scan, with an interned-name dispatch index so an event only
//!   touches interested machines.
//! * [`shard::ShardedEngine`] — the same pub/sub surface executed on `N`
//!   worker threads: plan groups are partitioned across shards, events
//!   broadcast over bounded rings, and per-shard match streams merged
//!   back into deterministic single-threaded order; its
//!   [`shard::ShardSession`] streams document collections back-to-back
//!   through warm workers.
//! * [`plan::QueryPlanner`] — the shared-prefix query planner behind
//!   `MultiEngine`: canonicalizes queries, dedupes structural duplicates
//!   into one machine with a subscriber fan-out list, and tries main-path
//!   steps so overlapping subscriptions share plan structure. Under
//!   [`plan::PlanMode::PrefixShared`] the trie also *executes*: its nodes
//!   own the shared main-path match state, advanced once per event, so
//!   per-event planning scales with distinct steps instead of with the
//!   number of standing queries.
//! * [`driver::DocumentDriver`] — the single SAX event loop (node
//!   numbering, counting, symbol resolution) behind both engines; custom
//!   consumers implement [`driver::EventSink`].
//! * [`machine::TwigM`] — the raw machine, for callers with their own event
//!   source.
//!
//! ```
//! let xml = "<book><section><author>C</author>\
//!            <table><position>B</position><cell>A</cell></table>\
//!            </section></book>";
//! let matches = vitex_core::evaluate_str(xml, "//section[author]//table[position]//cell")
//!     .unwrap();
//! assert_eq!(matches.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod builder;
pub mod driver;
pub mod engine;
pub mod error;
pub mod intern;
pub mod machine;
pub mod multi;
pub mod plan;
pub mod predicate;
pub mod result;
pub mod shard;
pub mod stats;
pub mod telemetry;

pub use builder::{BuildError, EvalMode, MachineSpec};
pub use driver::{DocumentDriver, EventSink};
pub use engine::{evaluate_reader, evaluate_str, Engine, EvalOutput};
pub use error::{EngineError, EngineResult};
pub use intern::{Interner, Symbol};
pub use machine::TwigM;
pub use multi::{DispatchMode, MultiEngine, MultiOutput};
pub use plan::{PlanGroup, PlanMode, QueryPlanner};
pub use result::{Match, MatchKind, QueryId};
pub use shard::{Placement, PlacementSnapshot, ShardSession, ShardedEngine};
pub use stats::{MachineStats, PlanStats, StreamStats};
pub use telemetry::{Snapshot, Telemetry};
