//! Value-comparison evaluation with XPath 1.0 semantics.
//!
//! A comparison attaches to a predicate-subtree leaf (`[year > 1999]`,
//! `[@id = 'x']`, `[text() != 'v']`) and is tested against the node's
//! **string-value**: the element's concatenated descendant text, the
//! attribute's value, or the text node's content.
//!
//! Semantics follow XPath 1.0 §3.4:
//! * relational operators (`<`, `<=`, `>`, `>=`) convert both sides to
//!   numbers; any comparison involving NaN is false;
//! * `=` / `!=` against a **numeric** literal convert the node value to a
//!   number (`NaN = n` is false, `NaN != n` is true);
//! * `=` / `!=` against a **string** literal compare strings.

use vitex_xpath::{CmpOp, Literal};

/// XPath 1.0 `number()` conversion of a string: optional whitespace,
/// optional minus, digits with optional fraction; anything else is NaN.
pub fn xpath_number(s: &str) -> f64 {
    let t = s.trim_matches([' ', '\t', '\n', '\r']);
    if t.is_empty() {
        return f64::NAN;
    }
    // XPath's Number grammar is stricter than Rust's float parser (no
    // exponent, no 'inf'/'nan' words, no '+' sign), so validate first.
    let rest = t.strip_prefix('-').unwrap_or(t);
    let mut parts = rest.splitn(2, '.');
    let int_part = parts.next().unwrap_or("");
    let frac_part = parts.next();
    let digits_ok = |p: &str| !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit());
    let valid = match frac_part {
        None => digits_ok(int_part),
        Some(frac) => {
            (digits_ok(int_part) && (frac.is_empty() || digits_ok(frac)))
                || (int_part.is_empty() && digits_ok(frac))
        }
    };
    if !valid {
        return f64::NAN;
    }
    t.parse::<f64>().unwrap_or(f64::NAN)
}

/// Evaluates `node_value <op> literal`.
pub fn compare(node_value: &str, op: CmpOp, literal: &Literal) -> bool {
    match (op, literal) {
        (CmpOp::Eq, Literal::Str(s)) => node_value == s,
        (CmpOp::Ne, Literal::Str(s)) => node_value != s,
        (CmpOp::Eq, Literal::Num(n)) => {
            let v = xpath_number(node_value);
            v == *n // NaN == n is false by IEEE, matching XPath
        }
        (CmpOp::Ne, Literal::Num(n)) => {
            let v = xpath_number(node_value);
            // XPath 1.0: NaN != n is *true*.
            v.is_nan() || v != *n
        }
        (op, lit) => {
            let left = xpath_number(node_value);
            let right = match lit {
                Literal::Num(n) => *n,
                Literal::Str(s) => xpath_number(s),
            };
            if left.is_nan() || right.is_nan() {
                return false;
            }
            match op {
                CmpOp::Lt => left < right,
                CmpOp::Le => left <= right,
                CmpOp::Gt => left > right,
                CmpOp::Ge => left >= right,
                CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_conversion() {
        assert_eq!(xpath_number("42"), 42.0);
        assert_eq!(xpath_number("  -3.5\n"), -3.5);
        assert_eq!(xpath_number(".5"), 0.5);
        assert_eq!(xpath_number("2."), 2.0);
        assert!(xpath_number("").is_nan());
        assert!(xpath_number("abc").is_nan());
        assert!(xpath_number("1 2").is_nan());
        assert!(xpath_number("1e3").is_nan()); // no exponent in XPath 1.0
        assert!(xpath_number("+1").is_nan()); // no unary plus
        assert!(xpath_number("inf").is_nan());
        assert!(xpath_number("-").is_nan());
        assert!(xpath_number(".").is_nan());
    }

    #[test]
    fn string_equality() {
        assert!(compare("abc", CmpOp::Eq, &Literal::Str("abc".into())));
        assert!(!compare("abc", CmpOp::Eq, &Literal::Str("abd".into())));
        assert!(compare("abc", CmpOp::Ne, &Literal::Str("abd".into())));
        assert!(!compare("abc", CmpOp::Ne, &Literal::Str("abc".into())));
        // Case sensitive, whitespace significant.
        assert!(!compare("Abc", CmpOp::Eq, &Literal::Str("abc".into())));
        assert!(!compare(" abc", CmpOp::Eq, &Literal::Str("abc".into())));
    }

    #[test]
    fn numeric_equality() {
        assert!(compare("42", CmpOp::Eq, &Literal::Num(42.0)));
        assert!(compare(" 42 ", CmpOp::Eq, &Literal::Num(42.0)));
        assert!(compare("42.0", CmpOp::Eq, &Literal::Num(42.0)));
        assert!(!compare("abc", CmpOp::Eq, &Literal::Num(42.0)));
        // NaN != n is true in XPath 1.0.
        assert!(compare("abc", CmpOp::Ne, &Literal::Num(42.0)));
        assert!(compare("43", CmpOp::Ne, &Literal::Num(42.0)));
        assert!(!compare("42", CmpOp::Ne, &Literal::Num(42.0)));
    }

    #[test]
    fn relational_operators() {
        assert!(compare("1999", CmpOp::Lt, &Literal::Num(2000.0)));
        assert!(!compare("2000", CmpOp::Lt, &Literal::Num(2000.0)));
        assert!(compare("2000", CmpOp::Le, &Literal::Num(2000.0)));
        assert!(compare("2001", CmpOp::Gt, &Literal::Num(2000.0)));
        assert!(compare("2000", CmpOp::Ge, &Literal::Num(2000.0)));
        assert!(!compare("1999", CmpOp::Ge, &Literal::Num(2000.0)));
    }

    #[test]
    fn relational_with_string_literal_converts() {
        assert!(compare("5", CmpOp::Lt, &Literal::Str("10".into())));
        assert!(!compare("5", CmpOp::Lt, &Literal::Str("abc".into()))); // NaN
    }

    #[test]
    fn relational_with_nan_is_false() {
        assert!(!compare("abc", CmpOp::Lt, &Literal::Num(1.0)));
        assert!(!compare("abc", CmpOp::Gt, &Literal::Num(1.0)));
        assert!(!compare("abc", CmpOp::Le, &Literal::Num(1.0)));
        assert!(!compare("abc", CmpOp::Ge, &Literal::Num(1.0)));
    }
}
