//! The TwigM machine: stacks, transitions, lazy candidate propagation.
//!
//! This is the runtime half of the paper's contribution. Each stacked
//! machine node owns a stack of `Entry` values — the paper's triplet
//! *(level, match status of query children, candidate solutions)*. The
//! transition functions below implement the `startElement` / `characters` /
//! `endElement` behaviour described in §3.2 of the paper, reconstructed
//! precisely in DESIGN.md §4:
//!
//! * **push** — an element is pushed onto every machine node whose name
//!   test it satisfies *and* whose axis is witnessed by the parent machine
//!   node's stack (child: an open entry exactly one level up; descendant:
//!   any open entry). Axis checks use the stack state *before* this
//!   element's own pushes, so an element can never serve as its own
//!   ancestor (relevant for queries like `//a//a`).
//! * **bookkeeping at pop** — when an element closes, its entries pop
//!   (innermost query nodes first). A satisfied *predicate* entry sets its
//!   match flag on **every** compatible parent entry — flags are single
//!   bits, so this eager fan-out is cheap and encodes what would otherwise
//!   be exponentially many match combinations. A satisfied *main-path*
//!   entry forwards its candidate solutions one query level up, attaching
//!   them to the **deepest** compatible parent entry; outer alternatives
//!   are preserved by a lazy *inheritance* rule (see below) instead of
//!   eager copying.
//! * **lazy inheritance** — a candidate records the lowest stack index it
//!   is compatible with (`low`). When the entry holding it pops, the
//!   candidate slides to the entry below (if still ≥ `low`) — its chances
//!   through outer ancestors stay alive without ever materializing the
//!   match combinations. When a satisfied entry *forwards* candidates, a
//!   copy also slides down (marked `shared`), because chains through outer
//!   entries may succeed where the inner chain's continuation fails;
//!   `shared` candidates are deduplicated at emission so each solution is
//!   reported exactly once.
//! * **emission** — candidates on a satisfied entry of the machine *root*
//!   are solutions (paper: "a node matching the root of TwigM ensures that
//!   the candidate solutions associated with it are indeed query
//!   solutions") and are handed to the caller immediately.

use std::collections::HashSet;
use std::mem::size_of;
use std::sync::Arc;

use vitex_xmlsax::event::Attribute;
use vitex_xmlsax::pos::ByteSpan;
use vitex_xpath::query_tree::QueryTree;
use vitex_xpath::{Axis, CmpOp, Literal};

use crate::bitset::SmallBitSet;
use crate::builder::{BuildError, EvalMode, MachineSpec};
use crate::intern::Symbol;
use crate::predicate;
use crate::result::{Match, MatchKind};
use crate::stats::MachineStats;

/// A stack entry: the paper's *(level, match flags, candidates)* triplet,
/// plus the parent-stack pointer that makes the compact encoding work.
#[derive(Debug, Clone)]
struct Entry {
    /// Depth of the open XML element this entry stands for.
    level: u32,
    /// Index of the top of the parent machine node's stack at push time:
    /// the deepest compatible ancestor. For descendant axes every entry at
    /// index ≤ `ptr` is compatible; for child axes exactly the entry at
    /// `ptr` is.
    ptr: u32,
    /// Document-order id of the element.
    node_id: u64,
    /// One bit per predicate child of the query node: has a complete match
    /// of that child subtree been bookkept onto this entry?
    flags: SmallBitSet,
    /// Candidate solutions currently waiting on this entry.
    cands: CandList,
    /// Accumulated descendant text (only for predicate leaves carrying a
    /// value comparison).
    text: Option<String>,
}

/// A candidate solution attached to a stack entry.
#[derive(Debug, Clone)]
struct Candidate {
    /// Lowest index in the *current* stack this candidate may slide down
    /// to (compatibility bound).
    low: u32,
    /// Another live instance of this candidate may exist (created by
    /// forward-time down-copying); emission must deduplicate.
    shared: bool,
    /// The payload that becomes a [`Match`].
    item: CandItem,
}

#[derive(Debug, Clone, PartialEq)]
struct CandItem {
    kind: MatchKind,
    node: u64,
    name: Option<Arc<str>>,
    span: ByteSpan,
    value: Option<Arc<str>>,
    level: u32,
}

impl CandItem {
    fn heap_bytes(&self) -> u64 {
        (self.name.as_ref().map_or(0, |n| n.len()) + self.value.as_ref().map_or(0, |v| v.len()))
            as u64
    }

    fn into_match(self) -> Match {
        Match {
            kind: self.kind,
            node: self.node,
            name: self.name,
            span: self.span,
            value: self.value,
            level: self.level,
        }
    }
}

fn cand_bytes(c: &Candidate) -> u64 {
    size_of::<Candidate>() as u64 + c.item.heap_bytes()
}

/// Once a list holds this many candidates, membership checks switch from a
/// linear scan to a hash index (one long-lived entry — e.g. the root
/// binding of a selective query — can accumulate the whole result set).
const CAND_INDEX_THRESHOLD: usize = 32;

/// An entry's candidate buffer with amortized O(1) duplicate detection.
#[derive(Debug, Clone, Default)]
struct CandList {
    items: Vec<Candidate>,
    index: Option<HashSet<u64>>,
}

impl CandList {
    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends a candidate known to be absent (freshly created ids).
    fn push_new(&mut self, c: Candidate) {
        if let Some(ix) = &mut self.index {
            ix.insert(c.item.node);
        }
        self.items.push(c);
        if self.index.is_none() && self.items.len() >= CAND_INDEX_THRESHOLD {
            self.index = Some(self.items.iter().map(|c| c.item.node).collect());
        }
    }

    /// Adds an arriving candidate, merging with an existing instance of
    /// the same solution (widest compatibility range wins).
    fn merge_or_push(&mut self, stats: &mut MachineStats, cand: Candidate) {
        let present = match &self.index {
            Some(ix) => ix.contains(&cand.item.node),
            None => self.items.iter().any(|c| c.item.node == cand.item.node),
        };
        if present {
            let existing = self
                .items
                .iter_mut()
                .find(|c| c.item.node == cand.item.node)
                .expect("index agrees with items");
            existing.low = existing.low.min(cand.low);
            existing.shared |= cand.shared;
            stats.on_candidate_merged(cand_bytes(&cand));
        } else {
            self.push_new(cand);
        }
    }

    /// Removes and returns all candidates (dropping the index).
    fn drain(&mut self) -> std::vec::Drain<'_, Candidate> {
        self.index = None;
        self.items.drain(..)
    }
}

fn entry_base_bytes(e: &Entry) -> u64 {
    size_of::<Entry>() as u64 + e.flags.heap_bytes() as u64
}

/// The TwigM machine.
///
/// Feed it SAX events ([`TwigM::start_element`], [`TwigM::characters`],
/// [`TwigM::end_element`]); solutions come out of the `emit` callback of
/// `end_element` as soon as they are decidable. [`crate::engine::Engine`]
/// wires an [`vitex_xmlsax::XmlReader`] to this interface.
#[derive(Debug)]
pub struct TwigM {
    spec: MachineSpec,
    mode: EvalMode,
    stacks: Vec<Vec<Entry>>,
    /// Reusable per-event push plan (machine node, parent-stack ptr).
    plan: Vec<(u32, u32)>,
    /// Node ids of already-emitted shared candidates.
    emitted: HashSet<u64>,
    stats: MachineStats,
}

impl TwigM {
    /// Builds a machine for a query tree in the default (compact, paper)
    /// mode.
    pub fn new(tree: &QueryTree) -> Result<Self, BuildError> {
        TwigM::with_mode(tree, EvalMode::Compact)
    }

    /// Builds a machine with an explicit evaluation mode.
    pub fn with_mode(tree: &QueryTree, mode: EvalMode) -> Result<Self, BuildError> {
        Ok(TwigM::from_spec(MachineSpec::compile(tree)?, mode))
    }

    /// Wraps an already-compiled spec.
    pub fn from_spec(spec: MachineSpec, mode: EvalMode) -> Self {
        let stacks = spec.nodes.iter().map(|_| Vec::new()).collect();
        TwigM {
            spec,
            mode,
            stacks,
            plan: Vec::new(),
            emitted: HashSet::new(),
            stats: MachineStats::default(),
        }
    }

    /// The compiled layout.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The evaluation mode.
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Approximate resident bytes of the machine at rest: the compiled
    /// spec plus per-node stack headroom (run-time entry/candidate bytes
    /// are tracked live in [`MachineStats`]). The multi-query planner sums
    /// this across plan groups to report the build-memory effect of query
    /// sharing.
    pub fn approx_build_bytes(&self) -> u64 {
        let stacks: usize =
            self.stacks.iter().map(|s| s.capacity() * std::mem::size_of::<Entry>()).sum();
        self.spec.approx_bytes() + (stacks + self.plan.capacity() * 8) as u64
    }

    /// True when no entries are live (before a document and after a
    /// well-formed one).
    pub fn is_quiescent(&self) -> bool {
        self.stacks.iter().all(|s| s.is_empty())
    }

    /// A human-readable snapshot of every machine-node stack — the state
    /// the paper's demo visualizes ("TwigM changes its state according to
    /// the current state and the input event"). One line per stack entry:
    ///
    /// ```text
    /// [2] //table        L5 #4 flags 0/1 cands 1
    /// ```
    pub fn dump_state(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (q, stack) in self.stacks.iter().enumerate() {
            let node = &self.spec.nodes[q];
            let axis = if node.axis == Axis::Descendant { "//" } else { "/" };
            let name = node.name.as_deref().unwrap_or("*");
            let _ = writeln!(
                out,
                "[{q}] {axis}{name}{} ({} entries)",
                if node.is_main { "" } else { " ?" },
                stack.len()
            );
            for e in stack {
                let _ = writeln!(
                    out,
                    "      L{} #{} ptr {} flags {}/{} cands {}",
                    e.level,
                    e.node_id,
                    e.ptr,
                    e.flags.count(),
                    node.nflags,
                    e.cands.items.len()
                );
            }
        }
        out
    }

    /// Clears all run state (stacks, dedup set, statistics) so the machine
    /// can process another document.
    pub fn reset(&mut self) {
        for s in &mut self.stacks {
            s.clear();
        }
        self.emitted.clear();
        self.stats = MachineStats::default();
    }

    // ------------------------------------------------------------- //
    // Transitions
    // ------------------------------------------------------------- //

    /// `startElement`, dispatched by raw name: push onto every machine
    /// node the element matches.
    ///
    /// `node_id` is the element's document-order id; its attributes get ids
    /// `attr_id_base + i`. `tag_span` is the byte span of the start tag
    /// (used as the span of attribute matches). Name resolution hashes the
    /// string against this machine's name index; stream-driving callers go
    /// through [`TwigM::start_element_interned`] instead, which the
    /// [`crate::driver::DocumentDriver`] feeds with a symbol resolved once
    /// per event.
    #[allow(clippy::too_many_arguments)]
    pub fn start_element(
        &mut self,
        name: &str,
        level: u32,
        attributes: &[Attribute],
        node_id: u64,
        attr_id_base: u64,
        tag_span: ByteSpan,
        emit: &mut dyn FnMut(Match),
    ) {
        let mut plan = std::mem::take(&mut self.plan);
        let named = self.spec.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[]);
        self.plan_pushes(named, level, &mut plan);
        self.apply_pushes(&plan, name, level, attributes, node_id, attr_id_base, tag_span, emit);
        self.plan = plan;
    }

    /// `startElement`, dispatched by interned symbol: integer-indexed
    /// lookup instead of a per-machine string hash. `sym` must come from
    /// the interner this machine's spec was compiled with (`None` means
    /// the name is not interned there — only wildcard nodes can match).
    #[allow(clippy::too_many_arguments)]
    pub fn start_element_interned(
        &mut self,
        sym: Option<Symbol>,
        name: &str,
        level: u32,
        attributes: &[Attribute],
        node_id: u64,
        attr_id_base: u64,
        tag_span: ByteSpan,
        emit: &mut dyn FnMut(Match),
    ) {
        let mut plan = std::mem::take(&mut self.plan);
        let named = sym.map(|s| self.spec.machines_for(s)).unwrap_or(&[]);
        self.plan_pushes(named, level, &mut plan);
        self.apply_pushes(&plan, name, level, attributes, node_id, attr_id_base, tag_span, emit);
        self.plan = plan;
    }

    /// Phase 1 of `startElement`: plan all pushes for the `named` and
    /// wildcard machine nodes against the pre-event stack state. Shared by
    /// both dispatch entry points so the string and interned paths can
    /// never diverge.
    fn plan_pushes(&self, named: &[usize], level: u32, plan: &mut Vec<(u32, u32)>) {
        plan.clear();
        for &q in named.iter().chain(&self.spec.wildcards) {
            if let Some(ptr) = self.push_point(q, level) {
                plan.push((q as u32, ptr));
            }
        }
    }

    /// `startElement` under prefix-shared execution: the **main-path**
    /// push decisions arrive pre-computed from the shared plan trie
    /// (`main_plan`, `(machine node, ptr)` pairs in ascending node order —
    /// the trie's stacks mirror this machine's main-path stacks exactly,
    /// so the decisions are the ones [`TwigM::plan_pushes`] would have
    /// made), and only the predicate-subtree nodes are planned here, when
    /// `plan_preds` says this machine has predicate steps testing the
    /// event's name (or a predicate wildcard). Both plans are merged and
    /// applied through the same [`TwigM::apply_pushes`] as the per-group
    /// entry points, so the transition semantics — flags, candidates,
    /// early emission, statistics — cannot diverge between modes.
    ///
    /// Returns the number of entries pushed, which is what the engine's
    /// frame stack uses to touch, at the matching end tag, exactly the
    /// machines that have something to pop.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start_element_prefix(
        &mut self,
        main_plan: &[(u32, u32)],
        plan_preds: bool,
        sym: Option<Symbol>,
        name: &str,
        level: u32,
        attributes: &[Attribute],
        node_id: u64,
        attr_id_base: u64,
        tag_span: ByteSpan,
        emit: &mut dyn FnMut(Match),
    ) -> u32 {
        #[cfg(debug_assertions)]
        for &(q, ptr) in main_plan {
            debug_assert!(self.spec.nodes[q as usize].is_main, "trie drives main nodes only");
            debug_assert_eq!(
                self.push_point(q as usize, level),
                Some(ptr),
                "trie push decision must equal the machine's own"
            );
        }
        let mut plan = std::mem::take(&mut self.plan);
        plan.clear();
        plan.extend_from_slice(main_plan);
        if plan_preds {
            let named = sym.map(|s| self.spec.machines_for(s)).unwrap_or(&[]);
            for &q in named
                .iter()
                .filter(|&&q| !self.spec.nodes[q].is_main)
                .chain(&self.spec.pred_wildcards)
            {
                if let Some(ptr) = self.push_point(q, level) {
                    plan.push((q as u32, ptr));
                }
            }
            // Planning happened against pre-event state, so ordering the
            // merged plan by node index is purely cosmetic determinism.
            plan.sort_unstable_by_key(|&(q, _)| q);
        }
        let pushes = plan.len() as u32;
        self.apply_pushes(&plan, name, level, attributes, node_id, attr_id_base, tag_span, emit);
        self.plan = plan;
        pushes
    }

    /// Phase 2 of `startElement`: apply a planned set of pushes.
    #[allow(clippy::too_many_arguments)]
    fn apply_pushes(
        &mut self,
        plan: &[(u32, u32)],
        name: &str,
        level: u32,
        attributes: &[Attribute],
        node_id: u64,
        attr_id_base: u64,
        tag_span: ByteSpan,
        emit: &mut dyn FnMut(Match),
    ) {
        if !plan.is_empty() {
            self.stats.dispatch_hits += 1;
        }
        for &(q, ptr) in plan {
            self.push_entry(
                q as usize,
                ptr,
                name,
                level,
                attributes,
                node_id,
                attr_id_base,
                tag_span,
                emit,
            );
        }
    }

    /// Where would machine node `q` attach for an element at `level`?
    fn push_point(&self, q: usize, level: u32) -> Option<u32> {
        let node = &self.spec.nodes[q];
        match node.parent {
            None => match node.axis {
                Axis::Child if level != 1 => None,
                _ => Some(0), // ptr unused at the root
            },
            Some(p) => {
                let stack = &self.stacks[p];
                match node.axis {
                    Axis::Child => match stack.last() {
                        Some(top) if top.level + 1 == level => Some(stack.len() as u32 - 1),
                        _ => None,
                    },
                    Axis::Descendant => {
                        if stack.is_empty() {
                            None
                        } else {
                            Some(stack.len() as u32 - 1)
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_entry(
        &mut self,
        q: usize,
        ptr: u32,
        _name: &str,
        level: u32,
        attributes: &[Attribute],
        node_id: u64,
        attr_id_base: u64,
        tag_span: ByteSpan,
        emit: &mut dyn FnMut(Match),
    ) {
        let node = &self.spec.nodes[q];
        let own_index = self.stacks[q].len() as u32;
        let mut flags = SmallBitSet::empty(node.nflags as usize);
        // Inline attribute predicates are decidable right now.
        for ap in &node.attr_preds {
            self.stats.predicate_evals += 1;
            let hit = attributes.iter().any(|a| {
                attr_name_matches(ap.name.as_deref(), a.name.as_str())
                    && cmp_opt(&ap.comparison, &a.value)
            });
            if hit {
                flags.set(ap.slot.expect("predicate tests carry slots") as usize);
                self.stats.flag_propagations += 1;
            }
        }
        // Attribute-result candidates are born here, waiting on this entry.
        let mut cands = CandList::default();
        if let Some(ar) = &node.attr_result {
            for (i, a) in attributes.iter().enumerate() {
                if attr_name_matches(ar.name.as_deref(), a.name.as_str())
                    && cmp_opt(&ar.comparison, &a.value)
                {
                    let c = Candidate {
                        low: own_index,
                        shared: false,
                        item: CandItem {
                            kind: MatchKind::Attribute,
                            node: attr_id_base + i as u64,
                            name: Some(a.name.as_str().into()),
                            span: tag_span,
                            value: Some(a.value.as_str().into()),
                            level,
                        },
                    };
                    self.stats.on_candidate_created(cand_bytes(&c));
                    cands.push_new(c);
                }
            }
        }
        // Early emission: if this is the machine root and its predicates
        // are already satisfied (e.g. it has none), any candidate born here
        // is a solution *now* — deliver it instead of buffering it until
        // the root element closes. This is what makes queries like
        // `//site/people/person/@id` stream with O(1) candidate memory.
        let is_root = node.is_root;
        let nflags = node.nflags as usize;
        let needs_text = node.needs_text;
        if is_root && !cands.is_empty() && flags.all_set(nflags) {
            for c in cands.drain() {
                self.emit_candidate(c, emit);
            }
        }
        let text = needs_text.then(String::new);
        let entry = Entry { level, ptr, node_id, flags, cands, text };
        self.stats.on_push(entry_base_bytes(&entry));
        self.stacks[q].push(entry);
    }

    /// Delivers one candidate as a solution, deduplicating shared
    /// instances so every solution is reported exactly once.
    fn emit_candidate(&mut self, c: Candidate, emit: &mut dyn FnMut(Match)) {
        let bytes = cand_bytes(&c);
        if (c.shared || self.mode == EvalMode::Eager) && !self.emitted.insert(c.item.node) {
            self.stats.on_candidate_suppressed(bytes);
            return;
        }
        self.stats.on_candidate_emitted(bytes);
        emit(c.item.into_match());
    }

    /// `characters`: text predicates, string-value accumulation, text
    /// result candidates. `level` is the depth of the text's parent
    /// element.
    pub fn characters(
        &mut self,
        text: &str,
        level: u32,
        node_id: u64,
        span: ByteSpan,
        emit: &mut dyn FnMut(Match),
    ) {
        // Text predicates of elements whose entry is the direct parent.
        for &q in &self.spec.text_watchers {
            if let Some(top) = self.stacks[q].last_mut() {
                if top.level == level {
                    for tp in &self.spec.nodes[q].text_preds {
                        self.stats.predicate_evals += 1;
                        let slot = tp.slot.expect("predicate tests carry slots") as usize;
                        if !top.flags.get(slot) && cmp_opt(&tp.comparison, text) {
                            top.flags.set(slot);
                            self.stats.flag_propagations += 1;
                        }
                    }
                }
            }
        }
        // String-value accumulation: text belongs to the subtree of every
        // open entry of an accumulating node.
        for &q in &self.spec.text_accumulators {
            for e in self.stacks[q].iter_mut() {
                e.text.as_mut().expect("accumulators carry buffers").push_str(text);
            }
            let n = self.stacks[q].len() as u64;
            self.stats.add_bytes(n * text.len() as u64);
        }
        // Text-result candidates.
        if let Some(p) = self.spec.text_result_parent {
            let own_index = self.stacks[p].len().wrapping_sub(1) as u32;
            let pnode = &self.spec.nodes[p];
            let hot_root = pnode.is_root;
            let nflags = pnode.nflags as usize;
            let mut pending = None;
            if let Some(top) = self.stacks[p].last_mut() {
                if top.level == level {
                    let c = Candidate {
                        low: own_index,
                        shared: false,
                        item: CandItem {
                            kind: MatchKind::Text,
                            node: node_id,
                            name: None,
                            span,
                            value: Some(text.into()),
                            level,
                        },
                    };
                    self.stats.on_candidate_created(cand_bytes(&c));
                    if hot_root && top.flags.all_set(nflags) {
                        pending = Some(c); // early emission (see push_entry)
                    } else {
                        top.cands.push_new(c);
                    }
                }
            }
            if let Some(c) = pending {
                self.emit_candidate(c, emit);
            }
        }
    }

    /// `endElement`: pop every machine node whose top entry belongs to the
    /// closing element, innermost query nodes first, bookkeeping flags and
    /// candidates into parents. Solutions reaching the machine root are
    /// handed to `emit`.
    pub fn end_element(
        &mut self,
        name: &str,
        level: u32,
        element_span: ByteSpan,
        emit: &mut dyn FnMut(Match),
    ) {
        // Reverse id order = children before parents (the builder lays
        // parents out first).
        for q in (0..self.spec.nodes.len()).rev() {
            let needs_pop = matches!(self.stacks[q].last(), Some(top) if top.level == level);
            if needs_pop {
                self.pop_entry(q, name, element_span, emit);
            }
        }
    }

    fn pop_entry(
        &mut self,
        q: usize,
        name: &str,
        element_span: ByteSpan,
        emit: &mut dyn FnMut(Match),
    ) {
        let idx = self.stacks[q].len() - 1;
        let mut e = self.stacks[q].pop().expect("checked by caller");
        let node = &self.spec.nodes[q];

        // Release the entry's byte accounting now; candidate bytes travel
        // with the candidates.
        if let Some(t) = &e.text {
            self.stats.sub_bytes(t.len() as u64);
        }
        let base = entry_base_bytes(&e);

        let preds_ok = e.flags.all_set(node.nflags as usize);
        let cmp_ok = match &node.comparison {
            None => true,
            Some((op, lit)) => {
                self.stats.predicate_evals += 1;
                predicate::compare(e.text.as_deref().unwrap_or(""), *op, lit)
            }
        };
        let satisfied = preds_ok && cmp_ok;

        if !node.is_main {
            // Predicate node: propagate the match flag; no candidates live
            // here.
            debug_assert!(e.cands.is_empty(), "predicate entries never hold candidates");
            if satisfied {
                let slot = node.flag_slot.expect("predicate nodes have slots") as usize;
                let p = node.parent.expect("predicate nodes have parents");
                let stats = &mut self.stats;
                match node.axis {
                    Axis::Child => {
                        set_flag(stats, &mut self.stacks[p][e.ptr as usize], slot);
                    }
                    Axis::Descendant => {
                        for t in &mut self.stacks[p][..=e.ptr as usize] {
                            set_flag(stats, t, slot);
                        }
                    }
                }
            }
            self.stats.on_pop(base);
            return;
        }

        // Main-path node. A satisfied result entry is itself a candidate.
        if node.is_result && satisfied {
            let c = Candidate {
                low: idx as u32,
                shared: false,
                item: CandItem {
                    kind: MatchKind::Element,
                    node: e.node_id,
                    name: Some(name.into()),
                    span: element_span,
                    value: None,
                    level: e.level,
                },
            };
            self.stats.on_candidate_created(cand_bytes(&c));
            e.cands.push_new(c);
        }

        if satisfied && node.is_root {
            // Solutions! Emit immediately (the paper's incremental
            // delivery), deduplicating shared candidates.
            for c in e.cands.drain() {
                self.emit_candidate(c, emit);
            }
        } else if satisfied {
            let p = node.parent.expect("non-root nodes have parents");
            // If the forwarding target is the machine root with all its
            // predicates already satisfied, the candidates are solutions
            // right now — deliver instead of buffering (down-copies would
            // only ever produce duplicates, so they are skipped too).
            let target_hot = {
                let pn = &self.spec.nodes[p];
                pn.is_root && self.stacks[p][e.ptr as usize].flags.all_set(pn.nflags as usize)
            };
            if target_hot {
                for c in e.cands.drain() {
                    self.stats.candidates_forwarded += 1;
                    self.emit_candidate(c, emit);
                }
                self.stats.on_pop(base);
                return;
            }
            match self.mode {
                EvalMode::Compact => {
                    // Outer entries of *this* stack are alternative
                    // attachment points whose upward chains may succeed
                    // where this one's fails: copy candidates down, marked
                    // shared (lazy inheritance keeps them moving).
                    if idx > 0 {
                        let mut copies = Vec::new();
                        for c in &mut e.cands.items {
                            if c.low < idx as u32 {
                                c.shared = true;
                                copies.push(c.clone());
                            }
                        }
                        if !copies.is_empty() {
                            let stats = &mut self.stats;
                            let below = &mut self.stacks[q][idx - 1];
                            for copy in copies {
                                stats.on_candidate_copied(cand_bytes(&copy));
                                merge_candidate(stats, below, copy);
                            }
                        }
                    }
                    // Forward originals to the deepest compatible parent
                    // entry.
                    let new_low = match node.axis {
                        Axis::Child => e.ptr,
                        Axis::Descendant => 0,
                    };
                    let stats = &mut self.stats;
                    let target = &mut self.stacks[p][e.ptr as usize];
                    for mut c in e.cands.drain() {
                        c.low = new_low;
                        stats.candidates_forwarded += 1;
                        merge_candidate(stats, target, c);
                    }
                }
                EvalMode::Eager => {
                    // Strawman: copy to every compatible parent entry.
                    let lo = match node.axis {
                        Axis::Child => e.ptr as usize,
                        Axis::Descendant => 0,
                    };
                    let stats = &mut self.stats;
                    for c in e.cands.drain() {
                        let bytes = cand_bytes(&c);
                        for (t_idx, target) in
                            self.stacks[p][lo..=e.ptr as usize].iter_mut().enumerate()
                        {
                            let mut copy = c.clone();
                            copy.low = (lo + t_idx) as u32;
                            copy.shared = true;
                            if lo + t_idx == e.ptr as usize {
                                stats.candidates_forwarded += 1;
                            } else {
                                stats.on_candidate_copied(cand_bytes(&copy));
                            }
                            merge_candidate(stats, target, copy);
                        }
                        // The original is consumed by its copies.
                        let _ = bytes;
                    }
                }
            }
        } else {
            // Entry died: candidates slide down to the next compatible
            // entry of the same stack, or are discarded at their bound.
            let stats = &mut self.stats;
            if idx > 0 {
                // Split the borrow: the entry is already popped, so the
                // stack top is `idx - 1`.
                let below = self.stacks[q].last_mut().expect("idx > 0 means a lower entry exists");
                for c in e.cands.drain() {
                    if c.low < idx as u32 {
                        stats.candidates_inherited += 1;
                        merge_candidate(stats, below, c);
                    } else {
                        stats.on_candidate_dropped(cand_bytes(&c));
                    }
                }
            } else {
                for c in e.cands.drain() {
                    stats.on_candidate_dropped(cand_bytes(&c));
                }
            }
        }
        self.stats.on_pop(base);
    }
}

/// Sets a flag bit, counting only actual transitions.
fn set_flag(stats: &mut MachineStats, entry: &mut Entry, slot: usize) {
    if !entry.flags.get(slot) {
        entry.flags.set(slot);
        stats.flag_propagations += 1;
    }
}

/// Adds a candidate to an entry, merging with an existing instance of the
/// same document node (keeping the widest compatibility range).
fn merge_candidate(stats: &mut MachineStats, entry: &mut Entry, cand: Candidate) {
    entry.cands.merge_or_push(stats, cand);
}

/// Does an attribute name test (None = `@*`) match a concrete name?
fn attr_name_matches(test: Option<&str>, name: &str) -> bool {
    test.is_none_or(|t| t == name)
}

/// Optional comparison: `None` is existence (always true).
fn cmp_opt(comparison: &Option<(CmpOp, Literal)>, value: &str) -> bool {
    match comparison {
        None => true,
        Some((op, lit)) => predicate::compare(value, *op, lit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitex_xpath::query_tree::QueryTree;

    /// Drives the machine over a tiny hand-rolled event stream.
    struct Driver {
        machine: TwigM,
        level: u32,
        next_id: u64,
        offset: u64,
        matches: Vec<Match>,
    }

    impl Driver {
        fn new(query: &str) -> Self {
            Driver::with_mode(query, EvalMode::Compact)
        }

        fn with_mode(query: &str, mode: EvalMode) -> Self {
            let tree = QueryTree::parse(query).unwrap();
            Driver {
                machine: TwigM::with_mode(&tree, mode).unwrap(),
                level: 0,
                next_id: 0,
                offset: 0,
                matches: Vec::new(),
            }
        }

        fn open(&mut self, name: &str) -> &mut Self {
            self.open_attrs(name, &[])
        }

        fn open_attrs(&mut self, name: &str, attrs: &[(&str, &str)]) -> &mut Self {
            self.level += 1;
            let id = self.next_id;
            self.next_id += 1 + attrs.len() as u64;
            let attrs: Vec<Attribute> = attrs.iter().map(|(n, v)| Attribute::new(*n, *v)).collect();
            let span = ByteSpan::new(self.offset, self.offset + 1);
            self.offset += 1;
            let matches = &mut self.matches;
            self.machine.start_element(name, self.level, &attrs, id, id + 1, span, &mut |m| {
                matches.push(m)
            });
            self
        }

        fn text(&mut self, t: &str) -> &mut Self {
            let id = self.next_id;
            self.next_id += 1;
            let span = ByteSpan::new(self.offset, self.offset + t.len() as u64);
            self.offset += t.len() as u64;
            let matches = &mut self.matches;
            self.machine.characters(t, self.level, id, span, &mut |m| matches.push(m));
            self
        }

        fn close(&mut self, name: &str) -> &mut Self {
            let span = ByteSpan::new(0, self.offset);
            let level = self.level;
            let matches = &mut self.matches;
            self.machine.end_element(name, level, span, &mut |m| matches.push(m));
            self.level -= 1;
            self
        }

        fn leaf(&mut self, name: &str) -> &mut Self {
            self.open(name).close(name)
        }

        fn names(&self) -> Vec<u64> {
            self.matches.iter().map(|m| m.node).collect()
        }
    }

    #[test]
    fn single_step_matches_all() {
        let mut d = Driver::new("//a");
        d.open("a").leaf("a").close("a");
        assert_eq!(d.matches.len(), 2);
        assert!(d.machine.is_quiescent());
    }

    #[test]
    fn child_axis_from_root() {
        let mut d = Driver::new("/a");
        d.open("a").leaf("a").close("a"); // inner a must not match
        assert_eq!(d.matches.len(), 1);
        assert_eq!(d.matches[0].node, 0);
    }

    #[test]
    fn root_name_mismatch_matches_nothing() {
        let mut d = Driver::new("/b");
        d.open("a").leaf("b").close("a"); // b is not the root element
        assert!(d.matches.is_empty());
    }

    #[test]
    fn descendant_chain() {
        let mut d = Driver::new("//a//b");
        d.open("a").open("x").open("b").leaf("b").close("b").close("x").close("a");
        assert_eq!(d.matches.len(), 2);
    }

    #[test]
    fn child_chain_requires_direct_parent() {
        let mut d = Driver::new("//a/b");
        d.open("a").open("x").leaf("b").close("x").leaf("b").close("a");
        // Only the second b (direct child of a) matches.
        assert_eq!(d.matches.len(), 1);
    }

    #[test]
    fn predicate_satisfied_later_in_stream() {
        // The paper's core scenario: the predicate witness (author) arrives
        // after the candidate (cell).
        let mut d = Driver::new("//section[author]//cell");
        d.open("section").leaf("cell").leaf("author").close("section");
        assert_eq!(d.matches.len(), 1);
    }

    #[test]
    fn predicate_never_satisfied_discards() {
        let mut d = Driver::new("//section[author]//cell");
        d.open("section").leaf("cell").close("section");
        assert!(d.matches.is_empty());
        assert_eq!(d.machine.stats().candidates_discarded, 1);
    }

    #[test]
    fn paper_figure_1_single_solution() {
        // Query Q over the Figure 1 document: only cell_8 qualifies, via
        // (section_2, table_7, cell_8).
        let mut d = Driver::new("//section[author]//table[position]//cell");
        d.open("book");
        d.open("section"); // line 2 — has author
        d.open("section"); // line 3
        d.open("section"); // line 4
        d.open("table"); // line 5
        d.open("table"); // line 6
        d.open("table"); // line 7 — has position
        d.open("cell").text("A").close("cell"); // line 8
        d.close("table"); // 9
        d.close("table"); // 10
        d.open("position").text("B").close("position"); // 11
        d.close("table"); // 12
        d.close("section"); // 13
        d.close("section"); // 14
        d.open("author").text("C").close("author"); // 15
        d.close("section"); // 16
        d.close("book"); // 17
        assert_eq!(d.matches.len(), 1, "exactly one solution: cell_8");
        assert_eq!(d.matches[0].name.as_deref(), Some("cell"));
        assert!(d.machine.is_quiescent());
        // The machine saw the 3 candidate paths die for table_7/table_6
        // and succeed for table_5... in the compact encoding this shows up
        // as bookkeeping, not as 9 stored matches.
        assert!(d.machine.stats().peak_candidates <= 4);
    }

    #[test]
    fn alternative_outer_chain_survives_inner_failure() {
        // Regression test for the subtle completeness case discussed in
        // DESIGN.md §4: an inner satisfied step whose own parent fails must
        // not steal the candidate from a viable outer chain.
        //
        // Query: //a[p]/b[q]//c over:
        //   <a> <p/> <b> <a> <b> <q/> <c/> </b> </a> <q/> </b> </a>
        // The only witness chain is (outer a, outer b, c): inner b is
        // satisfied (has q) but its parent a has no p.
        let mut d = Driver::new("//a[p]/b[q]//c");
        d.open("a");
        d.leaf("p");
        d.open("b");
        d.open("a");
        d.open("b");
        d.leaf("q");
        d.leaf("c");
        d.close("b");
        d.close("a");
        d.leaf("q");
        d.close("b");
        d.close("a");
        assert_eq!(d.matches.len(), 1, "the outer chain must witness c");
    }

    #[test]
    fn no_duplicate_emission_when_both_chains_succeed() {
        // Same shape, but both chains are fully satisfied: c must still be
        // reported exactly once.
        let mut d = Driver::new("//a[p]/b[q]//c");
        d.open("a");
        d.leaf("p");
        d.open("b");
        d.open("a");
        d.leaf("p");
        d.open("b");
        d.leaf("q");
        d.leaf("c");
        d.close("b");
        d.close("a");
        d.leaf("q");
        d.close("b");
        d.close("a");
        assert_eq!(d.matches.len(), 1, "exactly-once emission");
    }

    #[test]
    fn recursive_self_query() {
        // //a//a: an element must not act as its own ancestor.
        let mut d = Driver::new("//a//a");
        d.open("a").close("a");
        assert!(d.matches.is_empty(), "a single a has no a ancestor");
        let mut d = Driver::new("//a//a");
        d.open("a").leaf("a").close("a");
        assert_eq!(d.matches.len(), 1);
    }

    #[test]
    fn attribute_predicates() {
        let mut d = Driver::new("//a[@id = 'x']");
        d.open_attrs("a", &[("id", "x")]).close("a");
        d.open_attrs("a", &[("id", "y")]).close("a");
        d.open("a").close("a");
        assert_eq!(d.matches.len(), 1);
        assert_eq!(d.matches[0].node, 0);
    }

    #[test]
    fn attribute_results() {
        let mut d = Driver::new("//a/@id");
        d.open_attrs("a", &[("id", "x"), ("k", "z")]).close("a");
        assert_eq!(d.matches.len(), 1);
        let m = &d.matches[0];
        assert_eq!(m.kind, MatchKind::Attribute);
        assert_eq!(m.name.as_deref(), Some("id"));
        assert_eq!(m.value.as_deref(), Some("x"));
    }

    #[test]
    fn attribute_wildcard_results() {
        let mut d = Driver::new("//a/@*");
        d.open_attrs("a", &[("id", "x"), ("k", "z")]).close("a");
        assert_eq!(d.matches.len(), 2);
    }

    #[test]
    fn attribute_result_waits_for_predicates() {
        let mut d = Driver::new("//a[b]/@id");
        d.open_attrs("a", &[("id", "x")]).leaf("b").close("a");
        d.open_attrs("a", &[("id", "y")]).close("a");
        assert_eq!(d.matches.len(), 1);
        assert_eq!(d.matches[0].value.as_deref(), Some("x"));
    }

    #[test]
    fn text_predicates() {
        let mut d = Driver::new("//a[text() = 'v']");
        d.open("a").text("v").close("a");
        d.open("a").text("w").close("a");
        assert_eq!(d.matches.len(), 1);
        assert_eq!(d.matches[0].node, 0);
    }

    #[test]
    fn text_results() {
        let mut d = Driver::new("//a/text()");
        d.open("a").text("hello").close("a");
        assert_eq!(d.matches.len(), 1);
        assert_eq!(d.matches[0].value.as_deref(), Some("hello"));
        assert_eq!(d.matches[0].kind, MatchKind::Text);
    }

    #[test]
    fn text_result_only_direct_children() {
        let mut d = Driver::new("//a/text()");
        d.open("a").open("b").text("inner").close("b").text("direct").close("a");
        assert_eq!(d.matches.len(), 1);
        assert_eq!(d.matches[0].value.as_deref(), Some("direct"));
    }

    #[test]
    fn string_value_comparison_accumulates_descendant_text() {
        // [b = 'xy'] where b's text is split across a child element.
        let mut d = Driver::new("//a[b = 'xy']");
        d.open("a").open("b").text("x").open("c").text("y").close("c").close("b").close("a");
        assert_eq!(d.matches.len(), 1);
    }

    #[test]
    fn numeric_comparison() {
        let mut d = Driver::new("//book[year > 1999]");
        d.open("book").open("year").text("2003").close("year").close("book");
        d.open("book").open("year").text("1995").close("year").close("book");
        assert_eq!(d.matches.len(), 1);
        assert_eq!(d.matches[0].node, 0);
    }

    #[test]
    fn wildcard_steps() {
        let mut d = Driver::new("//*/b");
        d.open("x").leaf("b").close("x");
        assert_eq!(d.matches.len(), 1);
    }

    #[test]
    fn conjunctive_predicates() {
        let mut d = Driver::new("//a[b and c]");
        d.open("a").leaf("b").close("a");
        d.open("a").leaf("b").leaf("c").close("a");
        assert_eq!(d.matches.len(), 1);
        assert_eq!(d.matches[0].node, 2);
    }

    #[test]
    fn nested_predicates() {
        let mut d = Driver::new("//a[b[c]]");
        d.open("a").open("b").leaf("c").close("b").close("a"); // match
        d.open("a").leaf("b").leaf("c").close("a"); // c not under b
        assert_eq!(d.matches.len(), 1);
        assert_eq!(d.matches[0].node, 0);
    }

    #[test]
    fn eager_mode_agrees_with_compact() {
        for mode in [EvalMode::Compact, EvalMode::Eager] {
            let mut d = Driver::with_mode("//a[p]/b[q]//c", mode);
            d.open("a");
            d.leaf("p");
            d.open("b");
            d.open("a");
            d.leaf("p");
            d.open("b");
            d.leaf("q");
            d.leaf("c");
            d.close("b");
            d.close("a");
            d.leaf("q");
            d.close("b");
            d.close("a");
            assert_eq!(d.matches.len(), 1, "mode {mode:?}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut d = Driver::new("//a");
        d.open("a").close("a");
        assert_eq!(d.machine.stats().emitted, 1);
        d.machine.reset();
        assert_eq!(d.machine.stats().emitted, 0);
        assert!(d.machine.is_quiescent());
    }

    #[test]
    fn stats_balance() {
        let mut d = Driver::new("//section[author]//table[position]//cell");
        d.open("book");
        for _ in 0..3 {
            d.open("section");
        }
        d.open("table").leaf("cell").leaf("position").close("table");
        d.leaf("author");
        for _ in 0..3 {
            d.close("section");
        }
        d.close("book");
        let s = d.machine.stats();
        assert_eq!(s.pushes, s.pops);
        assert_eq!(s.live_entries, 0);
        assert_eq!(s.live_candidates, 0);
        assert_eq!(s.live_bytes, 0);
    }

    #[test]
    fn document_ids_round_trip() {
        let mut d = Driver::new("//b");
        d.open("a").leaf("b").leaf("c").leaf("b").close("a");
        assert_eq!(d.names(), vec![1, 3]);
    }
}
