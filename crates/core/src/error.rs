//! Errors produced by the evaluation engine.

use std::fmt;

use vitex_xmlsax::XmlError;
use vitex_xpath::ParseError;

use crate::builder::BuildError;

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// Any failure while evaluating a query over a stream.
#[derive(Debug)]
pub enum EngineError {
    /// The XML stream was malformed (or I/O failed).
    Xml(XmlError),
    /// The query text failed to parse.
    Query(ParseError),
    /// The query could not be compiled into a machine.
    Build(BuildError),
    /// A shard worker thread died mid-document (the session is poisoned:
    /// subsequent documents on it fail fast with this error).
    Worker(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Xml(e) => write!(f, "XML error: {e}"),
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::Build(e) => write!(f, "machine build error: {e}"),
            EngineError::Worker(msg) => write!(f, "worker error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Xml(e) => Some(e),
            EngineError::Query(e) => Some(e),
            EngineError::Build(e) => Some(e),
            EngineError::Worker(_) => None,
        }
    }
}

impl From<XmlError> for EngineError {
    fn from(e: XmlError) -> Self {
        EngineError::Xml(e)
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Query(e)
    }
}

impl From<BuildError> for EngineError {
    fn from(e: BuildError) -> Self {
        EngineError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_query_errors() {
        let qe = ParseError::new("bad", 3);
        let e: EngineError = qe.into();
        assert!(e.to_string().contains("query error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
