//! The TwigM builder: compiles a [`QueryTree`] into a [`MachineSpec`].
//!
//! The paper's Feature 2: *"The query processor TwigM can be constructed
//! from an XPath query in time which is linear in the size of the query."*
//! The builder below is a single pass over the query tree; experiment E7
//! measures its linearity.
//!
//! ## Layout
//!
//! Only **element-test** query nodes become *stacked* machine nodes (they
//! are the ones XML open/close nesting applies to). Attribute and `text()`
//! query nodes are folded into their parent machine node as inline
//! sub-tests, evaluated directly on `startElement` (attributes) or
//! `characters` (text) events:
//!
//! * an attribute / text **predicate child** occupies one of the parent's
//!   match-flag slots, exactly like an element predicate child;
//! * an attribute / text **result child** (e.g. the `@id` of
//!   `//ProteinEntry[reference]/@id`) makes the parent machine node a
//!   *candidate generator*: matching attributes / text nodes become
//!   candidate solutions attached to the parent's stack entry.

use std::collections::HashMap;
use std::fmt;

use vitex_xpath::query_tree::{NodeKind, QueryTree};
use vitex_xpath::{Axis, CmpOp, Literal};

use crate::intern::{Interner, Symbol};

/// Candidate-propagation strategy — the ablation axis of experiment E6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// The paper's design: a candidate is attached to the *deepest*
    /// compatible stack entry and lazily re-attached (inherited) outward /
    /// upward as entries pop. Polynomial space.
    #[default]
    Compact,
    /// Strawman: candidates are copied to **every** compatible parent
    /// entry at forwarding time. Exposes the duplication the compact
    /// encoding avoids; still better than full match enumeration (that
    /// strawman lives in `vitex-baseline`).
    Eager,
}

/// Errors from compiling a query tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError {
    message: String,
}

impl BuildError {
    fn new(message: impl Into<String>) -> Self {
        BuildError { message: message.into() }
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for BuildError {}

/// An inline attribute sub-test (predicate or result) on a machine node.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrTest {
    /// Attribute name; `None` for `@*`.
    pub name: Option<String>,
    /// Optional value comparison.
    pub comparison: Option<(CmpOp, Literal)>,
    /// Flag slot in the owning machine node's entries (predicates only;
    /// `None` for the result sub-test).
    pub slot: Option<u32>,
}

/// An inline `text()` sub-test on a machine node.
#[derive(Debug, Clone, PartialEq)]
pub struct TextTest {
    /// Optional content comparison.
    pub comparison: Option<(CmpOp, Literal)>,
    /// Flag slot (predicates only).
    pub slot: Option<u32>,
}

/// One stacked machine node (an element-test query node).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineNode {
    /// Axis of the incoming query edge.
    pub axis: Axis,
    /// Parent machine node (index into [`MachineSpec::nodes`]); `None` for
    /// the machine root.
    pub parent: Option<usize>,
    /// Element name to match; `None` is the wildcard.
    pub name: Option<String>,
    /// String-value comparison (predicate-subtree leaves only).
    pub comparison: Option<(CmpOp, Literal)>,
    /// This node's flag slot in its parent's entries (predicate nodes
    /// only).
    pub flag_slot: Option<u32>,
    /// Number of flag slots entries of this node carry (= number of
    /// predicate children of any kind).
    pub nflags: u32,
    /// On the main path?
    pub is_main: bool,
    /// The machine root (first main-path element)?
    pub is_root: bool,
    /// The result node itself (element-result queries)?
    pub is_result: bool,
    /// Entries must accumulate descendant text for `comparison`.
    pub needs_text: bool,
    /// Inline attribute predicate children.
    pub attr_preds: Vec<AttrTest>,
    /// Inline text predicate children.
    pub text_preds: Vec<TextTest>,
    /// Inline attribute result child (this node is the result's parent).
    pub attr_result: Option<AttrTest>,
    /// Inline text result child.
    pub text_result: bool,
}

impl MachineNode {
    /// Whether start-tag processing must look at this node's attributes.
    pub fn wants_attributes(&self) -> bool {
        !self.attr_preds.is_empty() || self.attr_result.is_some()
    }
}

/// The compiled machine layout: everything [`crate::machine::TwigM`] needs,
/// immutable after build, shareable across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Stacked machine nodes; parents precede children.
    pub nodes: Vec<MachineNode>,
    /// Element name → machine nodes testing that name.
    pub by_name: HashMap<String, Vec<usize>>,
    /// Interned name → machine nodes testing that name, indexed by
    /// [`Symbol::index`]. Symbols come from the interner handed to
    /// [`MachineSpec::compile_with`]; the vector only spans symbols this
    /// spec mentions, so lookups with later-interned symbols simply miss.
    pub by_symbol: Vec<Vec<usize>>,
    /// The distinct symbols this spec's nametests mention (dispatch-index
    /// construction iterates this).
    pub name_symbols: Vec<Symbol>,
    /// The distinct symbols mentioned by **predicate-subtree** nametests
    /// only. Under prefix-shared execution the main path is driven by the
    /// plan trie, so per-group dispatch narrows to these.
    pub pred_name_symbols: Vec<Symbol>,
    /// Machine nodes with a wildcard element test.
    pub wildcards: Vec<usize>,
    /// Predicate-subtree machine nodes with a wildcard element test.
    pub pred_wildcards: Vec<usize>,
    /// Nodes with text predicate children (checked on `characters`).
    pub text_watchers: Vec<usize>,
    /// Nodes whose entries accumulate string-values.
    pub text_accumulators: Vec<usize>,
    /// The node whose entries generate text-result candidates.
    pub text_result_parent: Option<usize>,
    /// The machine root.
    pub root: usize,
    /// The canonical query text (diagnostics).
    pub query: String,
}

impl MachineSpec {
    /// Compiles a query tree against a throwaway interner. The resulting
    /// spec dispatches by string ([`MachineSpec::by_name`]); use
    /// [`MachineSpec::compile_with`] to share an interner across machines
    /// and enable symbol dispatch.
    pub fn compile(tree: &QueryTree) -> Result<MachineSpec, BuildError> {
        MachineSpec::compile_with(tree, &mut Interner::new())
    }

    /// Compiles a query tree, interning every element nametest in
    /// `interner`. Single pass; see experiment E7 for the measured
    /// linearity.
    pub fn compile_with(
        tree: &QueryTree,
        interner: &mut Interner,
    ) -> Result<MachineSpec, BuildError> {
        let mut spec = MachineSpec {
            nodes: Vec::with_capacity(tree.len()),
            by_name: HashMap::new(),
            by_symbol: Vec::new(),
            name_symbols: Vec::new(),
            pred_name_symbols: Vec::new(),
            wildcards: Vec::new(),
            pred_wildcards: Vec::new(),
            text_watchers: Vec::new(),
            text_accumulators: Vec::new(),
            text_result_parent: None,
            root: 0,
            query: tree.original().to_owned(),
        };
        // Query-node id → machine-node index (element nodes only).
        let mut index: HashMap<usize, usize> = HashMap::new();

        for qnode in tree.nodes() {
            match &qnode.kind {
                NodeKind::Element { name } => {
                    let parent = qnode.parent.map(|p| {
                        *index.get(&p).expect(
                            "parent of an element query node is an element (grammar \
                             forbids steps under attributes/text)",
                        )
                    });
                    let mi = spec.nodes.len();
                    index.insert(qnode.id, mi);
                    // Flag slots are assigned in pred_children order as the
                    // children are visited (children follow parents in id
                    // order, so slots are handed out before any child needs
                    // its own slot).
                    let nflags = qnode.pred_children.len() as u32;
                    let node = MachineNode {
                        axis: qnode.axis,
                        parent,
                        name: name.clone(),
                        comparison: qnode.comparison.clone(),
                        flag_slot: None, // filled when visited as a child below
                        nflags,
                        is_main: qnode.on_main_path,
                        is_root: qnode.parent.is_none(),
                        is_result: qnode.on_main_path
                            && qnode.main_child.is_none()
                            && qnode.id == tree.result(),
                        needs_text: qnode.comparison.is_some(),
                        attr_preds: Vec::new(),
                        text_preds: Vec::new(),
                        attr_result: None,
                        text_result: false,
                    };
                    if node.needs_text {
                        spec.text_accumulators.push(mi);
                    }
                    match &node.name {
                        Some(n) => {
                            spec.by_name.entry(n.clone()).or_default().push(mi);
                            let sym = interner.intern(n);
                            if spec.by_symbol.len() <= sym.index() {
                                spec.by_symbol.resize(sym.index() + 1, Vec::new());
                            }
                            if spec.by_symbol[sym.index()].is_empty() {
                                spec.name_symbols.push(sym);
                            }
                            spec.by_symbol[sym.index()].push(mi);
                            if !node.is_main && !spec.pred_name_symbols.contains(&sym) {
                                spec.pred_name_symbols.push(sym);
                            }
                        }
                        None => {
                            spec.wildcards.push(mi);
                            if !node.is_main {
                                spec.pred_wildcards.push(mi);
                            }
                        }
                    }
                    spec.nodes.push(node);
                    // Assign this node's slot within its parent.
                    if let Some(p) = qnode.parent {
                        if !qnode.on_main_path {
                            let slot = slot_of(tree, p, qnode.id);
                            let pm = index[&p];
                            spec.nodes[mi].flag_slot = Some(slot);
                            debug_assert!(slot < spec.nodes[pm].nflags);
                        }
                    }
                }
                NodeKind::Attribute { name } => {
                    let p = qnode.parent.expect(
                        "attribute query nodes always have an element parent after normalization",
                    );
                    let pm = *index.get(&p).expect("parent compiled before child");
                    if qnode.axis != Axis::Child {
                        return Err(BuildError::new(
                            "internal: descendant-axis attribute survived normalization",
                        ));
                    }
                    if qnode.on_main_path {
                        spec.nodes[pm].attr_result = Some(AttrTest {
                            name: name.clone(),
                            comparison: qnode.comparison.clone(),
                            slot: None,
                        });
                    } else {
                        let slot = slot_of(tree, p, qnode.id);
                        spec.nodes[pm].attr_preds.push(AttrTest {
                            name: name.clone(),
                            comparison: qnode.comparison.clone(),
                            slot: Some(slot),
                        });
                    }
                }
                NodeKind::Text => {
                    let p = qnode.parent.expect(
                        "text query nodes always have an element parent after normalization",
                    );
                    let pm = *index.get(&p).expect("parent compiled before child");
                    if qnode.axis != Axis::Child {
                        return Err(BuildError::new(
                            "internal: descendant-axis text() survived normalization",
                        ));
                    }
                    if qnode.on_main_path {
                        spec.nodes[pm].text_result = true;
                        spec.text_result_parent = Some(pm);
                    } else {
                        let slot = slot_of(tree, p, qnode.id);
                        spec.nodes[pm].text_preds.push(TextTest {
                            comparison: qnode.comparison.clone(),
                            slot: Some(slot),
                        });
                        if !spec.text_watchers.contains(&pm) {
                            spec.text_watchers.push(pm);
                        }
                    }
                }
            }
        }
        debug_assert!(!spec.nodes.is_empty(), "normalized trees have ≥1 element node");
        Ok(spec)
    }

    /// The machine node generating result candidates: the result element
    /// node itself, or the parent of an attribute/text result.
    pub fn result_owner(&self) -> usize {
        if let Some(p) = self.text_result_parent {
            return p;
        }
        if let Some((i, _)) = self.nodes.iter().enumerate().find(|(_, n)| n.attr_result.is_some()) {
            return i;
        }
        self.nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.is_result)
            .map(|(i, _)| i)
            .expect("every query has a result node")
    }

    /// Machine nodes whose nametest is `sym` (empty for names this spec
    /// never mentions, including symbols interned after compilation).
    #[inline]
    pub fn machines_for(&self, sym: Symbol) -> &[usize] {
        self.by_symbol.get(sym.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether any machine node carries a wildcard element test (such a
    /// machine must see every element event).
    pub fn has_wildcard(&self) -> bool {
        !self.wildcards.is_empty()
    }

    /// Whether the machine consumes `characters` events at all (text
    /// predicates, string-value accumulation, or text results).
    pub fn needs_characters(&self) -> bool {
        !self.text_watchers.is_empty()
            || !self.text_accumulators.is_empty()
            || self.text_result_parent.is_some()
    }

    /// Approximate heap bytes of the compiled layout: node storage (with
    /// inline sub-tests and name strings), both name indexes and the
    /// auxiliary node lists. The plan layer sums this across machines to
    /// report how much build memory query sharing saves (experiment E9).
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut bytes = self.nodes.capacity() * size_of::<MachineNode>();
        for n in &self.nodes {
            bytes += n.name.as_ref().map_or(0, |s| s.len());
            bytes += n.attr_preds.capacity() * size_of::<AttrTest>();
            bytes += n.text_preds.capacity() * size_of::<TextTest>();
            for a in n.attr_preds.iter().chain(n.attr_result.iter()) {
                bytes += a.name.as_ref().map_or(0, |s| s.len());
            }
        }
        for (name, list) in &self.by_name {
            bytes += name.len() + size_of::<String>() + list.capacity() * size_of::<usize>();
        }
        for list in &self.by_symbol {
            bytes += size_of::<Vec<usize>>() + list.capacity() * size_of::<usize>();
        }
        bytes += (self.name_symbols.capacity() + self.pred_name_symbols.capacity())
            * size_of::<Symbol>();
        bytes += (self.wildcards.capacity()
            + self.pred_wildcards.capacity()
            + self.text_watchers.capacity()
            + self.text_accumulators.capacity())
            * size_of::<usize>();
        bytes += self.query.len();
        bytes as u64
    }

    /// Number of stacked machine nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the machine has no nodes (never true for compiled specs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// The flag-slot index of query node `child` within `parent`'s predicate
/// children.
fn slot_of(tree: &QueryTree, parent: usize, child: usize) -> u32 {
    tree.node(parent)
        .pred_children
        .iter()
        .position(|&c| c == child)
        .expect("child listed under parent") as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitex_xpath::query_tree::QueryTree;

    fn compile(q: &str) -> MachineSpec {
        MachineSpec::compile(&QueryTree::parse(q).unwrap()).unwrap()
    }

    #[test]
    fn paper_figure_3_machine() {
        // //section[author]//table[position]//cell → 5 stacked nodes
        // (author and position are element predicates, so they stack too).
        let m = compile("//section[author]//table[position]//cell");
        assert_eq!(m.len(), 5);
        assert_eq!(m.root, 0);
        let section = &m.nodes[0];
        assert!(section.is_root && section.is_main && !section.is_result);
        assert_eq!(section.nflags, 1);
        let author = &m.nodes[1];
        assert_eq!(author.name.as_deref(), Some("author"));
        assert_eq!(author.flag_slot, Some(0));
        assert!(!author.is_main);
        let cell = m.nodes.iter().find(|n| n.name.as_deref() == Some("cell")).unwrap();
        assert!(cell.is_result && cell.is_main);
        assert_eq!(cell.nflags, 0);
    }

    #[test]
    fn protein_query_attribute_result() {
        let m = compile("//ProteinEntry[reference]/@id");
        // ProteinEntry + reference stack; @id folds into ProteinEntry.
        assert_eq!(m.len(), 2);
        let pe = &m.nodes[0];
        assert_eq!(pe.name.as_deref(), Some("ProteinEntry"));
        assert_eq!(pe.nflags, 1);
        let ar = pe.attr_result.as_ref().unwrap();
        assert_eq!(ar.name.as_deref(), Some("id"));
        assert!(ar.comparison.is_none());
        assert!(pe.wants_attributes());
        assert_eq!(m.result_owner(), 0);
        // `reference` is an element predicate with slot 0.
        assert_eq!(m.nodes[1].flag_slot, Some(0));
    }

    #[test]
    fn attribute_predicates_fold_inline() {
        let m = compile("//a[@id = 'x' and b]");
        assert_eq!(m.len(), 2); // a + b
        let a = &m.nodes[0];
        assert_eq!(a.nflags, 2);
        assert_eq!(a.attr_preds.len(), 1);
        let ap = &a.attr_preds[0];
        assert_eq!(ap.name.as_deref(), Some("id"));
        assert!(ap.comparison.is_some());
        // Slots: @id is pred child 0, b is pred child 1.
        assert_eq!(ap.slot, Some(0));
        assert_eq!(m.nodes[1].flag_slot, Some(1));
    }

    #[test]
    fn text_predicates_register_watchers() {
        let m = compile("//a[text() = 'v']/b");
        let a = &m.nodes[0];
        assert_eq!(a.text_preds.len(), 1);
        assert_eq!(a.nflags, 1);
        assert_eq!(m.text_watchers, vec![0]);
        assert!(m.text_result_parent.is_none());
    }

    #[test]
    fn text_result_registers_parent() {
        let m = compile("//a/text()");
        assert_eq!(m.len(), 1);
        assert!(m.nodes[0].text_result);
        assert_eq!(m.text_result_parent, Some(0));
        assert_eq!(m.result_owner(), 0);
    }

    #[test]
    fn value_comparison_needs_text_accumulation() {
        let m = compile("//a[b = 'v']");
        let b = &m.nodes[1];
        assert!(b.needs_text);
        assert_eq!(m.text_accumulators, vec![1]);
        // The main node never accumulates.
        assert!(!m.nodes[0].needs_text);
    }

    #[test]
    fn name_index_and_wildcards() {
        let m = compile("//a[*]/a/*");
        assert_eq!(m.by_name["a"].len(), 2);
        assert_eq!(m.wildcards.len(), 2); // the predicate * and the result *
    }

    #[test]
    fn symbol_index_mirrors_name_index() {
        let mut interner = Interner::new();
        let tree = QueryTree::parse("//a[b]/a/*").unwrap();
        let m = MachineSpec::compile_with(&tree, &mut interner).unwrap();
        let a = interner.lookup("a").unwrap();
        let b = interner.lookup("b").unwrap();
        assert_eq!(m.machines_for(a), m.by_name["a"].as_slice());
        assert_eq!(m.machines_for(b), m.by_name["b"].as_slice());
        assert_eq!(m.name_symbols, vec![a, b]);
        assert!(m.has_wildcard());
        assert!(!m.needs_characters());
    }

    #[test]
    fn shared_interner_gives_shared_symbols() {
        let mut interner = Interner::new();
        let m1 =
            MachineSpec::compile_with(&QueryTree::parse("//a/b").unwrap(), &mut interner).unwrap();
        let m2 =
            MachineSpec::compile_with(&QueryTree::parse("//b/c").unwrap(), &mut interner).unwrap();
        let b = interner.lookup("b").unwrap();
        // `b` resolves to the same symbol in both specs; the later symbol
        // `c` is simply out of range for the first spec.
        assert_eq!(m1.machines_for(b), &[1]);
        assert_eq!(m2.machines_for(b), &[0]);
        let c = interner.lookup("c").unwrap();
        assert_eq!(m1.machines_for(c), &[] as &[usize]);
        assert!(MachineSpec::compile_with(
            &QueryTree::parse("//a[text() = 'v']").unwrap(),
            &mut interner
        )
        .unwrap()
        .needs_characters());
    }

    #[test]
    fn pred_dispatch_lists_cover_predicate_subtrees_only() {
        let mut interner = Interner::new();
        let tree = QueryTree::parse("//a[b[*] and c]/a/d").unwrap();
        let m = MachineSpec::compile_with(&tree, &mut interner).unwrap();
        let b = interner.lookup("b").unwrap();
        let c = interner.lookup("c").unwrap();
        // a and d are main-path-only names; b, c and the wildcard live in
        // predicate subtrees.
        assert_eq!(m.pred_name_symbols, vec![b, c]);
        assert_eq!(m.pred_wildcards.len(), 1);
        assert!(!m.nodes[m.pred_wildcards[0]].is_main);
        // A pure main-path query has empty predicate dispatch lists.
        let pure = MachineSpec::compile_with(&QueryTree::parse("/a/*//d").unwrap(), &mut interner)
            .unwrap();
        assert!(pure.pred_name_symbols.is_empty());
        assert!(pure.pred_wildcards.is_empty());
        assert_eq!(pure.wildcards.len(), 1);
    }

    #[test]
    fn rewritten_leading_attribute_query_compiles() {
        let m = compile("//@id");
        assert_eq!(m.len(), 1);
        assert!(m.nodes[0].name.is_none()); // synthetic //*
        assert!(m.nodes[0].attr_result.is_some());
    }

    #[test]
    fn single_node_query() {
        let m = compile("//a");
        assert_eq!(m.len(), 1);
        let a = &m.nodes[0];
        assert!(a.is_root && a.is_result && a.is_main);
        assert_eq!(a.nflags, 0);
    }

    #[test]
    fn build_is_linear_shaped() {
        // Smoke check: node count equals query-tree element count for
        // chains of any length (the E7 bench measures actual time).
        for k in [1usize, 4, 16, 64] {
            let q = "//a".repeat(k);
            let m = compile(&q);
            assert_eq!(m.len(), k);
        }
    }
}
