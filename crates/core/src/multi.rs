//! Multi-query evaluation: many standing queries, one scan, shared plan.
//!
//! The paper's motivating applications — stock tickers, sports feeds,
//! personalized newspapers — are publish/subscribe systems: *many*
//! standing queries watch *one* stream. Because TwigM machines are
//! independent consumers of the same SAX events, running `k` queries costs
//! one parse plus machine updates, not `k` parses. [`MultiEngine`]
//! packages that: register queries, stream a document once, receive
//! `(query id, match)` pairs as they become decidable.
//!
//! ## Planning
//!
//! Registration goes through the [`QueryPlanner`]: structurally identical
//! queries (after canonicalization — predicate order sorted away) are
//! **deduplicated** into one [`PlanGroup`] running a single machine, and
//! every emitted solution fans out to the group's subscriber list. The
//! planner's shared-prefix step trie keeps group lookup cheap and reports
//! how much structure the plan collapsed ([`MultiOutput::plan`]).
//! [`PlanMode::Unshared`] (`vitex --no-plan-sharing`) restores the old
//! one-machine-per-registration behavior bit for bit.
//! [`PlanMode::PrefixShared`] (`vitex --prefix-sharing`) goes the other
//! way: the trie becomes a *runtime* structure (see [`crate::plan::trie`])
//! whose nodes own the shared main-path match state, advanced once per
//! event by the dedicated `PrefixSink` below — per-group element dispatch
//! then narrows to predicate-subtree names, and a frame stack pairs each
//! end tag with exactly the machines its start tag pushed.
//!
//! ## Dispatch
//!
//! Poking every machine on every event makes the per-event cost `O(k)` —
//! fatal at thousands of standing queries. The engine therefore maintains
//! a **dispatch index** over the shared [`Interner`]:
//!
//! * per interned element name, a [`DynBitSet`] of plan groups whose query
//!   mentions that name;
//! * an always-on set of groups containing a wildcard step (they must see
//!   every element);
//! * the set of groups that consume `characters` events at all.
//!
//! A `startElement` then touches only groups interested in that name
//! (plus wildcards), and the end tag replays the same set via the symbol
//! the [`DocumentDriver`] remembered from the start tag. This is sound
//! because a machine's stacks only ever hold entries for elements it was
//! shown: skipping an element's start guarantees there is nothing to pop
//! at its end, and text/attribute tests live inside the delivered events.
//! [`DispatchMode::Scan`] keeps the poke-everyone path for measurement
//! (`bench_multi` quantifies the gap).
//!
//! Both structures update **incrementally**: [`MultiEngine::add_query`]
//! splices the new group into the index in place and
//! [`MultiEngine::remove_query`] clears it back out when the last
//! subscriber of a group leaves — no rebuild between runs, so long-lived
//! pub/sub sessions can churn subscriptions mid-stream.

use vitex_xmlsax::event::{CharactersEvent, EndElementEvent, StartElementEvent};
use vitex_xmlsax::EventSource;
use vitex_xpath::query_tree::QueryTree;

use crate::bitset::DynBitSet;
use crate::builder::MachineSpec;
use crate::driver::{DocumentDriver, EventSink};
use crate::error::EngineResult;
use crate::intern::{Interner, Symbol};
use crate::plan::{PlanGroup, PlanMode, QueryPlanner};
use crate::result::{Match, NodeId};
use crate::stats::{MachineStats, PlanStats};

pub use crate::result::QueryId;

/// How start/end element events are routed to plan groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Use the name → groups index; only interested machines are touched
    /// per event. The default.
    #[default]
    Indexed,
    /// Poke every active group on every event (the pre-index behaviour),
    /// kept for ablation benchmarks.
    Scan,
}

/// Summary of one multi-query run.
#[derive(Debug, Clone)]
pub struct MultiOutput {
    /// Matches per query, in emission order (indexed by [`QueryId`];
    /// removed queries keep an empty slot).
    pub matches: Vec<Vec<Match>>,
    /// Machine statistics per query (indexed by [`QueryId`]). Queries
    /// deduplicated into one plan group share a machine and therefore
    /// report identical statistics; removed queries report zeros.
    pub stats: Vec<MachineStats>,
    /// Plan-level statistics: group/dedup/trie-sharing counters.
    pub plan: PlanStats,
    /// Elements seen in the single scan.
    pub elements: u64,
    /// Text nodes seen in the single scan.
    pub text_nodes: u64,
    /// Total SAX events processed in the single scan.
    pub events: u64,
}

/// The dispatch index: which plan groups care about which events.
/// Maintained incrementally as groups activate and retire. Also built
/// per shard by [`crate::shard`] workers over their group subset, so
/// sharded dispatch filters events exactly like the single-threaded path.
#[derive(Debug, Default)]
pub(crate) struct DispatchIndex {
    /// Symbol index → groups whose query mentions that name (and have no
    /// wildcard step — wildcard groups live in `wildcard`).
    by_symbol: Vec<DynBitSet>,
    /// Groups containing a wildcard element step: they see every element
    /// event.
    wildcard: DynBitSet,
    /// Groups that consume `characters` events.
    text: DynBitSet,
}

impl DispatchIndex {
    /// Splices a newly created group into the index. `nsymbols` is the
    /// interner's current size: compiling the group's spec may have
    /// interned names this index has never seen.
    pub(crate) fn add_group(&mut self, gid: usize, spec: &MachineSpec, nsymbols: usize) {
        if self.by_symbol.len() < nsymbols {
            self.by_symbol.resize(nsymbols, DynBitSet::new());
        }
        if spec.has_wildcard() {
            // A wildcard group sees every element, which subsumes its
            // named interests.
            self.wildcard.insert(gid);
        } else {
            for &sym in &spec.name_symbols {
                self.by_symbol[sym.index()].insert(gid);
            }
        }
        if spec.needs_characters() {
            self.text.insert(gid);
        }
    }

    /// Clears a retired group (last subscriber removed) back out of the
    /// index — the inverse of [`DispatchIndex::add_group`].
    fn remove_group(&mut self, gid: usize, spec: &MachineSpec) {
        if spec.has_wildcard() {
            self.wildcard.remove(gid);
        } else {
            for &sym in &spec.name_symbols {
                if let Some(set) = self.by_symbol.get_mut(sym.index()) {
                    set.remove(gid);
                }
            }
        }
        if spec.needs_characters() {
            self.text.remove(gid);
        }
    }

    /// Splices a group in with **predicate-only** element interests: under
    /// prefix-shared execution the main path is driven once per event by
    /// the plan trie, so the per-group element dispatch narrows to the
    /// names its predicate subtrees test (text interest is unchanged — a
    /// `characters` event never pushes entries, so there is no trie work
    /// to share for it).
    pub(crate) fn add_group_prefix(&mut self, gid: usize, spec: &MachineSpec, nsymbols: usize) {
        if self.by_symbol.len() < nsymbols {
            self.by_symbol.resize(nsymbols, DynBitSet::new());
        }
        if !spec.pred_wildcards.is_empty() {
            self.wildcard.insert(gid);
        } else {
            for &sym in &spec.pred_name_symbols {
                self.by_symbol[sym.index()].insert(gid);
            }
        }
        if spec.needs_characters() {
            self.text.insert(gid);
        }
    }

    /// The inverse of [`DispatchIndex::add_group_prefix`].
    fn remove_group_prefix(&mut self, gid: usize, spec: &MachineSpec) {
        if !spec.pred_wildcards.is_empty() {
            self.wildcard.remove(gid);
        } else {
            for &sym in &spec.pred_name_symbols {
                if let Some(set) = self.by_symbol.get_mut(sym.index()) {
                    set.remove(gid);
                }
            }
        }
        if spec.needs_characters() {
            self.text.remove(gid);
        }
    }

    /// Calls `f` for every group interested in an element with symbol
    /// `sym` (named groups ∪ wildcard groups).
    #[inline]
    pub(crate) fn for_each_element_target(&self, sym: Option<Symbol>, f: impl FnMut(usize)) {
        match sym.and_then(|s| self.by_symbol.get(s.index())) {
            Some(named) => named.union_for_each(&self.wildcard, f),
            None => self.wildcard.for_each(f),
        }
    }

    /// Calls `f` for every group that consumes `characters` events.
    #[inline]
    pub(crate) fn for_each_text_target(&self, f: impl FnMut(usize)) {
        self.text.for_each(f)
    }

    /// Whether *any* group would receive an element event with this
    /// symbol. The sharded broadcast path uses this to skip building and
    /// shipping payloads for events every shard would drop anyway.
    #[inline]
    pub(crate) fn has_element_target(&self, sym: Option<Symbol>) -> bool {
        !self.wildcard.is_empty()
            || sym
                .and_then(|s| self.by_symbol.get(s.index()))
                .is_some_and(|named| !named.is_empty())
    }

    /// Whether any group consumes `characters` events.
    #[inline]
    pub(crate) fn has_text_target(&self) -> bool {
        !self.text.is_empty()
    }
}

/// Evaluates many queries in a single sequential scan.
pub struct MultiEngine {
    planner: QueryPlanner,
    /// Per-registration records, indexed by [`QueryId`].
    records: Vec<QueryRecord>,
    interner: Interner,
    driver: DocumentDriver,
    mode: DispatchMode,
    index: DispatchIndex,
    /// Predicate-only dispatch index, maintained alongside `index` under
    /// [`PlanMode::PrefixShared`] (the main path dispatches through the
    /// plan trie instead); `None` in the other plan modes.
    pred_index: Option<DispatchIndex>,
    /// Per-subscription cost attribution (disabled by default).
    profile: crate::telemetry::CostLedger,
    /// Scratch for prefix-shared runs: trie pushes billed per routed
    /// group this document (indexed by gid; empty when profiling is off).
    shared_scratch: Vec<u64>,
}

/// One registration's bookkeeping.
pub(crate) struct QueryRecord {
    /// Canonical text of the query as registered.
    pub(crate) text: String,
    /// Owning plan group; `None` once removed.
    pub(crate) group: Option<usize>,
}

impl MultiEngine {
    /// Creates an empty engine with indexed dispatch and plan sharing.
    pub fn new() -> Self {
        MultiEngine::with_options(DispatchMode::Indexed, PlanMode::Shared)
    }

    /// Creates an empty engine with an explicit dispatch mode (plan
    /// sharing on).
    pub fn with_dispatch(mode: DispatchMode) -> Self {
        MultiEngine::with_options(mode, PlanMode::Shared)
    }

    /// Creates an empty engine with explicit dispatch and plan modes. The
    /// plan mode is fixed for the engine's lifetime: it decides how
    /// registrations group, so flipping it mid-session would split or
    /// merge machines under live subscribers.
    pub fn with_options(mode: DispatchMode, plan: PlanMode) -> Self {
        MultiEngine {
            planner: QueryPlanner::new(plan),
            records: Vec::new(),
            interner: Interner::new(),
            driver: DocumentDriver::new(),
            mode,
            index: DispatchIndex::default(),
            pred_index: (plan == PlanMode::PrefixShared).then(DispatchIndex::default),
            profile: crate::telemetry::CostLedger::disabled(),
            shared_scratch: Vec::new(),
        }
    }

    /// The active dispatch mode.
    pub fn dispatch(&self) -> DispatchMode {
        self.mode
    }

    /// Switches dispatch mode (takes effect on the next run).
    pub fn set_dispatch(&mut self, mode: DispatchMode) {
        self.mode = mode;
    }

    /// The plan-sharing mode fixed at construction.
    pub fn plan_mode(&self) -> PlanMode {
        self.planner.mode()
    }

    /// Registers a query; returns its handle.
    pub fn add_query(&mut self, query: &str) -> EngineResult<QueryId> {
        let tree = QueryTree::parse(query)?;
        self.add_tree(&tree)
    }

    /// Registers an already-built query tree. The dispatch index and the
    /// plan are updated in place — no rebuild happens on the next run, so
    /// subscriptions can be added between (or ahead of) documents at any
    /// point in a session.
    pub fn add_tree(&mut self, tree: &QueryTree) -> EngineResult<QueryId> {
        let id = QueryId(self.records.len());
        let reg = self.planner.register(tree, id, &mut self.interner)?;
        if reg.created {
            let spec = self.planner.group(reg.group).machine().spec();
            // Splice the new group in while the borrow rules allow: spec
            // is read-only and the index is disjoint from the planner.
            let nsymbols = self.interner.len();
            self.index.add_group(reg.group, spec, nsymbols);
            if let Some(pred) = &mut self.pred_index {
                pred.add_group_prefix(reg.group, spec, nsymbols);
            }
        }
        self.records.push(QueryRecord { text: tree.original().to_owned(), group: Some(reg.group) });
        Ok(id)
    }

    /// Unregisters a query. Returns `Some(true)` when it was the **last**
    /// subscriber of its plan group (the shared machine retired with it),
    /// `Some(false)` when other subscribers keep the group alive, and
    /// `None` when the id is unknown or already removed. Like
    /// registration, removal updates the plan and dispatch index in
    /// place.
    pub fn remove_query(&mut self, id: QueryId) -> Option<bool> {
        let record = self.records.get_mut(id.0)?;
        let gid = record.group.take()?;
        let last = self.planner.unsubscribe(gid, id);
        if last {
            let spec = self.planner.group(gid).machine().spec();
            self.index.remove_group(gid, spec);
            if let Some(pred) = &mut self.pred_index {
                pred.remove_group_prefix(gid, spec);
            }
        }
        Some(last)
    }

    /// Active subscription count (registered minus removed).
    pub fn len(&self) -> usize {
        self.planner.query_count()
    }

    /// Whether no subscription is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of plan groups actually running machines. With sharing on,
    /// `group_count() <= len()`; the gap is the dedup win.
    pub fn group_count(&self) -> usize {
        self.planner.group_count()
    }

    /// The canonical text of a registered query (retained after removal).
    pub fn query_text(&self, id: QueryId) -> &str {
        &self.records[id.0].text
    }

    /// Plan-level statistics for the current subscription set.
    pub fn plan_stats(&self) -> PlanStats {
        self.planner.stats(&self.interner)
    }

    /// Attaches a telemetry handle: the driver records stream counters and
    /// dispatch timing, and each run folds per-subscription machine
    /// counters, plan statistics, and the match count into the registry.
    pub fn set_telemetry(&mut self, telemetry: crate::telemetry::Telemetry) {
        self.driver.set_telemetry(telemetry);
    }

    /// The attached telemetry handle (disabled when none was set). The
    /// overlapped front-end uses it to probe its parse workers and fold
    /// stats without going through the driver.
    pub(crate) fn telemetry(&self) -> crate::telemetry::Telemetry {
        self.driver.telemetry()
    }

    /// Enables (or disables) per-subscription cost attribution. Each run
    /// then folds per-query machine counters, match deliveries, and
    /// per-group diagnostics into a [`crate::telemetry::CostLedger`];
    /// read it back with [`MultiEngine::profile_snapshot`].
    pub fn set_profiling(&mut self, on: bool) {
        if on != self.profile.is_enabled() {
            self.profile = if on {
                crate::telemetry::CostLedger::enabled()
            } else {
                crate::telemetry::CostLedger::disabled()
            };
        }
    }

    /// The live cost-ledger handle (a cheap clone; inert when profiling
    /// is off). The heartbeat reporter samples it concurrently with runs.
    pub fn cost_ledger(&self) -> crate::telemetry::CostLedger {
        self.profile.clone()
    }

    /// Snapshot of the cost ledger: per-query deterministic counters plus
    /// per-group diagnostics. `None` when profiling is disabled.
    pub fn profile_snapshot(&self) -> Option<crate::telemetry::ProfileSnapshot> {
        self.profile.snapshot()
    }

    /// Splits the engine into the disjoint borrows the sharded execution
    /// layer ([`crate::shard`]) needs: plan groups go to worker threads,
    /// the driver and interner stay on the document thread, and the
    /// registration records parameterize output assembly. The engine's own
    /// dispatch index is *not* exposed — each shard builds its own over
    /// its group subset.
    pub(crate) fn shard_parts(&mut self) -> ShardParts<'_> {
        ShardParts {
            planner: &mut self.planner,
            interner: &self.interner,
            driver: &mut self.driver,
            mode: self.mode,
            index: &self.index,
            records: &self.records,
            profile: self.profile.clone(),
        }
    }

    /// Streams `reader` once through every active plan group. `on_match`
    /// fires with the originating query's id the moment a solution is
    /// decidable; a solution of a shared machine fires once per
    /// subscriber, in registration order.
    pub fn run<E: EventSource, F: FnMut(QueryId, Match)>(
        &mut self,
        reader: E,
        on_match: F,
    ) -> EngineResult<MultiOutput> {
        for g in self.planner.groups_mut() {
            if g.is_active() {
                g.machine_mut().reset();
            }
        }
        let mut matches: Vec<Vec<Match>> = self.records.iter().map(|_| Vec::new()).collect();
        let stream = if self.planner.mode() == PlanMode::PrefixShared {
            let pred = (self.mode == DispatchMode::Indexed)
                .then(|| self.pred_index.as_ref().expect("prefix mode maintains a pred index"));
            self.shared_scratch.clear();
            if self.profile.is_enabled() {
                self.shared_scratch.resize(self.planner.groups().len(), 0);
            }
            let (trie, groups) = self.planner.run_split();
            trie.begin_document();
            let mut sink = PrefixSink {
                trie,
                groups,
                interner: &self.interner,
                pred,
                matches: &mut matches,
                on_match,
                pushed: Vec::new(),
                plans: Vec::new(),
                pred_gids: Vec::new(),
                main_scratch: Vec::new(),
                frame_gids: Vec::new(),
                frame_nodes: Vec::new(),
                frames: Vec::new(),
                shared_steps: &mut self.shared_scratch,
            };
            self.driver.run(reader, &mut sink)?
        } else {
            let mut sink = MultiSink {
                groups: self.planner.groups_mut(),
                interner: &self.interner,
                index: (self.mode == DispatchMode::Indexed).then_some(&self.index),
                matches: &mut matches,
                on_match,
            };
            self.driver.run(reader, &mut sink)?
        };
        let stats: Vec<MachineStats> = self
            .records
            .iter()
            .map(|r| match r.group {
                Some(g) => self.planner.group(g).machine().stats().clone(),
                None => MachineStats::default(),
            })
            .collect();
        let telemetry = self.driver.telemetry();
        if telemetry.is_enabled() {
            // Folded per subscription (not per group) so the deterministic
            // machine counters are invariant across plan modes: a shared
            // machine contributes once per subscriber, exactly what
            // unshared mode would have recorded.
            for s in &stats {
                telemetry.fold_machine(s);
            }
            telemetry.fold_plan(&self.planner.stats(&self.interner));
            telemetry.add_matches(matches.iter().map(|m| m.len() as u64).sum());
        }
        if self.profile.is_enabled() {
            self.profile.add_doc();
            // Per-query fold mirrors the telemetry discipline: one fold
            // per subscription from the per-record stats, so the ledger's
            // deterministic section is invariant across configurations.
            for (i, r) in self.records.iter().enumerate() {
                self.profile.fold_query(QueryId(i), &r.text, r.group, &stats[i], &matches[i]);
            }
            for (gid, g) in self.planner.groups().iter().enumerate() {
                if g.is_active() {
                    self.profile.fold_group(
                        gid,
                        g.canonical_key(),
                        g.subscribers().len() as u64,
                        g.machine().stats(),
                    );
                }
            }
            if self.shared_scratch.iter().any(|&n| n > 0) {
                self.profile.add_shared_steps(&self.shared_scratch);
            }
        }
        Ok(MultiOutput {
            matches,
            stats,
            plan: self.planner.stats(&self.interner),
            elements: stream.elements,
            text_nodes: stream.text_nodes,
            events: stream.events,
        })
    }
}

impl Default for MultiEngine {
    fn default() -> Self {
        MultiEngine::new()
    }
}

/// Split borrows of a [`MultiEngine`] handed to the sharded execution
/// layer for the duration of a [`crate::shard::ShardSession`].
pub(crate) struct ShardParts<'a> {
    pub(crate) planner: &'a mut QueryPlanner,
    pub(crate) interner: &'a Interner,
    pub(crate) driver: &'a mut DocumentDriver,
    pub(crate) mode: DispatchMode,
    /// The engine's global dispatch index — read-only during a session,
    /// used by the broadcast sink as an any-shard-interested filter.
    pub(crate) index: &'a DispatchIndex,
    pub(crate) records: &'a [QueryRecord],
    /// Cloned cost-ledger handle (disabled when profiling is off).
    pub(crate) profile: crate::telemetry::CostLedger,
}

/// The multi-query [`EventSink`]: routes each event to the interested
/// plan groups (or all active ones in [`DispatchMode::Scan`]) and fans
/// each group's solutions out to its subscribers.
struct MultiSink<'a, F: FnMut(QueryId, Match)> {
    groups: &'a mut [PlanGroup],
    interner: &'a Interner,
    /// `Some` in indexed mode, `None` in scan mode.
    index: Option<&'a DispatchIndex>,
    matches: &'a mut [Vec<Match>],
    on_match: F,
}

impl<F: FnMut(QueryId, Match)> MultiSink<'_, F> {
    /// Runs `f` on group `gi`'s machine with a match callback that fans
    /// out to the group's subscribers (buffers and the user callback).
    /// Inactive groups are skipped: in scan mode they are still
    /// enumerated, and in indexed mode a stale bit could briefly outlive
    /// a retirement.
    #[inline]
    fn with_group(
        &mut self,
        gi: usize,
        f: impl FnOnce(&mut crate::machine::TwigM, &mut dyn FnMut(Match)),
    ) {
        let group = &mut self.groups[gi];
        if !group.is_active() {
            return;
        }
        let (machine, subscribers) = group.machine_and_subscribers();
        let matches = &mut *self.matches;
        let on_match = &mut self.on_match;
        f(machine, &mut |hit| fan_out_match(subscribers, matches, on_match, hit));
    }
}

/// Fans one solution out to a group's subscribers in registration order:
/// buffer push then callback per subscriber, the last subscriber taking
/// the hit by value so a single-subscriber group clones exactly once (as
/// the pre-planner engine did). This is the **one** fan-out in the
/// system — the sharded merge calls it too, which is what keeps sharded
/// delivery order identical to single-threaded by construction.
pub(crate) fn fan_out_match<F: FnMut(QueryId, Match)>(
    subscribers: &[QueryId],
    matches: &mut [Vec<Match>],
    on_match: &mut F,
    hit: Match,
) {
    let (&last, rest) = subscribers.split_last().expect("active group has a subscriber");
    for &sub in rest {
        matches[sub.0].push(hit.clone());
        on_match(sub, hit.clone());
    }
    matches[last.0].push(hit.clone());
    on_match(last, hit);
}

impl<F: FnMut(QueryId, Match)> EventSink for MultiSink<'_, F> {
    fn resolve(&mut self, name: &str) -> Option<Symbol> {
        self.interner.lookup(name)
    }

    fn start_element(
        &mut self,
        sym: Option<Symbol>,
        event: &StartElementEvent,
        node_id: NodeId,
        attr_id_base: NodeId,
    ) {
        let touch = |this: &mut Self, gi: usize| {
            this.with_group(gi, |machine, emit| {
                machine.start_element_interned(
                    sym,
                    event.name.as_str(),
                    event.level,
                    &event.attributes,
                    node_id,
                    attr_id_base,
                    event.span,
                    emit,
                );
            });
        };
        match self.index {
            Some(index) => index.for_each_element_target(sym, |gi| touch(self, gi)),
            None => (0..self.groups.len()).for_each(|gi| touch(self, gi)),
        }
    }

    fn characters(&mut self, event: &CharactersEvent, node_id: NodeId) {
        let touch = |this: &mut Self, gi: usize| {
            this.with_group(gi, |machine, emit| {
                machine.characters(&event.text, event.level, node_id, event.span, emit);
            });
        };
        match self.index {
            Some(index) => index.text.for_each(|gi| touch(self, gi)),
            None => (0..self.groups.len()).for_each(|gi| touch(self, gi)),
        }
    }

    fn end_element(&mut self, sym: Option<Symbol>, event: &EndElementEvent) {
        let touch = |this: &mut Self, gi: usize| {
            this.with_group(gi, |machine, emit| {
                machine.end_element(event.name.as_str(), event.level, event.element_span, emit);
            });
        };
        match self.index {
            Some(index) => index.for_each_element_target(sym, |gi| touch(self, gi)),
            None => (0..self.groups.len()).for_each(|gi| touch(self, gi)),
        }
    }
}

/// Merge-walks one event's trie-planned main pushes (`plans`: `(slot,
/// machine node, ptr)`, sorted ascending) against its predicate dispatch
/// targets (`pred_targets`: slots, ascending) in ascending slot order —
/// the group visit order indexed dispatch uses, so emission interleaving
/// cannot differ between the modes. `touch` drives one group's machine
/// and returns its push count; slots that pushed are appended to `frame`
/// for the matching end tag. This is the **one** prefix merge-walk in
/// the system — the single-threaded [`PrefixSink`] keys it by group id,
/// the shard workers by local slot, which is what keeps sharded
/// prefix-shared delivery identical to single-threaded by construction.
pub(crate) fn merge_prefix_targets(
    plans: &[(u32, u32, u32)],
    pred_targets: &[u32],
    main_scratch: &mut Vec<(u32, u32)>,
    frame: &mut Vec<u32>,
    mut touch: impl FnMut(u32, &[(u32, u32)], bool) -> u32,
) {
    let (mut pi, mut di) = (0usize, 0usize);
    while pi < plans.len() || di < pred_targets.len() {
        let pg = plans.get(pi).map(|&(s, _, _)| s);
        let dg = pred_targets.get(di).copied();
        let slot = match (pg, dg) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => unreachable!(),
        };
        main_scratch.clear();
        while let Some(&(s, mnode, ptr)) = plans.get(pi) {
            if s != slot {
                break;
            }
            main_scratch.push((mnode, ptr));
            pi += 1;
        }
        let plan_preds = dg == Some(slot);
        if plan_preds {
            di += 1;
        }
        if touch(slot, main_scratch, plan_preds) > 0 {
            frame.push(slot);
        }
    }
}

/// The prefix-shared [`EventSink`]: a start tag advances the plan trie
/// **once** — one axis/name witness check per distinct trie node, however
/// many groups share the step — then forks into per-group machines only
/// where something actually happens: a main-path push decided by the trie,
/// or a predicate-subtree step testing the event's name. Machines that
/// pushed are recorded on a frame stack so the matching end tag touches
/// exactly them (an untouched machine has nothing to pop and would have
/// been a statistics-neutral no-op in the other modes, which is what keeps
/// output and machine statistics byte-identical across plan modes).
struct PrefixSink<'a, F: FnMut(QueryId, Match)> {
    trie: &'a mut crate::plan::StepTrie,
    groups: &'a mut [PlanGroup],
    interner: &'a Interner,
    /// `Some` in indexed mode (predicate-only interests), `None` in scan
    /// mode (every active group plans its predicate steps every event).
    pred: Option<&'a DispatchIndex>,
    matches: &'a mut [Vec<Match>],
    on_match: F,
    /// Scratch: trie pushes of the current event.
    pushed: Vec<crate::plan::TriePush>,
    /// Scratch: per-group main-path plans, `(gid, machine node, ptr)`.
    plans: Vec<(u32, u32, u32)>,
    /// Scratch: groups with predicate interest in the current event.
    pred_gids: Vec<u32>,
    /// Scratch: one group's main plan in machine form.
    main_scratch: Vec<(u32, u32)>,
    /// Flat frame storage: groups that pushed, per open element.
    frame_gids: Vec<u32>,
    /// Flat frame storage: trie nodes that pushed, per open element.
    frame_nodes: Vec<u32>,
    /// One `(frame_gids offset, frame_nodes offset)` per open element.
    frames: Vec<(u32, u32)>,
    /// Shared-step billing per routed group (cost attribution); empty
    /// when profiling is off, indexed by gid otherwise.
    shared_steps: &'a mut Vec<u64>,
}

impl<F: FnMut(QueryId, Match)> EventSink for PrefixSink<'_, F> {
    fn resolve(&mut self, name: &str) -> Option<Symbol> {
        self.interner.lookup(name)
    }

    fn start_element(
        &mut self,
        sym: Option<Symbol>,
        event: &StartElementEvent,
        node_id: NodeId,
        attr_id_base: NodeId,
    ) {
        let Self {
            trie,
            groups,
            pred,
            matches,
            on_match,
            pushed,
            plans,
            pred_gids,
            main_scratch,
            frame_gids,
            frame_nodes,
            frames,
            shared_steps,
            ..
        } = self;
        pushed.clear();
        trie.advance(sym, event.level, pushed);
        // Expand trie pushes into per-group plans, ascending (gid, node).
        plans.clear();
        let bill = !shared_steps.is_empty();
        for p in pushed.iter() {
            let depth0 = (p.depth - 1) as usize;
            for &gid in trie.routed(p.node as usize) {
                plans.push((gid, groups[gid as usize].main_nodes()[depth0], p.ptr));
                if bill {
                    shared_steps[gid as usize] += 1;
                }
            }
        }
        plans.sort_unstable();
        // Groups whose predicate subtrees test this name (every active
        // group in scan mode).
        pred_gids.clear();
        match pred {
            Some(index) => index.for_each_element_target(sym, |gi| pred_gids.push(gi as u32)),
            None => pred_gids.extend(
                groups.iter().enumerate().filter(|(_, g)| g.is_active()).map(|(gi, _)| gi as u32),
            ),
        }
        // Frame bookkeeping for the matching end tag.
        frames.push((frame_gids.len() as u32, frame_nodes.len() as u32));
        frame_nodes.extend(pushed.iter().map(|p| p.node));
        merge_prefix_targets(plans, pred_gids, main_scratch, frame_gids, |gid, main, preds| {
            let group = &mut groups[gid as usize];
            if !group.is_active() {
                return 0;
            }
            let (machine, subscribers) = group.machine_and_subscribers();
            machine.start_element_prefix(
                main,
                preds,
                sym,
                event.name.as_str(),
                event.level,
                &event.attributes,
                node_id,
                attr_id_base,
                event.span,
                &mut |hit| fan_out_match(subscribers, matches, on_match, hit),
            )
        });
    }

    fn characters(&mut self, event: &CharactersEvent, node_id: NodeId) {
        let Self { groups, pred, matches, on_match, .. } = self;
        let ngroups = groups.len();
        let mut touch = |gi: usize| {
            let group = &mut groups[gi];
            if !group.is_active() {
                return;
            }
            let (machine, subscribers) = group.machine_and_subscribers();
            machine.characters(&event.text, event.level, node_id, event.span, &mut |hit| {
                fan_out_match(subscribers, matches, on_match, hit)
            });
        };
        match pred {
            Some(index) => index.for_each_text_target(&mut touch),
            None => (0..ngroups).for_each(touch),
        }
    }

    fn end_element(&mut self, _sym: Option<Symbol>, event: &EndElementEvent) {
        let (gid_base, node_base) = self.frames.pop().expect("events nest");
        for i in gid_base as usize..self.frame_gids.len() {
            let gid = self.frame_gids[i] as usize;
            let group = &mut self.groups[gid];
            let (machine, subscribers) = group.machine_and_subscribers();
            let (matches, on_match) = (&mut *self.matches, &mut self.on_match);
            machine.end_element(event.name.as_str(), event.level, event.element_span, &mut |hit| {
                fan_out_match(subscribers, matches, on_match, hit)
            });
        }
        self.frame_gids.truncate(gid_base as usize);
        for i in node_base as usize..self.frame_nodes.len() {
            self.trie.retreat_one(self.frame_nodes[i], event.level);
        }
        self.frame_nodes.truncate(node_base as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitex_xmlsax::XmlReader;

    #[test]
    fn multiple_queries_one_scan() {
        let mut multi = MultiEngine::new();
        let qa = multi.add_query("//a").unwrap();
        let qb = multi.add_query("//b").unwrap();
        let qab = multi.add_query("//a/b").unwrap();
        let xml = "<a><b/><c><b/></c></a>";
        let out = multi.run(XmlReader::from_str(xml), |_, _| {}).unwrap();
        assert_eq!(out.matches[qa.0].len(), 1);
        assert_eq!(out.matches[qb.0].len(), 2);
        assert_eq!(out.matches[qab.0].len(), 1);
        assert_eq!(out.elements, 4);
    }

    #[test]
    fn results_agree_with_single_engines() {
        let xml = vitex_xmlgen_free::random_doc(99);
        let queries = ["//a", "//a[b]", "//a/@id", "//b/text()", "//a//b[c]"];
        for mode in [DispatchMode::Indexed, DispatchMode::Scan] {
            let mut multi = MultiEngine::with_dispatch(mode);
            for q in &queries {
                multi.add_query(q).unwrap();
            }
            let out = multi.run(XmlReader::from_str(&xml), |_, _| {}).unwrap();
            for (i, q) in queries.iter().enumerate() {
                let single = crate::engine::evaluate_str(&xml, q).unwrap();
                let multi_ids: Vec<u64> = out.matches[i].iter().map(|m| m.node).collect();
                let single_ids: Vec<u64> = single.iter().map(|m| m.node).collect();
                assert_eq!(multi_ids, single_ids, "query {q} mode {mode:?}");
            }
        }
    }

    #[test]
    fn callback_carries_query_ids() {
        let mut multi = MultiEngine::new();
        multi.add_query("//a").unwrap();
        multi.add_query("//b").unwrap();
        let mut hits = Vec::new();
        multi.run(XmlReader::from_str("<a><b/></a>"), |q, m| hits.push((q.0, m.node))).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, [(0, 0), (1, 1)]);
    }

    #[test]
    fn query_text_and_introspection() {
        let mut multi = MultiEngine::default();
        assert!(multi.is_empty());
        assert_eq!(multi.dispatch(), DispatchMode::Indexed);
        assert_eq!(multi.plan_mode(), PlanMode::Shared);
        let id = multi.add_query("//a[ b ]").unwrap();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi.group_count(), 1);
        assert_eq!(multi.query_text(id), "//a[b]");
    }

    #[test]
    fn engine_is_reusable() {
        let mut multi = MultiEngine::new();
        let q = multi.add_query("//b").unwrap();
        let a = multi.run(XmlReader::from_str("<a><b/></a>"), |_, _| {}).unwrap();
        let b = multi.run(XmlReader::from_str("<a><b/><b/></a>"), |_, _| {}).unwrap();
        assert_eq!(a.matches[q.0].len(), 1);
        assert_eq!(b.matches[q.0].len(), 2);
    }

    #[test]
    fn stream_counts_match_single_engine_instrumentation() {
        // MultiOutput parity: the same stream counters EvalOutput reports.
        let xml = "<a><b>text</b><!--c--><d/></a>";
        let mut multi = MultiEngine::new();
        multi.add_query("//b").unwrap();
        let out = multi.run(XmlReader::from_str(xml), |_, _| {}).unwrap();
        let single = crate::engine::evaluate_str(xml, "//b").unwrap();
        assert_eq!(single.len(), 1);
        let eval = {
            let tree = vitex_xpath::QueryTree::parse("//b").unwrap();
            crate::engine::evaluate_reader(XmlReader::from_str(xml), &tree).unwrap()
        };
        assert_eq!(out.elements, eval.elements);
        assert_eq!(out.text_nodes, eval.text_nodes);
        assert_eq!(out.events, eval.events);
        assert_eq!(out.text_nodes, 1);
        assert!(out.events >= 8, "comments count as events: {}", out.events);
    }

    #[test]
    fn wildcard_only_machine_sees_every_event() {
        // A machine whose steps are all wildcards has an empty name index;
        // the dispatch index must still deliver every element to it.
        let xml = "<r><x><y/></x><z/></r>";
        let mut multi = MultiEngine::new();
        let q = multi.add_query("//*/*").unwrap();
        let out = multi.run(XmlReader::from_str(xml), |_, _| {}).unwrap();
        // Matches: x, y, z (every non-root element).
        assert_eq!(out.matches[q.0].len(), 3);
        // And its machine saw all 4 elements (pushes at the wildcard root).
        assert!(out.stats[q.0].pushes >= 4);
    }

    #[test]
    fn late_registration_updates_the_index_in_place() {
        let mut multi = MultiEngine::new();
        let qa = multi.add_query("//a").unwrap();
        let out = multi.run(XmlReader::from_str("<a><b/></a>"), |_, _| {}).unwrap();
        assert_eq!(out.matches[qa.0].len(), 1);
        // Register a query for a new name after a run: the index must pick
        // up both the new group and the new symbol.
        let qb = multi.add_query("//b").unwrap();
        let out = multi.run(XmlReader::from_str("<a><b/></a>"), |_, _| {}).unwrap();
        assert_eq!(out.matches[qa.0].len(), 1);
        assert_eq!(out.matches[qb.0].len(), 1);
    }

    #[test]
    fn scan_and_indexed_dispatch_agree_on_stats() {
        // Same machines, same document: per-query machine statistics must
        // be identical in both dispatch modes (untouched machines do no
        // work in either).
        let xml = vitex_xmlgen_free::random_doc(7);
        let queries = ["//a[b]/c", "//b//c", "//c/@id", "//*[a]"];
        let run = |mode| {
            let mut multi = MultiEngine::with_dispatch(mode);
            for q in &queries {
                multi.add_query(q).unwrap();
            }
            multi.run(XmlReader::from_str(&xml), |_, _| {}).unwrap()
        };
        let indexed = run(DispatchMode::Indexed);
        let scanned = run(DispatchMode::Scan);
        assert_eq!(indexed.stats, scanned.stats);
        assert_eq!(indexed.events, scanned.events);
    }

    #[test]
    fn duplicate_queries_share_a_machine_and_fan_out() {
        let mut multi = MultiEngine::new();
        let q1 = multi.add_query("//a[b and c]").unwrap();
        let q2 = multi.add_query("//a[c][b]").unwrap(); // same canonical form
        let q3 = multi.add_query("//a[b]").unwrap(); // different query
        assert_eq!(multi.len(), 3);
        assert_eq!(multi.group_count(), 2);
        let xml = "<r><a><b/><c/></a><a><b/></a></r>";
        let mut streamed: Vec<(usize, u64)> = Vec::new();
        let out = multi.run(XmlReader::from_str(xml), |q, m| streamed.push((q.0, m.node))).unwrap();
        // Both subscribers of the shared machine see the same single match.
        assert_eq!(out.matches[q1.0].len(), 1);
        assert_eq!(out.matches[q1.0], out.matches[q2.0]);
        assert_eq!(out.matches[q3.0].len(), 2);
        // Fan-out order is registration order, interleaved per solution.
        let shared_hits: Vec<usize> =
            streamed.iter().filter(|(_, n)| *n == 1).map(|(q, _)| *q).collect();
        assert_eq!(shared_hits[..2], [q1.0, q2.0]);
        // Shared subscribers report the same machine statistics.
        assert_eq!(out.stats[q1.0], out.stats[q2.0]);
        assert_eq!(out.plan.queries, 3);
        assert_eq!(out.plan.groups, 2);
        assert_eq!(out.plan.dedup_ratio(), 1.5);
    }

    #[test]
    fn prefix_shared_mode_matches_and_counts() {
        // /a/b and /a/c share the /a trie node; //x[y] forks on its
        // predicate. Results must equal shared mode, and the prefix
        // counters must show the runtime trie at work.
        let xml = "<a><b/><c/><x><y/></x><b/></a>";
        let queries = ["/a/b", "/a/c", "//x[y]", "/a/b"];
        let run = |plan: PlanMode, dispatch: DispatchMode| {
            let mut multi = MultiEngine::with_options(dispatch, plan);
            for q in queries {
                multi.add_query(q).unwrap();
            }
            let mut streamed = Vec::new();
            let out =
                multi.run(XmlReader::from_str(xml), |q, m| streamed.push((q.0, m.node))).unwrap();
            (out, streamed)
        };
        for dispatch in [DispatchMode::Indexed, DispatchMode::Scan] {
            let (prefix, p_streamed) = run(PlanMode::PrefixShared, dispatch);
            let (shared, s_streamed) = run(PlanMode::Shared, dispatch);
            assert_eq!(prefix.matches, shared.matches, "{dispatch:?}");
            assert_eq!(prefix.stats, shared.stats, "{dispatch:?}");
            assert_eq!(p_streamed, s_streamed, "{dispatch:?}");
            assert!(prefix.plan.prefix_steps_executed > 0);
            assert!(prefix.plan.prefix_steps_saved > 0, "/a is shared by two groups");
            assert!(prefix.plan.prefix_forks > 0);
            assert!(prefix.plan.prefix_stack_bytes > 0);
            assert_eq!(shared.plan.prefix_steps_executed, 0);
        }
        // Dedup still applies: the duplicate /a/b joined a group.
        let (prefix, _) = run(PlanMode::PrefixShared, DispatchMode::Indexed);
        assert_eq!(prefix.plan.queries, 4);
        assert_eq!(prefix.plan.groups, 3);
    }

    #[test]
    fn prefix_shared_mode_survives_churn_between_runs() {
        let mut multi = MultiEngine::with_options(DispatchMode::Indexed, PlanMode::PrefixShared);
        let qa = multi.add_query("/a/b").unwrap();
        let qb = multi.add_query("/a/c").unwrap();
        let xml = "<a><b/><c/></a>";
        let out = multi.run(XmlReader::from_str(xml), |_, _| {}).unwrap();
        assert_eq!(out.matches[qa.0].len(), 1);
        assert_eq!(out.matches[qb.0].len(), 1);
        assert_eq!(multi.remove_query(qa), Some(true));
        let qd = multi.add_query("//b").unwrap();
        let out = multi.run(XmlReader::from_str(xml), |_, _| {}).unwrap();
        assert!(out.matches[qa.0].is_empty(), "retired group stays silent");
        assert_eq!(out.matches[qb.0].len(), 1);
        assert_eq!(out.matches[qd.0].len(), 1);
        assert_eq!(out.plan.recycled_slots, 1, "//b recycled /a/b's slot");
    }

    #[test]
    fn unshared_mode_runs_one_machine_per_registration() {
        let mut multi = MultiEngine::with_options(DispatchMode::Indexed, PlanMode::Unshared);
        let q1 = multi.add_query("//a").unwrap();
        let q2 = multi.add_query("//a").unwrap();
        assert_eq!(multi.plan_mode(), PlanMode::Unshared);
        assert_eq!(multi.group_count(), 2);
        let out = multi.run(XmlReader::from_str("<a><a/></a>"), |_, _| {}).unwrap();
        assert_eq!(out.matches[q1.0], out.matches[q2.0]);
        assert_eq!(out.plan.dedup_ratio(), 1.0);
    }

    #[test]
    fn remove_query_reports_last_subscriber_and_stops_matches() {
        let mut multi = MultiEngine::new();
        let q1 = multi.add_query("//a").unwrap();
        let q2 = multi.add_query("//a").unwrap();
        let q3 = multi.add_query("//b").unwrap();
        assert_eq!(multi.remove_query(q1), Some(false), "q2 still subscribes");
        assert_eq!(multi.remove_query(q1), None, "double removal");
        assert_eq!(multi.remove_query(q2), Some(true), "last subscriber");
        assert_eq!(multi.len(), 1);
        assert_eq!(multi.group_count(), 1);
        let out = multi
            .run(XmlReader::from_str("<a><b/></a>"), |q, _| {
                assert_eq!(q, q3, "only the surviving query fires");
            })
            .unwrap();
        assert!(out.matches[q1.0].is_empty());
        assert!(out.matches[q2.0].is_empty());
        assert_eq!(out.matches[q3.0].len(), 1);
        assert_eq!(out.stats[q1.0], MachineStats::default());
        // The id space is not recycled.
        let q4 = multi.add_query("//c").unwrap();
        assert_eq!(q4.0, 3);
    }

    #[test]
    fn removal_then_scan_mode_skips_retired_groups() {
        let mut multi = MultiEngine::with_dispatch(DispatchMode::Scan);
        let qa = multi.add_query("//a").unwrap();
        let qb = multi.add_query("//b").unwrap();
        assert_eq!(multi.remove_query(qa), Some(true));
        let out = multi.run(XmlReader::from_str("<a><b/></a>"), |_, _| {}).unwrap();
        assert!(out.matches[qa.0].is_empty());
        assert_eq!(out.matches[qb.0].len(), 1);
        assert_eq!(out.plan.groups, 1);
    }

    /// A tiny deterministic random document without depending on
    /// vitex-xmlgen (which would be a cyclic dev-dependency).
    mod vitex_xmlgen_free {
        pub fn random_doc(seed: u64) -> String {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = move |n: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % n
            };
            let mut out = String::from("<r>");
            let mut depth = 1;
            for _ in 0..120 {
                match next(5) {
                    0 | 1 if depth < 8 => {
                        let tag = ["a", "b", "c"][next(3) as usize];
                        if next(3) == 0 {
                            out.push_str(&format!("<{tag} id=\"v{}\">", next(3)));
                        } else {
                            out.push_str(&format!("<{tag}>"));
                        }
                        // remember with a marker on the stack via depth only
                        STACK.with(|s| s.borrow_mut().push(tag));
                        depth += 1;
                    }
                    2 if depth > 1 => {
                        let tag = STACK.with(|s| s.borrow_mut().pop().unwrap());
                        out.push_str(&format!("</{tag}>"));
                        depth -= 1;
                    }
                    _ => out.push_str(["x", "y", "7"][next(3) as usize]),
                }
            }
            while depth > 1 {
                let tag = STACK.with(|s| s.borrow_mut().pop().unwrap());
                out.push_str(&format!("</{tag}>"));
                depth -= 1;
            }
            out.push_str("</r>");
            out
        }

        thread_local! {
            static STACK: std::cell::RefCell<Vec<&'static str>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
    }
}
