//! Multi-query evaluation: many TwigM machines over one scan.
//!
//! The paper's motivating applications — stock tickers, sports feeds,
//! personalized newspapers — are publish/subscribe systems: *many*
//! standing queries watch *one* stream. Because TwigM machines are
//! independent consumers of the same SAX events, running `k` queries costs
//! one parse plus `k` machine updates, not `k` parses. [`MultiEngine`]
//! packages that: register queries, stream a document once, receive
//! `(query index, match)` pairs as they become decidable.

use std::io::Read;

use vitex_xmlsax::{XmlEvent, XmlReader};
use vitex_xpath::query_tree::QueryTree;

use crate::builder::EvalMode;
use crate::error::EngineResult;
use crate::machine::TwigM;
use crate::result::{Match, NodeId};
use crate::stats::MachineStats;

/// A registered query's handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub usize);

/// Summary of one multi-query run.
#[derive(Debug, Clone)]
pub struct MultiOutput {
    /// Matches per query, in emission order (indexed by [`QueryId`]).
    pub matches: Vec<Vec<Match>>,
    /// Machine statistics per query.
    pub stats: Vec<MachineStats>,
    /// Elements seen in the single scan.
    pub elements: u64,
}

/// Evaluates many queries in a single sequential scan.
pub struct MultiEngine {
    machines: Vec<TwigM>,
    queries: Vec<String>,
}

impl MultiEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        MultiEngine { machines: Vec::new(), queries: Vec::new() }
    }

    /// Registers a query; returns its handle.
    pub fn add_query(&mut self, query: &str) -> EngineResult<QueryId> {
        let tree = QueryTree::parse(query)?;
        self.add_tree(&tree)
    }

    /// Registers an already-built query tree.
    pub fn add_tree(&mut self, tree: &QueryTree) -> EngineResult<QueryId> {
        let machine = TwigM::with_mode(tree, EvalMode::Compact)?;
        let id = QueryId(self.machines.len());
        self.queries.push(tree.original().to_owned());
        self.machines.push(machine);
        Ok(id)
    }

    /// Registered query count.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The canonical text of a registered query.
    pub fn query_text(&self, id: QueryId) -> &str {
        &self.queries[id.0]
    }

    /// Streams `reader` once through every registered machine. `on_match`
    /// fires with the originating query's id the moment a solution is
    /// decidable.
    pub fn run<R: Read, F: FnMut(QueryId, Match)>(
        &mut self,
        mut reader: XmlReader<R>,
        mut on_match: F,
    ) -> EngineResult<MultiOutput> {
        for m in &mut self.machines {
            m.reset();
        }
        let mut matches: Vec<Vec<Match>> = self.machines.iter().map(|_| Vec::new()).collect();
        let mut next_id: NodeId = 0;
        let mut elements = 0u64;
        loop {
            match reader.next_event()? {
                XmlEvent::StartElement(e) => {
                    elements += 1;
                    let elem_id = next_id;
                    next_id += 1 + e.attributes.len() as u64;
                    for (qi, m) in self.machines.iter_mut().enumerate() {
                        m.start_element(
                            e.name.as_str(),
                            e.level,
                            &e.attributes,
                            elem_id,
                            elem_id + 1,
                            e.span,
                            &mut |hit| {
                                matches[qi].push(hit.clone());
                                on_match(QueryId(qi), hit);
                            },
                        );
                    }
                }
                XmlEvent::Characters(c) => {
                    let id = next_id;
                    next_id += 1;
                    for (qi, m) in self.machines.iter_mut().enumerate() {
                        m.characters(&c.text, c.level, id, c.span, &mut |hit| {
                            matches[qi].push(hit.clone());
                            on_match(QueryId(qi), hit);
                        });
                    }
                }
                XmlEvent::EndElement(e) => {
                    for (qi, m) in self.machines.iter_mut().enumerate() {
                        m.end_element(e.name.as_str(), e.level, e.element_span, &mut |hit| {
                            matches[qi].push(hit.clone());
                            on_match(QueryId(qi), hit);
                        });
                    }
                }
                XmlEvent::EndDocument => break,
                _ => {}
            }
        }
        Ok(MultiOutput {
            matches,
            stats: self.machines.iter().map(|m| m.stats().clone()).collect(),
            elements,
        })
    }
}

impl Default for MultiEngine {
    fn default() -> Self {
        MultiEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiple_queries_one_scan() {
        let mut multi = MultiEngine::new();
        let qa = multi.add_query("//a").unwrap();
        let qb = multi.add_query("//b").unwrap();
        let qab = multi.add_query("//a/b").unwrap();
        let xml = "<a><b/><c><b/></c></a>";
        let out = multi.run(XmlReader::from_str(xml), |_, _| {}).unwrap();
        assert_eq!(out.matches[qa.0].len(), 1);
        assert_eq!(out.matches[qb.0].len(), 2);
        assert_eq!(out.matches[qab.0].len(), 1);
        assert_eq!(out.elements, 4);
    }

    #[test]
    fn results_agree_with_single_engines() {
        let xml = vitex_xmlgen_free::random_doc(99);
        let queries = ["//a", "//a[b]", "//a/@id", "//b/text()", "//a//b[c]"];
        let mut multi = MultiEngine::new();
        for q in &queries {
            multi.add_query(q).unwrap();
        }
        let out = multi.run(XmlReader::from_str(&xml), |_, _| {}).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let single = crate::engine::evaluate_str(&xml, q).unwrap();
            let multi_ids: Vec<u64> = out.matches[i].iter().map(|m| m.node).collect();
            let single_ids: Vec<u64> = single.iter().map(|m| m.node).collect();
            assert_eq!(multi_ids, single_ids, "query {q}");
        }
    }

    #[test]
    fn callback_carries_query_ids() {
        let mut multi = MultiEngine::new();
        multi.add_query("//a").unwrap();
        multi.add_query("//b").unwrap();
        let mut hits = Vec::new();
        multi
            .run(XmlReader::from_str("<a><b/></a>"), |q, m| hits.push((q.0, m.node)))
            .unwrap();
        hits.sort_unstable();
        assert_eq!(hits, [(0, 0), (1, 1)]);
    }

    #[test]
    fn query_text_and_introspection() {
        let mut multi = MultiEngine::default();
        assert!(multi.is_empty());
        let id = multi.add_query("//a[ b ]").unwrap();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi.query_text(id), "//a[b]");
    }

    #[test]
    fn engine_is_reusable() {
        let mut multi = MultiEngine::new();
        let q = multi.add_query("//b").unwrap();
        let a = multi.run(XmlReader::from_str("<a><b/></a>"), |_, _| {}).unwrap();
        let b = multi.run(XmlReader::from_str("<a><b/><b/></a>"), |_, _| {}).unwrap();
        assert_eq!(a.matches[q.0].len(), 1);
        assert_eq!(b.matches[q.0].len(), 2);
    }

    /// A tiny deterministic random document without depending on
    /// vitex-xmlgen (which would be a cyclic dev-dependency).
    mod vitex_xmlgen_free {
        pub fn random_doc(seed: u64) -> String {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = move |n: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % n
            };
            let mut out = String::from("<r>");
            let mut depth = 1;
            for _ in 0..120 {
                match next(5) {
                    0 | 1 if depth < 8 => {
                        let tag = ["a", "b", "c"][next(3) as usize];
                        if next(3) == 0 {
                            out.push_str(&format!("<{tag} id=\"v{}\">", next(3)));
                        } else {
                            out.push_str(&format!("<{tag}>"));
                        }
                        // remember with a marker on the stack via depth only
                        STACK.with(|s| s.borrow_mut().push(tag));
                        depth += 1;
                    }
                    2 if depth > 1 => {
                        let tag = STACK.with(|s| s.borrow_mut().pop().unwrap());
                        out.push_str(&format!("</{tag}>"));
                        depth -= 1;
                    }
                    _ => out.push_str(["x", "y", "7"][next(3) as usize]),
                }
            }
            while depth > 1 {
                let tag = STACK.with(|s| s.borrow_mut().pop().unwrap());
                out.push_str(&format!("</{tag}>"));
                depth -= 1;
            }
            out.push_str("</r>");
            out
        }

        thread_local! {
            static STACK: std::cell::RefCell<Vec<&'static str>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
    }
}
