//! Multi-query evaluation: many TwigM machines over one scan.
//!
//! The paper's motivating applications — stock tickers, sports feeds,
//! personalized newspapers — are publish/subscribe systems: *many*
//! standing queries watch *one* stream. Because TwigM machines are
//! independent consumers of the same SAX events, running `k` queries costs
//! one parse plus machine updates, not `k` parses. [`MultiEngine`]
//! packages that: register queries, stream a document once, receive
//! `(query id, match)` pairs as they become decidable.
//!
//! ## Dispatch
//!
//! Poking every machine on every event makes the per-event cost `O(k)` —
//! fatal at thousands of standing queries. The engine therefore builds a
//! **dispatch index** over the shared [`Interner`]:
//!
//! * per interned element name, a [`DynBitSet`] of machines whose query
//!   mentions that name;
//! * an always-on set of machines containing a wildcard step (they must
//!   see every element);
//! * the list of machines that consume `characters` events at all.
//!
//! A `startElement` then touches only machines interested in that name
//! (plus wildcards), and the end tag replays the same set via the symbol
//! the [`DocumentDriver`] remembered from the start tag. This is sound
//! because a machine's stacks only ever hold entries for elements it was
//! shown: skipping an element's start guarantees there is nothing to pop
//! at its end, and text/attribute tests live inside the delivered events.
//! [`DispatchMode::Scan`] keeps the poke-everyone path for measurement
//! (`bench_multi` quantifies the gap).

use std::io::Read;

use vitex_xmlsax::event::{CharactersEvent, EndElementEvent, StartElementEvent};
use vitex_xmlsax::XmlReader;
use vitex_xpath::query_tree::QueryTree;

use crate::bitset::DynBitSet;
use crate::builder::{EvalMode, MachineSpec};
use crate::driver::{DocumentDriver, EventSink};
use crate::error::EngineResult;
use crate::intern::{Interner, Symbol};
use crate::machine::TwigM;
use crate::result::{Match, NodeId};
use crate::stats::MachineStats;

/// A registered query's handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub usize);

/// How start/end element events are routed to machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Use the name → machines index; only interested machines are
    /// touched per event. The default.
    #[default]
    Indexed,
    /// Poke every machine on every event (the pre-index behaviour), kept
    /// for ablation benchmarks.
    Scan,
}

/// Summary of one multi-query run.
#[derive(Debug, Clone)]
pub struct MultiOutput {
    /// Matches per query, in emission order (indexed by [`QueryId`]).
    pub matches: Vec<Vec<Match>>,
    /// Machine statistics per query.
    pub stats: Vec<MachineStats>,
    /// Elements seen in the single scan.
    pub elements: u64,
    /// Text nodes seen in the single scan.
    pub text_nodes: u64,
    /// Total SAX events processed in the single scan.
    pub events: u64,
}

/// The dispatch index: which machines care about which events.
#[derive(Debug, Default)]
struct DispatchIndex {
    /// Symbol index → machines whose query mentions that name (and have
    /// no wildcard step — wildcard machines live in `wildcard`).
    by_symbol: Vec<DynBitSet>,
    /// Machines containing a wildcard element step: they see every
    /// element event.
    wildcard: DynBitSet,
    /// Machines that consume `characters` events.
    text: Vec<usize>,
}

impl DispatchIndex {
    fn build(machines: &[TwigM], interner: &Interner) -> Self {
        let mut index = DispatchIndex {
            by_symbol: vec![DynBitSet::new(); interner.len()],
            ..DispatchIndex::default()
        };
        for (qi, machine) in machines.iter().enumerate() {
            let spec = machine.spec();
            if spec.has_wildcard() {
                // A wildcard machine sees every element, which subsumes
                // its named interests.
                index.wildcard.insert(qi);
            } else {
                for &sym in &spec.name_symbols {
                    index.by_symbol[sym.index()].insert(qi);
                }
            }
            if spec.needs_characters() {
                index.text.push(qi);
            }
        }
        index
    }

    /// Calls `f` for every machine interested in an element with symbol
    /// `sym` (named machines ∪ wildcard machines).
    #[inline]
    fn for_each_element_target(&self, sym: Option<Symbol>, f: impl FnMut(usize)) {
        match sym.and_then(|s| self.by_symbol.get(s.index())) {
            Some(named) => named.union_for_each(&self.wildcard, f),
            None => self.wildcard.for_each(f),
        }
    }
}

/// Evaluates many queries in a single sequential scan.
pub struct MultiEngine {
    machines: Vec<TwigM>,
    queries: Vec<String>,
    interner: Interner,
    driver: DocumentDriver,
    mode: DispatchMode,
    index: DispatchIndex,
    index_dirty: bool,
}

impl MultiEngine {
    /// Creates an empty engine with indexed dispatch.
    pub fn new() -> Self {
        MultiEngine::with_dispatch(DispatchMode::Indexed)
    }

    /// Creates an empty engine with an explicit dispatch mode.
    pub fn with_dispatch(mode: DispatchMode) -> Self {
        MultiEngine {
            machines: Vec::new(),
            queries: Vec::new(),
            interner: Interner::new(),
            driver: DocumentDriver::new(),
            mode,
            index: DispatchIndex::default(),
            index_dirty: false,
        }
    }

    /// The active dispatch mode.
    pub fn dispatch(&self) -> DispatchMode {
        self.mode
    }

    /// Switches dispatch mode (takes effect on the next run).
    pub fn set_dispatch(&mut self, mode: DispatchMode) {
        self.mode = mode;
    }

    /// Registers a query; returns its handle.
    pub fn add_query(&mut self, query: &str) -> EngineResult<QueryId> {
        let tree = QueryTree::parse(query)?;
        self.add_tree(&tree)
    }

    /// Registers an already-built query tree.
    pub fn add_tree(&mut self, tree: &QueryTree) -> EngineResult<QueryId> {
        let spec = MachineSpec::compile_with(tree, &mut self.interner)?;
        let machine = TwigM::from_spec(spec, EvalMode::Compact);
        let id = QueryId(self.machines.len());
        self.queries.push(tree.original().to_owned());
        self.machines.push(machine);
        self.index_dirty = true;
        Ok(id)
    }

    /// Registered query count.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The canonical text of a registered query.
    pub fn query_text(&self, id: QueryId) -> &str {
        &self.queries[id.0]
    }

    /// Streams `reader` once through every registered machine. `on_match`
    /// fires with the originating query's id the moment a solution is
    /// decidable.
    pub fn run<R: Read, F: FnMut(QueryId, Match)>(
        &mut self,
        reader: XmlReader<R>,
        on_match: F,
    ) -> EngineResult<MultiOutput> {
        for m in &mut self.machines {
            m.reset();
        }
        if self.index_dirty {
            self.index = DispatchIndex::build(&self.machines, &self.interner);
            self.index_dirty = false;
        }
        let mut matches: Vec<Vec<Match>> = self.machines.iter().map(|_| Vec::new()).collect();
        let stream = {
            let mut sink = MultiSink {
                machines: &mut self.machines,
                interner: &self.interner,
                index: (self.mode == DispatchMode::Indexed).then_some(&self.index),
                matches: &mut matches,
                on_match,
            };
            self.driver.run(reader, &mut sink)?
        };
        Ok(MultiOutput {
            matches,
            stats: self.machines.iter().map(|m| m.stats().clone()).collect(),
            elements: stream.elements,
            text_nodes: stream.text_nodes,
            events: stream.events,
        })
    }
}

impl Default for MultiEngine {
    fn default() -> Self {
        MultiEngine::new()
    }
}

/// The multi-query [`EventSink`]: routes each event to the interested
/// machines (or all of them in [`DispatchMode::Scan`]).
struct MultiSink<'a, F: FnMut(QueryId, Match)> {
    machines: &'a mut [TwigM],
    interner: &'a Interner,
    /// `Some` in indexed mode, `None` in scan mode.
    index: Option<&'a DispatchIndex>,
    matches: &'a mut [Vec<Match>],
    on_match: F,
}

impl<F: FnMut(QueryId, Match)> MultiSink<'_, F> {
    /// Runs `f` on machine `qi` with a match callback wired to that
    /// query's buffer and the user callback.
    #[inline]
    fn with_machine(&mut self, qi: usize, f: impl FnOnce(&mut TwigM, &mut dyn FnMut(Match))) {
        let matches = &mut self.matches[qi];
        let on_match = &mut self.on_match;
        f(&mut self.machines[qi], &mut |hit| {
            matches.push(hit.clone());
            on_match(QueryId(qi), hit);
        });
    }
}

impl<F: FnMut(QueryId, Match)> EventSink for MultiSink<'_, F> {
    fn resolve(&mut self, name: &str) -> Option<Symbol> {
        self.interner.lookup(name)
    }

    fn start_element(
        &mut self,
        sym: Option<Symbol>,
        event: &StartElementEvent,
        node_id: NodeId,
        attr_id_base: NodeId,
    ) {
        let touch = |this: &mut Self, qi: usize| {
            this.with_machine(qi, |machine, emit| {
                machine.start_element_interned(
                    sym,
                    event.name.as_str(),
                    event.level,
                    &event.attributes,
                    node_id,
                    attr_id_base,
                    event.span,
                    emit,
                );
            });
        };
        match self.index {
            Some(index) => index.for_each_element_target(sym, |qi| touch(self, qi)),
            None => (0..self.machines.len()).for_each(|qi| touch(self, qi)),
        }
    }

    fn characters(&mut self, event: &CharactersEvent, node_id: NodeId) {
        let touch = |this: &mut Self, qi: usize| {
            this.with_machine(qi, |machine, emit| {
                machine.characters(&event.text, event.level, node_id, event.span, emit);
            });
        };
        match self.index {
            Some(index) => {
                for i in 0..index.text.len() {
                    touch(self, index.text[i]);
                }
            }
            None => (0..self.machines.len()).for_each(|qi| touch(self, qi)),
        }
    }

    fn end_element(&mut self, sym: Option<Symbol>, event: &EndElementEvent) {
        let touch = |this: &mut Self, qi: usize| {
            this.with_machine(qi, |machine, emit| {
                machine.end_element(event.name.as_str(), event.level, event.element_span, emit);
            });
        };
        match self.index {
            Some(index) => index.for_each_element_target(sym, |qi| touch(self, qi)),
            None => (0..self.machines.len()).for_each(|qi| touch(self, qi)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiple_queries_one_scan() {
        let mut multi = MultiEngine::new();
        let qa = multi.add_query("//a").unwrap();
        let qb = multi.add_query("//b").unwrap();
        let qab = multi.add_query("//a/b").unwrap();
        let xml = "<a><b/><c><b/></c></a>";
        let out = multi.run(XmlReader::from_str(xml), |_, _| {}).unwrap();
        assert_eq!(out.matches[qa.0].len(), 1);
        assert_eq!(out.matches[qb.0].len(), 2);
        assert_eq!(out.matches[qab.0].len(), 1);
        assert_eq!(out.elements, 4);
    }

    #[test]
    fn results_agree_with_single_engines() {
        let xml = vitex_xmlgen_free::random_doc(99);
        let queries = ["//a", "//a[b]", "//a/@id", "//b/text()", "//a//b[c]"];
        for mode in [DispatchMode::Indexed, DispatchMode::Scan] {
            let mut multi = MultiEngine::with_dispatch(mode);
            for q in &queries {
                multi.add_query(q).unwrap();
            }
            let out = multi.run(XmlReader::from_str(&xml), |_, _| {}).unwrap();
            for (i, q) in queries.iter().enumerate() {
                let single = crate::engine::evaluate_str(&xml, q).unwrap();
                let multi_ids: Vec<u64> = out.matches[i].iter().map(|m| m.node).collect();
                let single_ids: Vec<u64> = single.iter().map(|m| m.node).collect();
                assert_eq!(multi_ids, single_ids, "query {q} mode {mode:?}");
            }
        }
    }

    #[test]
    fn callback_carries_query_ids() {
        let mut multi = MultiEngine::new();
        multi.add_query("//a").unwrap();
        multi.add_query("//b").unwrap();
        let mut hits = Vec::new();
        multi.run(XmlReader::from_str("<a><b/></a>"), |q, m| hits.push((q.0, m.node))).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, [(0, 0), (1, 1)]);
    }

    #[test]
    fn query_text_and_introspection() {
        let mut multi = MultiEngine::default();
        assert!(multi.is_empty());
        assert_eq!(multi.dispatch(), DispatchMode::Indexed);
        let id = multi.add_query("//a[ b ]").unwrap();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi.query_text(id), "//a[b]");
    }

    #[test]
    fn engine_is_reusable() {
        let mut multi = MultiEngine::new();
        let q = multi.add_query("//b").unwrap();
        let a = multi.run(XmlReader::from_str("<a><b/></a>"), |_, _| {}).unwrap();
        let b = multi.run(XmlReader::from_str("<a><b/><b/></a>"), |_, _| {}).unwrap();
        assert_eq!(a.matches[q.0].len(), 1);
        assert_eq!(b.matches[q.0].len(), 2);
    }

    #[test]
    fn stream_counts_match_single_engine_instrumentation() {
        // MultiOutput parity: the same stream counters EvalOutput reports.
        let xml = "<a><b>text</b><!--c--><d/></a>";
        let mut multi = MultiEngine::new();
        multi.add_query("//b").unwrap();
        let out = multi.run(XmlReader::from_str(xml), |_, _| {}).unwrap();
        let single = crate::engine::evaluate_str(xml, "//b").unwrap();
        assert_eq!(single.len(), 1);
        let eval = {
            let tree = vitex_xpath::QueryTree::parse("//b").unwrap();
            crate::engine::evaluate_reader(XmlReader::from_str(xml), &tree).unwrap()
        };
        assert_eq!(out.elements, eval.elements);
        assert_eq!(out.text_nodes, eval.text_nodes);
        assert_eq!(out.events, eval.events);
        assert_eq!(out.text_nodes, 1);
        assert!(out.events >= 8, "comments count as events: {}", out.events);
    }

    #[test]
    fn wildcard_only_machine_sees_every_event() {
        // A machine whose steps are all wildcards has an empty name index;
        // the dispatch index must still deliver every element to it.
        let xml = "<r><x><y/></x><z/></r>";
        let mut multi = MultiEngine::new();
        let q = multi.add_query("//*/*").unwrap();
        let out = multi.run(XmlReader::from_str(xml), |_, _| {}).unwrap();
        // Matches: x, y, z (every non-root element).
        assert_eq!(out.matches[q.0].len(), 3);
        // And its machine saw all 4 elements (pushes at the wildcard root).
        assert!(out.stats[q.0].pushes >= 4);
    }

    #[test]
    fn late_registration_rebuilds_the_index() {
        let mut multi = MultiEngine::new();
        let qa = multi.add_query("//a").unwrap();
        let out = multi.run(XmlReader::from_str("<a><b/></a>"), |_, _| {}).unwrap();
        assert_eq!(out.matches[qa.0].len(), 1);
        // Register a query for a new name after a run: the index must pick
        // up both the new machine and the new symbol.
        let qb = multi.add_query("//b").unwrap();
        let out = multi.run(XmlReader::from_str("<a><b/></a>"), |_, _| {}).unwrap();
        assert_eq!(out.matches[qa.0].len(), 1);
        assert_eq!(out.matches[qb.0].len(), 1);
    }

    #[test]
    fn scan_and_indexed_dispatch_agree_on_stats() {
        // Same machines, same document: per-query machine statistics must
        // be identical in both dispatch modes (untouched machines do no
        // work in either).
        let xml = vitex_xmlgen_free::random_doc(7);
        let queries = ["//a[b]/c", "//b//c", "//c/@id", "//*[a]"];
        let run = |mode| {
            let mut multi = MultiEngine::with_dispatch(mode);
            for q in &queries {
                multi.add_query(q).unwrap();
            }
            multi.run(XmlReader::from_str(&xml), |_, _| {}).unwrap()
        };
        let indexed = run(DispatchMode::Indexed);
        let scanned = run(DispatchMode::Scan);
        assert_eq!(indexed.stats, scanned.stats);
        assert_eq!(indexed.events, scanned.events);
    }

    /// A tiny deterministic random document without depending on
    /// vitex-xmlgen (which would be a cyclic dev-dependency).
    mod vitex_xmlgen_free {
        pub fn random_doc(seed: u64) -> String {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = move |n: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % n
            };
            let mut out = String::from("<r>");
            let mut depth = 1;
            for _ in 0..120 {
                match next(5) {
                    0 | 1 if depth < 8 => {
                        let tag = ["a", "b", "c"][next(3) as usize];
                        if next(3) == 0 {
                            out.push_str(&format!("<{tag} id=\"v{}\">", next(3)));
                        } else {
                            out.push_str(&format!("<{tag}>"));
                        }
                        // remember with a marker on the stack via depth only
                        STACK.with(|s| s.borrow_mut().push(tag));
                        depth += 1;
                    }
                    2 if depth > 1 => {
                        let tag = STACK.with(|s| s.borrow_mut().pop().unwrap());
                        out.push_str(&format!("</{tag}>"));
                        depth -= 1;
                    }
                    _ => out.push_str(["x", "y", "7"][next(3) as usize]),
                }
            }
            while depth > 1 {
                let tag = STACK.with(|s| s.borrow_mut().pop().unwrap());
                out.push_str(&format!("</{tag}>"));
                depth -= 1;
            }
            out.push_str("</r>");
            out
        }

        thread_local! {
            static STACK: std::cell::RefCell<Vec<&'static str>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
    }
}
