//! The document driver: the **single** SAX event loop of the system.
//!
//! Before this module existed the `next_event()` loop — node numbering,
//! element/text/event counting, level plumbing — was copy-pasted across
//! the single-query engine, the multi-query engine and the CLI. The
//! [`DocumentDriver`] owns exactly that document-side state and pushes
//! each event into an [`EventSink`]; the engines are now sinks, and
//! anything else that wants a numbered, symbol-resolved event stream (a
//! future network front-end, a router shard) can be one too.
//!
//! Responsibilities split:
//!
//! * **driver** — reads SAX events, assigns document-order node ids
//!   (elements, their attributes, text nodes), counts stream statistics,
//!   resolves each start tag's name to an interned [`Symbol`] *once* (the
//!   sink supplies the interner via [`EventSink::resolve`]) and replays
//!   that symbol at the matching end tag from its open-element stack, so
//!   end tags never re-hash the name;
//! * **sink** — query logic: which machines see the event, what they do
//!   with it.

use vitex_xmlsax::event::{CharactersEvent, EndElementEvent, StartElementEvent};
use vitex_xmlsax::{EventSource, XmlEvent};

use crate::error::EngineResult;
use crate::intern::Symbol;
use crate::result::NodeId;
use crate::stats::StreamStats;
use crate::telemetry::{Telemetry, TID_COORDINATOR};

/// A consumer of numbered, symbol-resolved document events.
///
/// Methods mirror the SAX vocabulary the TwigM machine consumes. The
/// driver guarantees: `start_element` / `end_element` calls are properly
/// nested; `sym` at an end tag equals the `sym` its start tag resolved to;
/// node ids are document-order (an element's attributes occupy the ids
/// between it and its first child).
pub trait EventSink {
    /// Maps an element name to this sink's interned symbol, if the name is
    /// known to it. Called once per start tag, before
    /// [`EventSink::start_element`].
    fn resolve(&mut self, name: &str) -> Option<Symbol>;

    /// An element opened. `node_id` is the element's id; its attributes
    /// have ids `attr_id_base + i` in document order.
    fn start_element(
        &mut self,
        sym: Option<Symbol>,
        event: &StartElementEvent,
        node_id: NodeId,
        attr_id_base: NodeId,
    );

    /// A text node. `node_id` is the text node's id.
    fn characters(&mut self, event: &CharactersEvent, node_id: NodeId);

    /// An element closed; `sym` is the symbol its start tag resolved to.
    fn end_element(&mut self, sym: Option<Symbol>, event: &EndElementEvent);

    /// The document ended. Called exactly once per [`DocumentDriver::run`],
    /// after the last element/text event and before `run` returns. Sinks
    /// that buffer or forward events (e.g. the sharded engine's broadcast
    /// sink batching events onto worker rings) flush here; the default
    /// does nothing.
    fn document_end(&mut self) {}
}

/// Streams a document once, feeding an [`EventSink`].
///
/// The driver is reusable across documents; its only persistent state is a
/// scratch stack of open-element symbols (depth-bounded).
#[derive(Debug, Default)]
pub struct DocumentDriver {
    /// Symbol of each open element, innermost last — lets `end_element`
    /// reuse the start tag's resolution instead of re-hashing the name.
    open_syms: Vec<Option<Symbol>>,
    /// Telemetry sink; disabled by default (every recording call no-ops).
    telemetry: Telemetry,
}

impl DocumentDriver {
    /// A fresh driver.
    pub fn new() -> Self {
        DocumentDriver::default()
    }

    /// Attaches a telemetry handle. The driver folds stream counters and
    /// records the per-event dispatch histogram, whole-document wall time,
    /// and a `document` span per run.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The driver's telemetry handle (cheap clone; disabled handles clone
    /// to disabled handles).
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// Runs `reader` to end of document, dispatching every event into
    /// `sink`, and reports the stream statistics. Node numbering restarts
    /// at 0 for each run.
    ///
    /// Any [`EventSource`] works: the sequential [`XmlReader`] or the
    /// parallel [`vitex_xmlsax::ParallelReader`] — both deliver the same
    /// stream, so everything downstream is front-end agnostic.
    pub fn run<E: EventSource, S: EventSink>(
        &mut self,
        mut reader: E,
        sink: &mut S,
    ) -> EngineResult<StreamStats> {
        self.open_syms.clear();
        let mut next_id: NodeId = 0;
        let mut stats = StreamStats::default();
        let t_doc = self.telemetry.timer();
        loop {
            let event = reader.next_event()?;
            stats.events += 1;
            match event {
                XmlEvent::StartElement(e) => {
                    stats.elements += 1;
                    let node_id = next_id;
                    next_id += 1 + e.attributes.len() as u64;
                    let sym = sink.resolve(e.name.as_str());
                    self.open_syms.push(sym);
                    let t_ev = self.telemetry.timer();
                    sink.start_element(sym, &e, node_id, node_id + 1);
                    self.telemetry.observe_elapsed(|r| &r.dispatch_ns, t_ev);
                }
                XmlEvent::Characters(c) => {
                    stats.text_nodes += 1;
                    let node_id = next_id;
                    next_id += 1;
                    let t_ev = self.telemetry.timer();
                    sink.characters(&c, node_id);
                    self.telemetry.observe_elapsed(|r| &r.dispatch_ns, t_ev);
                }
                XmlEvent::EndElement(e) => {
                    let sym = self.open_syms.pop().flatten();
                    let t_ev = self.telemetry.timer();
                    sink.end_element(sym, &e);
                    self.telemetry.observe_elapsed(|r| &r.dispatch_ns, t_ev);
                }
                XmlEvent::EndDocument => {
                    sink.document_end();
                    break;
                }
                XmlEvent::StartDocument { .. }
                | XmlEvent::Comment(_)
                | XmlEvent::ProcessingInstruction(_)
                | XmlEvent::DoctypeDeclaration { .. } => {}
            }
        }
        self.telemetry.add_elapsed(|r| &r.doc_ns, t_doc);
        self.telemetry.record_span("document", "stream", TID_COORDINATOR, t_doc);
        self.telemetry.fold_stream(&stats);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;
    use vitex_xmlsax::XmlReader;

    /// Records everything the driver hands it.
    struct Recorder {
        interner: Interner,
        log: Vec<String>,
    }

    impl EventSink for Recorder {
        fn resolve(&mut self, name: &str) -> Option<Symbol> {
            self.interner.lookup(name)
        }

        fn start_element(
            &mut self,
            sym: Option<Symbol>,
            event: &StartElementEvent,
            node_id: NodeId,
            attr_id_base: NodeId,
        ) {
            self.log.push(format!(
                "start {} sym={:?} id={node_id} attrs@{attr_id_base}",
                event.name.as_str(),
                sym.map(Symbol::index)
            ));
        }

        fn characters(&mut self, event: &CharactersEvent, node_id: NodeId) {
            self.log.push(format!("text {:?} id={node_id}", event.text));
        }

        fn end_element(&mut self, sym: Option<Symbol>, event: &EndElementEvent) {
            self.log.push(format!("end {} sym={:?}", event.name.as_str(), sym.map(Symbol::index)));
        }
    }

    #[test]
    fn numbering_symbols_and_counts() {
        let mut interner = Interner::new();
        interner.intern("a");
        interner.intern("b");
        let mut sink = Recorder { interner, log: Vec::new() };
        let xml = "<a x=\"1\" y=\"2\"><b>hi</b><unknown/></a>";
        let stats = DocumentDriver::new().run(XmlReader::from_str(xml), &mut sink).unwrap();
        assert_eq!(
            sink.log,
            [
                "start a sym=Some(0) id=0 attrs@1",
                "start b sym=Some(1) id=3 attrs@4",
                "text \"hi\" id=4",
                "end b sym=Some(1)",
                "start unknown sym=None id=5 attrs@6",
                "end unknown sym=None",
                "end a sym=Some(0)",
            ]
        );
        assert_eq!(stats.elements, 3);
        assert_eq!(stats.text_nodes, 1);
        // StartDocument + 3 starts + 3 ends + 1 text + EndDocument.
        assert_eq!(stats.events, 9);
    }

    #[test]
    fn driver_is_reusable_and_renumbers() {
        let mut interner = Interner::new();
        interner.intern("a");
        let mut sink = Recorder { interner, log: Vec::new() };
        let mut driver = DocumentDriver::new();
        driver.run(XmlReader::from_str("<a><a/></a>"), &mut sink).unwrap();
        sink.log.clear();
        driver.run(XmlReader::from_str("<a/>"), &mut sink).unwrap();
        assert_eq!(sink.log, ["start a sym=Some(0) id=0 attrs@1", "end a sym=Some(0)"]);
    }

    #[test]
    fn malformed_input_surfaces_error() {
        let mut sink = Recorder { interner: Interner::new(), log: Vec::new() };
        let err = DocumentDriver::new().run(XmlReader::from_str("<a><b></a>"), &mut sink);
        assert!(err.is_err());
    }
}
