//! Unified telemetry layer: metrics registry, stage spans, and exportable
//! traces across parse → plan → shard → merge.
//!
//! All pipeline stages record through one [`Telemetry`] handle — a cheap
//! clone-able wrapper around an optional `Arc`. When telemetry is disabled
//! (the default) the handle holds `None` and every recording method is an
//! `#[inline]` early return that touches no atomics, takes no clock
//! readings, and allocates nothing; `bench_telemetry` verifies the
//! disabled path costs nothing measurable. When enabled, counters and
//! histograms are relaxed atomics shared across the coordinator, parse
//! workers, and shard workers, and coarse-grained spans land in a bounded
//! ring for Chrome-trace export.
//!
//! Deterministic counters (stream, machine, plan, prefix) are folded from
//! the per-run stat structs *after* a run — on the document thread, per
//! subscription — so their values are invariant across dispatch modes and
//! shard counts by construction. Timing counters, ring/backpressure
//! metrics, and parse front-end counters are recorded live from whichever
//! thread does the work and are scheduling-dependent.

pub mod export;
pub mod metrics;
pub mod profile;
pub mod span;

pub use export::{trace_json, Snapshot, SNAPSHOT_SCHEMA};
pub use metrics::{Counter, CounterRow, Gauge, GaugeRow, Histogram, HistogramRow, Registry};
pub use profile::{CostLedger, GroupCost, Heartbeat, ProfileSnapshot, QueryCost, PROFILE_SCHEMA};
pub use span::{
    Span, SpanRecorder, TID_COORDINATOR, TID_PARSE_BASE, TID_PRODUCER_BASE, TID_SHARD_BASE,
};

use crate::stats::{MachineStats, PlanStats, StreamStats};
use std::sync::Arc;
use std::time::Instant;
use vitex_xmlsax::probe::ParseProbe;
use vitex_xmlsax::ParStats;

#[derive(Debug)]
struct Inner {
    registry: Registry,
    spans: SpanRecorder,
    epoch: Instant,
}

/// Shared handle to the telemetry sinks; `None` inside means disabled and
/// every recording call is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The no-op handle (the default): recording never touches an atomic.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A live handle with a fresh registry and span ring. The epoch for
    /// span timestamps is the moment of this call.
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Registry::default(),
                spans: SpanRecorder::default(),
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether recording is live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `n` to the counter selected from the registry.
    #[inline]
    pub fn add(&self, pick: impl FnOnce(&Registry) -> &Counter, n: u64) {
        if let Some(inner) = &self.inner {
            pick(&inner.registry).add(n);
        }
    }

    /// Record a gauge level (also folds the high-water mark).
    #[inline]
    pub fn gauge_set(&self, pick: impl FnOnce(&Registry) -> &Gauge, v: u64) {
        if let Some(inner) = &self.inner {
            pick(&inner.registry).set(v);
        }
    }

    /// Record one histogram sample.
    #[inline]
    pub fn observe(&self, pick: impl FnOnce(&Registry) -> &Histogram, v: u64) {
        if let Some(inner) = &self.inner {
            pick(&inner.registry).observe(v);
        }
    }

    /// Start a timing interval: `Some(now)` when enabled, `None` (no clock
    /// read) when disabled. Pair with [`Telemetry::add_elapsed`],
    /// [`Telemetry::observe_elapsed`], or [`Telemetry::record_span`].
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.inner.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Add the nanoseconds elapsed since `t0` to a counter; returns the
    /// elapsed ns (0 when disabled).
    #[inline]
    pub fn add_elapsed(
        &self,
        pick: impl FnOnce(&Registry) -> &Counter,
        t0: Option<Instant>,
    ) -> u64 {
        match (&self.inner, t0) {
            (Some(inner), Some(t0)) => {
                let ns = t0.elapsed().as_nanos() as u64;
                pick(&inner.registry).add(ns);
                ns
            }
            _ => 0,
        }
    }

    /// Record the nanoseconds elapsed since `t0` as a histogram sample.
    #[inline]
    pub fn observe_elapsed(&self, pick: impl FnOnce(&Registry) -> &Histogram, t0: Option<Instant>) {
        if let (Some(inner), Some(t0)) = (&self.inner, t0) {
            pick(&inner.registry).observe(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Record a span from `t0` to now on logical thread `tid`.
    #[inline]
    pub fn record_span(
        &self,
        name: &'static str,
        cat: &'static str,
        tid: u32,
        t0: Option<Instant>,
    ) {
        if let (Some(inner), Some(t0)) = (&self.inner, t0) {
            let dur_ns = t0.elapsed().as_nanos() as u64;
            let start_ns =
                t0.checked_duration_since(inner.epoch).map(|d| d.as_nanos() as u64).unwrap_or(0);
            inner.spans.record(Span { name, cat, tid, start_ns, dur_ns });
        }
    }

    /// Record a span with an explicit start instant and duration (used by
    /// parse workers that measured the interval themselves).
    pub fn record_span_at(
        &self,
        name: &'static str,
        cat: &'static str,
        tid: u32,
        start: Instant,
        dur_ns: u64,
    ) {
        if let Some(inner) = &self.inner {
            let start_ns =
                start.checked_duration_since(inner.epoch).map(|d| d.as_nanos() as u64).unwrap_or(0);
            inner.spans.record(Span { name, cat, tid, start_ns, dur_ns });
        }
    }

    /// The live registry, when enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// Snapshot all metrics, when enabled.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.inner.as_deref().map(|i| Snapshot::capture(&i.registry, &i.spans))
    }

    /// Retained spans sorted by start time, when enabled.
    pub fn spans(&self) -> Option<Vec<Span>> {
        self.inner.as_deref().map(|i| i.spans.collect())
    }

    // ----- deterministic folds from the per-run stat structs -----

    /// Fold document-stream counters (called once per scan by the driver).
    pub fn fold_stream(&self, s: &StreamStats) {
        if let Some(inner) = &self.inner {
            let r = &inner.registry;
            r.stream_events.add(s.events);
            r.stream_elements.add(s.elements);
            r.stream_text_nodes.add(s.text_nodes);
        }
    }

    /// Fold one subscription's machine counters. Folding per subscription —
    /// not per plan group — keeps the totals plan-mode-invariant: a query
    /// that duplicates another reports the shared machine's stats under
    /// both subscriptions, exactly as unshared planning would.
    pub fn fold_machine(&self, s: &MachineStats) {
        if let Some(inner) = &self.inner {
            let r = &inner.registry;
            r.machine_pushes.add(s.pushes);
            r.machine_pops.add(s.pops);
            r.machine_flag_propagations.add(s.flag_propagations);
            r.machine_predicate_evals.add(s.predicate_evals);
            r.machine_dispatch_hits.add(s.dispatch_hits);
            r.machine_candidates_created.add(s.candidates_created);
            r.machine_candidates_forwarded.add(s.candidates_forwarded);
            r.machine_candidates_discarded.add(s.candidates_discarded);
            r.machine_emitted.add(s.emitted);
            r.machine_duplicates_suppressed.add(s.duplicates_suppressed);
            r.machine_peak_entries.add(s.peak_entries);
            r.machine_peak_candidates.add(s.peak_candidates);
            r.machine_peak_bytes.add(s.peak_bytes);
        }
    }

    /// Fold plan-level counters (called once per run).
    pub fn fold_plan(&self, p: &PlanStats) {
        if let Some(inner) = &self.inner {
            let r = &inner.registry;
            r.plan_queries.add(p.queries);
            r.plan_groups.add(p.groups);
            r.plan_machine_nodes.add(p.machine_nodes);
            r.plan_trie_nodes.add(p.trie_nodes);
            r.plan_shared_trie_nodes.add(p.shared_trie_nodes);
            r.plan_bytes.add(p.plan_bytes);
            r.prefix_steps_executed.add(p.prefix_steps_executed);
            r.prefix_steps_saved.add(p.prefix_steps_saved);
            r.prefix_forks.add(p.prefix_forks);
            r.prefix_stack_bytes.add(p.prefix_stack_bytes);
        }
    }

    /// Count emitted matches (deterministic across all execution modes).
    #[inline]
    pub fn add_matches(&self, n: u64) {
        self.add(|r| &r.matches_emitted, n);
    }

    /// Fold the parallel-parse front-end statistics after a run.
    pub fn fold_par(&self, s: &ParStats) {
        if let Some(inner) = &self.inner {
            let r = &inner.registry;
            r.parse_chunks.add(s.chunks as u64);
            r.parse_misspeculated.add(s.misspeculated as u64);
            r.parse_reparsed.add(s.reparsed as u64);
            if s.sequential_fallback {
                r.parse_sequential_fallback.add(1);
            }
        }
    }
}

/// The telemetry handle doubles as the parse front-end's probe: scanner
/// byte counts, speculative chunk spans, and stitch time land in the same
/// registry as everything else.
impl ParseProbe for Telemetry {
    fn on_scan_bytes(&self, wide: u64, scalar: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.scan_wide_bytes.add(wide);
            inner.registry.scan_scalar_bytes.add(scalar);
        }
    }

    fn on_chunk(&self, worker: usize, _bytes: u64, start: Instant, dur_ns: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.chunk_ns.observe(dur_ns);
            let tid = TID_PARSE_BASE + worker as u32;
            let start_ns =
                start.checked_duration_since(inner.epoch).map(|d| d.as_nanos() as u64).unwrap_or(0);
            inner.spans.record(Span { name: "chunk", cat: "parse", tid, start_ns, dur_ns });
        }
    }

    fn on_stitch(&self, ns: u64) {
        self.add(|r| &r.parse_stitch_ns, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert!(tel.timer().is_none());
        tel.add(|r| &r.stream_events, 5);
        tel.gauge_set(|r| &r.ring_occupancy, 5);
        tel.observe(|r| &r.dispatch_ns, 5);
        tel.fold_stream(&StreamStats { elements: 1, text_nodes: 1, events: 1 });
        assert!(tel.snapshot().is_none());
        assert!(tel.spans().is_none());
    }

    #[test]
    fn enabled_records_and_snapshots() {
        let tel = Telemetry::enabled();
        assert!(tel.is_enabled());
        tel.add(|r| &r.stream_events, 5);
        tel.add_matches(2);
        let t0 = tel.timer();
        assert!(t0.is_some());
        let ns = tel.add_elapsed(|r| &r.worker_busy_ns, t0);
        tel.record_span("document", "stream", TID_COORDINATOR, t0);
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.counter("vitex_stream_events_total"), Some(5));
        assert_eq!(snap.counter("vitex_matches_total"), Some(2));
        assert_eq!(snap.counter("vitex_worker_busy_ns_total"), Some(ns));
        let spans = tel.spans().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "document");
    }

    #[test]
    fn fold_machine_sums_per_subscription() {
        let tel = Telemetry::enabled();
        let mut s = MachineStats::default();
        s.on_push(100);
        tel.fold_machine(&s);
        tel.fold_machine(&s);
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.counter("vitex_machine_pushes_total"), Some(2));
        assert_eq!(snap.counter("vitex_machine_peak_bytes_sum"), Some(200));
    }

    #[test]
    fn clones_share_the_registry() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        clone.add(|r| &r.ring_batches, 3);
        assert_eq!(tel.snapshot().unwrap().counter("vitex_ring_batches_total"), Some(3));
    }

    #[test]
    fn probe_records_scan_and_chunks() {
        let tel = Telemetry::enabled();
        let probe: &dyn ParseProbe = &tel;
        probe.on_scan_bytes(100, 7);
        probe.on_chunk(2, 4096, Instant::now(), 1234);
        probe.on_stitch(55);
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.counter("vitex_scan_wide_bytes_total"), Some(100));
        assert_eq!(snap.counter("vitex_scan_scalar_bytes_total"), Some(7));
        assert_eq!(snap.counter("vitex_parse_stitch_ns_total"), Some(55));
        let spans = tel.spans().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].tid, TID_PARSE_BASE + 2);
    }
}
