//! Snapshot and export formats: stable-schema JSON, Chrome trace-event
//! JSON, and a human-readable summary.
//!
//! The JSON snapshot (`schema: "vitex.metrics.v1"`) is the payload a future
//! subscription server would serve from its scrape endpoint; metric names
//! are Prometheus-ready. The trace export follows the Chrome trace-event
//! format (`ph: "X"` complete events, microsecond timestamps) and loads
//! directly in Perfetto or `chrome://tracing`.

use super::metrics::{CounterRow, GaugeRow, HistogramRow, Registry};
use super::span::{Span, SpanRecorder};
use std::fmt::Write as _;

/// Schema identifier embedded in every metrics snapshot.
pub const SNAPSHOT_SCHEMA: &str = "vitex.metrics.v1";

/// Point-in-time copy of every registry metric plus span-ring health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// All counters with determinism class.
    pub counters: Vec<CounterRow>,
    /// All gauges with high-water marks.
    pub gauges: Vec<GaugeRow>,
    /// All histograms (non-empty buckets only).
    pub histograms: Vec<HistogramRow>,
    /// Spans overwritten because the span ring was full.
    pub spans_dropped: u64,
}

impl Snapshot {
    /// Capture the registry and span-ring state.
    pub fn capture(registry: &Registry, spans: &SpanRecorder) -> Snapshot {
        Snapshot {
            counters: registry.counter_rows(),
            gauges: registry.gauge_rows(),
            histograms: registry.histogram_rows(),
            spans_dropped: spans.dropped(),
        }
    }

    /// Value of a counter by export name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The deterministic counter subset as `(name, value)` rows — the part
    /// of the snapshot that must be invariant across dispatch modes and
    /// shard counts (the differential battery compares this byte-for-byte
    /// via [`Snapshot::deterministic_json`]).
    pub fn deterministic_counters(&self) -> Vec<(&'static str, u64)> {
        self.counters.iter().filter(|c| c.deterministic).map(|c| (c.name, c.value)).collect()
    }

    /// Canonical JSON of just the deterministic counters, for byte-equality
    /// assertions in tests.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.deterministic_counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push('}');
        out
    }

    /// Full snapshot as stable-schema JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(out, "{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"deterministic\":{},\"value\":{}}}",
                c.name, c.deterministic, c.value
            );
        }
        out.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"value\":{},\"high\":{}}}",
                g.name, g.value, g.high
            );
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[",
                h.name, h.count, h.sum
            );
            for (j, (pow2, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"pow2\":{pow2},\"count\":{count}}}");
            }
            out.push_str("]}");
        }
        let _ = write!(out, "],\"spans_dropped\":{}}}", self.spans_dropped);
        out
    }

    /// Human-readable multi-line summary (the `--metrics` stderr report).
    /// Zero-valued counters and empty histograms are omitted.
    pub fn human_summary(&self) -> String {
        let mut out = String::from("telemetry:\n");
        let section = |out: &mut String, title: &str| {
            let _ = writeln!(out, "  {title}:");
        };
        section(&mut out, "counters");
        for c in &self.counters {
            if c.value > 0 {
                let _ = writeln!(out, "    {:<44} {}", c.name, c.value);
            }
        }
        if self.gauges.iter().any(|g| g.high > 0) {
            section(&mut out, "gauges (last / high-water)");
            for g in &self.gauges {
                if g.high > 0 {
                    let _ = writeln!(out, "    {:<44} {} / {}", g.name, g.value, g.high);
                }
            }
        }
        if self.histograms.iter().any(|h| h.count > 0) {
            section(&mut out, "histograms (count / mean / max-bucket)");
            for h in &self.histograms {
                if h.count == 0 {
                    continue;
                }
                let mean = h.sum as f64 / h.count as f64;
                let max_pow2 = h.buckets.last().map(|(p, _)| *p).unwrap_or(0);
                let _ =
                    writeln!(out, "    {:<44} {} / {:.1} / <2^{}", h.name, h.count, mean, max_pow2);
            }
        }
        if self.spans_dropped > 0 {
            let _ = writeln!(out, "  spans_dropped: {}", self.spans_dropped);
        }
        out
    }
}

/// Render spans as Chrome trace-event JSON (complete `"X"` events plus
/// `thread_name` metadata), loadable in Perfetto / `chrome://tracing`.
pub fn trace_json(spans: &[Span]) -> String {
    let mut out = String::with_capacity(spans.len() * 96 + 512);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        if !first {
            out.push(',');
        }
        first = false;
        let name = thread_label(*tid);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        // Trace-event timestamps are in microseconds; keep fractional
        // precision so short spans stay visible.
        let ts = s.start_ns as f64 / 1000.0;
        let dur = (s.dur_ns as f64 / 1000.0).max(0.001);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{ts:.3},\"dur\":{dur:.3}}}",
            s.name, s.cat, s.tid
        );
    }
    out.push_str("]}");
    out
}

fn thread_label(tid: u32) -> String {
    use super::span::{TID_COORDINATOR, TID_PARSE_BASE, TID_PRODUCER_BASE, TID_SHARD_BASE};
    if tid == TID_COORDINATOR {
        "coordinator".to_string()
    } else if tid >= TID_PRODUCER_BASE {
        format!("producer-{}", tid - TID_PRODUCER_BASE)
    } else if tid >= TID_PARSE_BASE {
        format!("parse-worker-{}", tid - TID_PARSE_BASE)
    } else {
        format!("shard-worker-{}", tid - TID_SHARD_BASE)
    }
}

#[cfg(test)]
mod tests {
    use super::super::span::Span;
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let registry = Registry::default();
        registry.stream_events.add(10);
        registry.worker_busy_ns.add(999);
        registry.ring_occupancy.set(3);
        registry.dispatch_ns.observe(100);
        let spans = SpanRecorder::default();
        Snapshot::capture(&registry, &spans)
    }

    #[test]
    fn json_has_schema_and_values() {
        let json = sample_snapshot().to_json();
        assert!(json.contains("\"schema\":\"vitex.metrics.v1\""));
        assert!(json.contains(
            "\"name\":\"vitex_stream_events_total\",\"deterministic\":true,\"value\":10"
        ));
        assert!(json.contains(
            "\"name\":\"vitex_worker_busy_ns_total\",\"deterministic\":false,\"value\":999"
        ));
        assert!(json.contains("\"spans_dropped\":0"));
    }

    #[test]
    fn deterministic_subset_excludes_timers() {
        let snap = sample_snapshot();
        let det = snap.deterministic_json();
        assert!(det.contains("vitex_stream_events_total"));
        assert!(!det.contains("vitex_worker_busy_ns_total"));
        assert!(!det.contains("vitex_dispatch_ns"));
    }

    #[test]
    fn human_summary_omits_zeroes() {
        let text = sample_snapshot().human_summary();
        assert!(text.contains("vitex_stream_events_total"));
        assert!(!text.contains("vitex_stream_elements_total"));
        assert!(text.contains("vitex_ring_occupancy"));
        assert!(text.contains("vitex_dispatch_ns"));
    }

    #[test]
    fn trace_json_shape() {
        let spans = vec![
            Span { name: "document", cat: "stream", tid: 1, start_ns: 1000, dur_ns: 5000 },
            Span { name: "batch", cat: "shard", tid: 2, start_ns: 2000, dur_ns: 100 },
        ];
        let json = trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"coordinator\""));
        assert!(json.contains("\"name\":\"shard-worker-0\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":5.000"));
    }

    #[test]
    fn producer_lane_is_distinct_from_parse_workers() {
        use super::super::span::{TID_PARSE_BASE, TID_PRODUCER_BASE};
        let spans = vec![
            Span { name: "chunk", cat: "parse", tid: TID_PARSE_BASE, start_ns: 10, dur_ns: 5 },
            Span {
                name: "publish",
                cat: "producer",
                tid: TID_PRODUCER_BASE + 1,
                start_ns: 20,
                dur_ns: 5,
            },
        ];
        let json = trace_json(&spans);
        assert!(json.contains("\"name\":\"parse-worker-0\""));
        assert!(json.contains("\"name\":\"producer-1\""));
        assert!(!json.contains(&format!("\"name\":\"parse-worker-{}\"", TID_PRODUCER_BASE - 64)));
    }
}
